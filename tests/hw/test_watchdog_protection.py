"""Unit tests for the watchdog and protection mechanisms."""

import pytest

from repro.hw import (
    KICK_KEY,
    CrcChecker,
    LockstepChecker,
    RangeChecker,
    RateChecker,
    TmrVoter,
    Watchdog,
)
from repro.kernel import Module, Simulator
from repro.tlm import GenericPayload


@pytest.fixture
def top():
    return Module("top", sim=Simulator())


def kick(dog, key=KICK_KEY):
    dog.tsock.deliver(GenericPayload.write_word(0x0, key), 0)


def enable(dog):
    dog.tsock.deliver(GenericPayload.write_word(0x4, 1), 0)


class TestWatchdog:
    def test_no_timeout_while_kicked(self, top):
        dog = Watchdog("wdt", parent=top, timeout=10_000)

        def kicker():
            enable(dog)
            for _ in range(20):
                yield 5_000
                kick(dog)

        top.process(kicker())
        top.sim.run(until=100_000)
        assert dog.timeouts == 0

    def test_timeout_when_starved(self, top):
        dog = Watchdog("wdt", parent=top, timeout=10_000)

        def starver():
            enable(dog)
            yield 50_000

        top.process(starver())
        top.sim.run(until=50_000)
        assert dog.timeouts >= 1
        assert dog.timeout_latched

    def test_early_kick_violates_window(self, top):
        dog = Watchdog("wdt", parent=top, timeout=10_000, window_min=4_000)

        def fast_kicker():
            enable(dog)  # enabling opens the first window
            yield 5_000
            kick(dog)  # inside [window_min, timeout): valid
            yield 1_000
            kick(dog)  # too early -> violation

        top.process(fast_kicker())
        top.sim.run(until=8_000)
        assert dog.early_kicks == 1
        assert dog.timeouts == 1

    def test_bad_key_bites_immediately(self, top):
        dog = Watchdog("wdt", parent=top, timeout=10_000)

        def bad_kicker():
            enable(dog)
            yield 1_000
            kick(dog, key=0xDEAD)

        top.process(bad_kicker())
        top.sim.run(until=5_000)
        assert dog.bad_key_kicks == 1
        assert dog.timeouts == 1

    def test_on_timeout_callback(self, top):
        resets = []
        dog = Watchdog(
            "wdt", parent=top, timeout=5_000,
            on_timeout=lambda: resets.append(top.sim.now),
        )

        def starter():
            enable(dog)
            yield 20_000

        top.process(starter())
        top.sim.run(until=20_000)
        assert resets

    def test_disabled_watchdog_never_bites(self, top):
        dog = Watchdog("wdt", parent=top, timeout=5_000)
        top.sim.run(until=100_000)
        assert dog.timeouts == 0

    def test_status_register(self, top):
        dog = Watchdog("wdt", parent=top, timeout=5_000)
        enable(dog)
        status = GenericPayload.read(0x8, 4)
        dog.tsock.deliver(status, 0)
        assert status.word == 0b01

    def test_parameter_validation(self, top):
        with pytest.raises(ValueError):
            Watchdog("w1", parent=top, timeout=0)
        with pytest.raises(ValueError):
            Watchdog("w2", parent=top, timeout=100, window_min=100)


class TestTmrVoter:
    def test_unanimous(self, top):
        voter = TmrVoter("voter", parent=top)
        assert voter.vote(5, 5, 5) == 5
        assert voter.mismatches == 0

    def test_single_disagreement_masked(self, top):
        voter = TmrVoter("voter", parent=top)
        assert voter.vote(5, 5, 9) == 5
        assert voter.vote(5, 9, 5) == 5
        assert voter.vote(9, 5, 5) == 5
        assert voter.mismatches == 3
        assert voter.unresolvable == 0

    def test_three_way_disagreement(self, top):
        called = []
        voter = TmrVoter(
            "voter", parent=top, on_unresolvable=lambda: called.append(1)
        )
        assert voter.vote(1, 2, 3) == 1  # channel A fallback
        assert voter.unresolvable == 1
        assert called == [1]


class TestLockstep:
    def test_agreement(self, top):
        checker = LockstepChecker("lockstep", parent=top)
        assert checker.compare(42, 42)
        assert checker.detected == 0

    def test_divergence_detected(self, top):
        checker = LockstepChecker("lockstep", parent=top)
        assert not checker.compare(42, 43)
        assert checker.detected == 1

    def test_common_mode_blind_spot(self, top):
        checker = LockstepChecker("lockstep", parent=top)
        # Both channels corrupted identically: passes undetected.
        assert checker.compare(99, 99)
        assert checker.detected == 0


class TestCheckers:
    def test_range_checker(self):
        checker = RangeChecker("rc", low=0.0, high=100.0)
        assert checker.check(50.0)
        assert not checker.check(150.0)
        assert checker.violations == 1

    def test_range_checker_validation(self):
        with pytest.raises(ValueError):
            RangeChecker("bad", low=10.0, high=0.0)

    def test_rate_checker_first_sample_free(self):
        checker = RateChecker("rate", max_delta=5.0)
        assert checker.check(1000.0)

    def test_rate_checker_catches_jump(self):
        checker = RateChecker("rate", max_delta=5.0)
        checker.check(10.0)
        assert not checker.check(100.0)
        assert checker.violations == 1

    def test_rate_checker_reset(self):
        checker = RateChecker("rate", max_delta=5.0)
        checker.check(10.0)
        checker.reset()
        assert checker.check(100.0)

    def test_rate_checker_validation(self):
        with pytest.raises(ValueError):
            RateChecker("bad", max_delta=0)


class TestCrcChecker:
    def test_round_trip(self):
        checker = CrcChecker("e2e")
        message = CrcChecker.protect(b"\x11\x22", counter=0)
        assert checker.check(message) == b"\x11\x22"

    def test_corruption_rejected(self):
        checker = CrcChecker("e2e")
        message = bytearray(CrcChecker.protect(b"\x11\x22", counter=0))
        message[1] ^= 0x80
        assert checker.check(bytes(message)) is None
        assert checker.crc_failures == 1

    def test_repeated_counter_rejected(self):
        checker = CrcChecker("e2e")
        msg0 = CrcChecker.protect(b"\x01", counter=0)
        assert checker.check(msg0) is not None
        # Replaying the same message violates the alive counter.
        assert checker.check(msg0) is None
        assert checker.counter_failures == 1

    def test_counter_sequence_accepted(self):
        checker = CrcChecker("e2e")
        for counter in range(20):
            message = CrcChecker.protect(bytes([counter]), counter & 0xF)
            assert checker.check(message) is not None

    def test_short_message_rejected(self):
        checker = CrcChecker("e2e")
        assert checker.check(b"\x00") is None
