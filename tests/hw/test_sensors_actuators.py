"""Unit tests for sensor and actuator models."""

import random

import pytest

from repro.hw import (
    AdcSensor,
    BrakeActuator,
    ServoMotor,
    Squib,
    constant,
    crash_pulse,
    piecewise,
    ramp,
    sine,
)
from repro.kernel import Module, Simulator
from repro.tlm import GenericPayload


@pytest.fixture
def top():
    return Module("top", sim=Simulator())


class TestSources:
    def test_constant(self):
        assert constant(2.5)(123456) == 2.5

    def test_ramp(self):
        source = ramp(1.0, 2.0)  # +2 units per second
        assert source(0) == 1.0
        assert source(500_000_000) == pytest.approx(2.0)

    def test_sine_is_periodic(self):
        source = sine(1.0, frequency_hz=100.0)
        period_ns = int(1e9 / 100)
        assert source(0) == pytest.approx(source(period_ns), abs=1e-9)

    def test_piecewise_steps(self):
        source = piecewise([(0, 1.0), (100, 5.0)])
        assert source(50) == 1.0
        assert source(100) == 5.0
        assert source(999) == 5.0

    def test_piecewise_validation(self):
        with pytest.raises(ValueError):
            piecewise([])
        with pytest.raises(ValueError):
            piecewise([(100, 1.0), (0, 2.0)])

    def test_crash_pulse_shape(self):
        source = crash_pulse(t_impact=1000, peak_g=50.0, duration=1000)
        assert source(0) == 0.0
        assert source(1500) == pytest.approx(50.0)
        assert source(3000) == 0.0


class TestAdcSensor:
    def test_samples_periodically(self, top):
        sensor = AdcSensor(
            "acc", parent=top, source=constant(2.5), period=1000,
            vmin=0.0, vmax=5.0, bits=12,
        )
        top.sim.run(until=10_000)
        assert sensor.samples_taken == 10
        assert sensor.output.read() == sensor.quantize(2.5)

    def test_quantize_clamps(self, top):
        sensor = AdcSensor(
            "s", parent=top, source=constant(0), period=1000,
            vmin=0.0, vmax=5.0, bits=8,
        )
        assert sensor.quantize(-1.0) == 0
        assert sensor.quantize(99.0) == 255

    def test_code_volts_round_trip(self, top):
        sensor = AdcSensor(
            "s", parent=top, source=constant(0), period=1000, bits=12
        )
        code = sensor.quantize(3.3)
        assert sensor.code_to_volts(code) == pytest.approx(3.3, abs=0.01)

    def test_offset_fault_shifts_reading(self, top):
        sensor = AdcSensor(
            "s", parent=top, source=constant(2.0), period=1000
        )
        sensor.injection_points["frontend"].set_offset(1.0)
        top.sim.run(until=1000)
        assert sensor.code_to_volts(sensor.output.read()) == pytest.approx(
            3.0, abs=0.01
        )

    def test_stuck_fault_freezes_reading(self, top):
        sensor = AdcSensor(
            "s", parent=top, source=ramp(0.0, 100.0), period=1000
        )
        sensor.injection_points["frontend"].stick_at(1.5)
        top.sim.run(until=5000)
        assert sensor.code_to_volts(sensor.output.read()) == pytest.approx(
            1.5, abs=0.01
        )

    def test_open_circuit_reads_low_rail(self, top):
        sensor = AdcSensor(
            "s", parent=top, source=constant(4.0), period=1000, vmin=0.5
        )
        sensor.injection_points["frontend"].open_circuit()
        top.sim.run(until=1000)
        assert sensor.output.read() == 0

    def test_noise_fault_needs_rng(self, top):
        sensor = AdcSensor(
            "s", parent=top, source=constant(1.0), period=1000
        )
        sensor.injection_points["frontend"].set_noise(0.5)
        from repro.kernel import ProcessError

        with pytest.raises(ProcessError):
            top.sim.run(until=1000)

    def test_noise_fault_with_rng_perturbs(self, top):
        sensor = AdcSensor(
            "s", parent=top, source=constant(2.5), period=1000,
            rng=random.Random(7),
        )
        sensor.injection_points["frontend"].set_noise(0.3)
        codes = set()
        for _ in range(5):
            top.sim.run(until=top.sim.now + 1000)
            codes.add(sensor.output.read())
        assert len(codes) > 1

    def test_clear_fault_restores_nominal(self, top):
        sensor = AdcSensor("s", parent=top, source=constant(2.0), period=1000)
        point = sensor.injection_points["frontend"]
        point.set_gain(2.0)
        assert sensor.fault.active
        point.clear()
        assert not sensor.fault.active


class TestSquib:
    def _write(self, squib, address, value):
        payload = GenericPayload.write_word(address, value)
        squib.tsock.deliver(payload, 0)
        return payload

    def test_arm_then_fire(self, top):
        squib = Squib("squib", parent=top)
        self._write(squib, 0x0, Squib.ARM_KEY)
        self._write(squib, 0x4, Squib.FIRE_KEY)
        assert squib.fired
        assert squib.fire_time == top.sim.now

    def test_fire_without_arm_is_rejected(self, top):
        squib = Squib("squib", parent=top)
        self._write(squib, 0x4, Squib.FIRE_KEY)
        assert not squib.fired
        assert squib.spurious_commands == 1

    def test_wrong_key_disarms(self, top):
        squib = Squib("squib", parent=top)
        self._write(squib, 0x0, Squib.ARM_KEY)
        self._write(squib, 0x0, 0x1234)
        self._write(squib, 0x4, Squib.FIRE_KEY)
        assert not squib.fired

    def test_wrong_fire_key_counted(self, top):
        squib = Squib("squib", parent=top)
        self._write(squib, 0x0, Squib.ARM_KEY)
        self._write(squib, 0x4, 0xBEEF)
        assert not squib.fired
        assert squib.spurious_commands == 1

    def test_status_register(self, top):
        squib = Squib("squib", parent=top)
        self._write(squib, 0x0, Squib.ARM_KEY)
        status = GenericPayload.read(0x8, 4)
        squib.tsock.deliver(status, 0)
        assert status.word == 0b01
        self._write(squib, 0x4, Squib.FIRE_KEY)
        status = GenericPayload.read(0x8, 4)
        squib.tsock.deliver(status, 0)
        assert status.word == 0b11

    def test_fire_latches(self, top):
        squib = Squib("squib", parent=top)
        self._write(squib, 0x0, Squib.ARM_KEY)
        self._write(squib, 0x4, Squib.FIRE_KEY)
        first_time = squib.fire_time
        self._write(squib, 0x4, Squib.FIRE_KEY)
        assert squib.fire_time == first_time


class TestServoMotor:
    def test_tracks_command_with_slew_limit(self, top):
        servo = ServoMotor(
            "servo", parent=top, slew_rate=10.0, update_period=1_000_000
        )
        payload = GenericPayload.write_word(0x0, 100)
        servo.tsock.deliver(payload, 0)
        top.sim.run(until=5_000_000)  # 5 ms at 10 units/ms
        assert servo.position == pytest.approx(50.0)
        top.sim.run(until=20_000_000)
        assert servo.position == pytest.approx(100.0)

    def test_negative_command_via_twos_complement(self, top):
        servo = ServoMotor("servo", parent=top, slew_rate=1000.0)
        payload = GenericPayload.write_word(0x0, (-50) & 0xFFFFFFFF)
        servo.tsock.deliver(payload, 0)
        top.sim.run(until=10_000_000)
        assert servo.position == pytest.approx(-50.0)

    def test_stall_under_load_raises_overcurrent(self, top):
        servo = ServoMotor(
            "servo", parent=top, stall_load=10.0, overcurrent_limit=5
        )
        servo.external_load = 20.0
        servo.tsock.deliver(GenericPayload.write_word(0x0, 500), 0)
        top.sim.run(until=10_000_000)
        assert servo.overcurrent_fault
        assert servo.position == 0.0


class TestBrakeActuator:
    def test_pressure_follows_demand(self, top):
        brake = BrakeActuator("brake", parent=top, rate_per_ms=20.0)
        brake.tsock.deliver(GenericPayload.write_word(0x0, 6000), 0)  # 60%
        top.sim.run(until=10_000_000)
        assert brake.pressure == pytest.approx(60.0)

    def test_demand_clamped_to_max(self, top):
        brake = BrakeActuator("brake", parent=top, max_pressure=100.0)
        brake.tsock.deliver(GenericPayload.write_word(0x0, 25000), 0)
        assert brake.demand == 100.0

    def test_demand_log_records_time(self, top):
        brake = BrakeActuator("brake", parent=top)
        top.sim.run(until=500)
        brake.tsock.deliver(GenericPayload.write_word(0x0, 1000), 0)
        assert brake.demand_log == [(500, 10.0)]
