"""Tests for the dual-core lockstep pair."""

import random

import pytest

from repro.core import apply_fault
from repro.faults import CPU_GPR_SEU, SRAM_SEU
from repro.hw import LockstepCpuPair, assemble
from repro.kernel import Module, Simulator

PROGRAM = assemble(
    """
        ldi  r1, 0
        ldi  r2, 100
    loop:
        add  r1, r1, r2
        addi r2, r2, -1
        bne  r2, r0, loop
        halt
    """
)


@pytest.fixture
def pair():
    sim = Simulator()
    top = Module("top", sim=sim)
    pair = LockstepCpuPair(
        "lockstep", parent=top, image=PROGRAM.image,
        compare_interval=500,
    )
    pair.start(pc=0)
    return sim, top, pair


class TestNominal:
    def test_clean_run_no_mismatch(self, pair):
        sim, _, pair = pair
        sim.run(until=50_000_000)
        assert pair.both_halted_cleanly
        assert not pair.halted_on_mismatch
        a, b = pair.result_register(1)
        assert a == b == sum(range(1, 101))
        assert pair.checker.detected == 0

    def test_comparisons_actually_happen(self, pair):
        sim, _, pair = pair
        sim.run(until=50_000_000)
        assert pair.checker.comparisons > 1


class TestFaultDetection:
    def test_single_channel_gpr_flip_detected(self, pair):
        sim, top, pair = pair

        def injector():
            yield 2_000  # mid-computation
            point = pair.cores[0].injection_points["arch"]
            point.flip_reg(1, 7)

        sim.spawn(injector())
        sim.run(until=50_000_000)
        assert pair.halted_on_mismatch
        assert pair.checker.detected == 1
        assert pair.mismatch_time is not None
        # Both cores were stopped before producing divergent output.
        assert all(core.halted for core in pair.cores)

    def test_single_channel_memory_flip_detected(self, pair):
        sim, top, pair = pair

        def injector():
            yield 1_000
            # Corrupt channel A's private instruction memory.
            point = pair.memories[0].injection_points["array"]
            # Opcode byte of the loop's ADD (little-endian byte 3 of
            # the word at 0x8): 0x10 ADD -> 0x11 SUB.
            point.flip(11, 0)

        sim.spawn(injector())
        sim.run(until=50_000_000)
        # Divergence (different results or a trap in one channel).
        assert pair.halted_on_mismatch or (
            pair.cores[0].trap_cause is not None
        )

    def test_common_mode_fault_escapes(self, pair):
        sim, top, pair = pair

        def injector():
            yield 2_000
            for core in pair.cores:
                core.injection_points["arch"].flip_reg(1, 7)

        sim.spawn(injector())
        sim.run(until=50_000_000)
        # Identical corruption in both channels: the comparator is
        # blind, and the (wrong) result leaves the pair silently.
        assert not pair.halted_on_mismatch
        a, b = pair.result_register(1)
        assert a == b
        assert a != sum(range(1, 101))

    def test_descriptor_driven_injection(self, pair):
        sim, top, pair = pair
        rng = random.Random(4)

        def injector():
            yield 2_000
            apply_fault(
                CPU_GPR_SEU.with_params(reg=1, bit=12),
                "core_a.arch",
                pair.cores[0].injection_points["arch"],
                sim,
                rng,
            )

        sim.spawn(injector())
        sim.run(until=50_000_000)
        assert pair.halted_on_mismatch
