"""Tests for the vp16 ISA, assembler, and ISS."""

import pytest
from hypothesis import given, strategies as st

from repro.hw import Memory
from repro.hw.cpu import (
    AssemblyError,
    IllegalInstruction,
    Instruction,
    Op,
    Vp16Cpu,
    assemble,
    decode,
    encode,
    sign_extend,
)
from repro.kernel import GlobalQuantum, Module, Simulator
from repro.tlm import Router


class TestEncoding:
    @given(
        st.sampled_from(list(Op)),
        st.integers(0, 15),
        st.integers(0, 15),
        st.integers(0, 15),
        st.integers(-2048, 2047),
    )
    def test_encode_decode_round_trip(self, op, rd, rs1, rs2, imm):
        instr = Instruction(op, rd, rs1, rs2, imm)
        assert decode(encode(instr)) == instr

    def test_decode_illegal_opcode(self):
        with pytest.raises(IllegalInstruction):
            decode(0xFE000000)

    def test_encode_range_checks(self):
        with pytest.raises(ValueError):
            encode(Instruction(Op.LDI, 0, 0, 0, 5000))
        with pytest.raises(ValueError):
            encode(Instruction(Op.LDI, 16, 0, 0, 0))

    @given(st.integers(-2048, 2047))
    def test_sign_extend_round_trip(self, value):
        assert sign_extend(value & 0xFFF, 12) == value


class TestAssembler:
    def test_simple_program(self):
        program = assemble(
            """
            ldi r1, 5
            ldi r2, 7
            add r3, r1, r2
            halt
            """
        )
        assert len(program.image) == 16
        first = decode(int.from_bytes(program.image[:4], "little"))
        assert first.op is Op.LDI and first.rd == 1 and first.imm == 5

    def test_labels_and_branches(self):
        program = assemble(
            """
            start:
                ldi r1, 0
            loop:
                addi r1, r1, 1
                bne r1, r2, loop
                halt
            """
        )
        branch = decode(int.from_bytes(program.image[8:12], "little"))
        assert branch.op is Op.BNE
        assert branch.imm == -1  # back one instruction

    def test_forward_reference(self):
        program = assemble(
            """
                jmp end
                nop
            end:
                halt
            """
        )
        jump = decode(int.from_bytes(program.image[:4], "little"))
        assert jump.imm == 2

    def test_word_directive_and_label_value(self):
        program = assemble(
            """
                halt
            table: .word 10, 0x20, table
            """
        )
        assert program.labels["table"] == 4
        words = [
            int.from_bytes(program.image[i : i + 4], "little")
            for i in range(4, 16, 4)
        ]
        assert words == [10, 0x20, 4]

    def test_org_directive(self):
        program = assemble(
            """
                halt
            .org 0x10
                nop
            """
        )
        assert len(program.image) == 0x14

    def test_comments_ignored(self):
        program = assemble("nop ; trailing\n# full line\nhalt")
        assert len(program.image) == 8

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("a:\nnop\na:\nhalt")

    def test_undefined_symbol_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("jmp nowhere")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblyError):
            assemble("add r1, r2")

    def test_bad_register(self):
        with pytest.raises(AssemblyError):
            assemble("ldi r16, 0")

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError):
            assemble("frobnicate r1")

    def test_immediate_out_of_range(self):
        with pytest.raises(AssemblyError):
            assemble("ldi r1, 4096")


def make_platform(source, mem_size=4096, **cpu_kwargs):
    """Assemble *source* into a minimal CPU+memory platform."""
    sim = Simulator()
    top = Module("top", sim=sim)
    router = Router("bus", parent=top, hop_latency=2)
    mem = Memory("mem", parent=top, size=mem_size, read_latency=4, write_latency=4)
    router.map_target(0x0, mem_size, mem.tsock)
    cpu = Vp16Cpu("cpu", parent=top, clock_period=10, **cpu_kwargs)
    cpu.isock.bind(router.tsock)
    program = assemble(source)
    mem.load(program.origin, program.image)
    cpu.start(pc=program.origin)
    return sim, top, cpu, mem


class TestIss:
    def test_arithmetic(self):
        sim, _, cpu, _ = make_platform(
            """
            ldi r1, 21
            ldi r2, 2
            mul r3, r1, r2
            addi r3, r3, -1
            halt
            """
        )
        sim.run()
        assert cpu.halted
        assert cpu.regs[3] == 41

    def test_r0_hardwired_zero(self):
        sim, _, cpu, _ = make_platform(
            """
            ldi r0, 99
            mov r1, r0
            halt
            """
        )
        sim.run()
        assert cpu.regs[1] == 0

    def test_memory_load_store(self):
        sim, _, cpu, mem = make_platform(
            """
            ldi r1, 0x100
            ldi r2, 0x7AB
            st  r1, r2, 0
            ld  r3, r1, 0
            halt
            """
        )
        sim.run()
        assert cpu.regs[3] == 0x7AB
        assert mem.data[0x100:0x104] == (0x7AB).to_bytes(4, "little")

    def test_byte_access(self):
        sim, _, cpu, mem = make_platform(
            """
            ldi r1, 0x200
            ldi r2, 0x1FF
            stb r1, r2, 0
            ldb r3, r1, 0
            halt
            """
        )
        sim.run()
        assert cpu.regs[3] == 0xFF

    def test_loop_sums_first_n(self):
        sim, _, cpu, _ = make_platform(
            """
                ldi r1, 0      ; acc
                ldi r2, 10     ; n
            loop:
                add r1, r1, r2
                addi r2, r2, -1
                bne r2, r0, loop
                halt
            """
        )
        sim.run()
        assert cpu.regs[1] == sum(range(1, 11))

    def test_signed_branch(self):
        sim, _, cpu, _ = make_platform(
            """
                ldi r1, -5
                ldi r2, 3
                blt r1, r2, neg
                ldi r3, 0
                halt
            neg:
                ldi r3, 1
                halt
            """
        )
        sim.run()
        assert cpu.regs[3] == 1

    def test_jal_and_jr_subroutine(self):
        sim, _, cpu, _ = make_platform(
            """
                ldi r1, 4
                jal r14, double
                mov r5, r2
                halt
            double:
                add r2, r1, r1
                jr r14
            """
        )
        sim.run()
        assert cpu.regs[5] == 8

    def test_lui_builds_large_constant(self):
        sim, _, cpu, _ = make_platform(
            """
            lui r1, 0x12
            ori r1, r1, 0x345
            halt
            """
        )
        sim.run()
        assert cpu.regs[1] == (0x12 << 12) | 0x345

    def test_time_advances_with_execution(self):
        sim, _, cpu, _ = make_platform("nop\nnop\nnop\nhalt")
        sim.run()
        assert sim.now > 0
        assert cpu.instructions_retired == 4

    def test_illegal_instruction_halts_without_vector(self):
        sim, top, cpu, mem = make_platform("nop\nhalt")
        mem.load(4, (0xEE000000).to_bytes(4, "little"))  # overwrite halt
        sim.run()
        assert cpu.halted
        assert cpu.trap_cause == "illegal_instruction"

    def test_trap_vector_runs_handler(self):
        source = """
                jmp main
            handler:
                ldi r9, 0x77
                halt
            main:
                .word 0xEE000000   ; illegal instruction
                halt
            """
        sim, _, cpu, _ = make_platform(source, trap_vector=4)
        sim.run()
        assert cpu.regs[9] == 0x77
        assert cpu.trap_count == 1

    def test_bus_error_traps(self):
        sim, _, cpu, _ = make_platform(
            """
            lui r1, 0xFF       ; way outside mapped memory
            ld  r2, r1, 0
            halt
            """
        )
        sim.run()
        assert cpu.trap_cause == "load_bus_error"

    def test_instruction_budget_stops_runaway(self):
        sim, _, cpu, _ = make_platform(
            "loop: jmp loop", max_instructions=100
        )
        sim.run()
        assert cpu.halted
        assert cpu.trap_cause == "instruction_budget"
        assert cpu.instructions_retired <= 101

    def test_register_injection_point(self):
        sim, _, cpu, _ = make_platform(
            """
            ldi r1, 1
            halt
            """
        )
        point = cpu.injection_points["arch"]
        sim.run()
        point.flip_reg(1, 4)
        assert cpu.regs[1] == 1 | 0x10
        point.flip_reg(0, 3)  # r0 immune
        assert cpu.regs[0] == 0

    def test_csrr_reads_instruction_count(self):
        sim, _, cpu, _ = make_platform(
            """
            nop
            nop
            csrr r1, 0
            halt
            """
        )
        sim.run()
        assert cpu.regs[1] == 2

    def test_quantum_affects_sync_count_not_result(self):
        def run(quantum):
            # Via the scoped global quantum rather than the per-CPU
            # kwarg: the CPU's quantum keeper defaults to the global
            # value, and scoped() guarantees no leak into later tests.
            with GlobalQuantum.scoped(quantum):
                sim, _, cpu, _ = make_platform(
                    """
                        ldi r1, 0
                        ldi r2, 50
                    loop:
                        add r1, r1, r2
                        addi r2, r2, -1
                        bne r2, r0, loop
                        halt
                    """,
                )
                sim.run()
            return cpu.regs[1], cpu.qk.sync_count

        result_small, syncs_small = run(10)
        result_large, syncs_large = run(100000)
        assert result_small == result_large == sum(range(1, 51))
        assert syncs_large < syncs_small
