"""Unit tests for plain and ECC memories."""

import pytest

from repro.hw import EccMemory, Memory
from repro.kernel import Module, Simulator
from repro.tlm import GenericPayload, Response


@pytest.fixture
def top():
    return Module("top", sim=Simulator())


class TestMemory:
    def test_write_then_read(self, top):
        mem = Memory("mem", parent=top, size=64)
        write = GenericPayload.write(8, b"\x01\x02\x03\x04")
        mem.tsock.deliver(write, 0)
        assert write.ok
        read = GenericPayload.read(8, 4)
        mem.tsock.deliver(read, 0)
        assert read.data == bytearray(b"\x01\x02\x03\x04")

    def test_out_of_bounds_errors(self, top):
        mem = Memory("mem", parent=top, size=16)
        payload = GenericPayload.read(14, 4)
        mem.tsock.deliver(payload, 0)
        assert payload.response is Response.ADDRESS_ERROR

    def test_byte_enable_masks_write(self, top):
        mem = Memory("mem", parent=top, size=16)
        mem.load(0, b"\xFF\xFF\xFF\xFF")
        payload = GenericPayload.write(0, b"\x00\x00\x00\x00")
        payload.byte_enable = bytes([1, 0, 1, 0])
        mem.tsock.deliver(payload, 0)
        assert mem.data[:4] == bytearray(b"\x00\xFF\x00\xFF")

    def test_load_bounds_checked(self, top):
        mem = Memory("mem", parent=top, size=4)
        with pytest.raises(ValueError):
            mem.load(2, b"\x00\x00\x00")

    def test_injection_point_flip(self, top):
        mem = Memory("mem", parent=top, size=8)
        mem.load(0, b"\x00")
        point = mem.injection_points["array"]
        point.flip(0, 3)
        assert mem.data[0] == 0x08
        point.flip(0, 3)
        assert mem.data[0] == 0x00

    def test_injection_point_peek_poke(self, top):
        mem = Memory("mem", parent=top, size=8)
        point = mem.injection_points["array"]
        point.poke(5, 0xAB)
        assert point.peek(5) == 0xAB

    def test_zero_size_rejected(self, top):
        with pytest.raises(ValueError):
            Memory("bad", parent=top, size=0)

    def test_counters(self, top):
        mem = Memory("mem", parent=top, size=16)
        mem.tsock.deliver(GenericPayload.write(0, b"\x00" * 4), 0)
        mem.tsock.deliver(GenericPayload.read(0, 4), 0)
        mem.tsock.deliver(GenericPayload.read(0, 4), 0)
        assert (mem.reads, mem.writes) == (2, 1)


class TestEccMemory:
    def test_round_trip(self, top):
        mem = EccMemory("ecc", parent=top, size=32)
        mem.tsock.deliver(GenericPayload.write(0, b"\xDE\xAD"), 0)
        read = GenericPayload.read(0, 2)
        mem.tsock.deliver(read, 0)
        assert read.data == bytearray(b"\xDE\xAD")

    def test_single_bit_flip_corrected_and_scrubbed(self, top):
        mem = EccMemory("ecc", parent=top, size=32)
        mem.load(0, b"\x5A")
        mem.injection_points["codewords"].flip(0, 2)
        read = GenericPayload.read(0, 1)
        mem.tsock.deliver(read, 0)
        assert read.ok
        assert read.data[0] == 0x5A
        assert mem.corrected_errors == 1
        # Scrubbing repaired the stored codeword: next read is clean.
        read2 = GenericPayload.read(0, 1)
        mem.tsock.deliver(read2, 0)
        assert mem.corrected_errors == 1

    def test_double_bit_flip_detected(self, top):
        mem = EccMemory("ecc", parent=top, size=32)
        mem.load(0, b"\x5A")
        point = mem.injection_points["codewords"]
        point.flip(0, 1)
        point.flip(0, 7)
        read = GenericPayload.read(0, 1)
        mem.tsock.deliver(read, 0)
        assert read.response is Response.GENERIC_ERROR
        assert mem.detected_errors == 1

    def test_triple_flip_can_escape_silently(self, top):
        # SEC-DED cannot see all triple faults: find one that aliases to
        # a "correctable" word and returns wrong data with OK status.
        escapes = 0
        for bits in [(0, 1, 2), (0, 1, 3), (1, 2, 4), (3, 5, 7)]:
            mem = EccMemory("ecc", parent=top, size=4)
            mem.load(0, b"\x77")
            point = mem.injection_points["codewords"]
            for bit in bits:
                point.flip(0, bit)
            read = GenericPayload.read(0, 1)
            mem.tsock.deliver(read, 0)
            if read.ok and read.data[0] != 0x77:
                escapes += 1
        assert escapes > 0  # silent data corruption is possible

    def test_write_clears_injected_fault(self, top):
        mem = EccMemory("ecc", parent=top, size=4)
        mem.injection_points["codewords"].flip(0, 5)
        mem.tsock.deliver(GenericPayload.write(0, b"\x11"), 0)
        read = GenericPayload.read(0, 1)
        mem.tsock.deliver(read, 0)
        assert read.data[0] == 0x11
        assert mem.corrected_errors == 0

    def test_out_of_bounds(self, top):
        mem = EccMemory("ecc", parent=top, size=4)
        payload = GenericPayload.read(4, 1)
        mem.tsock.deliver(payload, 0)
        assert payload.response is Response.ADDRESS_ERROR

    def test_peek_decodes(self, top):
        mem = EccMemory("ecc", parent=top, size=4)
        mem.load(2, b"\x3C")
        assert mem.injection_points["codewords"].peek(2) == 0x3C
