"""Unit and property-based tests for the ECC/CRC primitives."""

import pytest
from hypothesis import given, strategies as st

from repro.hw import ecc


class TestHammingBasics:
    def test_round_trip_no_error(self):
        for byte in (0x00, 0x01, 0x55, 0xAA, 0xFF):
            word = ecc.hamming_encode(byte)
            result = ecc.hamming_decode(word)
            assert result.data == byte
            assert not result.corrected
            assert not result.uncorrectable

    def test_encode_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            ecc.hamming_encode(256)
        with pytest.raises(ValueError):
            ecc.hamming_encode(-1)

    def test_decode_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            ecc.hamming_decode(1 << 13)


class TestHammingProperties:
    @given(st.integers(0, 255))
    def test_round_trip(self, byte):
        assert ecc.hamming_decode(ecc.hamming_encode(byte)).data == byte

    @given(st.integers(0, 255), st.integers(0, 12))
    def test_single_flip_corrected(self, byte, bit):
        word = ecc.hamming_encode(byte) ^ (1 << bit)
        result = ecc.hamming_decode(word)
        assert result.data == byte
        assert result.corrected
        assert not result.uncorrectable

    @given(
        st.integers(0, 255),
        st.integers(0, 12),
        st.integers(0, 12),
    )
    def test_double_flip_detected(self, byte, bit_a, bit_b):
        if bit_a == bit_b:
            return  # flips cancel; nothing to detect
        word = ecc.hamming_encode(byte) ^ (1 << bit_a) ^ (1 << bit_b)
        result = ecc.hamming_decode(word)
        assert result.uncorrectable

    @given(st.integers(0, 255))
    def test_codewords_have_min_distance_related_uniqueness(self, byte):
        # Two different data bytes never share a codeword.
        word = ecc.hamming_encode(byte)
        other = (byte + 1) & 0xFF
        assert ecc.hamming_encode(other) != word


class TestParity:
    def test_even_parity(self):
        assert ecc.parity_bit(0b0000) == 0
        assert ecc.parity_bit(0b0001) == 1
        assert ecc.parity_bit(0b0011) == 0
        assert ecc.parity_bit(0xFF) == 0

    @given(st.integers(0, 2**16 - 1), st.integers(0, 15))
    def test_flip_changes_parity(self, value, bit):
        before = ecc.parity_bit(value, width=16)
        after = ecc.parity_bit(value ^ (1 << bit), width=16)
        assert before != after


class TestCrc15:
    def test_empty_sequence(self):
        assert ecc.crc15([]) == 0

    def test_known_nonzero(self):
        assert ecc.crc15([1]) == 0x4599

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=64))
    def test_deterministic(self, bits):
        assert ecc.crc15(bits) == ecc.crc15(bits)

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=64), st.data())
    def test_single_bit_flip_detected(self, bits, data):
        index = data.draw(st.integers(0, len(bits) - 1))
        flipped = list(bits)
        flipped[index] ^= 1
        assert ecc.crc15(bits) != ecc.crc15(flipped)

    def test_fits_in_15_bits(self):
        for pattern in ([1] * 64, [0, 1] * 32, [1, 0, 0, 1] * 16):
            assert 0 <= ecc.crc15(pattern) < (1 << 15)


class TestCrc8:
    def test_deterministic_and_8bit(self):
        value = ecc.crc8(b"\x01\x02\x03")
        assert value == ecc.crc8(b"\x01\x02\x03")
        assert 0 <= value <= 0xFF

    @given(st.binary(min_size=1, max_size=32), st.data())
    def test_byte_corruption_detected(self, payload, data):
        index = data.draw(st.integers(0, len(payload) - 1))
        bit = data.draw(st.integers(0, 7))
        corrupted = bytearray(payload)
        corrupted[index] ^= 1 << bit
        assert ecc.crc8(payload) != ecc.crc8(corrupted)


class TestHammingTables:
    """The table-driven fast path vs. the bitwise reference.

    ``hamming_encode``/``hamming_decode`` answer from precomputed
    lookup tables (they sit on the campaign hot path — one decode per
    ECC-protected read); the bitwise implementations survive as
    ``_hamming_encode_ref``/``_hamming_decode_ref``.  The spaces are
    small enough to check *exhaustively*, so no table entry can drift
    from the reference semantics unnoticed.
    """

    def test_encode_table_matches_reference_exhaustively(self):
        for byte in range(256):
            assert ecc.hamming_encode(byte) == ecc._hamming_encode_ref(byte)

    def test_decode_table_matches_reference_exhaustively(self):
        for word in range(1 << ecc._TOTAL_BITS):
            assert ecc.hamming_decode(word) == ecc._hamming_decode_ref(word)

    def test_tables_are_built_once(self):
        ecc.hamming_encode(0)
        ecc.hamming_decode(0)
        assert ecc._ENCODE_TABLE is ecc._encode_table()
        assert ecc._DECODE_TABLE is ecc._decode_table()
