"""Unit tests for the CAN bus model."""

import pytest
from hypothesis import given, strategies as st

from repro.hw import CanBus, CanFrame, CanNode
from repro.kernel import Module, Simulator


@pytest.fixture
def net():
    sim = Simulator()
    top = Module("top", sim=sim)
    bus = CanBus("can0", parent=top, bit_time=100)
    node_a = CanNode("nodeA", parent=top, bus=bus)
    node_b = CanNode("nodeB", parent=top, bus=bus)
    node_c = CanNode("nodeC", parent=top, bus=bus)
    return sim, bus, node_a, node_b, node_c


class TestFrame:
    def test_rejects_wide_id(self):
        with pytest.raises(ValueError):
            CanFrame(0x800, b"")

    def test_rejects_long_payload(self):
        with pytest.raises(ValueError):
            CanFrame(0x100, b"\x00" * 9)

    def test_crc_computed_on_construction(self):
        frame = CanFrame(0x123, b"\x01\x02")
        assert frame.crc_ok

    def test_payload_corruption_breaks_crc(self):
        frame = CanFrame(0x123, b"\x01\x02")
        frame.data[0] ^= 0x10
        assert not frame.crc_ok
        frame.refresh_crc()
        assert frame.crc_ok

    @given(st.integers(0, 0x7FF), st.binary(max_size=8))
    def test_bit_length_grows_with_payload(self, can_id, payload):
        frame = CanFrame(can_id, payload)
        assert frame.bit_length == 45 + 8 * len(payload)

    def test_clone_independent(self):
        frame = CanFrame(0x10, b"\xAA")
        copy = frame.clone()
        copy.data[0] = 0
        assert frame.data[0] == 0xAA


class TestDelivery:
    def test_frame_reaches_all_other_nodes(self, net):
        sim, bus, a, b, c = net
        a.send(CanFrame(0x100, b"\x01"))
        sim.run(until=100_000)
        assert len(b.rx_queue) == 1
        assert len(c.rx_queue) == 1
        assert len(a.rx_queue) == 0  # transmitter doesn't loop back
        assert bus.frames_delivered == 1

    def test_transmission_takes_bus_time(self, net):
        sim, bus, a, b, _ = net
        a.send(CanFrame(0x100, b"\x01\x02\x03\x04"))
        sim.run(until=1_000_000)
        frame = b.rx_queue[0]
        assert frame.timestamp == frame.bit_length * bus.bit_time

    def test_id_filter(self, net):
        sim, bus, a, b, c = net
        c.accept = lambda can_id: can_id < 0x200
        a.send(CanFrame(0x300, b"\x01"))
        a.send(CanFrame(0x100, b"\x02"))
        sim.run(until=1_000_000)
        assert len(b.rx_queue) == 2
        assert len(c.rx_queue) == 1
        assert c.rx_queue[0].can_id == 0x100

    def test_receive_callbacks_invoked(self, net):
        sim, _, a, b, _ = net
        seen = []
        b.on_receive.append(lambda f: seen.append(f.can_id))
        a.send(CanFrame(0x42, b""))
        sim.run(until=100_000)
        assert seen == [0x42]


class TestArbitration:
    def test_lowest_id_wins(self, net):
        sim, bus, a, b, c = net
        a.send(CanFrame(0x300, b"\x0A"))
        b.send(CanFrame(0x100, b"\x0B"))
        sim.run(until=1_000_000)
        # Node C sees the low-ID frame first.
        assert [f.can_id for f in c.rx_queue] == [0x100, 0x300]

    def test_back_to_back_from_one_node_keeps_order(self, net):
        sim, _, a, b, _ = net
        a.send(CanFrame(0x100, b"\x01"))
        a.send(CanFrame(0x100, b"\x02"))
        sim.run(until=1_000_000)
        assert [f.data[0] for f in b.rx_queue] == [1, 2]


class TestFaultHandling:
    def test_corrupted_frame_detected_and_retransmitted(self, net):
        sim, bus, a, b, _ = net
        hits = {"n": 0}

        def corrupt_once(frame):
            if hits["n"] == 0:
                hits["n"] += 1
                frame.data[0] ^= 0xFF  # CRC not refreshed -> detectable
            return frame

        bus.wire_interceptors.append(corrupt_once)
        a.send(CanFrame(0x100, b"\x55"))
        sim.run(until=1_000_000)
        assert bus.crc_errors_detected == 1
        assert bus.retransmissions == 1
        assert len(b.rx_queue) == 1
        assert b.rx_queue[0].data[0] == 0x55  # clean copy arrived

    def test_forged_crc_slips_through(self, net):
        sim, bus, a, b, _ = net

        def corrupt_and_forge(frame):
            frame.data[0] ^= 0xFF
            frame.refresh_crc()  # the undetectable corruption case
            return frame

        bus.wire_interceptors.append(corrupt_and_forge)
        a.send(CanFrame(0x100, b"\x55"))
        sim.run(until=1_000_000)
        assert bus.crc_errors_detected == 0
        assert b.rx_queue[0].data[0] == 0xAA

    def test_dropped_frame_retried_then_given_up(self, net):
        sim, bus, a, b, _ = net
        bus.wire_interceptors.append(lambda frame: None)  # open wire
        a.send(CanFrame(0x100, b"\x55"))
        sim.run(until=10_000_000)
        assert len(b.rx_queue) == 0
        assert bus.frames_dropped == bus.max_retries + 1
        assert not a.tx_queue

    def test_persistent_errors_drive_bus_off(self, net):
        sim, bus, a, b, _ = net
        bus.wire_interceptors.append(lambda frame: None)
        for _ in range(40):
            a.send(CanFrame(0x100, b"\x55"))
        sim.run(until=200_000_000)
        assert a.bus_off
        assert not a.tx_queue
        # A bus-off node refuses new work.
        a.send(CanFrame(0x101, b"\x01"))
        assert not a.tx_queue

    def test_injection_point_interface(self, net):
        sim, bus, a, b, _ = net
        point = bus.injection_points["wire"]
        assert point.kind == "can_wire"
        fn = lambda frame: frame
        point.add_interceptor(fn)
        assert bus.wire_interceptors == [fn]
        point.remove_interceptor(fn)
        assert bus.wire_interceptors == []
