"""Integration tests for the packaged demo platforms."""

import pytest

from repro.core import (
    Campaign,
    ErrorScenario,
    Outcome,
    PlannedInjection,
)
from repro.faults import (
    FaultDescriptor,
    FaultKind,
    Persistence,
    RECOVERY_OVERHEAD,
)
from repro.kernel import Simulator, simtime
from repro.platforms import acc, airbag, steering


STUCK_HIGH = FaultDescriptor(
    name="sensor_stuck_high",
    kind=FaultKind.STUCK_VALUE,
    persistence=Persistence.PERMANENT,
    params={"value": 4.5},
    rate_per_hour=1e-7,
)


class TestAirbagPlatform:
    def test_normal_operation_never_fires(self):
        sim = Simulator()
        platform = airbag.build_normal_operation(sim)
        sim.run(until=simtime.ms(200))
        assert not platform.squib.fired
        assert platform.watchdog.timeouts == 0
        assert platform.ecu.cycles >= 190

    def test_crash_scenario_fires_promptly(self):
        sim = Simulator()
        platform = airbag.build_crash_scenario(sim)
        sim.run(until=simtime.ms(200))
        assert platform.squib.fired
        # Crash at 50 ms; debounce is 3 samples of 1 ms.
        assert simtime.ms(50) < platform.squib.fire_time < simtime.ms(70)

    def test_g1_campaign_single_sensor_fault_detected(self):
        campaign = Campaign(
            platform_factory=airbag.build_normal_operation,
            observe=airbag.observe,
            classifier=airbag.normal_operation_classifier(),
            duration=simtime.ms(100),
        )
        scenario = ErrorScenario(
            "one-high",
            [PlannedInjection(simtime.ms(10), "caps.sensor_a.frontend", STUCK_HIGH)],
        )
        outcome, *_ = campaign.execute_scenario(scenario, run_seed=0)
        assert outcome is Outcome.DETECTED_SAFE

    def test_g1_campaign_double_sensor_fault_is_hazard(self):
        campaign = Campaign(
            platform_factory=airbag.build_normal_operation,
            observe=airbag.observe,
            classifier=airbag.normal_operation_classifier(),
            duration=simtime.ms(100),
        )
        scenario = ErrorScenario(
            "both-high",
            [
                PlannedInjection(
                    simtime.ms(10), "caps.sensor_a.frontend", STUCK_HIGH
                ),
                PlannedInjection(
                    simtime.ms(10), "caps.sensor_b.frontend", STUCK_HIGH
                ),
            ],
        )
        outcome, labels, obs, _ = campaign.execute_scenario(scenario, run_seed=0)
        assert outcome is Outcome.HAZARDOUS
        assert obs["squib_fired"]

    def test_g2_campaign_sensor_open_misses_deployment(self):
        from repro.faults import SENSOR_OPEN_LOAD

        campaign = Campaign(
            platform_factory=airbag.build_crash_scenario,
            observe=airbag.observe,
            classifier=airbag.crash_classifier(deploy_deadline=simtime.ms(10)),
            duration=simtime.ms(150),
        )
        scenario = ErrorScenario(
            "open-sensor",
            [
                PlannedInjection(
                    simtime.ms(10), "caps.sensor_a.frontend", SENSOR_OPEN_LOAD
                )
            ],
        )
        outcome, labels, obs, _ = campaign.execute_scenario(scenario, run_seed=0)
        # One dead channel: plausibility rejects everything, no deploy.
        assert outcome is Outcome.HAZARDOUS
        assert not obs["squib_fired"]


class TestAccPlatform:
    def test_golden_run_brakes_hard(self):
        sim = Simulator()
        platform = acc.build_acc(sim)
        sim.run(until=acc.DEFAULT_DURATION)
        observation = acc.observe(platform)
        assert observation["braked_hard"]
        assert observation["deadline_misses"] == 0
        assert observation["crc_rejects"] == 0

    def test_recovery_overhead_delays_but_value_correct(self):
        campaign = Campaign(
            platform_factory=acc.build_acc,
            observe=acc.observe,
            classifier=acc.acc_classifier(),
            duration=acc.DEFAULT_DURATION,
        )
        # Pile retry overhead onto the control task repeatedly.
        injections = [
            PlannedInjection(
                simtime.ms(40 + 20 * i),
                "acc.actuator_ecu.os.sched",
                RECOVERY_OVERHEAD.with_params(
                    task="control", extra=simtime.ms(18)
                ),
            )
            for i in range(10)
        ]
        outcome, labels, obs, _ = campaign.execute_scenario(
            ErrorScenario("overheads", injections), run_seed=0
        )
        assert outcome is Outcome.TIMING_FAILURE
        assert obs["deadline_misses"] > 0

    def test_can_corruption_masked_by_retransmission(self):
        from repro.faults import CAN_BIT_CORRUPTION

        campaign = Campaign(
            platform_factory=acc.build_acc,
            observe=acc.observe,
            classifier=acc.acc_classifier(),
            duration=acc.DEFAULT_DURATION,
        )
        scenario = ErrorScenario(
            "wire-hit",
            [
                PlannedInjection(
                    simtime.ms(100), "acc.can0.wire", CAN_BIT_CORRUPTION
                )
            ],
        )
        outcome, labels, obs, _ = campaign.execute_scenario(scenario, run_seed=3)
        assert outcome is Outcome.MASKED
        assert obs["bus_retransmissions"] >= 1

    def test_radar_stuck_far_prevents_braking(self):
        stuck_far = FaultDescriptor(
            name="radar_stuck_far",
            kind=FaultKind.STUCK_VALUE,
            persistence=Persistence.PERMANENT,
            params={"value": 110.0},
        )
        campaign = Campaign(
            platform_factory=acc.build_acc,
            observe=acc.observe,
            classifier=acc.acc_classifier(),
            duration=acc.DEFAULT_DURATION,
        )
        scenario = ErrorScenario(
            "blind-radar",
            [
                PlannedInjection(
                    simtime.ms(10),
                    "acc.sensor_ecu.radar.frontend",
                    stuck_far,
                )
            ],
        )
        outcome, labels, obs, _ = campaign.execute_scenario(scenario, run_seed=0)
        assert outcome is Outcome.HAZARDOUS
        assert not obs["braked_hard"]


class TestSteeringPlatform:
    def test_golden_tracks_command(self):
        sim = Simulator()
        platform = steering.build_steering()(sim)
        sim.run(until=steering.DEFAULT_DURATION)
        observation = steering.observe(platform)
        assert not observation["large_error"]
        assert observation["detected"] == 0

    def test_curbstone_state_stalls_servo(self):
        from repro.mission import standard_passenger_car_profile

        profile = standard_passenger_car_profile()
        state = profile.state("curbstone_steering")
        sim = Simulator()
        platform = steering.build_steering(state)(sim)
        sim.run(until=steering.DEFAULT_DURATION)
        # Load 15 > stall_load 10: the servo stalls and flags
        # overcurrent, the controller degrades.
        observation = steering.observe(platform)
        assert observation["overcurrent"]
        assert observation["detected"] > 0

    def test_position_sensor_stuck_is_detected(self):
        stuck = FaultDescriptor(
            name="position_stuck",
            kind=FaultKind.STUCK_VALUE,
            persistence=Persistence.PERMANENT,
            params={"value": 2.5},
        )
        campaign = Campaign(
            platform_factory=steering.build_steering(),
            observe=steering.observe,
            classifier=steering.steering_classifier(),
            duration=steering.DEFAULT_DURATION,
        )
        scenario = ErrorScenario(
            "stuck-position",
            [
                PlannedInjection(
                    simtime.ms(50), "eps.position.frontend", stuck
                )
            ],
        )
        outcome, labels, obs, _ = campaign.execute_scenario(scenario, run_seed=0)
        # A stuck-at-center sensor mid-maneuver: the control loop keeps
        # integrating (stuck value passes the rate check), so either the
        # rate checker caught the onset (detected) or tracking degrades.
        assert outcome in (
            Outcome.DETECTED_SAFE, Outcome.SDC, Outcome.HAZARDOUS,
        )
