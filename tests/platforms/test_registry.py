"""The cross-process platform factory registry."""

import pytest

from repro.kernel import Simulator
from repro.platforms import (
    airbag,
    available_platforms,
    get_classifier,
    get_platform,
    register_platform,
)
from repro.platforms import registry as registry_module


class TestBuiltins:
    def test_builtin_prototypes_registered(self):
        names = available_platforms()
        for expected in ("airbag-normal", "airbag-crash", "acc", "steering"):
            assert expected in names

    def test_bundle_resolves_to_module_functions(self):
        bundle = get_platform("airbag-normal")
        assert bundle.factory is airbag.build_normal_operation
        assert bundle.observe is airbag.observe
        assert bundle.description

    def test_every_builtin_bundle_is_buildable(self):
        for name in ("airbag-normal", "airbag-crash", "acc", "steering"):
            bundle = get_platform(name)
            sim = Simulator()
            root = bundle.factory(sim)
            assert root.all_injection_points()
            classifier = bundle.classifier_factory()
            assert classifier._rules

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(KeyError, match="airbag-normal"):
            get_platform("nope")


class TestRegistration:
    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_platform(
                "airbag-normal", airbag.build_normal_operation,
                airbag.observe, airbag.normal_operation_classifier,
            )

    def test_replace_allows_override(self):
        original = get_platform("airbag-normal")
        try:
            register_platform(
                "airbag-normal", airbag.build_normal_operation,
                airbag.observe, airbag.normal_operation_classifier,
                description="override", replace=True,
            )
            assert get_platform("airbag-normal").description == "override"
        finally:
            register_platform(
                *original, replace=True
            )

    def test_classifier_cached_per_process(self):
        first = get_classifier("airbag-normal")
        assert get_classifier("airbag-normal") is first
        assert registry_module._CLASSIFIERS["airbag-normal"] is first
