"""Unit tests for campaign statistics."""

import math
import random

import pytest

from repro.stats import (
    WeightedRateEstimator,
    clopper_pearson,
    failure_rate_per_hour,
    required_runs,
    rule_of_three,
    wilson,
)


class TestClopperPearson:
    def test_zero_successes_lower_bound_zero(self):
        interval = clopper_pearson(0, 100)
        assert interval.low == 0.0
        assert 0.0 < interval.high < 0.05

    def test_all_successes_upper_bound_one(self):
        interval = clopper_pearson(100, 100)
        assert interval.high == 1.0
        assert interval.low > 0.95

    def test_contains_true_proportion_mostly(self):
        rng = random.Random(0)
        p = 0.3
        hits = 0
        for _ in range(100):
            successes = sum(rng.random() < p for _ in range(200))
            interval = clopper_pearson(successes, 200)
            if interval.low <= p <= interval.high:
                hits += 1
        assert hits >= 90  # exact CI: coverage >= nominal

    def test_narrows_with_more_trials(self):
        wide = clopper_pearson(5, 50)
        narrow = clopper_pearson(100, 1000)
        assert (narrow.high - narrow.low) < (wide.high - wide.low)

    def test_validation(self):
        with pytest.raises(ValueError):
            clopper_pearson(1, 0)
        with pytest.raises(ValueError):
            clopper_pearson(5, 3)
        with pytest.raises(ValueError):
            clopper_pearson(1, 10, confidence=1.5)


class TestWilson:
    def test_bounds_stay_in_unit_interval(self):
        for successes in (0, 1, 50, 99, 100):
            interval = wilson(successes, 100)
            assert 0.0 <= interval.low <= interval.high <= 1.0

    def test_zero_successes_has_nonzero_upper_bound(self):
        interval = wilson(0, 100)
        assert interval.low == 0.0
        assert 0.0 < interval.high < 0.05

    def test_contains_point_estimate(self):
        interval = wilson(30, 200)
        assert interval.low < 30 / 200 < interval.high

    def test_tighter_than_clopper_pearson_on_average(self):
        # Wilson is approximate but less conservative; for a mid-range
        # proportion its interval is narrower than the exact one.
        exact = clopper_pearson(30, 200)
        score = wilson(30, 200)
        assert (score.high - score.low) < (exact.high - exact.low)

    def test_narrows_with_more_trials(self):
        wide = wilson(5, 50)
        narrow = wilson(100, 1000)
        assert (narrow.high - narrow.low) < (wide.high - wide.low)

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson(1, 0)
        with pytest.raises(ValueError):
            wilson(5, 3)
        with pytest.raises(ValueError):
            wilson(1, 10, confidence=0.0)


class TestRuleOfThree:
    def test_matches_classic_3_over_n(self):
        assert rule_of_three(1000) == pytest.approx(3.0 / 1000, rel=0.01)

    def test_consistent_with_clopper_pearson(self):
        # The rule of three is a one-sided 95% bound, i.e. the upper
        # end of a two-sided 90% Clopper-Pearson interval.
        n = 500
        assert rule_of_three(n) == pytest.approx(
            clopper_pearson(0, n, confidence=0.90).high, rel=0.05
        )


class TestRequiredRuns:
    def test_rare_events_need_many_runs(self):
        assert required_runs(1e-6) > 2_900_000

    def test_common_events_need_few(self):
        assert required_runs(0.5) == 5  # (1-0.5)^5 < 0.05

    def test_monotone_in_probability(self):
        assert required_runs(1e-4) > required_runs(1e-2) > required_runs(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            required_runs(0.0)
        with pytest.raises(ValueError):
            required_runs(0.5, confidence=0.0)


class TestWeightedEstimator:
    def test_unweighted_matches_frequency(self):
        estimator = WeightedRateEstimator()
        for failed in [True, False, False, False]:
            estimator.record(1.0, failed)
        assert estimator.estimate == pytest.approx(0.25)

    def test_importance_weights_correct_bias(self):
        # Boosted sampling: rare class sampled 10x more often, weight
        # 0.1; the weighted estimate must recover the true mixture.
        estimator = WeightedRateEstimator()
        # 50 boosted samples (true share would be 5), all failing.
        for _ in range(50):
            estimator.record(0.1, True)
        # 50 normal samples, none failing.
        for _ in range(50):
            estimator.record(1.0, False)
        # True failure probability: 5 fail / 55 effective = 1/11.
        assert estimator.estimate == pytest.approx(1 / 11)

    def test_interval_contains_estimate(self):
        estimator = WeightedRateEstimator()
        rng = random.Random(1)
        for _ in range(500):
            estimator.record(1.0, rng.random() < 0.2)
        interval = estimator.interval()
        assert interval.low <= estimator.estimate <= interval.high
        assert interval.high - interval.low < 0.15

    def test_empty_estimator_raises(self):
        with pytest.raises(ValueError):
            _ = WeightedRateEstimator().estimate

    def test_bad_weight_rejected(self):
        with pytest.raises(ValueError):
            WeightedRateEstimator().record(0.0, True)


class TestRateConversion:
    def test_rate_per_hour(self):
        assert failure_rate_per_hour(0.01, 0.001) == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            failure_rate_per_hour(0.1, 0.0)
