"""Integration tests: the full Fig. 3 campaign loop on the airbag rig."""

import pytest

from repro.core import (
    Campaign,
    CoverageGuidedStrategy,
    ErrorScenario,
    FaultSpace,
    FaultSpaceCoverage,
    Outcome,
    PlannedInjection,
    RandomStrategy,
    WeakSpotStrategy,
    fmeda_from_campaign,
    hazard_cut_sets,
    summarize,
    synthesize_fault_tree,
)
from repro.faults import (
    FaultDescriptor,
    FaultKind,
    Persistence,
    SENSOR_STUCK,
    SRAM_SEU,
)
from repro.kernel import Simulator

from .conftest import build_airbag_platform, observe_airbag

STUCK_HIGH = FaultDescriptor(
    name="sensor_stuck_high",
    kind=FaultKind.STUCK_VALUE,
    persistence=Persistence.PERMANENT,
    params={"value": 4.9},
    rate_per_hour=1e-7,
)

SEU = SRAM_SEU.with_rate(1e-6)


def make_space(duration=20_000_000):
    sim = Simulator()
    root = build_airbag_platform(sim)
    return FaultSpace(
        root,
        [SEU, STUCK_HIGH],
        window_start=1_000_000,
        window_end=duration // 2,
        time_bins=2,
    )


class TestGoldenRun:
    def test_golden_is_quiet(self, airbag_campaign):
        golden = observe_airbag.__call__  # readability only
        observation = airbag_campaign.golden()
        assert observation["squib_fired"] is False
        assert observation["detected"] == 0
        assert observation["ecc_corrected"] == 0
        assert observation["cycles"] > 0

    def test_golden_cached(self, airbag_campaign):
        first = airbag_campaign.golden()
        assert airbag_campaign.golden() is first


class TestScenarioExecution:
    def test_single_ecc_bit_flip_is_masked(self, airbag_campaign):
        scenario = ErrorScenario(
            "flip",
            [
                PlannedInjection(
                    2_000_000, "plat.params.codewords",
                    SEU.with_params(address=0, bit=3),
                )
            ],
        )
        outcome, labels, obs, applied = airbag_campaign.execute_scenario(
            scenario, run_seed=1
        )
        assert applied == 1
        assert outcome is Outcome.MASKED
        assert obs["ecc_corrected"] >= 1

    def test_double_ecc_flip_is_detected(self, airbag_campaign):
        scenario = ErrorScenario(
            "double-flip",
            [
                PlannedInjection(
                    2_000_000, "plat.params.codewords",
                    SEU.with_params(address=0, bit=3),
                ),
                PlannedInjection(
                    2_000_000, "plat.params.codewords",
                    SEU.with_params(address=0, bit=7),
                ),
            ],
        )
        outcome, labels, obs, _ = airbag_campaign.execute_scenario(
            scenario, run_seed=1
        )
        assert outcome is Outcome.DETECTED_SAFE
        assert obs["detected"] >= 1

    def test_single_stuck_sensor_is_detected_not_hazardous(
        self, airbag_campaign
    ):
        scenario = ErrorScenario(
            "one-high",
            [
                PlannedInjection(
                    2_000_000, "plat.sensor_a.frontend", STUCK_HIGH
                )
            ],
        )
        outcome, *_ = airbag_campaign.execute_scenario(scenario, run_seed=1)
        assert outcome is Outcome.DETECTED_SAFE

    def test_double_stuck_sensors_fire_the_airbag(self, airbag_campaign):
        scenario = ErrorScenario(
            "both-high",
            [
                PlannedInjection(
                    2_000_000, "plat.sensor_a.frontend", STUCK_HIGH
                ),
                PlannedInjection(
                    2_000_000, "plat.sensor_b.frontend", STUCK_HIGH
                ),
            ],
        )
        outcome, labels, obs, _ = airbag_campaign.execute_scenario(
            scenario, run_seed=1
        )
        assert outcome is Outcome.HAZARDOUS
        assert obs["squib_fired"] is True

    def test_unknown_target_raises(self, airbag_campaign):
        scenario = ErrorScenario(
            "ghost", [PlannedInjection(0, "plat.nothing", SEU)]
        )
        with pytest.raises(KeyError):
            airbag_campaign.execute_scenario(scenario, run_seed=1)


class TestCampaignLoop:
    def test_random_campaign_runs_and_is_reproducible(self, airbag_campaign):
        def run_once():
            space = make_space()
            strategy = RandomStrategy(space, faults_per_scenario=1)
            result = airbag_campaign.run(strategy, runs=20)
            return [r.outcome for r in result.records]

        assert run_once() == run_once()

    def test_coverage_guided_closes_faster_than_random(self, airbag_campaign):
        def closure_after(strategy_cls, runs=16):
            space = make_space()
            coverage = FaultSpaceCoverage(space)
            if strategy_cls is CoverageGuidedStrategy:
                strategy = CoverageGuidedStrategy(space, coverage)
            else:
                strategy = RandomStrategy(space)
            airbag_campaign.run(strategy, runs=runs, coverage=coverage)
            return coverage.closure

        guided = closure_after(CoverageGuidedStrategy)
        random_closure = closure_after(RandomStrategy)
        assert guided >= random_closure
        assert guided == 1.0  # 8 cells, 16 guided runs: full closure

    def test_weakspot_escalates_to_hazard(self, airbag_campaign):
        space = make_space()
        strategy = WeakSpotStrategy(
            space, faults_per_scenario=2, exploration=0.3
        )
        result = airbag_campaign.run(
            strategy, runs=60, stop_on=Outcome.HAZARDOUS
        )
        assert result.first_run_with(Outcome.HAZARDOUS) is not None
        top_cells = strategy.top_cells(3)
        assert any("frontend" in cell[0][0] for cell in top_cells)

    def test_stop_on_ends_early(self, airbag_campaign):
        space = make_space()
        strategy = RandomStrategy(space, faults_per_scenario=1)
        result = airbag_campaign.run(
            strategy, runs=50, stop_on=Outcome.MASKED
        )
        assert result.runs <= 50
        if result.runs < 50:
            assert result.records[-1].outcome >= Outcome.MASKED


class TestResultAnalysis:
    def run_mixed(self, airbag_campaign):
        space = make_space()
        strategy = WeakSpotStrategy(space, faults_per_scenario=2)
        return airbag_campaign.run(strategy, runs=40)

    def test_histogram_and_probability(self, airbag_campaign):
        result = self.run_mixed(airbag_campaign)
        histogram = result.outcome_histogram()
        assert sum(histogram.values()) == result.runs
        for outcome in Outcome:
            ci = result.confidence_interval(outcome)
            assert 0.0 <= ci.low <= ci.high <= 1.0

    def test_summarize_prints_counts(self, airbag_campaign):
        result = self.run_mixed(airbag_campaign)
        text = summarize(result)
        assert "campaign: 40 runs" in text
        assert "MASKED" in text

    def test_hazard_cut_sets_minimal(self, airbag_campaign):
        result = self.run_mixed(airbag_campaign)
        cut_sets = hazard_cut_sets(result)
        if cut_sets:  # hazard requires the double stuck-high scenario
            assert all(
                any("sensor_stuck_high" in event for event in cs)
                for cs in cut_sets
            )

    def test_fault_tree_synthesis(self, airbag_campaign):
        # Force the hazardous record deterministically.
        scenario = ErrorScenario(
            "both-high",
            [
                PlannedInjection(
                    2_000_000, "plat.sensor_a.frontend", STUCK_HIGH
                ),
                PlannedInjection(
                    2_000_000, "plat.sensor_b.frontend", STUCK_HIGH
                ),
            ],
        )
        from repro.core import CampaignResult, RunRecord

        result = CampaignResult(duration=20_000_000)
        outcome, labels, obs, applied = airbag_campaign.execute_scenario(
            scenario, run_seed=1
        )
        result.append(
            RunRecord(0, scenario, outcome, labels, obs, applied)
        )
        tree = synthesize_fault_tree(
            result,
            {"sensor_stuck_high": STUCK_HIGH, "sram_seu": SEU},
            exposure_hours=8000,
        )
        assert tree is not None
        cut_sets = tree.minimal_cut_sets()
        # Basic events are target-qualified: the hazard needs BOTH
        # sensors stuck high, and the tree says exactly that.
        assert cut_sets == [
            frozenset(
                {
                    "plat.sensor_a.frontend:sensor_stuck_high",
                    "plat.sensor_b.frontend:sensor_stuck_high",
                }
            )
        ]
        assert 0 < tree.top_event_probability() < 1

    def test_fault_tree_none_without_hazard(self, airbag_campaign):
        from repro.core import CampaignResult

        result = CampaignResult(duration=1)
        assert (
            synthesize_fault_tree(result, {}, exposure_hours=100) is None
        )

    def test_fmeda_bridge_uses_measured_coverage(self, airbag_campaign):
        result = self.run_mixed(airbag_campaign)
        fmeda = fmeda_from_campaign(
            result,
            {"sensor_stuck_high": STUCK_HIGH, "sram_seu": SEU},
        )
        measured = result.diagnostic_coverage_by_descriptor()
        if measured:
            assert len(fmeda.modes) == len(measured)
            for mode in fmeda.modes:
                assert mode.diagnostic_coverage == measured[mode.mode]
