"""Shared platform fixtures for the core-framework tests.

``build_airbag_platform`` is a miniature CAPS-style system (Sec. 1 of
the paper): two redundant acceleration sensors, an ECC-protected
parameter memory, a plausibility-checking control loop, and a squib
actuator.  The safety goal is the paper's own: *no single component
fault may fire the airbag in normal operation.*  Firing requires both
sensor channels to agree above the threshold — so a hazard needs a
double fault, which is what makes the strategy-comparison experiments
meaningful.
"""

import pytest

from repro.core import build_standard_classifier
from repro.hw import (
    AdcSensor,
    EccMemory,
    RangeChecker,
    Squib,
    constant,
)
from repro.kernel import Module, Simulator
from repro.tlm import GenericPayload


THRESHOLD_CODE = 2000  # ADC code above which a crash is assumed
SAMPLE_PERIOD = 1_000_000  # 1 ms


class AirbagEcu(Module):
    """Control loop: redundant sensors -> plausibility -> squib."""

    def __init__(self, name, parent, sensor_a, sensor_b, param_mem, squib):
        super().__init__(name, parent=parent)
        self.sensor_a = sensor_a
        self.sensor_b = sensor_b
        self.param_mem = param_mem
        self.squib = squib
        self.plausibility = RangeChecker("delta", low=0, high=200)
        self.detected_errors = 0
        self.cycles = 0
        self.process(self._control(), name="control")

    def _read_threshold(self):
        payload = GenericPayload.read(0, 4)
        self.param_mem.tsock.deliver(payload, 0)
        if not payload.ok:
            self.detected_errors += 1
            return None
        return payload.word

    def _control(self):
        while True:
            yield SAMPLE_PERIOD
            self.cycles += 1
            threshold = self._read_threshold()
            if threshold is None:
                continue  # detected memory fault: skip cycle (safe state)
            code_a = self.sensor_a.output.read()
            code_b = self.sensor_b.output.read()
            if not self.plausibility.check(abs(code_a - code_b)):
                self.detected_errors += 1
                continue  # channels disagree: refuse to act
            if code_a > threshold and code_b > threshold:
                self._fire()

    def _fire(self):
        self.squib.tsock.deliver(
            GenericPayload.write_word(0x0, Squib.ARM_KEY), 0
        )
        self.squib.tsock.deliver(
            GenericPayload.write_word(0x4, Squib.FIRE_KEY), 0
        )


def build_airbag_platform(sim: Simulator) -> Module:
    top = Module("plat", sim=sim)
    sensor_a = AdcSensor(
        "sensor_a", parent=top, source=constant(1.0), period=SAMPLE_PERIOD,
    )
    sensor_b = AdcSensor(
        "sensor_b", parent=top, source=constant(1.0), period=SAMPLE_PERIOD,
    )
    param_mem = EccMemory("params", parent=top, size=16)
    param_mem.load(0, THRESHOLD_CODE.to_bytes(4, "little"))
    squib = Squib("squib", parent=top)
    AirbagEcu(
        "ecu", parent=top,
        sensor_a=sensor_a, sensor_b=sensor_b,
        param_mem=param_mem, squib=squib,
    )
    return top


def observe_airbag(root: Module) -> dict:
    ecu = root.find("ecu")
    squib = root.find("squib")
    params = root.find("params")
    return {
        "squib_fired": squib.fired,
        "spurious_commands": squib.spurious_commands,
        "ecc_corrected": params.corrected_errors,
        "detected": ecu.detected_errors + params.detected_errors,
        "threshold_word": params.injection_points["codewords"].peek(0),
        "cycles": ecu.cycles,
    }


def airbag_classifier():
    return build_standard_classifier(
        hazard_keys=["squib_fired"],
        value_keys=["threshold_word"],
        detection_keys=["detected", "spurious_commands"],
        masking_keys=["ecc_corrected"],
    )


@pytest.fixture
def airbag_campaign():
    from repro.core import Campaign

    return Campaign(
        platform_factory=build_airbag_platform,
        observe=observe_airbag,
        classifier=airbag_classifier(),
        duration=20_000_000,  # 20 ms
        seed=42,
    )
