"""Unit tests for scenarios, fault space, classification, coverage."""

import random

import pytest

from repro.core import (
    Classifier,
    ErrorScenario,
    FaultSpace,
    FaultSpaceCoverage,
    Outcome,
    PlannedInjection,
    build_standard_classifier,
)
from repro.faults import SENSOR_OPEN_LOAD, SRAM_SEU, STANDARD_CATALOG
from repro.hw import AdcSensor, Memory, constant
from repro.kernel import Module, Simulator


def make_platform():
    sim = Simulator()
    top = Module("top", sim=sim)
    Memory("mem", parent=top, size=64)
    AdcSensor("sensor", parent=top, source=constant(1.0), period=1000)
    return top


class TestFaultSpace:
    def test_pairs_respect_applicability(self):
        top = make_platform()
        space = FaultSpace(
            top, [SRAM_SEU, SENSOR_OPEN_LOAD],
            window_start=0, window_end=10_000,
        )
        pairs = {(path, d.name) for path, d in space.pairs}
        assert pairs == {
            ("top.mem.array", "sram_seu"),
            ("top.sensor.frontend", "sensor_open_load"),
        }

    def test_empty_window_rejected(self):
        top = make_platform()
        with pytest.raises(ValueError):
            FaultSpace(top, [SRAM_SEU], window_start=10, window_end=10)

    def test_no_applicable_descriptor_rejected(self):
        sim = Simulator()
        top = Module("top", sim=sim)
        Memory("mem", parent=top, size=8)
        with pytest.raises(ValueError):
            FaultSpace(
                top, [SENSOR_OPEN_LOAD], window_start=0, window_end=100
            )

    def test_no_points_rejected(self):
        sim = Simulator()
        top = Module("empty", sim=sim)
        with pytest.raises(ValueError):
            FaultSpace(top, [SRAM_SEU], window_start=0, window_end=100)

    def test_exclude_paths(self):
        top = make_platform()
        space = FaultSpace(
            top, list(STANDARD_CATALOG),
            window_start=0, window_end=1000,
            exclude_paths=["top.mem.array"],
        )
        assert all(path != "top.mem.array" for path, _ in space.pairs)

    def test_time_bins_partition_window(self):
        top = make_platform()
        space = FaultSpace(
            top, [SRAM_SEU], window_start=1000, window_end=5000, time_bins=4
        )
        assert space.time_bin_of(1000) == 0
        assert space.time_bin_of(1999) == 0
        assert space.time_bin_of(2000) == 1
        assert space.time_bin_of(4999) == 3
        # Out-of-window times clamp.
        assert space.time_bin_of(9999) == 3
        assert space.time_bin_of(0) == 0

    def test_time_in_bin_round_trip(self):
        top = make_platform()
        space = FaultSpace(
            top, [SRAM_SEU], window_start=0, window_end=8000, time_bins=8
        )
        rng = random.Random(0)
        for bin_index in range(8):
            for _ in range(10):
                time = space.time_in_bin(bin_index, rng)
                assert space.time_bin_of(time) == bin_index

    def test_sample_pinned_pair_and_bin(self):
        top = make_platform()
        space = FaultSpace(
            top, [SRAM_SEU, SENSOR_OPEN_LOAD],
            window_start=0, window_end=1000, time_bins=2,
        )
        rng = random.Random(3)
        pair = space.pairs[1]
        injection = space.sample_injection(rng, pair=pair, time_bin=1)
        assert injection.target_path == pair[0]
        assert injection.descriptor is pair[1]
        assert space.time_bin_of(injection.time) == 1

    def test_rate_weighted_sampling_prefers_high_rates(self):
        top = make_platform()
        heavy = SRAM_SEU.with_rate(1.0)
        light = SENSOR_OPEN_LOAD.with_rate(1e-9)
        space = FaultSpace(
            top, [heavy, light], window_start=0, window_end=1000
        )
        rng = random.Random(7)
        draws = [
            space.sample_injection(rng, rate_weighted=True).descriptor.name
            for _ in range(200)
        ]
        assert draws.count("sram_seu") > 195


class TestScenario:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            PlannedInjection(-1, "x", SRAM_SEU)

    def test_bins(self):
        scenario = ErrorScenario(
            "s",
            [
                PlannedInjection(10, "a", SRAM_SEU),
                PlannedInjection(20, "b", SENSOR_OPEN_LOAD),
            ],
        )
        assert scenario.bins() == [
            ("a", "sram_seu"), ("b", "sensor_open_load"),
        ]
        assert scenario.fault_count == 2


class TestClassifier:
    def test_empty_classifier_says_no_effect(self):
        outcome, labels = Classifier().classify({}, {})
        assert outcome is Outcome.NO_EFFECT
        assert labels == []

    def test_most_severe_wins(self):
        classifier = build_standard_classifier(
            hazard_keys=["boom"],
            detection_keys=["traps"],
        )
        outcome, labels = classifier.classify(
            {"boom": True, "traps": 5}, {"traps": 0}
        )
        assert outcome is Outcome.HAZARDOUS
        assert set(labels) == {"hazard:boom", "detected:traps"}

    def test_value_rule_compares_to_golden(self):
        classifier = build_standard_classifier(value_keys=["out"])
        assert classifier.classify({"out": 5}, {"out": 5})[0] is Outcome.NO_EFFECT
        assert classifier.classify({"out": 6}, {"out": 5})[0] is Outcome.SDC

    def test_counter_rules_need_increase(self):
        classifier = build_standard_classifier(masking_keys=["corrected"])
        assert (
            classifier.classify({"corrected": 2}, {"corrected": 2})[0]
            is Outcome.NO_EFFECT
        )
        assert (
            classifier.classify({"corrected": 3}, {"corrected": 2})[0]
            is Outcome.MASKED
        )

    def test_severity_ordering(self):
        assert Outcome.HAZARDOUS > Outcome.SDC > Outcome.TIMING_FAILURE
        assert Outcome.TIMING_FAILURE > Outcome.DETECTED_SAFE > Outcome.MASKED
        assert Outcome.HAZARDOUS.is_failure and Outcome.HAZARDOUS.is_dangerous
        assert Outcome.TIMING_FAILURE.is_failure
        assert not Outcome.TIMING_FAILURE.is_dangerous
        assert not Outcome.DETECTED_SAFE.is_failure


class TestCoverage:
    def make_space(self):
        top = make_platform()
        return FaultSpace(
            top, [SRAM_SEU, SENSOR_OPEN_LOAD],
            window_start=0, window_end=1000, time_bins=2,
        )

    def test_closure_grows_with_distinct_cells(self):
        space = self.make_space()
        coverage = FaultSpaceCoverage(space)
        assert coverage.closure == 0.0
        scenario = ErrorScenario(
            "s", [PlannedInjection(100, "top.mem.array", SRAM_SEU)]
        )
        coverage.record(scenario, Outcome.NO_EFFECT)
        assert coverage.cells_hit == 1
        assert coverage.closure == 1 / space.bin_count
        # Same cell again: no new closure.
        coverage.record(scenario, Outcome.MASKED)
        assert coverage.cells_hit == 1

    def test_outcome_attribution(self):
        space = self.make_space()
        coverage = FaultSpaceCoverage(space)
        scenario = ErrorScenario(
            "s",
            [PlannedInjection(600, "top.sensor.frontend", SENSOR_OPEN_LOAD)],
        )
        coverage.record(scenario, Outcome.DETECTED_SAFE)
        cells = coverage.cells_with_outcome(Outcome.DETECTED_SAFE)
        assert cells == [("top.sensor.frontend", "sensor_open_load", 1)]

    def test_least_covered_prefers_unhit(self):
        space = self.make_space()
        coverage = FaultSpaceCoverage(space)
        scenario = ErrorScenario(
            "s", [PlannedInjection(100, "top.mem.array", SRAM_SEU)]
        )
        coverage.record(scenario, Outcome.NO_EFFECT)
        candidates = coverage.least_covered(space.bin_count)
        # The hit cell must come last.
        (pair, time_bin) = candidates[-1]
        assert pair[0] == "top.mem.array"
        assert time_bin == 0

    def test_report_shape(self):
        space = self.make_space()
        coverage = FaultSpaceCoverage(space)
        report = coverage.report()
        assert report["total_cells"] == space.bin_count
        assert set(report["outcomes"]) == {o.name for o in Outcome}
