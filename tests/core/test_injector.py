"""Unit tests for the injector dispatch layer."""

import random

import pytest

from repro.core import InjectionError, apply_fault
from repro.faults import (
    FaultDescriptor,
    FaultKind,
    Persistence,
    SENSOR_OPEN_LOAD,
    SRAM_SEU,
)
from repro.hw import (
    AdcSensor,
    CanBus,
    CanFrame,
    CanNode,
    Memory,
    Register,
    RegisterFile,
    constant,
)
from repro.kernel import Module, Simulator
from repro.sw import Rtos, Task


@pytest.fixture
def top():
    return Module("top", sim=Simulator())


def rng():
    return random.Random(1234)


class TestMemoryInjection:
    def test_bit_flip_with_explicit_params(self, top):
        mem = Memory("mem", parent=top, size=16)
        descriptor = SRAM_SEU.with_params(address=3, bit=4)
        record = apply_fault(
            descriptor, "mem.array", mem.injection_points["array"],
            top.sim, rng(),
        )
        assert mem.data[3] == 0x10
        assert record.resolved_params == {"address": 3, "bit": 4}

    def test_bit_flip_random_params_within_bounds(self, top):
        mem = Memory("mem", parent=top, size=16)
        record = apply_fault(
            SRAM_SEU, "mem.array", mem.injection_points["array"],
            top.sim, rng(),
        )
        assert 0 <= record.resolved_params["address"] < 16
        assert 0 <= record.resolved_params["bit"] < 8
        assert sum(bin(b).count("1") for b in mem.data) == 1

    def test_word_corruption_with_pattern(self, top):
        mem = Memory("mem", parent=top, size=16)
        mem.load(0, (0).to_bytes(4, "little"))
        descriptor = FaultDescriptor(
            name="burst", kind=FaultKind.WORD_CORRUPTION,
            params={"address": 0, "pattern": 0x0F0F},
        )
        apply_fault(
            descriptor, "mem.array", mem.injection_points["array"],
            top.sim, rng(),
        )
        assert int.from_bytes(mem.data[0:4], "little") == 0x0F0F

    def test_inapplicable_kind_rejected(self, top):
        mem = Memory("mem", parent=top, size=16)
        with pytest.raises(InjectionError):
            apply_fault(
                SENSOR_OPEN_LOAD, "mem.array",
                mem.injection_points["array"], top.sim, rng(),
            )


class TestRegisterInjection:
    def make_regs(self, top):
        regs = RegisterFile("regs", parent=top)
        regs.add(Register("ctrl", 0x0, reset=0))
        regs.add(Register("status", 0x4, reset=0xFF))
        return regs

    def test_bit_flip(self, top):
        regs = self.make_regs(top)
        descriptor = FaultDescriptor(
            name="flip", kind=FaultKind.BIT_FLIP,
            params={"offset": 0x0, "bit": 2},
        )
        apply_fault(
            descriptor, "regs", regs.injection_points["regs"],
            top.sim, rng(),
        )
        assert regs["ctrl"].value == 4

    def test_stuck_at_with_intermittent_revert(self, top):
        regs = self.make_regs(top)
        descriptor = FaultDescriptor(
            name="stuck", kind=FaultKind.STUCK_AT,
            persistence=Persistence.INTERMITTENT, duration=100,
            params={"offset": 0x4, "bit": 0, "level": 0},
        )
        apply_fault(
            descriptor, "regs", regs.injection_points["regs"],
            top.sim, rng(),
        )
        assert regs["status"].value == 0xFE
        top.sim.run(until=200)
        assert regs["status"].value == 0xFF  # stuck cleared after window


class TestAnalogInjection:
    def test_open_circuit_with_revert(self, top):
        sensor = AdcSensor(
            "s", parent=top, source=constant(2.0), period=1000
        )
        descriptor = FaultDescriptor(
            name="open", kind=FaultKind.OPEN_CIRCUIT,
            persistence=Persistence.INTERMITTENT, duration=2500,
        )
        apply_fault(
            descriptor, "s.frontend",
            sensor.injection_points["frontend"], top.sim, rng(),
        )
        assert sensor.fault.open_circuit
        top.sim.run(until=5000)
        assert not sensor.fault.open_circuit

    def test_short_to_ground_sticks_at_zero(self, top):
        sensor = AdcSensor(
            "s", parent=top, source=constant(2.0), period=1000
        )
        descriptor = FaultDescriptor(
            name="short", kind=FaultKind.SHORT_TO_GROUND,
            persistence=Persistence.PERMANENT,
        )
        apply_fault(
            descriptor, "s.frontend",
            sensor.injection_points["frontend"], top.sim, rng(),
        )
        assert sensor.fault.stuck_value == 0.0

    def test_offset_param_respected(self, top):
        sensor = AdcSensor(
            "s", parent=top, source=constant(2.0), period=1000
        )
        descriptor = FaultDescriptor(
            name="drift", kind=FaultKind.OFFSET_DRIFT,
            persistence=Persistence.PERMANENT, params={"offset": 0.75},
        )
        record = apply_fault(
            descriptor, "s.frontend",
            sensor.injection_points["frontend"], top.sim, rng(),
        )
        assert sensor.fault.offset == 0.75
        assert record.resolved_params == {"offset": 0.75}


class TestCanInjection:
    def make_net(self, top):
        bus = CanBus("bus", parent=top, bit_time=100)
        a = CanNode("a", parent=top, bus=bus)
        b = CanNode("b", parent=top, bus=bus)
        return bus, a, b

    def test_transient_corruption_hits_one_frame(self, top):
        bus, a, b = self.make_net(top)
        descriptor = FaultDescriptor(
            name="corrupt", kind=FaultKind.MESSAGE_CORRUPTION,
            params={"bits": 2},
        )
        apply_fault(
            descriptor, "bus.wire", bus.injection_points["wire"],
            top.sim, rng(),
        )
        a.send(CanFrame(0x10, b"\x55"))
        a.send(CanFrame(0x10, b"\x66"))
        top.sim.run(until=10_000_000)
        # First frame corrupted (detected + retransmitted), second clean.
        assert bus.crc_errors_detected == 1
        assert [f.data[0] for f in b.rx_queue] == [0x55, 0x66]

    def test_masquerade_slips_past_crc(self, top):
        bus, a, b = self.make_net(top)
        descriptor = FaultDescriptor(
            name="masq", kind=FaultKind.MESSAGE_MASQUERADE,
            params={"bits": 1},
        )
        apply_fault(
            descriptor, "bus.wire", bus.injection_points["wire"],
            top.sim, rng(),
        )
        a.send(CanFrame(0x10, b"\x55"))
        top.sim.run(until=10_000_000)
        assert bus.crc_errors_detected == 0
        assert b.rx_queue[0].data[0] != 0x55

    def test_permanent_drop_with_revert(self, top):
        bus, a, b = self.make_net(top)
        descriptor = FaultDescriptor(
            name="outage", kind=FaultKind.MESSAGE_DROP,
            persistence=Persistence.INTERMITTENT, duration=3_000_000,
        )
        apply_fault(
            descriptor, "bus.wire", bus.injection_points["wire"],
            top.sim, rng(),
        )
        a.send(CanFrame(0x10, b"\x01"))  # inside the outage: lost

        def late_sender():
            yield 4_000_000  # after the outage window
            a.send(CanFrame(0x10, b"\x02"))

        top.sim.spawn(late_sender())
        top.sim.run(until=50_000_000)
        # The outage frame exhausts its retries and is abandoned; the
        # post-outage frame goes through cleanly.
        assert [f.data[0] for f in b.rx_queue] == [0x02]
        assert bus.frames_dropped > 0


class TestRtosInjection:
    def test_overhead(self, top):
        rtos = Rtos("os", parent=top)
        task = rtos.add_task(Task("t", priority=1, wcet=10, period=1000))
        descriptor = FaultDescriptor(
            name="retry", kind=FaultKind.EXECUTION_OVERHEAD,
            params={"task": "t", "extra": 500},
        )
        apply_fault(
            descriptor, "os.sched", rtos.injection_points["sched"],
            top.sim, rng(),
        )
        rtos.start()
        top.sim.run(until=3000)
        assert task.completed_jobs[0].response_time == 510

    def test_task_kill_and_revive(self, top):
        rtos = Rtos("os", parent=top)
        task = rtos.add_task(Task("t", priority=1, wcet=10, period=1000))
        descriptor = FaultDescriptor(
            name="kill", kind=FaultKind.TASK_KILL,
            persistence=Persistence.INTERMITTENT, duration=3500,
            params={"task": "t"},
        )
        rtos.start()
        apply_fault(
            descriptor, "os.sched", rtos.injection_points["sched"],
            top.sim, rng(),
        )
        top.sim.run(until=10_000)
        # Killed for 3.5 periods, then revived: roughly 7 activations.
        assert 5 <= task.activations <= 8
