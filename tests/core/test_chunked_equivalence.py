"""Chunked dispatch must be invisible in campaign results.

The parallel executor may ship contiguous slices of a batch as one
future each (``execute_chunk_tolerant``) instead of one future per
run.  Contract: outcomes, digests, and checkpoint journals are
byte-identical to per-run dispatch (``chunk_size=1``) and to the
serial backend — including when hostile runs crash workers or livelock
mid-chunk, where the failed chunk falls back to per-run dispatch and
the PR-2 attribution semantics are re-derived at run granularity.
"""

import json
import os

import pytest

from repro.core import Campaign
from repro.core.executors import (
    HARD_TIMEOUT_FACTOR,
    HARD_TIMEOUT_GRACE,
    ParallelExecutor,
)
from repro.core.runspec import RunSpec, clear_warm_platforms
from repro.core.scenario import ErrorScenario, PlannedInjection
from repro.core.strategies import Strategy
from repro.platforms import hostile

MULTI_CPU = (
    (os.cpu_count() or 1) >= 2
    or os.environ.get("REPRO_FORCE_POOL") == "1"
)

needs_multicore = pytest.mark.skipif(
    not MULTI_CPU, reason="needs >= 2 CPUs for a meaningful pool"
)


@pytest.fixture(autouse=True)
def _fresh_warm_cache():
    clear_warm_platforms()
    yield
    clear_warm_platforms()


def _spec(index, deadline_s=None):
    return RunSpec(
        index=index,
        scenario=ErrorScenario(name=f"s{index}", injections=[]),
        run_seed=index,
        duration=hostile.DURATION,
        platform="hostile-dut",
        golden={},
        deadline_s=deadline_s,
    )


class TestChunkSizing:
    def test_explicit_chunk_size_wins(self):
        executor = ParallelExecutor("hostile-dut", workers=2, chunk_size=5)
        assert executor._effective_chunk_size(100) == 5
        executor.close()

    def test_auto_targets_four_chunks_per_worker(self):
        executor = ParallelExecutor("hostile-dut", workers=2)
        assert executor._effective_chunk_size(80) == 10  # 80 / (2*4)
        assert executor._effective_chunk_size(81) == 11  # ceiling
        assert executor._effective_chunk_size(3) == 1    # floor of 1
        executor.close()

    def test_rejects_non_positive_chunk_size(self):
        with pytest.raises(ValueError):
            ParallelExecutor("hostile-dut", chunk_size=0)

    def test_chunk_timeout_scales_with_chunk_length(self):
        executor = ParallelExecutor("hostile-dut", workers=2)
        chunk = [_spec(i, deadline_s=0.5) for i in range(4)]
        expected = 0.5 * HARD_TIMEOUT_FACTOR * 4 + HARD_TIMEOUT_GRACE
        assert executor._chunk_timeout(chunk) == pytest.approx(expected)
        executor.close()

    def test_chunk_timeout_none_when_any_run_lacks_a_deadline(self):
        """A deadline-less run may legitimately take arbitrarily long;
        the chunk carrying it must wait, exactly like per-run mode."""
        executor = ParallelExecutor("hostile-dut", workers=2)
        chunk = [_spec(0, deadline_s=0.5), _spec(1)]
        assert executor._chunk_timeout(chunk) is None
        assert executor._chunk_timeout([_spec(2)]) is None
        executor.close()

    def test_hard_timeout_override_scales_too(self):
        executor = ParallelExecutor(
            "hostile-dut", workers=2, hard_timeout_s=2.0
        )
        assert executor._chunk_timeout([_spec(i) for i in range(3)]) == 6.0
        executor.close()


class ScriptedStrategy(Strategy):
    def __init__(self, scenarios):
        self.scenarios = list(scenarios)
        self.cursor = 0
        self.faults_per_scenario = 1
        self.space = None

    def next_scenario(self, rng):
        scenario = self.scenarios[self.cursor % len(self.scenarios)]
        self.cursor += 1
        return scenario


def hostile_scripted(runs, hostility):
    scenarios = []
    for index in range(runs):
        injections = []
        descriptor = hostility.get(index)
        if descriptor is not None:
            injections.append(
                PlannedInjection(
                    time=3 * hostile.TICK,
                    target_path=hostile.TRAP_PATH,
                    descriptor=descriptor,
                )
            )
        scenarios.append(
            ErrorScenario(name=f"scripted_{index}", injections=injections)
        )
    return ScriptedStrategy(scenarios)


def canonical_records(result):
    rows = []
    for record in result.records:
        stats = dict(record.kernel_stats or {})
        stats.pop("wall_s", None)
        if record.failure == "timeout":
            # Partial counters of a deadline-cut run measure how far
            # the wall clock let it get — wall-clock-dependent by
            # definition, like wall_s itself.
            stats = {}
        rows.append((
            record.index,
            record.outcome,
            tuple(record.matched_rules),
            tuple(sorted(record.observation.items())),
            record.injections_applied,
            tuple(sorted(stats.items())),
            record.attempts,
            record.failure,
            record.digest.canonical() if record.digest else None,
        ))
    return rows


def canonical_journal(path):
    rows = []
    for line in path.read_text().splitlines():
        payload = json.loads(line)
        if isinstance(payload, dict):
            stats = payload.get("kernel_stats")
            if isinstance(stats, dict):
                stats.pop("wall_s", None)
            if payload.get("failure") == "timeout":
                payload["kernel_stats"] = {}
        rows.append(payload)
    return rows


def run_hostile(hostility, chunk_size=None, backend="parallel",
                checkpoint=None, runs=6, max_retries=2):
    campaign = Campaign(
        duration=hostile.DURATION, seed=11, platform="hostile-dut"
    )
    return campaign.run(
        hostile_scripted(runs, hostility),
        runs=runs,
        backend=backend,
        workers=2 if backend == "parallel" else None,
        batch_size=runs,
        run_timeout_s=0.5,
        max_retries=max_retries,
        retry_backoff_s=0.0,
        trace=True,
        chunk_size=chunk_size,
        checkpoint=checkpoint,
    )


@needs_multicore
class TestChunkedEquivalence:
    def test_clean_batch_chunked_vs_per_run_vs_serial(self):
        serial = run_hostile({}, backend="serial")
        per_run = run_hostile({}, chunk_size=1)
        chunked = run_hostile({}, chunk_size=3)
        assert canonical_records(chunked) == canonical_records(per_run)
        assert canonical_records(chunked) == canonical_records(serial)

    def test_livelock_handled_inside_the_chunk(self):
        """Worker-side deadlines fire inside ``execute_chunk_tolerant``
        exactly as per-run: a livelocked run degrades to its
        ``timeout:deadline`` record without failing the chunk."""
        hostility = {1: hostile.LIVELOCK}
        per_run = run_hostile(hostility, chunk_size=1)
        chunked = run_hostile(hostility, chunk_size=3)
        assert canonical_records(chunked) == canonical_records(per_run)
        assert chunked.records[1].failure == "timeout"
        assert chunked.records[1].matched_rules == ["timeout:deadline"]

    def test_worker_crash_falls_back_to_per_run_byte_identical(self):
        """A chunk whose worker dies falls back to per-run dispatch for
        its specs; simulation content must match pure per-run mode.
        Attempt counts on *innocent* co-batched runs are execution
        history and timing-dependent in both modes (whether a run had
        finished before the pool broke), so they sit outside the
        byte-equality contract — exactly as in the PR-2 digest tests —
        while the guilty run's retry ladder is deterministic."""
        hostility = {2: hostile.CRASH}
        per_run = run_hostile(hostility, chunk_size=1)
        chunked = run_hostile(hostility, chunk_size=3)

        def sans_attempts(rows):
            return [row[:6] + row[7:] for row in rows]

        assert sans_attempts(canonical_records(chunked)) == sans_attempts(
            canonical_records(per_run)
        )
        terminal = chunked.records[2]
        assert terminal.failure == "crash"
        assert terminal.attempts == 3  # 1 + max_retries, chunk uncharged

    def test_chunk_fallback_counter_increments(self):
        executor = ParallelExecutor(
            "hostile-dut", workers=2, chunk_size=3,
        )
        try:
            campaign = Campaign(
                duration=hostile.DURATION, seed=11, platform="hostile-dut"
            )
            campaign.run(
                hostile_scripted(6, {2: hostile.CRASH}),
                runs=6,
                backend=executor,
                batch_size=6,
                run_timeout_s=0.5,
            )
            assert executor.chunk_fallbacks >= 1
            assert executor.pool_rebuilds >= 1
        finally:
            executor.close()

    def test_journals_chunked_vs_per_run(self, tmp_path):
        chunked_path = tmp_path / "chunked.jsonl"
        per_run_path = tmp_path / "per_run.jsonl"
        run_hostile(
            {1: hostile.LIVELOCK}, chunk_size=3,
            checkpoint=str(chunked_path),
        )
        run_hostile(
            {1: hostile.LIVELOCK}, chunk_size=1,
            checkpoint=str(per_run_path),
        )
        assert (
            canonical_journal(chunked_path)
            == canonical_journal(per_run_path)
        )
