"""Tests for the UVM-integrated stressor and classifier components."""

import pytest

from repro.core import (
    ErrorScenario,
    FaultAnalysisEnv,
    Outcome,
    PlannedInjection,
)
from repro.faults import FaultDescriptor, FaultKind, Persistence
from repro.kernel import Simulator, simtime
from repro.platforms import airbag
from repro.uvm import PhaseRunner

STUCK_HIGH = FaultDescriptor(
    name="sensor_stuck_high",
    kind=FaultKind.STUCK_VALUE,
    persistence=Persistence.PERMANENT,
    params={"value": 4.5},
)

DURATION = simtime.ms(60)


def golden_observation():
    sim = Simulator()
    platform = airbag.build_normal_operation(sim)
    sim.run(until=DURATION)
    return airbag.observe(platform)


def build_env(fail_at=Outcome.SDC):
    sim = Simulator()
    platform = airbag.build_normal_operation(sim)
    env = FaultAnalysisEnv(
        "env",
        platform_root=platform,
        observe=airbag.observe,
        classifier=airbag.normal_operation_classifier(),
        golden=golden_observation(),
        fail_at=fail_at,
    )
    return sim, platform, env


class TestFaultAnalysisEnv:
    def test_clean_run_classifies_no_effect(self):
        sim, platform, env = build_env()
        runner = PhaseRunner(env)
        runner.elaborate()
        runner.start_run_phases()
        sim.run(until=DURATION)
        reports = runner.finish()
        assert env.classifier_component.outcome is Outcome.NO_EFFECT
        assert reports["env.classifier"]["outcome"] == "NO_EFFECT"

    def test_detected_fault_passes_check_phase(self):
        sim, platform, env = build_env()
        runner = PhaseRunner(env)
        runner.elaborate()
        env.stressor.arm(
            ErrorScenario(
                "one-high",
                [
                    PlannedInjection(
                        simtime.ms(10), "caps.sensor_a.frontend", STUCK_HIGH
                    )
                ],
            )
        )
        runner.start_run_phases()
        sim.run(until=DURATION)
        reports = runner.finish()  # DETECTED_SAFE < SDC: no raise
        assert env.classifier_component.outcome is Outcome.DETECTED_SAFE
        assert reports["env.stressor"]["applied"] == 1

    def test_hazardous_fault_fails_check_phase(self):
        sim, platform, env = build_env()
        runner = PhaseRunner(env)
        runner.elaborate()
        env.stressor.arm(
            ErrorScenario(
                "both-high",
                [
                    PlannedInjection(
                        simtime.ms(10), "caps.sensor_a.frontend", STUCK_HIGH
                    ),
                    PlannedInjection(
                        simtime.ms(10), "caps.sensor_b.frontend", STUCK_HIGH
                    ),
                ],
            )
        )
        runner.start_run_phases()
        sim.run(until=DURATION)
        with pytest.raises(AssertionError) as excinfo:
            runner.finish()
        assert "HAZARDOUS" in str(excinfo.value)

    def test_fail_at_none_never_raises(self):
        sim, platform, env = build_env(fail_at=None)
        runner = PhaseRunner(env)
        runner.elaborate()
        env.stressor.arm(
            ErrorScenario(
                "both-high",
                [
                    PlannedInjection(
                        simtime.ms(10), "caps.sensor_a.frontend", STUCK_HIGH
                    ),
                    PlannedInjection(
                        simtime.ms(10), "caps.sensor_b.frontend", STUCK_HIGH
                    ),
                ],
            )
        )
        runner.start_run_phases()
        sim.run(until=DURATION)
        reports = runner.finish()
        assert reports["env.classifier"]["outcome"] == "HAZARDOUS"

    def test_bad_injection_target_fails_stressor_check(self):
        sim, platform, env = build_env()
        runner = PhaseRunner(env)
        runner.elaborate()
        # Wrong descriptor for the target kind: the injector records an
        # error that the stressor's check_phase must surface.
        bad = FaultDescriptor(
            name="wrong", kind=FaultKind.MESSAGE_DROP,
        )
        env.stressor._impl.scenario = None
        with pytest.raises(KeyError):
            env.stressor._impl.arm(
                ErrorScenario(
                    "ghost", [PlannedInjection(0, "caps.nowhere", bad)]
                )
            )

    def test_classifier_requires_extract(self):
        sim, platform, env = build_env()
        runner = PhaseRunner(env)
        runner.elaborate()
        env.classifier_component.outcome = None
        with pytest.raises(AssertionError):
            env.classifier_component.check_phase()
