"""Example-based equivalence and plumbing tests for snapshot-fork
execution.

The contract under test: grouping runs by shared fault-free prefix,
simulating that prefix once, and forking every run from the mid-run
kernel snapshot (:meth:`Simulator.snapshot` + the platform bundle's
``capture_state``/``restore_state`` hooks) is *invisible* in campaign
results — outcomes, observations, kernel counters (minus wall clock),
and trace digests are byte-identical to per-run execution, and
anything fork-ineligible silently takes the per-run path.  The
generative version lives in
``tests/property/test_snapshot_properties.py``.
"""

import inspect

import pytest

from repro.core import Campaign, RandomStrategy, TraceConfig
from repro.core.checkpoint import campaign_key
from repro.core.executors import SerialExecutor
from repro.core.runspec import (
    ForkUnsupported,
    RunSpec,
    clear_warm_platforms,
    execute_chunk_tolerant,
    execute_fork_group,
    execute_fork_group_from_registry,
    execute_runspec,
    fork_groups,
    fork_time,
)
from repro.core.scenario import ErrorScenario, FaultSpace, PlannedInjection
from repro.faults import SENSOR_OFFSET_DRIFT, SENSOR_STUCK, SRAM_SEU
from repro.kernel import Simulator, simtime
from repro.platforms import registry

DURATION = simtime.ms(40)
T1 = simtime.ms(20)


@pytest.fixture(autouse=True)
def _fresh_warm_cache():
    clear_warm_platforms()
    yield
    clear_warm_platforms()


def _campaign(key):
    return Campaign(duration=DURATION, seed=5, platform=key)


def _space(key, descriptors):
    bundle = registry.get_platform(key)
    return FaultSpace(
        bundle.factory(Simulator()),
        descriptors,
        window_start=simtime.ms(5),
        window_end=DURATION - 1,
        time_bins=2,
    )


def _spec(key, index, injections, golden, trace=None, fork=True,
          run_seed=None):
    return RunSpec(
        index=index,
        scenario=ErrorScenario(name=f"fork_{index}", injections=injections),
        run_seed=index * 7919 + 13 if run_seed is None else run_seed,
        duration=DURATION,
        platform=key,
        golden=golden,
        trace=trace,
        fork=fork,
    )


def _group_specs(key, descriptors, count=3, trace=None, t1=T1):
    space = _space(key, descriptors)
    campaign = _campaign(key)
    golden = campaign.golden()
    specs = []
    for index in range(count):
        path, descriptor = space.pairs[index % len(space.pairs)]
        injections = [
            PlannedInjection(time=t1, target_path=path, descriptor=descriptor)
        ]
        if index % 2:
            later_path, later_descriptor = space.pairs[
                (index + 1) % len(space.pairs)
            ]
            injections.append(
                PlannedInjection(
                    time=t1 + simtime.ms(4) * index,
                    target_path=later_path,
                    descriptor=later_descriptor,
                )
            )
        specs.append(_spec(key, index, injections, golden, trace=trace))
    return specs


def _outcome_bytes(outcome):
    stats = {
        key: value
        for key, value in outcome.kernel_stats.items()
        if key != "wall_s"
    }
    return (
        outcome.index,
        outcome.outcome,
        outcome.matched_rules,
        tuple(sorted(outcome.observation.items())),
        outcome.injections_applied,
        tuple(sorted(stats.items())),
        outcome.stressor_errors,
        outcome.digest.canonical() if outcome.digest else None,
    )


def _fresh(specs, key):
    bundle = registry.get_platform(key)
    classifier = bundle.classifier_factory()
    return [
        execute_runspec(spec, bundle.factory, bundle.observe, classifier)
        for spec in specs
    ]


# ---------------------------------------------------------------------------
# fork_time / fork_groups plumbing
# ---------------------------------------------------------------------------

class TestForkPlanning:
    def _one(self, **kwargs):
        base = dict(
            key="airbag-normal",
            index=0,
            injections=[
                PlannedInjection(
                    time=T1, target_path="caps.param_mem",
                    descriptor=SRAM_SEU,
                )
            ],
            golden={},
        )
        base.update(kwargs)
        return _spec(**base)

    def test_fork_time_of_an_eligible_spec(self):
        assert fork_time(self._one()) == T1

    def test_fork_time_requires_opt_in(self):
        assert fork_time(self._one(fork=False)) is None

    def test_fork_time_requires_platform_key(self):
        spec = self._one()
        spec = RunSpec(
            index=spec.index, scenario=spec.scenario,
            run_seed=spec.run_seed, duration=spec.duration,
            platform=None, golden={}, fork=True,
        )
        assert fork_time(spec) is None

    def test_fork_time_requires_injections(self):
        assert fork_time(self._one(injections=[])) is None

    def test_fork_time_rejects_out_of_window_injections(self):
        at_zero = [
            PlannedInjection(
                time=0, target_path="caps.param_mem", descriptor=SRAM_SEU
            )
        ]
        past_end = [
            PlannedInjection(
                time=DURATION + 1, target_path="caps.param_mem",
                descriptor=SRAM_SEU,
            )
        ]
        assert fork_time(self._one(injections=at_zero)) is None
        assert fork_time(self._one(injections=past_end)) is None

    def test_fork_time_is_the_earliest_injection(self):
        spec = self._one(
            injections=[
                PlannedInjection(
                    time=T1 + 5, target_path="caps.param_mem",
                    descriptor=SRAM_SEU,
                ),
                PlannedInjection(
                    time=T1, target_path="caps.param_mem",
                    descriptor=SRAM_SEU,
                ),
            ]
        )
        assert fork_time(spec) == T1

    def test_groups_key_on_platform_and_time(self):
        golden = {}
        inject = lambda t: [  # noqa: E731
            PlannedInjection(
                time=t, target_path="caps.param_mem", descriptor=SRAM_SEU
            )
        ]
        specs = [
            _spec("airbag-normal", 0, inject(T1), golden),
            _spec("airbag-normal", 1, inject(T1 + 1), golden),
            _spec("airbag-normal", 2, inject(T1), golden),
            _spec("airbag-normal", 3, [], golden),
            _spec("airbag-normal", 4, inject(T1 + 1), golden),
        ]
        groups, singles = fork_groups(specs)
        assert [
            (key, [spec.index for spec in members])
            for key, members in groups
        ] == [
            (("airbag-normal", T1), [0, 2]),
            (("airbag-normal", T1 + 1), [1, 4]),
        ]
        assert [spec.index for spec in singles] == [3]

    def test_singleton_buckets_fall_back_to_singles(self):
        golden = {}
        specs = [
            _spec(
                "airbag-normal", 0,
                [
                    PlannedInjection(
                        time=T1, target_path="caps.param_mem",
                        descriptor=SRAM_SEU,
                    )
                ],
                golden,
            )
        ]
        groups, singles = fork_groups(specs)
        assert groups == []
        assert [spec.index for spec in singles] == [0]


# ---------------------------------------------------------------------------
# Fork-vs-fresh byte equivalence
# ---------------------------------------------------------------------------

class TestForkEquivalence:
    @pytest.mark.parametrize("key,descriptors", [
        ("airbag-normal", [SRAM_SEU, SENSOR_STUCK]),
        ("airbag-crash", [SRAM_SEU, SENSOR_OFFSET_DRIFT]),
        ("steering", [SENSOR_OFFSET_DRIFT, SENSOR_STUCK]),
    ])
    def test_fork_group_matches_fresh_runs_traced(self, key, descriptors):
        campaign = _campaign(key)
        trace = TraceConfig(golden_signals=campaign.golden_signals())
        specs = _group_specs(key, descriptors, trace=trace)
        forked = execute_fork_group_from_registry(specs)
        fresh = _fresh(specs, key)
        assert [_outcome_bytes(o) for o in forked] == [
            _outcome_bytes(o) for o in fresh
        ]

    def test_serial_executor_reassembles_group_results_in_spec_order(self):
        key = "airbag-normal"
        bundle = registry.get_platform(key)
        specs = _group_specs(key, [SRAM_SEU, SENSOR_STUCK], count=4)
        executor = SerialExecutor(
            bundle.factory, bundle.observe, bundle.classifier_factory(),
            capture_state=bundle.capture_state,
            restore_state=bundle.restore_state,
        )
        outcomes = executor.run_batch(specs)
        assert [o.index for o in outcomes] == [s.index for s in specs]
        assert [_outcome_bytes(o) for o in outcomes] == [
            _outcome_bytes(o) for o in _fresh(specs, key)
        ]

    def test_campaign_fork_flag_is_invisible_in_results(self):
        key = "steering"
        space = _space(key, [SENSOR_OFFSET_DRIFT, SENSOR_STUCK])

        def run(fork):
            campaign = _campaign(key)
            return campaign.run(
                RandomStrategy(space, faults_per_scenario=1),
                runs=6, batch_size=6, trace=True, fork=fork,
            )

        plain = run(False)
        forked = run(True)
        assert [
            (r.index, r.outcome, tuple(r.matched_rules),
             tuple(sorted(r.observation.items())),
             r.digest.canonical() if r.digest else None)
            for r in plain.records
        ] == [
            (r.index, r.outcome, tuple(r.matched_rules),
             tuple(sorted(r.observation.items())),
             r.digest.canonical() if r.digest else None)
            for r in forked.records
        ]


# ---------------------------------------------------------------------------
# Fallback paths
# ---------------------------------------------------------------------------

class TestForkFallback:
    def test_group_without_snapshot_hooks_raises(self):
        specs = _group_specs("airbag-normal", [SRAM_SEU], count=2)
        bundle = registry.get_platform("airbag-normal")
        with pytest.raises(ForkUnsupported):
            execute_fork_group(
                specs, bundle.factory, bundle.observe,
                bundle.classifier_factory(),
                capture_state=None, restore_state=None,
            )

    def test_mixed_group_key_rejected(self):
        specs = _group_specs("airbag-normal", [SRAM_SEU], count=2)
        odd = _group_specs(
            "airbag-normal", [SRAM_SEU], count=2, t1=T1 + 1
        )
        bundle = registry.get_platform("airbag-normal")
        with pytest.raises(ValueError):
            execute_fork_group(
                [specs[0], odd[0]], bundle.factory, bundle.observe,
                bundle.classifier_factory(),
                capture_state=bundle.capture_state,
                restore_state=bundle.restore_state,
            )

    def test_chunk_tolerant_falls_back_for_hookless_platform(self):
        """acc has no snapshot hooks: fork-flagged chunk execution must
        degrade to per-run records identical to unflagged execution."""
        key = "acc"
        campaign = _campaign(key)
        golden = campaign.golden()
        bundle = registry.get_platform(key)
        space = FaultSpace(
            bundle.factory(Simulator()),
            [SRAM_SEU, SENSOR_OFFSET_DRIFT, SENSOR_STUCK],
            window_start=simtime.ms(5),
            window_end=DURATION - 1,
            time_bins=2,
        )
        path, descriptor = space.pairs[0]
        injections = [
            PlannedInjection(time=T1, target_path=path, descriptor=descriptor)
        ]
        forked = execute_chunk_tolerant([
            _spec(key, 0, injections, golden, fork=True),
            _spec(key, 1, injections, golden, fork=True),
        ])
        plain = execute_chunk_tolerant([
            _spec(key, 0, injections, golden, fork=False),
            _spec(key, 1, injections, golden, fork=False),
        ])
        assert [_outcome_bytes(o) for o in forked] == [
            _outcome_bytes(o) for o in plain
        ]


# ---------------------------------------------------------------------------
# Checkpoint identity
# ---------------------------------------------------------------------------

class TestForkCheckpointIdentity:
    def test_fork_is_not_part_of_the_campaign_key(self):
        """Like reuse_platform, fork is execution strategy: two
        journals recorded with and without it must share an identity."""
        assert "fork" not in inspect.signature(campaign_key).parameters
        key = "airbag-normal"
        space = _space(key, [SRAM_SEU])
        strategy = RandomStrategy(space, faults_per_scenario=1)
        assert campaign_key(_campaign(key), strategy) == campaign_key(
            _campaign(key), strategy
        )
