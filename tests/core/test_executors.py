"""Executor backends: serial/parallel equivalence and campaign wiring.

The determinism contract under test: the same (campaign seed,
strategy, batch size) produces the same set of RunRecords from every
backend — outcomes are keyed and re-ordered by run index, so worker
scheduling cannot leak into the result.
"""

import os

import pytest

from repro.core import (
    Campaign,
    FaultSpace,
    FaultSpaceCoverage,
    CoverageGuidedStrategy,
    Outcome,
    ParallelExecutor,
    RandomStrategy,
    SerialExecutor,
    WeakSpotStrategy,
    make_executor,
)
from repro.faults import FaultDescriptor, FaultKind, Persistence, SRAM_SEU
from repro.kernel import Simulator, simtime
from repro.platforms import airbag

MULTI_CPU = (os.cpu_count() or 1) >= 2

STUCK_HIGH = FaultDescriptor(
    name="sensor_stuck_high",
    kind=FaultKind.STUCK_VALUE,
    persistence=Persistence.PERMANENT,
    params={"value": 4.5},
    rate_per_hour=2e-7,
)

DURATION = simtime.ms(60)


def caps_space(time_bins=2):
    probe = Simulator()
    return FaultSpace(
        airbag.build_normal_operation(probe),
        [SRAM_SEU.with_rate(5e-7), STUCK_HIGH],
        window_start=simtime.ms(5),
        window_end=simtime.ms(30),
        time_bins=time_bins,
    )


def caps_campaign(seed=7):
    return Campaign(duration=DURATION, seed=seed, platform="airbag-normal")


def run_caps(backend, batch_size, runs=16, workers=None, strategy=None):
    campaign = caps_campaign()
    strategy = strategy or RandomStrategy(caps_space(), faults_per_scenario=2)
    return campaign.run(
        strategy, runs=runs, backend=backend, workers=workers,
        batch_size=batch_size,
    )


def fingerprint(result):
    return (
        {o.name: n for o, n in result.outcome_histogram().items()},
        [tuple(r.matched_rules) for r in result.records],
        result.diagnostic_coverage_by_descriptor(),
    )


class TestCampaignConstruction:
    def test_registry_key_builds_campaign(self):
        campaign = caps_campaign()
        assert campaign.platform == "airbag-normal"
        assert campaign.platform_factory is airbag.build_normal_operation

    def test_unknown_key_raises(self):
        with pytest.raises(KeyError, match="registered"):
            Campaign(duration=1000, platform="no-such-platform")

    def test_callable_campaign_rejects_parallel(self):
        campaign = Campaign(
            platform_factory=airbag.build_normal_operation,
            observe=airbag.observe,
            classifier=airbag.normal_operation_classifier(),
            duration=DURATION,
        )
        strategy = RandomStrategy(caps_space())
        with pytest.raises(ValueError, match="registry-backed"):
            campaign.run(strategy, runs=2, backend="parallel")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            run_caps("warp-drive", batch_size=1, runs=2)


class TestMakeExecutor:
    def test_instance_passthrough_is_not_owned(self):
        executor = SerialExecutor(
            airbag.build_normal_operation, airbag.observe,
            airbag.normal_operation_classifier(),
        )
        resolved, owned = make_executor(executor)
        assert resolved is executor and owned is False

    def test_unknown_backend_error_lists_registered_backends(self):
        from repro.core.executors import registered_backends

        with pytest.raises(ValueError) as excinfo:
            make_executor("warp-drive", platform="airbag-normal")
        message = str(excinfo.value)
        assert "warp-drive" in message
        for name in registered_backends():
            assert repr(name) in message

    def test_builtin_backends_are_registered(self):
        from repro.core.executors import registered_backends

        assert {"serial", "parallel", "distributed"} <= set(
            registered_backends()
        )

    def test_non_string_backend_is_a_type_error(self):
        with pytest.raises(TypeError, match="name or an Executor"):
            make_executor(42)

    def test_register_backend_round_trip(self):
        from repro.core.executors import (
            _BACKEND_BUILDERS,
            register_backend,
            registered_backends,
        )

        built = {}

        def builder(**kwargs):
            built.update(kwargs)
            return SerialExecutor(
                airbag.build_normal_operation, airbag.observe,
                airbag.normal_operation_classifier(),
            )

        register_backend("test-backend", builder)
        try:
            assert "test-backend" in registered_backends()
            executor, owned = make_executor(
                "test-backend", platform="airbag-normal", workers=3
            )
            assert owned is True
            assert built["platform"] == "airbag-normal"
            assert built["workers"] == 3
            executor.close()
        finally:
            del _BACKEND_BUILDERS["test-backend"]

    def test_register_backend_rejects_bad_names(self):
        from repro.core.executors import register_backend

        with pytest.raises(ValueError):
            register_backend("", lambda **kwargs: None)

    def test_parallel_validates_key_eagerly(self):
        with pytest.raises(KeyError, match="registered"):
            ParallelExecutor("no-such-platform")

    def test_parallel_worker_count_validation(self):
        with pytest.raises(ValueError):
            ParallelExecutor("airbag-normal", workers=0)


class TestSerialBackend:
    def test_default_matches_explicit_serial_batchsize_one(self):
        baseline = run_caps("serial", batch_size=None)
        explicit = run_caps("serial", batch_size=1)
        assert fingerprint(baseline) == fingerprint(explicit)
        assert [r.observation for r in baseline.records] == [
            r.observation for r in explicit.records
        ]

    def test_same_seed_same_batch_size_reproduces(self):
        assert fingerprint(run_caps("serial", batch_size=4)) == fingerprint(
            run_caps("serial", batch_size=4)
        )

    def test_records_carry_kernel_stats(self):
        result = run_caps("serial", batch_size=4, runs=4)
        assert all(r.kernel_stats["events"] > 0 for r in result.records)
        assert result.report()["kernel"]["runs_per_s"] > 0

    def test_stop_on_truncates_batch(self):
        strategy = WeakSpotStrategy(
            caps_space(), faults_per_scenario=2, exploration=0.3
        )
        result = caps_campaign().run(
            strategy, runs=60, stop_on=Outcome.HAZARDOUS, batch_size=6
        )
        assert result.records[-1].outcome >= Outcome.HAZARDOUS
        assert all(
            r.outcome < Outcome.HAZARDOUS for r in result.records[:-1]
        )
        assert [r.index for r in result.records] == list(range(result.runs))

    def test_coverage_guided_batches_spread_targets(self):
        space = caps_space()
        coverage = FaultSpaceCoverage(space)
        strategy = CoverageGuidedStrategy(space, coverage)
        result = caps_campaign().run(
            strategy, runs=16, coverage=coverage, batch_size=8
        )
        assert result.runs == 16
        # Striping the batch across the frontier closes the 6-cell CAPS
        # space within the very first 8-run batch.
        assert coverage.closure == 1.0


class TestParallelBackend:
    def test_parallel_smoke_two_workers(self):
        result = run_caps("parallel", batch_size=4, runs=8, workers=2)
        assert result.runs == 8
        assert [r.index for r in result.records] == list(range(8))
        assert all(r.kernel_stats["events"] > 0 for r in result.records)

    @pytest.mark.skipif(
        not MULTI_CPU, reason="parallel equivalence needs >= 2 CPUs"
    )
    def test_serial_parallel_equivalence_caps_airbag(self):
        """Identical histograms, matched rules, and measured DC."""
        serial = run_caps("serial", batch_size=8, runs=24)
        parallel = run_caps(
            "parallel", batch_size=8, runs=24,
            workers=min(4, os.cpu_count() or 1),
        )
        assert fingerprint(serial) == fingerprint(parallel)
        assert [r.observation for r in serial.records] == [
            r.observation for r in parallel.records
        ]

    @pytest.mark.skipif(
        not MULTI_CPU, reason="parallel equivalence needs >= 2 CPUs"
    )
    def test_stop_on_equivalent_across_backends(self):
        def first_hazard(backend):
            strategy = WeakSpotStrategy(
                caps_space(), faults_per_scenario=2, exploration=0.3
            )
            result = caps_campaign().run(
                strategy, runs=60, stop_on=Outcome.HAZARDOUS,
                backend=backend, workers=2, batch_size=6,
            )
            return result.first_run_with(Outcome.HAZARDOUS), result.runs

        assert first_hazard("serial") == first_hazard("parallel")

    def test_executor_reuse_across_campaigns(self):
        with ParallelExecutor("airbag-normal", workers=2) as executor:
            first = run_caps(executor, batch_size=4, runs=8)
            second = run_caps(executor, batch_size=4, runs=8)
        assert fingerprint(first) == fingerprint(second)
