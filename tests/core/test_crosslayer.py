"""Unit tests for the cross-layer fault-model derivation."""

import random

import pytest

from repro.core import (
    derived_descriptor,
    error_pattern_outcomes,
    measure_word_error_profile,
    naive_descriptor,
    normalize_counts,
    pattern_histogram,
    total_variation_distance,
)
from repro.faults import FaultKind
from repro.gate.builder import ripple_adder
from repro.gate.faults import WordErrorProfile


def make_profile(masked=10, singles=((1, 5), (2, 3)), multis=((0b11, 2),)):
    profile = WordErrorProfile()
    profile.masked = masked
    profile.total = masked
    for pattern, count in list(singles) + list(multis):
        profile.pattern_counts[pattern] = count
        profile.total += count
    return profile


class TestDescriptors:
    def test_derived_descriptor_wraps_profile(self):
        profile = make_profile()
        descriptor = derived_descriptor("d", profile, rate_per_hour=1e-7)
        assert descriptor.kind is FaultKind.WORD_CORRUPTION
        assert descriptor.params["profile"] is profile
        assert descriptor.rate_per_hour == 1e-7

    def test_empty_profile_rejected(self):
        with pytest.raises(ValueError):
            derived_descriptor("d", WordErrorProfile())

    def test_naive_descriptor_uniform_single_bits(self):
        descriptor = naive_descriptor("n", width=8)
        profile = descriptor.params["profile"]
        assert profile.masked == 0
        assert set(profile.pattern_counts) == {1 << b for b in range(8)}

    def test_address_pinning(self):
        descriptor = naive_descriptor("n", address=12)
        assert descriptor.params["address"] == 12


class TestHistograms:
    def test_pattern_histogram_fractions(self):
        profile = make_profile(masked=10, singles=((1, 5), (2, 3)), multis=((3, 2),))
        shape = pattern_histogram(profile)
        assert shape["masked"] == pytest.approx(10 / 20)
        assert shape["single_bit"] == pytest.approx(8 / 20)
        assert shape["multi_bit"] == pytest.approx(2 / 20)

    def test_empty_profile_histogram(self):
        shape = pattern_histogram(WordErrorProfile())
        assert shape == {"masked": 0.0, "single_bit": 0.0, "multi_bit": 0.0}

    def test_normalize_counts(self):
        assert normalize_counts({"a": 3, "b": 1}) == {"a": 0.75, "b": 0.25}
        assert normalize_counts({"a": 0}) == {"a": 0.0}


class TestTvDistance:
    def test_identical_is_zero(self):
        histogram = {"x": 0.5, "y": 0.5}
        assert total_variation_distance(histogram, histogram) == 0.0

    def test_disjoint_is_one(self):
        assert total_variation_distance({"x": 1.0}, {"y": 1.0}) == 1.0

    def test_symmetric(self):
        a = {"x": 0.7, "y": 0.3}
        b = {"x": 0.2, "y": 0.8}
        assert total_variation_distance(a, b) == total_variation_distance(b, a)

    def test_bounded(self):
        a = {"x": 0.6, "y": 0.4}
        b = {"x": 0.1, "y": 0.5, "z": 0.4}
        assert 0.0 <= total_variation_distance(a, b) <= 1.0


class TestOutcomePush:
    def checker(self, pattern):
        return "detected" if pattern >> 4 else "sdc"

    def test_masked_fraction_passes_through(self):
        profile = make_profile(masked=10, singles=((1, 10),), multis=())
        outcomes = error_pattern_outcomes(profile, self.checker)
        assert outcomes["masked"] == pytest.approx(0.5)
        assert outcomes["sdc"] == pytest.approx(0.5)

    def test_high_bit_patterns_classified_detected(self):
        profile = make_profile(masked=0, singles=((1 << 6, 4),), multis=())
        outcomes = error_pattern_outcomes(profile, self.checker)
        assert outcomes == {"masked": 0.0, "detected": 1.0}


class TestSampling:
    def test_sampled_patterns_follow_support(self):
        profile = make_profile()
        rng = random.Random(0)
        support = set(profile.pattern_counts)
        masked_draws = 0
        for _ in range(200):
            pattern = profile.sample_pattern(rng)
            if pattern is None:
                masked_draws += 1
            else:
                assert pattern in support
        # Masked share is 10/20: draws should reflect it roughly.
        assert 60 <= masked_draws <= 140


class TestMeasureWordErrorProfile:
    """The crosslayer entry point into the gate fault campaign."""

    def test_engines_byte_identical(self):
        circuit = ripple_adder(3)
        profiles = {
            engine: measure_word_error_profile(
                circuit, "sum",
                kinds=("seu", "stuck0", "stuck1"),
                runs_per_site=2,
                seed=11,
                engine=engine,
            )
            for engine in ("scalar", "vector")
        }
        assert (
            profiles["scalar"].canonical() == profiles["vector"].canonical()
        )
        assert profiles["vector"].total > 0

    def test_derivable_from_measured_profile(self):
        profile = measure_word_error_profile(
            ripple_adder(4), "sum", runs_per_site=2, seed=3
        )
        descriptor = derived_descriptor("measured", profile)
        shape = pattern_histogram(profile)
        assert descriptor.params["profile"] is profile
        assert shape["masked"] + shape["single_bit"] + shape["multi_bit"] == (
            pytest.approx(1.0)
        )
