"""Checkpoint/resume: interrupted campaigns finish as if uninterrupted.

The resume guarantee under test: a campaign restarted with the same
(seed, strategy, scenario set) and its journal skips execution of
every journaled run index, and the merged result is identical — same
records, same report — to an uninterrupted run with the same seed.
Only wall-clock-derived fields (kernel stats, the robustness/resume
counters) may differ.
"""

import json

import pytest

from repro.core import (
    Campaign,
    CampaignCheckpoint,
    CheckpointError,
    CheckpointKeyMismatch,
    FaultSpace,
    OUTCOME_SCHEMA_VERSION,
    Outcome,
    RandomStrategy,
    WeakSpotStrategy,
    campaign_key,
)
from repro.faults import SRAM_SEU
from repro.kernel import Simulator, simtime
from repro.platforms import airbag, hostile

from .test_fault_tolerance import run_hostile, scripted

DURATION = simtime.ms(60)
RUNS = 10


def caps_space():
    probe = Simulator()
    return FaultSpace(
        airbag.build_normal_operation(probe),
        [SRAM_SEU.with_rate(5e-7)],
        window_start=simtime.ms(5),
        window_end=simtime.ms(30),
        time_bins=2,
    )


def caps_campaign(seed=21):
    return Campaign(duration=DURATION, seed=seed, platform="airbag-normal")


def caps_strategy():
    return RandomStrategy(caps_space(), faults_per_scenario=2)


def run_caps(checkpoint=None, runs=RUNS, seed=21):
    return caps_campaign(seed).run(
        caps_strategy(), runs=runs, checkpoint=checkpoint
    )


def record_view(record):
    """Everything about a record except wall-clock-dependent stats."""
    return (
        record.index,
        record.scenario.name,
        record.outcome.name,
        tuple(record.matched_rules),
        tuple(sorted(record.observation.items())),
        record.injections_applied,
        record.failure,
    )


def report_view(result):
    report = result.report()
    report.pop("kernel", None)
    report.pop("robustness", None)
    return report


class TestJournalFile:
    def test_fresh_journal_header_and_lines(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        run_caps(checkpoint=path)
        lines = path.read_text().splitlines()
        assert len(lines) == 1 + RUNS
        header = json.loads(lines[0])
        assert header["schema"] == OUTCOME_SCHEMA_VERSION
        assert header["key"] == campaign_key(caps_campaign(), caps_strategy())
        indices = [json.loads(line)["index"] for line in lines[1:]]
        assert indices == list(range(RUNS))

    def test_journal_records_roundtrip_outcomes(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        result = run_caps(checkpoint=path)
        journal = CampaignCheckpoint(path)
        journal.open(campaign_key(caps_campaign(), caps_strategy()))
        journal.close()
        assert len(journal) == RUNS
        for record in result.records:
            cached = journal.outcomes[record.index]
            assert cached.outcome is record.outcome
            assert list(cached.matched_rules) == list(record.matched_rules)


class TestResume:
    def test_resume_skips_journaled_runs(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        run_caps(checkpoint=path, runs=4)  # "interrupted" after 4 runs
        resumed = run_caps(checkpoint=path, runs=RUNS)
        assert resumed.resumed == 4
        assert resumed.runs == RUNS
        assert resumed.report()["robustness"]["resumed"] == 4

    def test_resumed_result_identical_to_uninterrupted(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        run_caps(checkpoint=path, runs=4)
        resumed = run_caps(checkpoint=path, runs=RUNS)
        uninterrupted = run_caps()
        assert [record_view(r) for r in resumed.records] == [
            record_view(r) for r in uninterrupted.records
        ]
        assert report_view(resumed) == report_view(uninterrupted)

    def test_fully_journaled_campaign_executes_nothing(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        first = run_caps(checkpoint=path)
        replay = run_caps(checkpoint=path)
        assert replay.resumed == RUNS
        assert [record_view(r) for r in replay.records] == [
            record_view(r) for r in first.records
        ]

    def test_truncated_trailing_line_reexecutes_that_run(self, tmp_path):
        # The classic kill-during-write artifact: the journal's last
        # line is cut mid-JSON.  It must be dropped (not fatal) and
        # only that run re-executed.
        path = tmp_path / "campaign.jsonl"
        run_caps(checkpoint=path)
        raw = path.read_text()
        path.write_text(raw[: len(raw) - 25])  # maim the final record
        resumed = run_caps(checkpoint=path)
        assert resumed.resumed == RUNS - 1
        assert [record_view(r) for r in resumed.records] == [
            record_view(r) for r in run_caps().records
        ]

    def test_append_after_truncated_tail_is_not_corrupted(self, tmp_path):
        # Regression: resuming over a journal whose final line was cut
        # mid-write used to append the next record directly onto the
        # partial line, corrupting that fresh record too (and silently
        # losing it on the *next* resume).
        path = tmp_path / "campaign.jsonl"
        run_caps(checkpoint=path)
        raw = path.read_text()
        path.write_text(raw[: len(raw) - 25])  # unterminated final line
        run_caps(checkpoint=path)  # re-executes and re-journals that run
        journal = CampaignCheckpoint(path)
        journal.open(campaign_key(caps_campaign(), caps_strategy()))
        journal.close()
        assert journal.dropped_lines == 0
        assert len(journal) == RUNS
        replay = run_caps(checkpoint=path)
        assert replay.resumed == RUNS

    def test_unterminated_but_parseable_tail_completed(self, tmp_path):
        # Kill artifact where only the newline was lost: the final
        # record is intact JSON, so it is kept (newline restored in
        # place), not dropped and re-executed.
        path = tmp_path / "campaign.jsonl"
        run_caps(checkpoint=path)
        raw = path.read_text()
        path.write_text(raw.rstrip("\n"))
        resumed = run_caps(checkpoint=path)
        assert resumed.resumed == RUNS
        assert path.read_text().endswith("\n")
        journal = CampaignCheckpoint(path)
        journal.open(campaign_key(caps_campaign(), caps_strategy()))
        journal.close()
        assert journal.dropped_lines == 0
        assert len(journal) == RUNS

    def test_garbage_middle_line_dropped(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        run_caps(checkpoint=path)
        lines = path.read_text().splitlines()
        lines[3] = "{not json at all"
        path.write_text("\n".join(lines) + "\n")
        journal = CampaignCheckpoint(path)
        journal.open(campaign_key(caps_campaign(), caps_strategy()))
        journal.close()
        assert journal.dropped_lines == 1
        assert len(journal) == RUNS - 1

    def test_degraded_outcomes_survive_resume(self, tmp_path):
        # Terminal TIMEOUT records are journaled like any other run:
        # resuming must not re-execute (and re-hang on) a poisoned run.
        path = tmp_path / "hostile.jsonl"
        hostility = {1: hostile.LIVELOCK}
        first = run_hostile(4, hostility, checkpoint=path)
        assert first.timed_out == 1
        resumed = run_hostile(4, hostility, checkpoint=path)
        assert resumed.resumed == 4
        record = resumed.records[1]
        assert record.outcome is Outcome.TIMEOUT
        assert record.failure == "timeout"
        assert resumed.timed_out == 1


class TestKeyPinning:
    def test_seed_change_rejected(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        run_caps(checkpoint=path, seed=21)
        with pytest.raises(CheckpointKeyMismatch):
            run_caps(checkpoint=path, seed=22)

    def test_strategy_change_rejected(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        run_caps(checkpoint=path)
        other = WeakSpotStrategy(caps_space(), faults_per_scenario=2)
        with pytest.raises(CheckpointKeyMismatch):
            caps_campaign().run(other, runs=RUNS, checkpoint=path)

    def test_platform_change_rejected(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        run_caps(checkpoint=path)
        campaign = Campaign(
            duration=DURATION, seed=21, platform="airbag-crash"
        )
        with pytest.raises(CheckpointKeyMismatch):
            campaign.run(caps_strategy(), runs=RUNS, checkpoint=path)

    def test_batch_size_change_rejected(self, tmp_path):
        # Adaptive strategies plan batch-shaped spec streams and the
        # default batch size is derived from the host's CPU count, so
        # a journal must not resume under a different batch size —
        # journaled run indices would map to different scenarios.
        path = tmp_path / "campaign.jsonl"
        run_caps(checkpoint=path)  # serial default: batch_size == 1
        with pytest.raises(CheckpointKeyMismatch):
            caps_campaign().run(
                caps_strategy(), runs=RUNS, batch_size=2, checkpoint=path
            )

    def test_run_timeout_change_rejected(self, tmp_path):
        # The per-run deadline changes outcomes (what times out), so
        # it is part of the journal identity too.
        path = tmp_path / "campaign.jsonl"
        run_caps(checkpoint=path)
        with pytest.raises(CheckpointKeyMismatch):
            caps_campaign().run(
                caps_strategy(),
                runs=RUNS,
                run_timeout_s=30.0,
                checkpoint=path,
            )

    def test_unreadable_header_rejected(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        path.write_text("this is not a checkpoint\n")
        with pytest.raises(CheckpointError):
            run_caps(checkpoint=path)

    def test_newer_schema_rejected(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        key = campaign_key(caps_campaign(), caps_strategy())
        path.write_text(
            json.dumps({"schema": OUTCOME_SCHEMA_VERSION + 1, "key": key})
            + "\n"
        )
        with pytest.raises(CheckpointError):
            run_caps(checkpoint=path)


class TestCheckpointObject:
    def test_instance_can_be_passed_directly(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        with CampaignCheckpoint(path) as journal:
            result = run_caps(checkpoint=journal, runs=3)
        assert result.runs == 3
        assert len(path.read_text().splitlines()) == 4

    def test_record_batch_requires_open(self, tmp_path):
        journal = CampaignCheckpoint(tmp_path / "campaign.jsonl")
        with pytest.raises(CheckpointError):
            journal.record_batch([])

    def test_scripted_hostility_resume_counts(self, tmp_path):
        # run_hostile-style campaigns (scripted strategies) also key
        # cleanly: same script -> same key -> resumable.
        path = tmp_path / "hostile.jsonl"
        campaign = Campaign(
            duration=hostile.DURATION, seed=5, platform="hostile-dut"
        )
        campaign.run(scripted(3, {}), runs=3, checkpoint=path)
        replay = Campaign(
            duration=hostile.DURATION, seed=5, platform="hostile-dut"
        ).run(scripted(3, {}), runs=3, checkpoint=path)
        assert replay.resumed == 3
