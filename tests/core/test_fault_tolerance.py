"""Failure injection against the campaign machinery itself.

The hostile-dut platform (:mod:`repro.platforms.hostile`) turns
executor failure modes into ordinary injectable faults: a run can
livelock the kernel (only the wall-clock deadline ends it), raise out
of a process body, or ``os._exit`` the worker process.  These tests
pin the degradation contract: every planned run yields exactly one
record, ``runs == completed + timed_out + terminally_failed``, crashes
are retried within budget, and the serial and parallel backends agree
on every surviving run.
"""

import os

import pytest

from repro.core import (
    Campaign,
    ErrorScenario,
    Outcome,
    ParallelExecutor,
    PlannedInjection,
    RetryPolicy,
)
from repro.core.strategies import Strategy
from repro.platforms import hostile

MULTI_CPU = (
    (os.cpu_count() or 1) >= 2
    or os.environ.get("REPRO_FORCE_POOL") == "1"
)

needs_multicore = pytest.mark.skipif(
    not MULTI_CPU, reason="needs >= 2 CPUs for a meaningful pool"
)


class ScriptedStrategy(Strategy):
    """Replays a fixed scenario list — one scenario per run index."""

    def __init__(self, scenarios):
        self.scenarios = list(scenarios)
        self.cursor = 0
        self.faults_per_scenario = 1
        self.space = None

    def next_scenario(self, rng):
        scenario = self.scenarios[self.cursor % len(self.scenarios)]
        self.cursor += 1
        return scenario


def scripted(runs, hostility):
    """A strategy for *runs* scenarios; ``hostility`` maps run index
    to a behavior descriptor (``hostile.LIVELOCK`` etc.)."""
    scenarios = []
    for index in range(runs):
        injections = []
        descriptor = hostility.get(index)
        if descriptor is not None:
            injections.append(
                PlannedInjection(
                    time=3 * hostile.TICK,
                    target_path=hostile.TRAP_PATH,
                    descriptor=descriptor,
                )
            )
        scenarios.append(
            ErrorScenario(name=f"scripted_{index}", injections=injections)
        )
    return ScriptedStrategy(scenarios)


def hostile_campaign(seed=11):
    return Campaign(
        duration=hostile.DURATION, seed=seed, platform="hostile-dut"
    )


def run_hostile(runs, hostility, backend="serial", **kwargs):
    campaign = hostile_campaign()
    return campaign.run(
        scripted(runs, hostility),
        runs=runs,
        backend=backend,
        run_timeout_s=kwargs.pop("run_timeout_s", 0.5),
        **kwargs,
    )


def survivors_fingerprint(result):
    """Backend-independent view of a result: everything except
    wall-clock-dependent kernel stats."""
    return [
        (
            record.index,
            record.outcome.name,
            record.failure,
            record.attempts,
            tuple(record.matched_rules),
            tuple(sorted(record.observation.items())),
        )
        for record in result.records
    ]


class TestOutcomeLattice:
    def test_timeout_is_inconclusive_not_a_failure(self):
        assert Outcome.TIMEOUT.is_inconclusive
        assert not Outcome.TIMEOUT.is_failure
        assert not Outcome.TIMEOUT.is_dangerous

    def test_timeout_sits_below_every_failure(self):
        assert Outcome.TIMEOUT < Outcome.TIMING_FAILURE
        assert Outcome.TIMEOUT < Outcome.SDC
        assert Outcome.TIMEOUT < Outcome.HAZARDOUS
        assert Outcome.TIMEOUT > Outcome.DETECTED_SAFE


class TestSerialDegradation:
    def test_fault_free_runs_are_conclusive(self):
        result = run_hostile(4, {})
        assert result.runs == 4
        assert result.completed == 4
        assert all(r.outcome is Outcome.NO_EFFECT for r in result.records)
        assert all(r.failure is None for r in result.records)

    def test_livelock_degrades_to_deadline_timeout(self):
        result = run_hostile(5, {2: hostile.LIVELOCK})
        record = result.records[2]
        assert record.outcome is Outcome.TIMEOUT
        assert record.failure == "timeout"
        assert record.matched_rules == ["timeout:deadline"]
        assert result.timed_out == 1
        assert result.completed == 4
        # The degraded run still reports the wall clock it burned.
        assert record.kernel_stats["wall_s"] >= 0.5

    def test_raise_degrades_to_terminal_error(self):
        result = run_hostile(5, {3: hostile.RAISE})
        record = result.records[3]
        assert record.outcome is Outcome.TIMEOUT
        assert record.failure == "error"
        assert record.matched_rules == ["error:ProcessError"]
        assert result.terminally_failed == 1

    def test_every_planned_run_yields_one_record(self):
        result = run_hostile(
            8, {1: hostile.LIVELOCK, 4: hostile.RAISE, 6: hostile.LIVELOCK}
        )
        assert [r.index for r in result.records] == list(range(8))
        assert result.runs == (
            result.completed + result.timed_out + result.terminally_failed
        )
        assert result.timed_out == 2
        assert result.terminally_failed == 1

    def test_stop_on_failure_ignores_degraded_runs(self):
        # TIMEOUT sits below the failure outcomes, so a campaign
        # hunting for real failures is not stopped by a hang.
        result = run_hostile(
            6, {1: hostile.LIVELOCK}, stop_on=Outcome.TIMING_FAILURE
        )
        assert result.runs == 6

    def test_robustness_section_only_when_degraded(self):
        clean = run_hostile(3, {})
        assert "robustness" not in clean.report()
        degraded = run_hostile(3, {0: hostile.LIVELOCK})
        section = degraded.report()["robustness"]
        assert section == {
            "completed": 2,
            "timed_out": 1,
            "terminally_failed": 0,
            "retried": 0,
            "resumed": 0,
        }

    def test_timeouts_excluded_from_diagnostic_coverage(self):
        result = run_hostile(4, {1: hostile.LIVELOCK})
        coverage = result.diagnostic_coverage_by_descriptor()
        assert "firmware_livelock" not in coverage


@needs_multicore
class TestParallelEquivalence:
    HOSTILITY = {1: hostile.LIVELOCK, 3: hostile.RAISE}

    def test_parallel_matches_serial_on_all_runs(self):
        serial = run_hostile(6, self.HOSTILITY, backend="serial")
        parallel = run_hostile(
            6, self.HOSTILITY, backend="parallel", workers=2, batch_size=3
        )
        assert survivors_fingerprint(serial) == survivors_fingerprint(
            parallel
        )

    def test_parallel_counters_match_serial(self):
        serial = run_hostile(6, self.HOSTILITY)
        parallel = run_hostile(
            6, self.HOSTILITY, backend="parallel", workers=2
        )
        for attr in ("timed_out", "terminally_failed", "completed"):
            assert getattr(serial, attr) == getattr(parallel, attr)


@needs_multicore
class TestWorkerCrashRetry:
    def test_crash_consumes_retry_budget_then_terminal(self):
        executor = ParallelExecutor(
            "hostile-dut",
            workers=2,
            retry=RetryPolicy(max_retries=2, backoff_s=0.0),
        )
        try:
            result = run_hostile(
                6,
                {2: hostile.CRASH},
                backend=executor,
                batch_size=3,
            )
        finally:
            executor.close()
        record = result.records[2]
        assert record.outcome is Outcome.TIMEOUT
        assert record.failure == "crash"
        assert record.matched_rules == ["crash:worker"]
        assert record.attempts == 3  # 1 first try + 2 retries
        assert result.retried == 2
        assert result.terminally_failed == 1
        assert result.completed == 5
        assert executor.pool_rebuilds >= 1
        # Innocent runs of the poisoned batches still complete.
        for index in (0, 1, 3, 4, 5):
            assert result.records[index].outcome is Outcome.NO_EFFECT

    def test_zero_retry_budget_fails_immediately(self):
        result = run_hostile(
            4,
            {1: hostile.CRASH},
            backend="parallel",
            workers=2,
            max_retries=0,
            retry_backoff_s=0.0,
        )
        record = result.records[1]
        assert record.failure == "crash"
        assert record.attempts == 1
        assert result.retried == 0

    def test_queued_specs_not_charged_for_poison_crash(self):
        # Regression: with one worker the poison spec runs first while
        # the rest of the batch is still queued; a BrokenProcessPool
        # used to charge every co-batched spec a retry attempt, so
        # innocents could be terminally recorded as 'crash:worker'
        # without ever executing.  Queued specs must re-run on the
        # rebuilt pool at attempt 1, free of charge.
        result = run_hostile(
            3,
            {0: hostile.CRASH},
            backend="parallel",
            workers=1,
            batch_size=3,
            max_retries=1,
            retry_backoff_s=0.0,
        )
        poison = result.records[0]
        assert poison.failure == "crash"
        assert poison.attempts == 2  # 1 first try + the whole budget
        for index in (1, 2):
            record = result.records[index]
            assert record.outcome is Outcome.NO_EFFECT
            assert record.failure is None
            assert record.attempts == 1
        assert result.retried == 1
        assert result.terminally_failed == 1
        assert result.completed == 2

    def test_pool_hard_timeout_backstop(self):
        # No worker-side deadline at all: only the pool-level hard
        # timeout can end a livelocked run.
        result = run_hostile(
            3,
            {1: hostile.LIVELOCK},
            backend="parallel",
            workers=2,
            run_timeout_s=None,
            hard_timeout_s=2.0,
            max_retries=1,
            retry_backoff_s=0.0,
        )
        record = result.records[1]
        assert record.outcome is Outcome.TIMEOUT
        assert record.failure == "timeout"
        assert record.matched_rules == ["timeout:pool"]
        assert result.timed_out == 1
        assert result.completed == 2

    def test_queued_specs_survive_pool_hard_timeout(self):
        # Regression: with one worker, a hard hang used to drag every
        # queued spec of the batch down with it as terminal
        # 'timeout:pool' records; only the actually-hung run (whose
        # Future.cancel() fails) may be terminal — the queued ones
        # never started and must re-run on the rebuilt pool.
        result = run_hostile(
            3,
            {0: hostile.LIVELOCK},
            backend="parallel",
            workers=1,
            batch_size=3,
            run_timeout_s=None,
            hard_timeout_s=2.0,
            max_retries=0,
            retry_backoff_s=0.0,
        )
        hang = result.records[0]
        assert hang.outcome is Outcome.TIMEOUT
        assert hang.failure == "timeout"
        assert hang.matched_rules == ["timeout:pool"]
        for index in (1, 2):
            record = result.records[index]
            assert record.outcome is Outcome.NO_EFFECT
            assert record.failure is None
            assert record.attempts == 1
        assert result.timed_out == 1
        assert result.completed == 2


@needs_multicore
class TestExecutorClose:
    def test_close_is_idempotent_after_broken_pool(self):
        # Regression: close() used to raise when the pool had been
        # broken by a dead worker; campaigns close executors in a
        # finally block, so this must never throw.
        executor = ParallelExecutor(
            "hostile-dut",
            workers=2,
            retry=RetryPolicy(max_retries=0, backoff_s=0.0),
        )
        result = run_hostile(3, {0: hostile.CRASH}, backend=executor)
        assert result.records[0].failure == "crash"
        executor.close()
        executor.close()  # second close must be a no-op

    def test_close_without_ever_running(self):
        executor = ParallelExecutor("hostile-dut", workers=2)
        executor.close()
        executor.close()


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_s=-0.1)

    def test_deterministic_exponential_backoff(self):
        policy = RetryPolicy(max_retries=3, backoff_s=0.05)
        assert policy.max_attempts == 4
        assert [policy.backoff_for(n) for n in (1, 2, 3)] == [
            0.05,
            0.10,
            0.20,
        ]
