"""Shard-journal merge edge cases — all serial, no cluster required.

``merge_shards`` must be a pure, deterministic function of its inputs:
duplicate run indices across shards collapse to one record, a
kill-during-write tail in one shard is repaired or dropped exactly as
a single journal's would be, and a *partially* merged journal is a
valid checkpoint a campaign can resume from.  Every case is pinned
against the journal a serial run of the same campaign writes.
"""

import json

import pytest

from repro.core import Campaign, FaultSpace, RandomStrategy
from repro.core.checkpoint import (
    CampaignCheckpoint,
    CheckpointKeyMismatch,
    merge_shards,
    shard_paths_in,
)
from repro.faults import SRAM_SEU
from repro.kernel import Simulator, simtime
from repro.platforms import airbag

DURATION = simtime.ms(60)
RUNS = 12


def airbag_space():
    probe = Simulator()
    return FaultSpace(
        airbag.build_normal_operation(probe),
        [SRAM_SEU.with_rate(5e-7)],
        window_start=simtime.ms(5),
        window_end=simtime.ms(30),
        time_bins=2,
    )


def run_serial(checkpoint=None):
    campaign = Campaign(duration=DURATION, seed=7, platform="airbag-normal")
    strategy = RandomStrategy(airbag_space(), faults_per_scenario=2)
    return campaign.run(
        strategy, runs=RUNS, batch_size=4, checkpoint=checkpoint
    )


@pytest.fixture(scope="module")
def serial(tmp_path_factory):
    """One serial reference run: its result, journal, and key."""
    path = tmp_path_factory.mktemp("reference") / "serial.jsonl"
    result = run_serial(checkpoint=str(path))
    key = json.loads(path.read_text().splitlines()[0])["key"]
    return result, path, key


def write_shard(path, key, outcomes):
    shard = CampaignCheckpoint(path)
    shard.open(key)
    try:
        shard.record_batch(outcomes)
    finally:
        shard.close()


def split_into_shards(shard_dir, journal_path, key, overlap=()):
    """Rebuild *journal_path* as two shards (even/odd indices); indices
    in *overlap* are written to both — the duplicate case."""
    journal = CampaignCheckpoint(journal_path)
    journal.open(key)
    journal.close()
    outcomes = journal.outcomes
    shard_dir.mkdir(exist_ok=True)
    write_shard(
        shard_dir / "shard-a.jsonl", key,
        [outcomes[i] for i in sorted(outcomes)
         if i % 2 == 0 or i in overlap],
    )
    write_shard(
        shard_dir / "shard-b.jsonl", key,
        [outcomes[i] for i in sorted(outcomes)
         if i % 2 == 1 or i in overlap],
    )
    return outcomes


def canonical_journal(path):
    rows = []
    for line in path.read_text().splitlines():
        payload = json.loads(line)
        if isinstance(payload, dict):
            stats = payload.get("kernel_stats")
            if isinstance(stats, dict):
                stats.pop("wall_s", None)
        rows.append(payload)
    return rows


class TestDeterministicMerge:
    def test_merge_reconstructs_the_serial_journal_exactly(
        self, serial, tmp_path
    ):
        _result, journal_path, key = serial
        split_into_shards(tmp_path / "shards", journal_path, key)
        merged = tmp_path / "merged.jsonl"
        stats = merge_shards(
            merged, shard_paths_in(tmp_path / "shards"), key
        )
        # Same outcomes, re-serialized with the same encoding: the
        # merged file is byte-for-byte the serial journal.
        assert merged.read_text() == journal_path.read_text()
        assert stats == {
            "shards": 2, "records": RUNS, "duplicates": 0,
            "dropped_lines": 0,
        }

    def test_duplicate_indices_across_shards_collapse(
        self, serial, tmp_path
    ):
        """Duplicates are legitimate (a worker declared dead on a stale
        heartbeat may deliver anyway while the redispatch also lands);
        the merge keeps one copy per index."""
        _result, journal_path, key = serial
        split_into_shards(
            tmp_path / "shards", journal_path, key, overlap=(3, 8)
        )
        merged = tmp_path / "merged.jsonl"
        stats = merge_shards(
            merged, shard_paths_in(tmp_path / "shards"), key
        )
        assert stats["duplicates"] == 2
        assert stats["records"] == RUNS
        assert merged.read_text() == journal_path.read_text()

    def test_remerge_overwrites_rather_than_appends(self, serial, tmp_path):
        _result, journal_path, key = serial
        split_into_shards(tmp_path / "shards", journal_path, key)
        merged = tmp_path / "merged.jsonl"
        for _ in range(2):
            merge_shards(merged, shard_paths_in(tmp_path / "shards"), key)
        assert merged.read_text() == journal_path.read_text()

    def test_key_mismatch_refuses_to_merge(self, serial, tmp_path):
        _result, journal_path, key = serial
        split_into_shards(tmp_path / "shards", journal_path, key)
        with pytest.raises(CheckpointKeyMismatch):
            merge_shards(
                tmp_path / "merged.jsonl",
                shard_paths_in(tmp_path / "shards"),
                dict(key, seed=99),
            )


class TestTailDamage:
    def test_newline_only_tail_damage_is_repaired(self, serial, tmp_path):
        """A kill that cost only the final newline: the record still
        parses, so the merge keeps it (PR-2 tail repair semantics)."""
        _result, journal_path, key = serial
        split_into_shards(tmp_path / "shards", journal_path, key)
        victim = tmp_path / "shards" / "shard-a.jsonl"
        victim.write_bytes(victim.read_bytes().rstrip(b"\n"))
        merged = tmp_path / "merged.jsonl"
        stats = merge_shards(
            merged, shard_paths_in(tmp_path / "shards"), key
        )
        assert stats["records"] == RUNS
        assert stats["dropped_lines"] == 0
        assert merged.read_text() == journal_path.read_text()

    def test_unterminated_garbage_tail_is_dropped(self, serial, tmp_path):
        """A kill mid-write leaves a half-record: the fragment is
        dropped and counted, every intact record survives."""
        _result, journal_path, key = serial
        split_into_shards(tmp_path / "shards", journal_path, key)
        victim = tmp_path / "shards" / "shard-b.jsonl"
        with open(victim, "ab") as fh:
            fh.write(b'{"index": 99, "outcome": "MAS')
        merged = tmp_path / "merged.jsonl"
        stats = merge_shards(
            merged, shard_paths_in(tmp_path / "shards"), key
        )
        assert stats["dropped_lines"] == 1
        assert stats["records"] == RUNS
        assert merged.read_text() == journal_path.read_text()


class TestResumeFromPartialMerge:
    def test_partial_merge_resumes_to_the_serial_result(
        self, serial, tmp_path
    ):
        """Merging only *some* shards yields a valid checkpoint; a
        campaign resumed from it replays the merged prefix and
        re-executes the rest, landing on the serial result — and on a
        journal byte-identical to the serial one modulo the re-executed
        records' wall-clock counters."""
        result, journal_path, key = serial
        prefix = tmp_path / "shards" / "shard-prefix.jsonl"
        journal = CampaignCheckpoint(journal_path)
        journal.open(key)
        journal.close()
        (tmp_path / "shards").mkdir()
        write_shard(
            prefix, key,
            [journal.outcomes[i] for i in range(RUNS // 2)],
        )
        merged = tmp_path / "merged.jsonl"
        stats = merge_shards(merged, [prefix], key)
        assert stats["records"] == RUNS // 2
        resumed = run_serial(checkpoint=str(merged))
        assert resumed.report()["robustness"]["resumed"] == RUNS // 2

        def canonical(records):
            rows = []
            for record in records:
                stats = dict(record.kernel_stats or {})
                stats.pop("wall_s", None)
                rows.append((
                    record.index, record.outcome,
                    tuple(record.matched_rules),
                    tuple(sorted(record.observation.items())),
                    tuple(sorted(stats.items())),
                ))
            return rows

        assert canonical(resumed.records) == canonical(result.records)
        assert canonical_journal(merged) == canonical_journal(journal_path)
