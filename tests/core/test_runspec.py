"""The serializable planner/executor boundary: RunSpec and RunOutcome."""

import pickle
import random

import pytest

from repro.core import (
    ErrorScenario,
    Outcome,
    PlannedInjection,
    RandomStrategy,
    RunRecord,
    RunSpec,
    execute_runspec,
    execute_runspec_from_registry,
)
from repro.core.campaign import CampaignResult
from repro.faults import SRAM_SEU
from repro.kernel import Simulator
from repro.mission import OperatingState

from .conftest import (
    airbag_classifier,
    build_airbag_platform,
    observe_airbag,
)

SEU = SRAM_SEU.with_rate(1e-6)


def make_scenario():
    return ErrorScenario(
        "flip",
        [
            PlannedInjection(
                2_000_000, "plat.params.codewords",
                SEU.with_params(address=0, bit=3),
            )
        ],
        operating_state=OperatingState("city", 0.6, {"speed": 50.0}),
        sampling_weight=1.5,
    )


class TestPickling:
    def test_scenario_round_trips(self):
        scenario = make_scenario()
        clone = pickle.loads(pickle.dumps(scenario))
        assert clone.name == scenario.name
        assert clone.injections == scenario.injections
        assert clone.operating_state.name == "city"
        assert clone.sampling_weight == 1.5

    def test_scenario_injections_are_immutable(self):
        scenario = make_scenario()
        assert isinstance(scenario.injections, tuple)

    def test_runspec_round_trips_with_golden(self):
        spec = RunSpec(
            index=3,
            scenario=make_scenario(),
            run_seed=99,
            duration=20_000_000,
            platform="airbag-normal",
            golden={"squib_fired": False, "cycles": 19},
        )
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.golden["cycles"] == 19

    def test_runspec_validation(self):
        with pytest.raises(ValueError):
            RunSpec(index=0, scenario=make_scenario(), run_seed=1, duration=0)
        with pytest.raises(ValueError):
            RunSpec(index=-1, scenario=make_scenario(), run_seed=1,
                    duration=10)


class TestExecuteRunspec:
    def golden(self):
        sim = Simulator()
        root = build_airbag_platform(sim)
        sim.run(until=20_000_000)
        return observe_airbag(root)

    def test_matches_campaign_execute_scenario(self, airbag_campaign):
        scenario = make_scenario()
        expected = airbag_campaign.execute_scenario(scenario, run_seed=5)
        spec = RunSpec(
            index=0, scenario=scenario, run_seed=5, duration=20_000_000,
            golden=self.golden(),
        )
        outcome = execute_runspec(
            spec, build_airbag_platform, observe_airbag, airbag_classifier()
        )
        assert outcome.outcome is expected[0]
        assert list(outcome.matched_rules) == expected[1]
        assert outcome.observation == expected[2]
        assert outcome.injections_applied == expected[3]

    def test_kernel_stats_attached(self):
        spec = RunSpec(
            index=0, scenario=make_scenario(), run_seed=5,
            duration=20_000_000, golden=self.golden(),
        )
        outcome = execute_runspec(
            spec, build_airbag_platform, observe_airbag, airbag_classifier()
        )
        assert outcome.kernel_stats["events"] > 0
        assert outcome.kernel_stats["process_steps"] > 0
        assert outcome.kernel_stats["delta_cycles"] > 0
        assert outcome.kernel_stats["wall_s"] > 0

    def test_missing_golden_raises(self):
        spec = RunSpec(
            index=0, scenario=make_scenario(), run_seed=5, duration=10_000,
        )
        with pytest.raises(ValueError, match="golden"):
            execute_runspec(
                spec, build_airbag_platform, observe_airbag,
                airbag_classifier(),
            )

    def test_registry_execution_needs_platform_key(self):
        spec = RunSpec(
            index=0, scenario=make_scenario(), run_seed=5, duration=10_000,
            golden={},
        )
        with pytest.raises(ValueError, match="platform key"):
            execute_runspec_from_registry(spec)


class TestPlanner:
    def test_specs_are_self_contained(self, airbag_campaign):
        from repro.core import FaultSpace

        sim = Simulator()
        space = FaultSpace(
            build_airbag_platform(sim), [SEU],
            window_start=1_000_000, window_end=10_000_000, time_bins=2,
        )
        strategy = RandomStrategy(space, faults_per_scenario=1)
        specs = airbag_campaign.plan_batch(
            strategy, random.Random(3), 4, start_index=10
        )
        assert [spec.index for spec in specs] == [10, 11, 12, 13]
        golden = airbag_campaign.golden()
        for spec in specs:
            assert spec.golden == golden
            assert spec.duration == airbag_campaign.duration
            pickle.dumps(spec)

    def test_plan_is_deterministic(self, airbag_campaign):
        from repro.core import FaultSpace

        def plan():
            sim = Simulator()
            space = FaultSpace(
                build_airbag_platform(sim), [SEU],
                window_start=1_000_000, window_end=10_000_000, time_bins=2,
            )
            strategy = RandomStrategy(space, faults_per_scenario=1)
            return airbag_campaign.plan_batch(
                strategy, random.Random(3), 4, start_index=0
            )

        first, second = plan(), plan()
        assert [s.run_seed for s in first] == [s.run_seed for s in second]
        assert [s.scenario.injections for s in first] == [
            s.scenario.injections for s in second
        ]


class TestIncrementalCounters:
    def record(self, index, outcome):
        return RunRecord(
            index, make_scenario(), outcome, [], {}, 1,
            {"events": 10, "process_steps": 5, "delta_cycles": 2,
             "wall_s": 0.25},
        )

    def test_counts_match_rescan(self):
        result = CampaignResult(duration=1000)
        outcomes = [
            Outcome.MASKED, Outcome.NO_EFFECT, Outcome.MASKED,
            Outcome.HAZARDOUS, Outcome.DETECTED_SAFE, Outcome.MASKED,
        ]
        for index, outcome in enumerate(outcomes):
            result.append(self.record(index, outcome))
        for outcome in Outcome:
            rescan = sum(1 for r in result.records if r.outcome is outcome)
            assert result.count(outcome) == rescan
        assert sum(result.outcome_histogram().values()) == result.runs

    def test_kernel_totals_accumulate(self):
        result = CampaignResult(duration=1000)
        for index in range(4):
            result.append(self.record(index, Outcome.NO_EFFECT))
        assert result.kernel_totals["events"] == 40
        assert result.kernel_totals["wall_s"] == pytest.approx(1.0)
        report = result.report()
        assert report["kernel"]["runs_per_s"] == pytest.approx(4.0)

    def test_legacy_records_without_stats(self):
        result = CampaignResult(duration=1000)
        result.append(RunRecord(0, make_scenario(), Outcome.SDC, [], {}, 1))
        assert result.count(Outcome.SDC) == 1
        assert "kernel" not in result.report()
