"""Unit tests for injection strategies (beyond the campaign tests)."""

import random

import pytest

from repro.core import (
    CoverageGuidedStrategy,
    FaultSpace,
    FaultSpaceCoverage,
    Outcome,
    RandomStrategy,
    RequirementGuidedStrategy,
    RequirementCoverage,
    SafetyRequirement,
    WeakSpotStrategy,
    derive_coverage_goals,
)
from repro.faults import FaultKind, SENSOR_OPEN_LOAD, SRAM_SEU
from repro.hw import AdcSensor, Memory, constant
from repro.kernel import Module, Simulator
from repro.mission import derive_stressor_spec, standard_passenger_car_profile
from repro.faults import STANDARD_CATALOG


def make_space(time_bins=2):
    sim = Simulator()
    top = Module("top", sim=sim)
    Memory("mem", parent=top, size=64)
    AdcSensor("sensor", parent=top, source=constant(1.0), period=1000)
    return FaultSpace(
        top, [SRAM_SEU, SENSOR_OPEN_LOAD],
        window_start=0, window_end=1000, time_bins=time_bins,
    )


class TestRandomStrategy:
    def test_scenario_sizes(self):
        space = make_space()
        strategy = RandomStrategy(space, faults_per_scenario=3)
        rng = random.Random(0)
        scenario = strategy.next_scenario(rng)
        assert scenario.fault_count == 3

    def test_invalid_fault_count(self):
        with pytest.raises(ValueError):
            RandomStrategy(make_space(), faults_per_scenario=0)

    def test_state_sampling_with_spec(self):
        profile = standard_passenger_car_profile()
        spec = derive_stressor_spec(profile, STANDARD_CATALOG)
        strategy = RandomStrategy(make_space(), spec=spec)
        rng = random.Random(1)
        names = {
            strategy.next_scenario(rng).operating_state.name
            for _ in range(100)
        }
        assert "curbstone_steering" in names  # boosted special state

    def test_sampling_weight_corrects_boost(self):
        profile = standard_passenger_car_profile()
        spec = derive_stressor_spec(profile, STANDARD_CATALOG, special_boost=10)
        strategy = RandomStrategy(make_space(), spec=spec)
        rng = random.Random(2)
        for _ in range(50):
            scenario = strategy.next_scenario(rng)
            state = scenario.operating_state
            if state.special:
                # Boosted states carry a < 1 importance weight.
                assert scenario.sampling_weight < 1.0


class TestCoverageGuided:
    def test_pins_least_covered(self):
        space = make_space()
        coverage = FaultSpaceCoverage(space)
        strategy = CoverageGuidedStrategy(space, coverage)
        rng = random.Random(0)
        seen = set()
        for _ in range(space.bin_count):
            scenario = strategy.next_scenario(rng)
            injection = scenario.injections[0]
            key = (
                injection.target_path,
                injection.descriptor.name,
                space.time_bin_of(injection.time),
            )
            assert key not in seen  # never repeats before full closure
            seen.add(key)
            coverage.record(scenario, Outcome.NO_EFFECT)
        assert coverage.closure == 1.0


class TestWeakSpot:
    def test_probe_phase_covers_every_cell_single_fault(self):
        space = make_space()
        strategy = WeakSpotStrategy(space, exploration=0.0)
        rng = random.Random(0)
        probed = set()
        for _ in range(space.bin_count):
            scenario = strategy.next_scenario(rng)
            assert scenario.fault_count == 1  # probes are single-fault
            injection = scenario.injections[0]
            probed.add(
                (
                    injection.target_path,
                    injection.descriptor.name,
                    space.time_bin_of(injection.time),
                )
            )
            strategy.feedback(scenario, Outcome.NO_EFFECT)
        assert len(probed) == space.bin_count

    def test_combination_prefers_scored_cells(self):
        space = make_space()
        strategy = WeakSpotStrategy(space, exploration=0.0)
        rng = random.Random(0)
        # Drain the probe queue with outcomes favouring the sensor.
        for _ in range(space.bin_count):
            scenario = strategy.next_scenario(rng)
            injection = scenario.injections[0]
            outcome = (
                Outcome.DETECTED_SAFE
                if "sensor" in injection.target_path
                else Outcome.NO_EFFECT
            )
            strategy.feedback(scenario, outcome)
        combo = strategy.next_scenario(rng)
        assert combo.fault_count == 2
        top = combo.injections[0]
        assert "sensor" in top.target_path  # top scorer leads

    def test_multi_fault_feedback_not_attributed(self):
        space = make_space()
        strategy = WeakSpotStrategy(space, exploration=0.0)
        from repro.core import ErrorScenario, PlannedInjection

        scenario = ErrorScenario(
            "multi",
            [
                PlannedInjection(10, "top.mem.array", SRAM_SEU),
                PlannedInjection(10, "top.sensor.frontend", SENSOR_OPEN_LOAD),
            ],
        )
        strategy.feedback(scenario, Outcome.HAZARDOUS)
        assert all(score == 0 for score in strategy._scores.values())

    def test_static_hints_skip_probes(self):
        space = make_space()
        hints = {("top.mem.array", "sram_seu"): 5.0}
        strategy = WeakSpotStrategy(space, static_hints=hints)
        assert all(
            (pair[0], pair[1].name) != ("top.mem.array", "sram_seu")
            for pair, _bin in strategy._probe_queue
        )

    def test_exploration_validation(self):
        with pytest.raises(ValueError):
            WeakSpotStrategy(make_space(), exploration=1.5)


class TestRequirementGuided:
    def make_tracker(self, space):
        requirement = SafetyRequirement(
            name="REQ",
            statement="sensor faults handled",
            target_glob="top.sensor.*",
            fault_kinds=frozenset({FaultKind.OPEN_CIRCUIT}),
        )
        coverage = FaultSpaceCoverage(space)
        goals = derive_coverage_goals([requirement], space)
        return RequirementCoverage(goals, coverage), coverage

    def test_closes_goals_in_order_then_explores(self):
        space = make_space()
        tracker, coverage = self.make_tracker(space)
        strategy = RequirementGuidedStrategy(space, tracker)
        rng = random.Random(0)
        # Two goals (two time bins): two pinned scenarios close them.
        for _ in range(2):
            scenario = strategy.next_scenario(rng)
            assert "REQ" in scenario.name
            coverage.record(scenario, Outcome.DETECTED_SAFE)
        assert strategy.closed
        explore = strategy.next_scenario(rng)
        assert "explore" in explore.name

    def test_scenarios_are_single_fault(self):
        space = make_space()
        tracker, _ = self.make_tracker(space)
        strategy = RequirementGuidedStrategy(space, tracker)
        scenario = strategy.next_scenario(random.Random(1))
        assert scenario.fault_count == 1
