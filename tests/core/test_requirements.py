"""Tests for requirement-derived coverage models."""

import pytest

from repro.core import (
    ErrorScenario,
    FaultSpace,
    FaultSpaceCoverage,
    Outcome,
    PlannedInjection,
    RequirementCoverage,
    SafetyRequirement,
    derive_coverage_goals,
)
from repro.faults import FaultKind, SENSOR_OPEN_LOAD, SRAM_SEU
from repro.hw import AdcSensor, Memory, constant
from repro.kernel import Module, Simulator


def make_space():
    sim = Simulator()
    top = Module("top", sim=sim)
    Memory("mem", parent=top, size=64)
    AdcSensor("sensor", parent=top, source=constant(1.0), period=1000)
    return FaultSpace(
        top, [SRAM_SEU, SENSOR_OPEN_LOAD],
        window_start=0, window_end=1000, time_bins=2,
    )


SENSOR_REQ = SafetyRequirement(
    name="REQ_SENSOR_FAULTS",
    statement="Open-circuit sensor faults shall be detected.",
    target_glob="top.sensor.*",
    fault_kinds=frozenset({FaultKind.OPEN_CIRCUIT}),
    max_acceptable=Outcome.DETECTED_SAFE,
)
MEMORY_REQ = SafetyRequirement(
    name="REQ_MEM_SEU",
    statement="Memory SEUs shall not corrupt outputs.",
    target_glob="top.mem.*",
    fault_kinds=frozenset({FaultKind.BIT_FLIP}),
    max_acceptable=Outcome.MASKED,
    min_injections=2,
)


class TestGoalDerivation:
    def test_goals_cover_matching_cells(self):
        space = make_space()
        goals = derive_coverage_goals([SENSOR_REQ, MEMORY_REQ], space)
        sensor_goals = [g for g in goals if g.requirement == SENSOR_REQ.name]
        memory_goals = [g for g in goals if g.requirement == MEMORY_REQ.name]
        assert len(sensor_goals) == 2  # one pair x two time bins
        assert len(memory_goals) == 2
        assert all(g.min_injections == 2 for g in memory_goals)

    def test_unmatched_requirement_rejected(self):
        space = make_space()
        ghost = SafetyRequirement(
            name="REQ_GHOST",
            statement="",
            target_glob="top.nothing.*",
            fault_kinds=frozenset({FaultKind.BIT_FLIP}),
        )
        with pytest.raises(ValueError):
            derive_coverage_goals([ghost], space)

    def test_min_injections_validated(self):
        with pytest.raises(ValueError):
            SafetyRequirement(
                name="bad", statement="", target_glob="*",
                fault_kinds=frozenset({FaultKind.BIT_FLIP}),
                min_injections=0,
            )


class TestRequirementCoverage:
    def record(self, coverage, space, target, descriptor, time, outcome):
        scenario = ErrorScenario(
            "s", [PlannedInjection(time, target, descriptor)]
        )
        coverage.record(scenario, outcome)

    def test_closure_and_verification(self):
        space = make_space()
        goals = derive_coverage_goals([SENSOR_REQ], space)
        coverage = FaultSpaceCoverage(space)
        tracker = RequirementCoverage(goals, coverage)
        assert tracker.closure == 0.0
        assert not tracker.all_verified
        assert len(tracker.open_goals()) == 2

        self.record(
            coverage, space, "top.sensor.frontend", SENSOR_OPEN_LOAD,
            100, Outcome.DETECTED_SAFE,
        )
        assert tracker.closure == 0.5
        self.record(
            coverage, space, "top.sensor.frontend", SENSOR_OPEN_LOAD,
            700, Outcome.DETECTED_SAFE,
        )
        assert tracker.closure == 1.0
        assert tracker.all_verified

    def test_violation_detected(self):
        space = make_space()
        goals = derive_coverage_goals([SENSOR_REQ], space)
        coverage = FaultSpaceCoverage(space)
        tracker = RequirementCoverage(goals, coverage)
        # The fault propagated to a hazard: requirement violated.
        self.record(
            coverage, space, "top.sensor.frontend", SENSOR_OPEN_LOAD,
            100, Outcome.HAZARDOUS,
        )
        report = tracker.requirement_report()[SENSOR_REQ.name]
        assert not report["verified"]
        assert report["violations"]
        assert "HAZARDOUS" in report["violations"][0]

    def test_min_injections_gate_coverage(self):
        space = make_space()
        goals = derive_coverage_goals([MEMORY_REQ], space)
        coverage = FaultSpaceCoverage(space)
        tracker = RequirementCoverage(goals, coverage)
        self.record(
            coverage, space, "top.mem.array", SRAM_SEU, 100, Outcome.MASKED
        )
        # One injection < min_injections=2: the cell stays open.
        statuses = {
            (s.goal.time_bin): s for s in tracker.statuses()
        }
        assert not statuses[0].covered
        self.record(
            coverage, space, "top.mem.array", SRAM_SEU, 150, Outcome.MASKED
        )
        statuses = {(s.goal.time_bin): s for s in tracker.statuses()}
        assert statuses[0].covered and statuses[0].satisfied

    def test_empty_goals_rejected(self):
        space = make_space()
        with pytest.raises(ValueError):
            RequirementCoverage([], FaultSpaceCoverage(space))

    def test_open_goals_feed_guided_strategy(self):
        space = make_space()
        goals = derive_coverage_goals([SENSOR_REQ, MEMORY_REQ], space)
        coverage = FaultSpaceCoverage(space)
        tracker = RequirementCoverage(goals, coverage)
        open_goals = tracker.open_goals()
        # The worklist names exact cells a strategy can pin.
        assert all(
            (g.target_path, g.descriptor_name) in {
                ("top.sensor.frontend", "sensor_open_load"),
                ("top.mem.array", "sram_seu"),
            }
            for g in open_goals
        )
