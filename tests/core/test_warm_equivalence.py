"""Warm-platform reuse must be invisible in campaign results.

The tentpole contract of the warm-reuse fast path: a campaign that
keeps one platform per worker and restores it with the reset protocol
(``Simulator.reset`` + the bundle ``reset`` hook) produces outcomes,
digests, and checkpoint journals **byte-identical** to one that
elaborates a fresh platform for every run.  Only wall-clock fields may
differ — they are stripped by the canonicalizers here, exactly as
``TraceDigest.canonical()`` already excludes wall time.
"""

import json

import pytest

from repro.core import Campaign, RandomStrategy
from repro.core.runspec import (
    RunSpec,
    _WARM_PLATFORMS,
    clear_warm_platforms,
    execute_runspec,
)
from repro.core.scenario import FaultSpace
from repro.faults import FaultDescriptor, FaultKind, Persistence, SRAM_SEU
from repro.kernel import Simulator, simtime
from repro.platforms import airbag, registry

STUCK_HIGH = FaultDescriptor(
    name="sensor_stuck_high",
    kind=FaultKind.STUCK_VALUE,
    persistence=Persistence.PERMANENT,
    params={"value": 4.5},
    rate_per_hour=1e-6,
)

DURATION = simtime.ms(60)


@pytest.fixture(autouse=True)
def _fresh_warm_cache():
    clear_warm_platforms()
    yield
    clear_warm_platforms()


def airbag_campaign(seed=7):
    return Campaign(duration=DURATION, seed=seed, platform="airbag-normal")


def airbag_strategy(seed=7):
    sim = Simulator()
    root = airbag.build_normal_operation(sim)
    space = FaultSpace(
        root,
        [SRAM_SEU.with_rate(5e-7), STUCK_HIGH],
        window_start=simtime.ms(5),
        window_end=simtime.ms(30),
        time_bins=2,
    )
    return RandomStrategy(space, faults_per_scenario=1)


def canonical_records(result):
    """Everything simulation-deterministic about each record.

    ``kernel_stats`` participates minus ``wall_s`` — the event /
    process-step / delta-cycle counters must match exactly (a warm
    kernel that schedules even one extra delta cycle is a reset-protocol
    bug), but wall clock never can.
    """
    rows = []
    for record in result.records:
        stats = dict(record.kernel_stats or {})
        stats.pop("wall_s", None)
        rows.append((
            record.index,
            record.outcome,
            tuple(record.matched_rules),
            tuple(sorted(record.observation.items())),
            record.injections_applied,
            tuple(sorted(stats.items())),
            record.attempts,
            record.failure,
            record.digest.canonical() if record.digest else None,
        ))
    return rows


def canonical_journal(path):
    """Journal lines with wall clock stripped (still full JSON rows)."""
    rows = []
    for line in path.read_text().splitlines():
        payload = json.loads(line)
        if isinstance(payload, dict):
            stats = payload.get("kernel_stats")
            if isinstance(stats, dict):
                stats.pop("wall_s", None)
        rows.append(payload)
    return rows


class TestWarmCampaignEquivalence:
    def test_outcomes_and_digests_byte_identical(self):
        fresh = airbag_campaign().run(
            airbag_strategy(), runs=16, trace=True, reuse_platform=False,
        )
        clear_warm_platforms()
        warm = airbag_campaign().run(
            airbag_strategy(), runs=16, trace=True, reuse_platform=True,
        )
        assert canonical_records(warm) == canonical_records(fresh)
        assert _WARM_PLATFORMS  # the warm path actually engaged

    def test_reuse_platform_false_never_caches(self):
        airbag_campaign().run(
            airbag_strategy(), runs=4, reuse_platform=False,
        )
        assert not _WARM_PLATFORMS

    def test_non_resettable_platform_never_caches(self):
        assert not registry.get_platform("hostile-dut").resettable
        assert registry.get_platform("airbag-normal").resettable

    def test_journals_byte_identical(self, tmp_path):
        fresh_path = tmp_path / "fresh.jsonl"
        warm_path = tmp_path / "warm.jsonl"
        airbag_campaign().run(
            airbag_strategy(), runs=8, trace=True, batch_size=4,
            checkpoint=str(fresh_path), reuse_platform=False,
        )
        clear_warm_platforms()
        airbag_campaign().run(
            airbag_strategy(), runs=8, trace=True, batch_size=4,
            checkpoint=str(warm_path), reuse_platform=True,
        )
        assert canonical_journal(warm_path) == canonical_journal(fresh_path)

    def test_reuse_is_not_part_of_checkpoint_identity(self, tmp_path):
        """A journal written fresh resumes under warm reuse (and the
        other way around): the flag must not change the campaign key."""
        path = tmp_path / "journal.jsonl"
        first = airbag_campaign().run(
            airbag_strategy(), runs=6, batch_size=3,
            checkpoint=str(path), reuse_platform=False,
        )
        resumed = airbag_campaign().run(
            airbag_strategy(), runs=6, batch_size=3,
            checkpoint=str(path), reuse_platform=True,
        )
        assert resumed.resumed == 6
        assert canonical_records(resumed) == canonical_records(first)


class TestWarmRunspecProtocol:
    """Runspec-level behavior of the warm cache itself."""

    def _spec(self, scenario=None, **kwargs):
        from repro.core.scenario import ErrorScenario

        campaign = airbag_campaign()
        return RunSpec(
            index=kwargs.pop("index", 0),
            scenario=scenario or ErrorScenario(name="clean", injections=[]),
            run_seed=kwargs.pop("run_seed", 1234),
            duration=DURATION,
            platform="airbag-normal",
            golden=campaign.golden(),
            **kwargs,
        )

    def _bundle(self):
        return registry.get_platform("airbag-normal")

    def test_platform_elaborated_once_and_reused(self):
        bundle = self._bundle()
        built = []

        def counting_factory(sim):
            built.append(sim)
            return bundle.factory(sim)

        classifier = bundle.classifier_factory()
        for index in range(3):
            execute_runspec(
                self._spec(index=index), counting_factory, bundle.observe,
                classifier, reset=bundle.reset,
            )
        assert len(built) == 1
        assert "airbag-normal" in _WARM_PLATFORMS

    def test_timeout_interrupted_platform_stays_warm_and_equivalent(self):
        """A run cut off by its wall-clock deadline leaves the platform
        mid-flight; the reset protocol must still restore it — the next
        run on the interrupted platform matches a fresh-build run."""
        bundle = self._bundle()
        classifier = bundle.classifier_factory()

        fresh = execute_runspec(
            self._spec(index=1, reuse_platform=False),
            bundle.factory, bundle.observe, classifier,
        )

        timed_out = execute_runspec(
            self._spec(index=0, deadline_s=1e-6),
            bundle.factory, bundle.observe, classifier, reset=bundle.reset,
        )
        assert timed_out.failure == "timeout"
        assert "airbag-normal" in _WARM_PLATFORMS  # kept, not discarded

        warm = execute_runspec(
            self._spec(index=1),
            bundle.factory, bundle.observe, classifier, reset=bundle.reset,
        )
        fresh_stats = {
            k: v for k, v in fresh.kernel_stats.items() if k != "wall_s"
        }
        warm_stats = {
            k: v for k, v in warm.kernel_stats.items() if k != "wall_s"
        }
        assert warm.outcome == fresh.outcome
        assert warm.matched_rules == fresh.matched_rules
        assert warm.observation == fresh.observation
        assert warm_stats == fresh_stats

    def test_raising_run_discards_the_warm_entry(self):
        """Unwinding with the platform in an unknown mid-run state must
        not trust the reset protocol: the cache entry is dropped and
        the next run re-elaborates."""
        bundle = self._bundle()
        classifier = bundle.classifier_factory()

        execute_runspec(
            self._spec(index=0), bundle.factory, bundle.observe,
            classifier, reset=bundle.reset,
        )
        assert "airbag-normal" in _WARM_PLATFORMS

        def raising_observe(root):
            raise RuntimeError("probe exploded")

        with pytest.raises(RuntimeError):
            execute_runspec(
                self._spec(index=1), bundle.factory, raising_observe,
                classifier, reset=bundle.reset,
            )
        assert "airbag-normal" not in _WARM_PLATFORMS

        built = []

        def counting_factory(sim):
            built.append(sim)
            return bundle.factory(sim)

        execute_runspec(
            self._spec(index=2), counting_factory, bundle.observe,
            classifier, reset=bundle.reset,
        )
        assert len(built) == 1  # re-elaborated after the discard
