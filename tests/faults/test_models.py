"""Unit tests for fault descriptors and the standard catalog."""

import pytest

from repro.faults import (
    APPLICABLE_TARGETS,
    FaultDescriptor,
    FaultKind,
    Persistence,
    SENSOR_OPEN_LOAD,
    SRAM_SEU,
    STANDARD_CATALOG,
    catalog_by_name,
    catalog_for_target,
    fit,
)


class TestDescriptor:
    def test_intermittent_needs_duration(self):
        with pytest.raises(ValueError):
            FaultDescriptor(
                name="bad",
                kind=FaultKind.NOISE_BURST,
                persistence=Persistence.INTERMITTENT,
                duration=0,
            )

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            FaultDescriptor(
                name="bad", kind=FaultKind.BIT_FLIP, rate_per_hour=-1.0
            )

    def test_applicability(self):
        assert SRAM_SEU.applicable_to("memory")
        assert SRAM_SEU.applicable_to("cpu")
        assert not SRAM_SEU.applicable_to("analog")
        assert SENSOR_OPEN_LOAD.applicable_to("analog")
        assert not SENSOR_OPEN_LOAD.applicable_to("can_wire")

    def test_with_params_is_a_copy(self):
        updated = SRAM_SEU.with_params(bit=5)
        assert updated.params["bit"] == 5
        assert "bit" not in SRAM_SEU.params
        assert updated.name == SRAM_SEU.name

    def test_with_rate(self):
        updated = SRAM_SEU.with_rate(1e-3)
        assert updated.rate_per_hour == 1e-3
        assert SRAM_SEU.rate_per_hour != 1e-3

    def test_descriptors_are_frozen(self):
        with pytest.raises(AttributeError):
            SRAM_SEU.name = "other"

    def test_every_kind_has_target_mapping(self):
        for kind in FaultKind:
            assert kind in APPLICABLE_TARGETS
            assert APPLICABLE_TARGETS[kind]


class TestCatalog:
    def test_unique_names(self):
        names = [d.name for d in STANDARD_CATALOG]
        assert len(set(names)) == len(names)

    def test_catalog_by_name(self):
        mapping = catalog_by_name()
        assert mapping["sram_seu"] is SRAM_SEU

    def test_catalog_for_target_filters(self):
        analog = catalog_for_target("analog")
        assert analog
        assert all(d.applicable_to("analog") for d in analog)
        assert SRAM_SEU not in analog

    def test_all_rates_positive(self):
        assert all(d.rate_per_hour > 0 for d in STANDARD_CATALOG)

    def test_fit_conversion(self):
        assert fit(1000.0) == pytest.approx(1e-6)
