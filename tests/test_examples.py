"""Smoke tests: every shipped example must run to completion.

Each example is executed as a subprocess exactly the way a user would
run it; "done." on stdout and a zero exit code are the contract.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_all_examples_enumerated():
    names = {path.name for path in EXAMPLES}
    assert names == {
        "quickstart.py",
        "caps_airbag.py",
        "adaptive_cruise.py",
        "steering_servo.py",
        "testbench_qualification.py",
        "lockstep_qualification.py",
        "risk_report.py",
    }


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=lambda path: path.stem
)
def test_example_runs_clean(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=str(EXAMPLES_DIR.parent),
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert "done." in completed.stdout
