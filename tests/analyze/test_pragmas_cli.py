"""Pragma suppression, reporters, and CLI exit-code contract."""

import json
import os
import pathlib
import subprocess
import sys
import textwrap

import pytest

from repro.analyze import lint_source, render_json, render_text, summarize
from repro.analyze.cli import main
from repro.analyze.linter import iter_python_files
from repro.analyze.reporters import REPORT_SCHEMA_VERSION

REPO = pathlib.Path(__file__).resolve().parents[2]
CORPUS = pathlib.Path(__file__).parent / "fixtures" / "violations.py"


def lint_snippet(snippet, **kwargs):
    return lint_source(textwrap.dedent(snippet), path="platform.py", **kwargs)


# ---------------------------------------------------------------------------
# Pragmas
# ---------------------------------------------------------------------------

def test_line_pragma_suppresses_named_code():
    assert lint_snippet(
        "t = time.time()  # vp-lint: disable=VP005 - test fixture\n"
    ) == []


def test_line_pragma_only_covers_its_own_line():
    findings = lint_snippet(
        """
        a = time.time()  # vp-lint: disable=VP005 - here only
        b = time.time()
        """
    )
    assert [f.line for f in findings] == [3]


def test_line_pragma_wrong_code_does_not_suppress():
    findings = lint_snippet(
        "t = time.time()  # vp-lint: disable=VP004\n"
    )
    assert [f.code for f in findings] == ["VP005"]


def test_line_pragma_multiple_codes_and_all():
    assert lint_snippet(
        "s = Signal(sim, 'x', 0); p = sim.spawn(g())"
        "  # vp-lint: disable=VP001,VP002\n"
    ) == []
    assert lint_snippet(
        "t = time.time()  # vp-lint: disable=all\n"
    ) == []


def test_file_pragma_suppresses_everywhere():
    assert lint_snippet(
        """
        # vp-lint: disable-file=VP005
        a = time.time()

        def later():
            return time.perf_counter()
        """
    ) == []


def test_next_line_pragma_suppresses_following_line():
    assert lint_snippet(
        """
        # vp-lint: disable-next-line=VP005 - stopwatch fixture
        t = time.time()
        """
    ) == []


def test_next_line_pragma_covers_only_the_next_line():
    findings = lint_snippet(
        """
        # vp-lint: disable-next-line=VP005
        a = time.time()
        b = time.time()
        """
    )
    assert [f.line for f in findings] == [4]


def test_next_line_pragma_wrong_code_does_not_suppress():
    findings = lint_snippet(
        """
        # vp-lint: disable-next-line=VP004
        t = time.time()
        """
    )
    assert [f.code for f in findings] == ["VP005"]


def test_next_line_pragma_composes_with_line_pragma():
    # Both scopes anchor on the same physical line: their code sets
    # union, so each can cover a different rule.
    assert lint_snippet(
        """
        # vp-lint: disable-next-line=VP005
        t = time.time(); s = Signal(sim, 'x', 0)  # vp-lint: disable=VP001
        """
    ) == []


def test_next_line_pragma_does_not_leak_into_file_scope():
    findings = lint_snippet(
        """
        # vp-lint: disable-next-line=all
        a = time.time()

        def later():
            return time.perf_counter()
        """
    )
    assert [f.line for f in findings] == [6]


def test_next_line_pragma_supports_all_and_multiple_codes():
    assert lint_snippet(
        """
        # vp-lint: disable-next-line=VP001,VP005
        t = time.time(); s = Signal(sim, 'x', 0)
        """
    ) == []
    assert lint_snippet(
        """
        # vp-lint: disable-next-line=all
        t = time.time(); s = Signal(sim, 'x', 0)
        """
    ) == []


def test_next_line_pragma_before_multiline_statement():
    # The anchor is the statement's *first* physical line, exactly as
    # the line scope would see it.
    assert lint_snippet(
        """
        # vp-lint: disable-next-line=VP009 - fresh by design
        register_platform(
            "p", build, observe, classify,
        )
        """
    ) == []


def test_multiline_statement_pragma_anchors_on_first_line():
    assert lint_snippet(
        """
        register_platform(  # vp-lint: disable=VP009 - fresh by design
            "p", build, observe, classify,
        )
        """
    ) == []


# ---------------------------------------------------------------------------
# select / ignore / severity filtering
# ---------------------------------------------------------------------------

def test_select_restricts_rules():
    snippet = "t = time.time()\nsig = Signal(sim, 'x', 0)\n"
    only_vp001 = lint_snippet(snippet, select=["VP001"])
    assert [f.code for f in only_vp001] == ["VP001"]


def test_ignore_drops_rules():
    snippet = "t = time.time()\nsig = Signal(sim, 'x', 0)\n"
    findings = lint_snippet(snippet, ignore=["vp005"])
    assert [f.code for f in findings] == ["VP001"]


def test_unknown_select_code_raises():
    with pytest.raises(ValueError, match="VP999"):
        lint_snippet("x = 1\n", select=["VP999"])


# ---------------------------------------------------------------------------
# Reporters
# ---------------------------------------------------------------------------

def test_text_report_lists_findings_and_summary():
    findings = lint_snippet("t = time.time()\n")
    text = render_text(findings, files_checked=1)
    assert "platform.py:1:5: VP005 [error]" in text
    assert "vp-lint: 1 finding(s) in 1 file(s) (VP005: 1)" in text
    assert render_text([], files_checked=3) == "vp-lint: 3 file(s) clean"


def test_json_report_schema():
    findings = lint_snippet("t = time.time()\n")
    payload = json.loads(render_json(findings, files_checked=1))
    assert payload["schema"] == REPORT_SCHEMA_VERSION
    assert payload["tool"] == "vp-lint"
    assert payload["files_checked"] == 1
    assert payload["summary"] == summarize(findings)
    (entry,) = payload["findings"]
    assert entry["code"] == "VP005"
    assert entry["severity"] == "error"
    assert entry["line"] == 1
    # The embedded rule table lets dashboards resolve codes offline.
    assert any(row["code"] == "VP005" for row in payload["rules"])


# ---------------------------------------------------------------------------
# CLI: exit codes and outputs
# ---------------------------------------------------------------------------

def test_cli_exit_zero_on_clean_tree(tmp_path, capsys):
    (tmp_path / "ok.py").write_text("x = 1\n", encoding="utf-8")
    assert main([str(tmp_path)]) == 0
    assert "1 file(s) clean" in capsys.readouterr().out


def test_cli_exit_one_on_corpus(capsys):
    assert main([str(CORPUS)]) == 1
    out = capsys.readouterr().out
    assert "VP001" in out and "VP010" in out


def test_cli_min_severity_error_drops_warnings(tmp_path, capsys):
    (tmp_path / "warn.py").write_text(
        "register_platform('p', b, o, c)\n", encoding="utf-8"
    )
    assert main([str(tmp_path)]) == 1
    assert main([str(tmp_path), "--min-severity", "error"]) == 0
    capsys.readouterr()


def test_cli_json_output_artifact(tmp_path, capsys):
    report = tmp_path / "report.json"
    code = main([str(CORPUS), "--format", "json", "--json-output", str(report)])
    assert code == 1
    stdout_payload = json.loads(capsys.readouterr().out)
    file_payload = json.loads(report.read_text(encoding="utf-8"))
    assert file_payload == stdout_payload
    assert file_payload["summary"]["total"] > 0


def test_cli_select_and_ignore(capsys):
    assert main([str(CORPUS), "--select", "VP010"]) == 1
    out = capsys.readouterr().out
    assert "VP010" in out and "VP001" not in out
    assert main([str(CORPUS), "--ignore", ",".join(
        f"VP{n:03d}" for n in range(1, 14)
    )]) == 0
    capsys.readouterr()


def test_cli_usage_error_on_missing_path(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["does-not-exist-anywhere"])
    assert exc.value.code == 2
    assert "vp-lint: error" in capsys.readouterr().err


def test_cli_usage_error_on_unknown_code(capsys):
    with pytest.raises(SystemExit) as exc:
        main([str(CORPUS), "--select", "VP999"])
    assert exc.value.code == 2
    capsys.readouterr()


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in (f"VP{n:03d}" for n in range(1, 13)):
        assert code in out


def test_module_entry_point_subprocess():
    """`python -m repro.analyze` is the documented invocation."""
    result = subprocess.run(
        [sys.executable, "-m", "repro.analyze", str(CORPUS)],
        capture_output=True, text=True, cwd=str(REPO),
        env={**os.environ, "PYTHONPATH": str(REPO / "src")},
    )
    assert result.returncode == 1
    assert "VP001" in result.stdout


def test_iter_python_files_deduplicates(tmp_path):
    (tmp_path / "a.py").write_text("x = 1\n", encoding="utf-8")
    files = iter_python_files([tmp_path, tmp_path / "a.py"])
    assert files == [tmp_path / "a.py"]
