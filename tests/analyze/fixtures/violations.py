"""Deliberate VP-lint violation corpus — at least one hit per rule.

This file is *never imported by the product*; the test suite and the
CI analysis job lint it to prove (a) every registered rule code fires
on real syntax and (b) the CLI exits nonzero when findings exist.  If
you add a rule VP0xx, add a violation here — `test_lint_rules.py`
asserts corpus coverage equals the registry.

All violations live inside function bodies so that even an accidental
import of this module executes nothing hazardous.
"""

import random
import socket
import sys
import threading
import time
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro.core.runspec import RunSpec
from repro.kernel import Signal
from repro.platforms.registry import register_platform

#: Module-level mutable container: VP003 bait when used as an initial.
SHARED_INITIAL = []


def build_outside_module(sim):
    leaked = Signal(sim, "leaked", 0)  # VP001
    aliased = Signal(sim, "aliased", SHARED_INITIAL)  # VP001 + VP003
    sim.spawn(_driver(leaked))  # VP002
    return leaked, aliased


def _driver(signal):
    yield 1
    signal.write(random.random())  # VP004
    yield 1
    signal.write(time.time())  # VP005


def unseeded_source():
    return random.Random()  # VP004 (seedless instance)


def peek_kernel_state(sim, signal):
    leaked_registry = sim._signals  # VP006
    return leaked_registry, signal._value  # VP006


def swallow_everything(action):
    try:
        return action()
    except Exception:  # VP007: no DeadlineExceeded re-raise anywhere
        return None


def build_unpicklable_spec(scenario):
    return RunSpec(
        index=0,
        scenario=scenario,
        run_seed=0,
        duration=1,
        golden=lambda: {},  # VP008
    )


def register_without_reset(factory, observe, classifier_factory):
    register_platform(  # VP009: no reset= hook, no pragma rationale
        "corpus-unresettable", factory, observe, classifier_factory,
    )


def bail_out_of_the_campaign():
    sys.exit(3)  # VP010


def register_without_snapshot_hooks(
    factory, observe, classifier_factory, reset
):
    register_platform(  # VP011: reset= without capture_state=
        "corpus-forkless", factory, observe, classifier_factory,
        reset=reset,
    )


def hand_rolled_execution(specs, target, endpoint):
    pool = ProcessPoolExecutor(4)  # VP013 (bypasses make_executor)
    agent = threading.Thread(target=target)  # VP013
    link = socket.create_connection(endpoint)  # VP013
    return pool, agent, link


def numpy_global_draws():
    noise = np.random.normal(0.0, 1.0)  # VP012 (global numpy RNG)
    generator = np.random.default_rng()  # VP012 (seedless Generator)
    return noise, generator
