"""Soundness gate: the static cone over-approximates dynamic truth.

For every built-in platform we run a seeded traced campaign and check
that every fault→detection edge the dynamic :class:`PropagationGraph`
observed is *predicted* by the static reach analysis: the detecting
mechanism must be in ``site_mechanisms(path)`` for the injected site.
A single escape — a dynamic detection the cone ruled out — would make
reachability pruning unsound, so this suite runs in CI as a merge
gate.

The airbag campaign is additionally required to be non-vacuous (it
must actually produce detection paths); the other platforms have no
hook-bus detectors, so their check holds trivially — which is itself
worth pinning, since a future detector added to those platforms will
immediately fall under the gate.
"""

import pytest

from repro.analyze.reach import analyze_platform
from repro.core import Campaign, RandomStrategy
from repro.core.scenario import FaultSpace
from repro.faults import STANDARD_CATALOG
from repro.kernel import Simulator, simtime
from repro.platforms import hostile
from repro.platforms.registry import get_platform

#: Per-platform campaign shape: (duration, window, runs, extra
#: descriptors beyond the standard catalogue).  Run counts are sized
#: to keep the gate under a few seconds while still exercising every
#: injection-point kind the platform exposes.
CONFIGS = {
    "airbag-normal": (simtime.ms(60), (simtime.ms(5), simtime.ms(30)), 40, ()),
    "airbag-crash": (simtime.ms(150), (simtime.ms(5), simtime.ms(60)), 12, ()),
    "acc": (simtime.ms(600), (simtime.ms(10), simtime.ms(400)), 6, ()),
    "steering": (simtime.ms(400), (simtime.ms(10), simtime.ms(300)), 6, ()),
    # CRASH/LIVELOCK are deliberately absent: they exist to kill or
    # hang workers, which is the fault-tolerance suite's business.
    "hostile-dut": (
        hostile.DURATION, (2 * hostile.TICK, 20 * hostile.TICK), 6,
        (hostile.RAISE,),
    ),
}


def traced_result(name, seed=7):
    duration, (start, end), runs, extra = CONFIGS[name]
    campaign = Campaign(duration=duration, seed=seed, platform=name)
    root = get_platform(name).factory(Simulator())
    space = FaultSpace(
        root,
        list(STANDARD_CATALOG) + list(extra),
        window_start=start,
        window_end=end,
        time_bins=2,
    )
    strategy = RandomStrategy(space, faults_per_scenario=1)
    return campaign.run(strategy, runs=runs, trace=True)


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_every_dynamic_detection_is_in_the_static_cone(name):
    report = analyze_platform(name)
    result = traced_result(name)
    escapes = []
    for site, mechanism, _latency in result.propagation().detection_paths:
        # Dynamic sites are "<target_path>:<descriptor_name>".
        path = site.rsplit(":", 1)[0]
        if mechanism not in report.site_mechanisms(path):
            escapes.append((path, mechanism))
    assert not escapes, (
        f"{name}: dynamic detections escaped the static cone: {escapes}"
    )


def test_airbag_gate_is_not_vacuous():
    # The soundness check only means something if the dynamic side
    # produces detection edges to compare against.
    result = traced_result("airbag-normal")
    assert result.propagation().detection_paths


def test_static_detectors_cover_dynamic_mechanisms():
    # Every mechanism the dynamic graph ever names must be a mechanism
    # the static analysis knows a detector for — otherwise
    # site_mechanisms() could never have predicted it.
    report = analyze_platform("airbag-normal")
    result = traced_result("airbag-normal")
    dynamic = {m for _, m, _ in result.propagation().detection_paths}
    assert dynamic <= set(report.detectors)
