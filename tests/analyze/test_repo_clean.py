"""The repository self-check: VP-lint must pass over its own tree.

This is the CI gate in test form — `python -m repro.analyze src
examples` exits 0 — plus the false-positive property: every registered
platform's source module (the code VP-lint most directly targets)
lints clean, for any rule subset the analyzer is asked to run.
"""

import inspect
import pathlib

from hypothesis import given, settings, strategies as st

from repro.analyze import RULES, lint_file, lint_paths, rule_table
from repro.analyze.cli import main
from repro.platforms import registry

REPO = pathlib.Path(__file__).resolve().parents[2]


def test_repo_tree_is_lint_clean():
    findings, files_checked = lint_paths(
        [REPO / "src", REPO / "examples"]
    )
    assert findings == [], "\n".join(f.render() for f in findings)
    assert files_checked > 100  # the whole tree, not a subset


def test_cli_self_check_exit_code(capsys):
    assert main([str(REPO / "src"), str(REPO / "examples")]) == 0
    assert "clean" in capsys.readouterr().out


def _platform_source_files():
    files = set()
    for name in registry.available_platforms():
        bundle = registry.get_platform(name)
        for fn in (bundle.factory, bundle.observe):
            source = inspect.getsourcefile(fn)
            if source is not None:
                files.add(pathlib.Path(source))
    return sorted(files)


@settings(max_examples=30, deadline=None)
@given(
    platform=st.sampled_from(sorted(registry.available_platforms())),
    select=st.one_of(
        st.none(),
        st.sets(st.sampled_from(sorted(RULES)), min_size=1).map(sorted),
    ),
)
def test_no_false_positives_on_registered_platforms(platform, select):
    """Zero findings on every registered platform's source, under any
    rule subset — selection must only ever *remove* findings."""
    bundle = registry.get_platform(platform)
    source = inspect.getsourcefile(bundle.factory)
    assert source is not None
    findings = lint_file(source, select=select)
    assert findings == [], "\n".join(f.render() for f in findings)


def test_platform_sources_exist_and_are_covered():
    files = _platform_source_files()
    assert files, "no registered platforms resolved to source files"
    for path in files:
        assert path.exists()
        assert lint_file(path) == []


def test_rule_table_is_stable_and_documented():
    table = rule_table()
    codes = [row["code"] for row in table]
    assert codes == sorted(RULES)
    assert codes == [f"VP{n:03d}" for n in range(1, len(codes) + 1)]
    for row in table:
        assert row["summary"], f"{row['code']} has no summary"
        assert row["severity"] in ("error", "warning")
