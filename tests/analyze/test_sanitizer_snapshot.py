"""Sanitizer evidence must survive kernel snapshot/restore.

:meth:`Simulator.reset` already has this contract (race reports are
*evidence*, the kernel's lifecycle is not theirs — see
``test_reset_keeps_evidence_and_rearms``).  Snapshot-fork execution
(`Simulator.snapshot()` / ``restore()``) rewinds the same kernel the
same way, so a mid-campaign restore must not launder away races the
sanitizer already proved: a platform that raced in the fault-free
prefix keeps that report across every fork replay, while the
in-flight ``_writes`` staging table is cleared (staged writes belong
to the abandoned timeline).
"""

import functools

from repro.kernel import Module, Simulator

CYCLES = 8


class RacyPlatform(Module):
    """Three factory-spawned writers race on ``bus`` every cycle —
    snapshot-compatible twin of the fixture in test_sanitizer.py."""

    def __init__(self, sim, cycles=CYCLES):
        super().__init__("racy", sim=sim)
        self.cycles = cycles
        self.bus = self.signal("bus", 0)
        for tag in (1, 2, 3):
            self.process(functools.partial(self._writer, tag),
                         name=f"writer{tag}")

    def _writer(self, tag):
        for _ in range(self.cycles):
            self.bus.write(self.bus.read() * 4 + tag)
            yield 1


def raced_simulator():
    sim = Simulator(sanitize=True)
    RacyPlatform(sim)
    sim.run(until=CYCLES + 1)
    assert sim.sanitizer.race_count > 0
    return sim


def test_reports_survive_snapshot_and_restore():
    sim = raced_simulator()
    before_reports = list(sim.sanitizer.reports)
    before_count = sim.sanitizer.race_count
    state = sim.snapshot()
    sim.restore(state)
    # Same list objects, same counters: nothing was re-derived or lost.
    assert sim.sanitizer.reports == before_reports
    assert sim.sanitizer.race_count == before_count


def test_restore_clears_staged_writes_only():
    sim = raced_simulator()
    state = sim.snapshot()
    sim.restore(state)
    # The write-staging table tracks the abandoned timeline's current
    # delta; it must restart empty so the first post-restore delta
    # cannot pair a stale writer with a fresh one.
    assert sim.sanitizer._writes == {}  # vp-lint: disable=VP006 - asserting the reset contract of analyzer-internal state


def test_restored_run_accumulates_new_evidence():
    sim = Simulator(sanitize=True)
    RacyPlatform(sim)
    sim.run(until=3)
    prefix = sim.sanitizer.race_count
    assert prefix > 0
    state = sim.snapshot()  # mid-run: writers still have cycles left
    sim.run(until=CYCLES + 1)
    full = sim.sanitizer.race_count
    gained = full - prefix
    assert gained > 0
    sim.restore(state)
    sim.run(until=CYCLES + 1)
    # The replayed suffix races on top of the preserved evidence: the
    # count keeps growing past the first timeline's total, while the
    # report list stays deduped by writer pair.
    assert sim.sanitizer.race_count > full
    assert len(sim.sanitizer.reports) == 2


def test_snapshot_roundtrip_matches_reset_semantics():
    # reset() and restore() go through the same on_reset() hook; a
    # raced kernel reports the same evidence whichever rewind is used.
    via_reset = raced_simulator()
    via_reset.reset()
    via_restore = raced_simulator()
    via_restore.restore(via_restore.snapshot())
    assert (
        via_reset.sanitizer.race_count == via_restore.sanitizer.race_count
    )
    assert (
        [r.writers for r in via_reset.sanitizer.reports]
        == [r.writers for r in via_restore.sanitizer.reports]
    )
