"""CLI input validation: unknown rule codes fail loudly, and the
``reach`` subcommand's exit-code/reporting contract."""

import json
import pathlib

import pytest

from repro.analyze.cli import main
from repro.analyze.linter import lint_source
from repro.analyze.rules import RULES

CORPUS = pathlib.Path(__file__).parent / "fixtures" / "violations.py"


# ---------------------------------------------------------------------------
# --select / --ignore validation
# ---------------------------------------------------------------------------

def test_unknown_select_exits_2_and_lists_known_codes(capsys):
    with pytest.raises(SystemExit) as exc:
        main([str(CORPUS), "--select", "VP999"])
    assert exc.value.code == 2
    err = capsys.readouterr().err
    assert "unknown rule code(s) in --select: VP999" in err
    for code in RULES:
        assert code in err  # the full known-code list is printed


def test_unknown_ignore_exits_2(capsys):
    with pytest.raises(SystemExit) as exc:
        main([str(CORPUS), "--ignore", "VP0009"])
    assert exc.value.code == 2
    err = capsys.readouterr().err
    assert "unknown rule code(s) in --ignore: VP0009" in err


def test_mixed_known_and_unknown_codes_still_rejected(capsys):
    with pytest.raises(SystemExit) as exc:
        main([str(CORPUS), "--ignore", "VP001,VP998,VP997"])
    assert exc.value.code == 2
    err = capsys.readouterr().err
    assert "VP997, VP998" in err and "VP001," not in err.split(";")[0]


def test_api_level_unknown_ignore_raises():
    # The old behavior silently no-opped, hiding typos.
    with pytest.raises(ValueError, match="VP999"):
        lint_source("x = 1\n", ignore=["VP999"])


def test_known_codes_are_case_insensitive():
    assert lint_source("t = time.time()\n", ignore=["vp005"]) == []


# ---------------------------------------------------------------------------
# reach subcommand
# ---------------------------------------------------------------------------

def test_reach_text_report(capsys):
    assert main(["reach", "--platform", "airbag-normal"]) == 0
    out = capsys.readouterr().out
    assert "airbag-normal" in out
    assert "coverage[" in out


def test_reach_defaults_to_every_registered_platform(capsys):
    assert main(["reach"]) == 0
    out = capsys.readouterr().out
    for name in ("airbag-normal", "airbag-crash", "acc", "steering"):
        assert name in out


def test_reach_json_format(capsys):
    assert main(["reach", "--platform", "airbag-normal",
                 "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["tool"] == "vp-reach"
    (audit,) = payload["platforms"]
    assert audit["platform"] == "airbag-normal"
    assert audit["surface_known"] is True
    assert audit["dead_sites"] == []


def test_reach_json_output_artifact(tmp_path, capsys):
    artifact = tmp_path / "reach.json"
    assert main(["reach", "--platform", "acc",
                 "--json-output", str(artifact)]) == 0
    capsys.readouterr()
    payload = json.loads(artifact.read_text(encoding="utf-8"))
    assert payload["platforms"][0]["surface_known"] is False


def test_reach_unknown_platform_exits_2(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["reach", "--platform", "no-such-platform"])
    assert exc.value.code == 2
    assert "vp-reach: error" in capsys.readouterr().err


def test_reach_fail_on_gaps_is_clean_for_builtins(capsys):
    # The built-in platforms must stay gap-free: this is the same
    # check CI runs as a merge gate.
    assert main(["reach", "--fail-on-gaps"]) == 0
    capsys.readouterr()
