"""Regression tests: DeadlineExceeded must re-raise through the three
formerly-broad handlers (mutation engine, binary engine, stressor).

Before this PR each of these swallowed ``DeadlineExceeded`` into its
local failure bookkeeping ("mutant killed", "injection error"), so a
run that blew its wall-clock budget kept executing instead of
degrading to the TIMEOUT record the fault-tolerance layer expects.
"""

import types

import pytest

from repro.core.scenario import ErrorScenario
from repro.core.stressor import Stressor
from repro.kernel import DeadlineExceeded, Module, ProcessError, Simulator
from repro.mutation.binary import BinaryMutationEngine
from repro.mutation.engine import _detects

DEADLINE = DeadlineExceeded(0.25, 1234)


# ---------------------------------------------------------------------------
# repro.mutation.engine._detects
# ---------------------------------------------------------------------------

def test_engine_detects_reraises_deadline():
    def testbench(fn):
        raise DeadlineExceeded(0.25, 99)

    with pytest.raises(DeadlineExceeded):
        _detects(testbench, lambda: None)


def test_engine_detects_still_counts_crash_and_assert_as_killed():
    def crashing(fn):
        raise RuntimeError("dut exploded")

    def asserting(fn):
        raise AssertionError("mismatch")

    assert _detects(crashing, lambda: None) is True
    assert _detects(asserting, lambda: None) is True
    assert _detects(lambda fn: False, lambda: None) is False


# ---------------------------------------------------------------------------
# repro.mutation.binary.BinaryMutationEngine._detects
# ---------------------------------------------------------------------------

def _binary_detects(testbench):
    stub = types.SimpleNamespace(testbench=testbench)
    return BinaryMutationEngine._detects(stub, b"\x00\x00")


def test_binary_detects_reraises_deadline():
    def testbench(image):
        raise DeadlineExceeded(0.25, 99)

    with pytest.raises(DeadlineExceeded):
        _binary_detects(testbench)


def test_binary_detects_still_counts_crash_as_detection():
    def crashing(image):
        raise ValueError("trap")

    assert _binary_detects(crashing) is True
    assert _binary_detects(lambda image: True) is True


# ---------------------------------------------------------------------------
# repro.core.stressor.Stressor._inject_at
# ---------------------------------------------------------------------------

def _armed_stressor(monkeypatch, exc):
    def failing_apply_fault(descriptor, target_path, point, sim, rng):
        raise exc

    monkeypatch.setattr(
        "repro.core.stressor.apply_fault", failing_apply_fault
    )
    sim = Simulator()
    top = Module("top", sim=sim)
    return sim, Stressor("stressor", parent=top, platform_root=top)


def test_stressor_reraises_deadline(monkeypatch):
    sim, stressor = _armed_stressor(monkeypatch, DEADLINE)
    planned = types.SimpleNamespace(
        time=0,
        descriptor=types.SimpleNamespace(name="bitflip"),
        target_path="top.mem",
    )
    gen = stressor._inject_at(planned, point=None)
    with pytest.raises(DeadlineExceeded):
        next(gen)
    # Nothing was recorded: the abort is not an "injection error".
    assert stressor.errors == []
    assert stressor.applied == []


def test_stressor_deadline_aborts_the_run(monkeypatch):
    """End to end through the kernel: the injection process dies with
    DeadlineExceeded and the run surfaces it, instead of limping on."""
    sim, stressor = _armed_stressor(monkeypatch, DEADLINE)
    planned = types.SimpleNamespace(
        time=2,
        descriptor=types.SimpleNamespace(name="bitflip"),
        target_path="top.mem",
    )
    sim.spawn(stressor._inject_at(planned, point=None))  # vp-lint: disable=VP002 - throwaway test kernel
    with pytest.raises(ProcessError) as exc:
        sim.run(until=10)
    assert isinstance(exc.value.original, DeadlineExceeded)
    assert stressor.errors == []


def test_stressor_ordinary_errors_stay_recorded(monkeypatch):
    """The narrowing must not change the tolerant path: mundane
    injection failures are still recorded, never fatal."""
    sim, stressor = _armed_stressor(monkeypatch, KeyError("no such target"))
    scenario = ErrorScenario("broken", [])
    stressor.arm(scenario)
    planned = types.SimpleNamespace(
        time=0,
        descriptor=types.SimpleNamespace(name="bitflip"),
        target_path="top.mem",
    )
    gen = stressor._inject_at(planned, point=None)
    with pytest.raises(StopIteration):
        next(gen)
    assert len(stressor.errors) == 1
    assert "top.mem/bitflip" in stressor.errors[0]
