"""Delta-race sanitizer and order-sensitivity checker.

The racy fixture platform has three processes writing one signal in
the same delta cycle every simulated time unit: the committed value is
whatever the *last* scheduled writer staged, i.e. pure scheduling
accident.  The write-write detector must flag it, and the
order-sensitivity prober must show digest divergence under permuted
runnable queues.  Well-formed platforms (single writer per signal per
delta) must stay clean under both.
"""

import functools

import pytest

from repro.analyze import (
    DeltaRaceError,
    DeltaRaceSanitizer,
    SanitizeConfig,
    check_order_sensitivity,
    resolve_sanitize,
)
from repro.core.classification import Classifier
from repro.kernel import Module, ProcessError, Simulator
from repro.platforms.registry import PlatformBundle
from repro.platforms import registry
from repro.kernel import simtime

CYCLES = 8


class RacyPlatform(Module):
    """Three writers race on ``bus`` every cycle; ``out`` accumulates
    the committed (order-dependent) values."""

    def __init__(self, sim, cycles=CYCLES):
        super().__init__("racy", sim=sim)
        self.cycles = cycles
        self.bus = self.signal("bus", 0)
        self.out = self.signal("out", 0)
        for tag in (1, 2, 3):
            # Factory-spawned so Simulator.reset() can restart them.
            self.process(functools.partial(self._writer, tag),
                         name=f"writer{tag}")
        self.process(self._collector, name="collector")

    def _writer(self, tag):
        for _ in range(self.cycles):
            self.bus.write(self.bus.read() * 4 + tag)
            yield 1

    def _collector(self):
        for _ in range(self.cycles):
            yield 1
            self.out.write(self.out.read() * 10 + self.bus.read() % 7)


class CleanPlatform(Module):
    """Single driver per signal: no races by construction."""

    def __init__(self, sim, cycles=CYCLES):
        super().__init__("clean", sim=sim)
        self.cycles = cycles
        self.bus = self.signal("bus", 0)
        self.process(self._driver(), name="driver")

    def _driver(self):
        for step in range(self.cycles):
            self.bus.write(step)
            # Re-staging from the *same* process in one delta is
            # ordinary last-write-wins, not a race.
            self.bus.write(step * 2)
            yield 1


def racy_bundle(cycles=CYCLES):
    return PlatformBundle(
        name="racy-fixture",
        factory=lambda sim: RacyPlatform(sim, cycles=cycles),
        observe=lambda root: {"bus": root.bus.read(), "out": root.out.read()},
        classifier_factory=Classifier,
        trace_signals=lambda root: {"bus": root.bus, "out": root.out},
    )


# ---------------------------------------------------------------------------
# Write-write detection
# ---------------------------------------------------------------------------

def test_racy_platform_is_flagged():
    sim = Simulator(sanitize=True)
    RacyPlatform(sim)
    sim.run(until=CYCLES + 1)
    sanitizer = sim.sanitizer
    assert not sanitizer.clean
    # Three writers racing pairwise in scheduling order -> two
    # distinct (signal, first, second) pairs, re-hit every cycle.
    assert len(sanitizer.reports) == 2
    assert sanitizer.race_count == 2 * CYCLES
    race = sanitizer.reports[0]
    assert race.signal.endswith("bus")
    first, second = race.writers
    assert first != second
    assert "writer" in first and "writer" in second
    assert race.values[0] != race.values[1]
    rendered = race.render()
    assert "delta-race" in rendered and "scheduling" in rendered


def test_clean_platform_stays_clean():
    sim = Simulator(sanitize=True)
    CleanPlatform(sim)
    sim.run(until=CYCLES + 1)
    assert sim.sanitizer.clean
    assert sim.sanitizer.race_count == 0


def test_elaboration_and_testbench_writes_never_race():
    sim = Simulator(sanitize=True)
    top = Module("top", sim=sim)
    sig = top.signal("cfg", 0)
    # No process is stepping here: these are construction-order
    # deterministic testbench writes.
    sig.write(1)
    sig.write(2)
    sim.run(until=5)
    assert sim.sanitizer.clean


def test_raise_mode_surfaces_as_process_error():
    sim = Simulator(sanitize=SanitizeConfig(on_race="raise"))
    RacyPlatform(sim)
    with pytest.raises(ProcessError) as exc:
        sim.run(until=CYCLES + 1)
    assert isinstance(exc.value.original, DeltaRaceError)
    assert exc.value.original.race.signal.endswith("bus")


def test_report_is_json_ready():
    sim = Simulator(sanitize=True)
    RacyPlatform(sim)
    sim.run(until=CYCLES + 1)
    payload = sim.sanitizer.report()
    assert payload["distinct"] == len(payload["races"]) == 2
    assert payload["race_count"] == 2 * CYCLES
    for race in payload["races"]:
        assert set(race) == {"signal", "writers", "time", "delta", "values"}


def test_reset_keeps_evidence_and_rearms():
    sim = Simulator(sanitize=True)
    RacyPlatform(sim)
    sim.run(until=CYCLES + 1)
    before = sim.sanitizer.race_count
    assert before > 0
    sim.reset()
    assert sim.sanitizer.race_count == before  # evidence survives reset
    sim.run(until=CYCLES + 1)
    assert sim.sanitizer.race_count == 2 * before


def test_env_var_arms_the_sanitizer(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert Simulator().sanitizer is not None
    monkeypatch.setenv("REPRO_SANITIZE", "0")
    assert Simulator().sanitizer is None
    monkeypatch.delenv("REPRO_SANITIZE")
    assert Simulator().sanitizer is None


def test_shared_sanitizer_watches_multiple_kernels():
    shared = DeltaRaceSanitizer()
    for _ in range(2):
        sim = Simulator(sanitize=shared)
        assert sim.sanitizer is shared
        RacyPlatform(sim)
        sim.run(until=CYCLES + 1)
    assert shared.race_count == 2 * (2 * CYCLES)


def test_max_reports_bounds_the_list():
    sim = Simulator(sanitize=SanitizeConfig(max_reports=1))
    RacyPlatform(sim)
    sim.run(until=CYCLES + 1)
    assert len(sim.sanitizer.reports) == 1
    assert sim.sanitizer.race_count == 2 * CYCLES


def test_config_validation():
    with pytest.raises(ValueError):
        SanitizeConfig(on_race="explode")
    with pytest.raises(ValueError):
        SanitizeConfig(max_reports=0)
    with pytest.raises(TypeError):
        resolve_sanitize("yes")
    assert resolve_sanitize(None) is None
    assert resolve_sanitize(False) is None
    assert isinstance(resolve_sanitize(True), DeltaRaceSanitizer)


# ---------------------------------------------------------------------------
# Built-in platforms: the CI self-check
# ---------------------------------------------------------------------------

_SELF_CHECK_DURATION = {
    "airbag-normal": simtime.ms(60),
    "airbag-crash": simtime.ms(60),
    "acc": simtime.ms(60),
    "steering": simtime.ms(40),
    "hostile-dut": 10_000,
}


@pytest.mark.parametrize("name", sorted(registry.available_platforms()))
def test_builtin_platforms_are_sanitizer_clean(name):
    bundle = registry.get_platform(name)
    sim = Simulator(sanitize=True)
    bundle.factory(sim)
    sim.run(until=_SELF_CHECK_DURATION.get(name, 10_000))
    assert sim.sanitizer.clean, (
        f"{name}: " + "; ".join(r.render() for r in sim.sanitizer.reports)
    )


# ---------------------------------------------------------------------------
# Order-sensitivity probing
# ---------------------------------------------------------------------------

def test_racy_platform_is_order_sensitive():
    report = check_order_sensitivity(
        racy_bundle(), duration=CYCLES + 2, permutations=4,
    )
    assert report.order_sensitive
    assert report.divergent
    assert set(report.divergent) <= {1000 + k for k in range(4)}
    assert "diverged" in report.render()
    # The baseline (unshuffled) probe reproduces default execution.
    assert report.baseline.order_seed is None


def test_order_probes_are_reproducible():
    first = check_order_sensitivity(
        racy_bundle(), duration=CYCLES + 2, permutations=3,
    )
    second = check_order_sensitivity(
        racy_bundle(), duration=CYCLES + 2, permutations=3,
    )
    assert first.divergent == second.divergent
    assert [p.canonical for p in first.probes] == [
        p.canonical for p in second.probes
    ]


def test_order_insensitive_platform_stays_byte_identical():
    report = check_order_sensitivity(
        "airbag-normal", duration=simtime.ms(10), permutations=2,
    )
    assert not report.order_sensitive
    assert "byte-identical" in report.render()


def test_order_seed_shuffle_is_deterministic_per_seed():
    def final_bus(order_seed):
        sim = Simulator(order_seed=order_seed)
        root = RacyPlatform(sim)
        sim.run(until=CYCLES + 1)
        return root.bus.read()

    assert final_bus(7) == final_bus(7)
    assert final_bus(8) == final_bus(8)


def test_order_check_rejects_bad_permutations():
    with pytest.raises(ValueError):
        check_order_sensitivity(racy_bundle(), permutations=0)
