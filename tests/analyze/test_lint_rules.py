"""Per-rule VP-lint unit tests plus the violation-corpus contract."""

import pathlib
import textwrap

from repro.analyze import RULES, lint_file, lint_source
from repro.analyze.findings import ERROR, WARNING

CORPUS = pathlib.Path(__file__).parent / "fixtures" / "violations.py"


def codes(findings):
    return [f.code for f in findings]


def lint_snippet(snippet, path="platform.py", **kwargs):
    return lint_source(textwrap.dedent(snippet), path=path, **kwargs)


# ---------------------------------------------------------------------------
# One test per rule: minimal triggering snippet + a clean counterpart.
# ---------------------------------------------------------------------------

def test_vp001_direct_channel_construction():
    findings = lint_snippet("sig = Signal(sim, 'x', 0)\n")
    assert codes(findings) == ["VP001"]
    assert findings[0].severity == ERROR
    assert lint_snippet("sig = self.signal('x', 0)\n") == []


def test_vp001_covers_wire_and_clock():
    assert codes(lint_snippet("w = Wire(sim, 'w')\n")) == ["VP001"]
    assert codes(lint_snippet("c = Clock(sim, 'clk', 10)\n")) == ["VP001"]


def test_vp002_direct_spawn():
    findings = lint_snippet("proc = sim.spawn(gen())\n")
    assert codes(findings) == ["VP002"]
    assert lint_snippet("proc = self.process(gen())\n") == []


def test_vp003_shared_mutable_initial():
    findings = lint_snippet(
        """
        SHARED = []

        def build(module):
            return module.signal("buf", SHARED)
        """
    )
    assert codes(findings) == ["VP003"]
    assert findings[0].severity == WARNING
    # A local container, or a copy of the global, is fine.
    assert lint_snippet(
        """
        SHARED = []

        def build(module):
            return module.signal("buf", list(SHARED))
        """
    ) == []


def test_vp004_global_rng():
    assert codes(lint_snippet("x = random.random()\n")) == ["VP004"]
    assert codes(lint_snippet("random.seed(7)\n")) == ["VP004"]
    assert codes(lint_snippet("rng = random.Random()\n")) == ["VP004"]
    # Seeded instances and drawing from an instance are the sanctioned
    # pattern — `rng.random()` has base name `rng`, not `random`.
    assert lint_snippet("rng = random.Random(7)\nx = rng.random()\n") == []


def test_vp005_wall_clock():
    assert codes(lint_snippet("t = time.time()\n")) == ["VP005"]
    assert codes(lint_snippet("t = time.perf_counter()\n")) == ["VP005"]
    assert codes(lint_snippet("t = datetime.datetime.now()\n")) == ["VP005"]
    assert lint_snippet("t = sim.now\n") == []


def test_vp006_private_kernel_state():
    assert codes(lint_snippet("n = len(sim._signals)\n")) == ["VP006"]
    assert codes(lint_snippet("v = sig._value\n")) == ["VP006"]
    # A class touching its own same-named attribute is not a violation.
    assert lint_snippet(
        """
        class Cache:
            def get(self):
                return self._value
        """
    ) == []


def test_vp007_broad_handler():
    snippet = """
    try:
        run()
    except Exception:
        pass
    """
    assert codes(lint_snippet(snippet)) == ["VP007"]


def test_vp007_forgiven_by_deadline_reraise_clause():
    assert lint_snippet(
        """
        try:
            run()
        except DeadlineExceeded:
            raise
        except Exception:
            pass
        """
    ) == []


def test_vp007_forgiven_by_reraise_inside_handler():
    assert lint_snippet(
        """
        try:
            run()
        except Exception:
            log()
            raise
        """
    ) == []


def test_vp007_bare_except():
    findings = lint_snippet(
        """
        try:
            run()
        except:
            pass
        """
    )
    assert codes(findings) == ["VP007"]
    assert "bare" in findings[0].message


def test_vp008_lambda_in_runspec():
    findings = lint_snippet(
        "spec = RunSpec(index=0, golden=lambda: {})\n"
    )
    assert codes(findings) == ["VP008"]
    assert lint_snippet("spec = RunSpec(index=0, golden=None)\n") == []


def test_vp009_registration_without_reset():
    findings = lint_snippet(
        "register_platform('p', build, observe, classify)\n"
    )
    assert codes(findings) == ["VP009"]
    assert findings[0].severity == WARNING
    assert "VP009" not in codes(lint_snippet(
        "register_platform('p', build, observe, classify, reset=warm)\n"
    ))


def test_vp010_process_exit():
    assert codes(lint_snippet("os._exit(1)\n")) == ["VP010"]
    assert codes(lint_snippet("sys.exit(0)\n")) == ["VP010"]


def test_vp011_registration_without_snapshot_hooks():
    findings = lint_snippet(
        "register_platform('p', build, observe, classify, reset=warm)\n"
    )
    assert codes(findings) == ["VP011"]
    assert findings[0].severity == WARNING
    assert lint_snippet(
        "register_platform('p', build, observe, classify, reset=warm, "
        "capture_state=cap, restore_state=rest)\n"
    ) == []
    # Without a reset hook the registration is VP009's concern, not
    # VP011's — a fresh-build platform is never fork-eligible anyway.
    assert "VP011" not in codes(lint_snippet(
        "register_platform('p', build, observe, classify)\n"
    ))


def test_vp012_numpy_global_rng():
    assert codes(lint_snippet("x = np.random.normal(0, 1)\n")) == ["VP012"]
    assert codes(
        lint_snippet("x = numpy.random.standard_normal(4)\n")
    ) == ["VP012"]
    assert codes(lint_snippet("np.random.seed(7)\n")) == ["VP012"]


def test_vp012_seedless_default_rng():
    for snippet in (
        "rng = np.random.default_rng()\n",
        "rng = numpy.random.default_rng()\n",
        "rng = default_rng()\n",  # from numpy.random import default_rng
        "rng = random.default_rng()\n",  # from numpy import random
    ):
        assert codes(lint_snippet(snippet)) == ["VP012"], snippet


def test_vp012_seeded_generators_are_clean():
    # The sanctioned patterns: explicit seeds, explicit bit generators,
    # and drawing from a held Generator instance.
    assert lint_snippet("rng = np.random.default_rng(7)\n") == []
    assert lint_snippet(
        "rng = np.random.Generator(np.random.PCG64(7))\n"
    ) == []
    assert lint_snippet(
        "rng = np.random.default_rng(seed)\nx = rng.normal(0, 1)\n"
    ) == []


def test_vp013_direct_concurrency_construction():
    findings = lint_snippet("pool = ProcessPoolExecutor(4)\n")
    assert codes(findings) == ["VP013"]
    assert findings[0].severity == WARNING
    assert codes(
        lint_snippet("pool = futures.ThreadPoolExecutor(2)\n")
    ) == ["VP013"]
    assert codes(
        lint_snippet("agent = threading.Thread(target=serve)\n")
    ) == ["VP013"]
    assert codes(lint_snippet("agent = Thread(target=serve)\n")) == ["VP013"]
    for factory in ("socket", "create_connection", "create_server"):
        assert codes(
            lint_snippet(f"link = socket.{factory}(endpoint)\n")
        ) == ["VP013"], factory
    # The sanctioned path does not fire.
    assert lint_snippet(
        "ex, owned = make_executor('parallel', workers=4)\n"
    ) == []


def test_vp013_ignores_tlm_socket_attribute_access():
    # A TLM endpoint named `socket` is attribute access, not a raw
    # socket construction.
    assert lint_snippet("entry.socket.deliver(payload)\n") == []
    assert lint_snippet("status = entry.socket.poll()\n") == []


def test_vp013_execution_layers_are_exempt():
    snippet = (
        "server = socket.create_server((host, 0))\n"
        "agent = threading.Thread(target=serve)\n"
        "pool = ProcessPoolExecutor(4)\n"
    )
    for exempt in (
        "src/repro/distributed/coordinator.py",
        "src/repro/distributed/worker.py",
        "src/repro/core/executors.py",
    ):
        assert lint_source(snippet, path=exempt) == [], exempt
    # Anywhere else — campaign code, platforms, strategies — fires.
    assert codes(
        lint_source(snippet, path="src/repro/core/campaign.py")
    ) == ["VP013", "VP013", "VP013"]


def test_syntax_error_reports_vp000():
    findings = lint_snippet("def broken(:\n")
    assert codes(findings) == ["VP000"]
    assert findings[0].severity == ERROR


# ---------------------------------------------------------------------------
# Kernel-internal exemption
# ---------------------------------------------------------------------------

def test_kernel_paths_skip_kernel_internal_rules():
    snippet = "sig = Signal(sim, 'x', 0)\nq = sim._signals\n"
    inside = lint_source(snippet, path="src/repro/kernel/scheduler.py")
    outside = lint_source(snippet, path="src/repro/platforms/acc.py")
    assert inside == []
    assert sorted(codes(outside)) == ["VP001", "VP006"]


def test_kernel_exemption_requires_consecutive_parts():
    # `repro/notkernel` and a stray `kernel/` dir are NOT exempt.
    snippet = "sig = Signal(sim, 'x', 0)\n"
    assert codes(lint_source(snippet, path="kernel/model.py")) == ["VP001"]
    assert codes(
        lint_source(snippet, path="src/repro/hw/kernel_helpers.py")
    ) == ["VP001"]


def test_non_kernel_rules_still_apply_inside_kernel():
    snippet = "t = time.time()\n"
    assert codes(
        lint_source(snippet, path="src/repro/kernel/scheduler.py")
    ) == ["VP005"]


# ---------------------------------------------------------------------------
# The committed violation corpus: every rule code fires on it.
# ---------------------------------------------------------------------------

def test_corpus_exercises_every_rule_code():
    found = set(codes(lint_file(CORPUS)))
    assert found == set(RULES), (
        f"corpus drift: missing {sorted(set(RULES) - found)}, "
        f"unexpected {sorted(found - set(RULES))}"
    )


def test_corpus_findings_carry_locations_and_severities():
    for finding in lint_file(CORPUS):
        assert finding.path.endswith("violations.py")
        assert finding.line > 0 and finding.col > 0
        assert finding.severity in (ERROR, WARNING)
        assert finding.code in RULES
        assert RULES[finding.code].severity == finding.severity
