"""Reachability pruning must not perturb anything it does not skip.

The contract (see ``Campaign.run(prune=...)``): planning is untouched
— same spec stream, same RNG draws, same run seeds — so every
*non-pruned* run record and journal line is byte-identical (modulo
wall clock) to the unpruned campaign's.  Pruned runs become explicit
``pruned:unreachable`` records, are never journaled, and are excluded
from the checkpoint identity, so a pruned journal resumes cleanly and
re-derives the skips from the same static analysis.

The fixture platform is the airbag system with two provisioned spare
memory banks that nothing references — statically-dead SRAM sites
that the single-fault SEU space samples about two thirds of the time.
"""

import json

import pytest

from repro.analyze.reach import ReachabilityPruner, analyze_platform
from repro.core import Campaign, RandomStrategy
from repro.core.scenario import FaultSpace
from repro.faults import SRAM_SEU
from repro.hw.memory import Memory
from repro.kernel import Simulator, simtime
from repro.platforms import airbag, registry

KEY = "airbag-islands"
RUNS = 24
PRUNED_TAG = "pruned:unreachable"


def build_islanded(sim):
    platform = airbag.build_normal_operation(sim)
    for i in range(2):
        # Parented but never referenced: statically-dead SRAM banks.
        Memory(f"spare{i}", parent=platform, size=8)
    return platform


@pytest.fixture()
def islanded(request):
    registry.register_platform(  # vp-lint: disable=VP009 - test fixture; warm reset irrelevant to one-shot equivalence runs
        KEY,
        build_islanded,
        airbag.observe,
        airbag.normal_operation_classifier,
        trace_signals=airbag.trace_signals,
        reach_surface=airbag.reach_surface,
        replace=True,
    )
    yield KEY
    registry._REGISTRY.pop(KEY, None)  # vp-lint: disable=VP006 - test-only registry cleanup


def fresh_campaign(seed=7):
    return Campaign(duration=simtime.ms(60), seed=seed, platform=KEY)


def fresh_strategy():
    root = build_islanded(Simulator())
    space = FaultSpace(
        root,
        [SRAM_SEU.with_rate(5e-7)],
        window_start=simtime.ms(5),
        window_end=simtime.ms(30),
        time_bins=2,
    )
    return RandomStrategy(space, faults_per_scenario=1)


def pruner():
    return ReachabilityPruner.for_platform(KEY)


def record_key(record):
    """Everything identity-relevant about a run record, minus wall_s."""
    stats = {
        key: value
        for key, value in (record.kernel_stats or {}).items()
        if key != "wall_s"
    }
    return (
        record.index,
        record.scenario.name,
        record.outcome,
        tuple(record.matched_rules),
        tuple(sorted(record.observation.items())),
        record.injections_applied,
        tuple(sorted(stats.items())),
        record.attempts,
        record.failure,
    )


def journal_lines(path):
    """(header, {index: line-sans-wall_s}) from a checkpoint journal."""
    lines = path.read_text(encoding="utf-8").splitlines()
    header = json.loads(lines[0])
    records = {}
    for line in lines[1:]:
        payload = json.loads(line)
        payload.get("kernel_stats", {}).pop("wall_s", None)
        records[payload["index"]] = json.dumps(payload, sort_keys=True)
    return header, records


def test_non_pruned_records_are_byte_identical(islanded):
    baseline = fresh_campaign().run(fresh_strategy(), runs=RUNS)
    pruned = fresh_campaign().run(fresh_strategy(), runs=RUNS, prune=pruner())
    skipped = {
        r.index for r in pruned.records
        if tuple(r.matched_rules) == (PRUNED_TAG,)
    }
    assert skipped, "fixture must actually prune something"
    assert len(skipped) < RUNS, "fixture must actually execute something"
    base_by_index = {r.index: r for r in baseline.records}
    kept_by_index = {r.index: r for r in pruned.records}
    assert set(base_by_index) == set(kept_by_index) == set(range(RUNS))
    for index in set(range(RUNS)) - skipped:
        assert record_key(kept_by_index[index]) == record_key(
            base_by_index[index]
        )


def test_pruned_records_are_explicit_golden_no_effects(islanded):
    campaign = fresh_campaign()
    result = campaign.run(fresh_strategy(), runs=RUNS, prune=pruner())
    skipped = [
        r for r in result.records
        if tuple(r.matched_rules) == (PRUNED_TAG,)
    ]
    golden = campaign.golden()
    for record in skipped:
        assert record.outcome.name == "NO_EFFECT"
        assert record.observation == golden
        assert record.injections_applied == 0
        # Every injection of a pruned scenario targeted a dead site.
        dead = set(pruner().dead)
        assert {
            inj.target_path for inj in record.scenario.injections
        } <= dead


def test_report_exposes_prune_counters(islanded):
    result = fresh_campaign().run(fresh_strategy(), runs=RUNS, prune=pruner())
    section = result.report()["pruning"]
    assert section["pruned"] == result.pruned > 0
    assert section["executed"] == RUNS - result.pruned
    # And the section is absent when nothing was pruned.
    bare = fresh_campaign().run(fresh_strategy(), runs=4)
    assert "pruning" not in bare.report()


def test_journals_agree_and_share_identity(islanded, tmp_path):
    base_path = tmp_path / "base.jsonl"
    pruned_path = tmp_path / "pruned.jsonl"
    fresh_campaign().run(fresh_strategy(), runs=RUNS, checkpoint=str(base_path))
    result = fresh_campaign().run(
        fresh_strategy(), runs=RUNS, checkpoint=str(pruned_path),
        prune=pruner(),
    )
    base_header, base_records = journal_lines(base_path)
    pruned_header, pruned_records = journal_lines(pruned_path)
    # prune= is not part of the checkpoint identity.
    assert pruned_header == base_header
    # Pruned indices never reach the journal; everything else is
    # byte-identical to the unpruned journal (modulo wall_s).
    skipped = {
        r.index for r in result.records
        if tuple(r.matched_rules) == (PRUNED_TAG,)
    }
    assert set(pruned_records) == set(base_records) - skipped
    for index, line in pruned_records.items():
        assert line == base_records[index]


def test_resume_rederives_pruned_records(islanded, tmp_path):
    path = tmp_path / "journal.jsonl"
    first = fresh_campaign().run(
        fresh_strategy(), runs=RUNS, checkpoint=str(path), prune=pruner(),
    )
    resumed = fresh_campaign().run(
        fresh_strategy(), runs=RUNS, checkpoint=str(path), prune=pruner(),
    )
    assert resumed.pruned == first.pruned
    assert resumed.resumed == RUNS - first.pruned
    assert [record_key(r) for r in resumed.records] == [
        record_key(r) for r in first.records
    ]


def test_static_analysis_finds_the_island_sites(islanded):
    report = analyze_platform(KEY)
    assert report.surface_known
    assert report.audit().dead_sites() == (
        "caps.spare0.array", "caps.spare1.array",
    )
