"""SARIF 2.1.0 reporter: schema shape, levels, locations, CLI wiring."""

import json
import pathlib
import textwrap

from repro.analyze import lint_source, render_sarif
from repro.analyze.cli import main
from repro.analyze.rules import RULES

CORPUS = pathlib.Path(__file__).parent / "fixtures" / "violations.py"


def findings_for(snippet, path="platform.py"):
    return lint_source(textwrap.dedent(snippet), path=path)


def sarif_for(snippet, **kwargs):
    return json.loads(render_sarif(findings_for(snippet, **kwargs), 1))


def test_envelope_is_sarif_2_1_0():
    payload = sarif_for("t = time.time()\n")
    assert payload["version"] == "2.1.0"
    assert payload["$schema"].endswith("sarif-2.1.0.json")
    (run,) = payload["runs"]
    assert run["tool"]["driver"]["name"] == "vp-lint"


def test_driver_rules_catalogue_matches_registry():
    payload = sarif_for("x = 1\n")
    rules = payload["runs"][0]["tool"]["driver"]["rules"]
    assert {rule["id"] for rule in rules} == set(RULES)
    for rule in rules:
        assert rule["shortDescription"]["text"]
        assert rule["defaultConfiguration"]["level"] in ("error", "warning")


def test_result_carries_rule_level_and_location():
    payload = sarif_for("t = time.time()\n")
    (result,) = payload["runs"][0]["results"]
    assert result["ruleId"] == "VP005"
    assert result["level"] == "error"
    assert result["message"]["text"]
    (location,) = result["locations"]
    physical = location["physicalLocation"]
    assert physical["artifactLocation"]["uri"] == "platform.py"
    assert physical["artifactLocation"]["uriBaseId"] == "%SRCROOT%"
    assert physical["region"]["startLine"] == 1
    assert physical["region"]["startColumn"] >= 1


def test_windows_paths_use_forward_slashes():
    payload = sarif_for(
        "t = time.time()\n", path="src\\repro\\platform.py"
    )
    (result,) = payload["runs"][0]["results"]
    uri = result["locations"][0]["physicalLocation"]["artifactLocation"]["uri"]
    assert "\\" not in uri and uri.endswith("platform.py")


def test_clean_tree_yields_empty_results():
    payload = json.loads(render_sarif([], 5))
    assert payload["runs"][0]["results"] == []


def test_parse_error_result_has_no_catalogue_entry():
    payload = sarif_for("def broken(:\n")
    (result,) = payload["runs"][0]["results"]
    assert result["ruleId"] == "VP000"
    rules = payload["runs"][0]["tool"]["driver"]["rules"]
    assert "VP000" not in {rule["id"] for rule in rules}


def test_cli_format_sarif_prints_payload(capsys):
    assert main([str(CORPUS), "--format", "sarif"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == "2.1.0"
    assert payload["runs"][0]["results"]


def test_cli_sarif_output_artifact(tmp_path, capsys):
    artifact = tmp_path / "vp-lint.sarif"
    code = main([
        str(CORPUS), "--format", "json", "--sarif-output", str(artifact),
    ])
    assert code == 1
    stdout_payload = json.loads(capsys.readouterr().out)
    assert stdout_payload["tool"] == "vp-lint"  # stdout stays JSON
    file_payload = json.loads(artifact.read_text(encoding="utf-8"))
    assert file_payload["version"] == "2.1.0"
    # Same findings in both reports, different envelopes.
    assert len(file_payload["runs"][0]["results"]) == len(
        stdout_payload["findings"]
    )
