"""Static reachability analysis: graph extraction, cones, the
coverage audit, pruner semantics, and exact gate-level fanout.

The fixture platforms are built to make connectivity *decidable by
eye*: a protected pipeline whose every site reaches the ECC detector,
an unprotected sensor whose site reaches outputs but no mechanism,
and provisioned-but-unwired spare memories that nothing references —
the canonical dead sites.
"""

import pytest

from repro.analyze.reach import (
    CoverageAuditReport,
    GateReachability,
    ModelGraph,
    ReachabilityPruner,
    analyze_platform,
    analyze_root,
)
from repro.core.scenario import ErrorScenario, FaultSpace, PlannedInjection
from repro.faults import SRAM_SEU
from repro.gate.netlist import GateType, Netlist
from repro.hw.memory import EccMemory, Memory
from repro.kernel import Module, Simulator


class ProtectedPipeline(Module):
    """A core that reads an ECC memory and drives an output signal;
    two spare memories are parented but never referenced."""

    def __init__(self, sim, spares=2):
        super().__init__("dut", sim=sim)
        self.mem = EccMemory("mem", parent=self, size=8)
        self.out = self.signal("out", 0)
        self.core = Core("core", parent=self, mem=self.mem, out=self.out)
        for i in range(spares):
            # Deliberately not stored on an attribute: provisioned
            # spare banks that no code path can address.
            Memory(f"spare{i}", parent=self, size=8)

    def surface(self):
        return {"detectors": {}, "outputs": [self.core]}


class Core(Module):
    def __init__(self, name, parent, mem, out):
        super().__init__(name, parent=parent)
        self.mem = mem
        self.out = out
        self.reads = 0

    # No process needed: the reference structure is what reach reads.


class BareSensor(Module):
    """An observed component with no detection mechanism anywhere."""

    def __init__(self, sim):
        super().__init__("bare", sim=sim)
        self.mem = Memory("mem", parent=self, size=4)

    def surface(self):
        return {"detectors": {}, "outputs": [self.mem]}


def protected_report(spares=2):
    sim = Simulator()
    root = ProtectedPipeline(sim, spares=spares)
    return analyze_root(root, sim=sim, surface=root.surface()), root


class TestModelGraph:
    def test_directed_edges_and_distances(self):
        graph = ModelGraph()
        graph.add_edge("a", "b")
        graph.add_edge("b", "c")
        assert graph.distances("a") == {"a": 0, "b": 1, "c": 2}
        assert graph.distances("c") == {"c": 0}

    def test_link_is_bidirectional(self):
        graph = ModelGraph()
        graph.link("a", "b")
        assert "a" in graph.reachable("b")
        assert "b" in graph.reachable("a")

    def test_unknown_start_is_empty(self):
        assert ModelGraph().distances("nope") == {}


class TestAudit:
    def test_unreferenced_spares_are_dead(self):
        report, _root = protected_report()
        audit = report.audit()
        assert audit.dead_sites() == (
            "dut.spare0.array", "dut.spare1.array",
        )

    def test_protected_site_reaches_ecc(self):
        report, _root = protected_report()
        reach = report.sites["dut.mem.codewords"]
        assert "ecc" in reach.mechanisms
        assert reach.detector_distance is not None
        assert "dut.core" in reach.outputs

    def test_mechanism_coverage_fraction(self):
        report, _root = protected_report(spares=3)
        # 1 live site out of 4 reaches the ECC detector.
        assert report.audit().mechanism_coverage() == {"ecc": 0.25}

    def test_undetectable_but_hazardous(self):
        sim = Simulator()
        root = BareSensor(sim)
        report = analyze_root(root, sim=sim, surface=root.surface())
        audit = report.audit()
        assert audit.dead_sites() == ()
        assert audit.undetectable_hazardous() == ("bare.mem.array",)

    def test_no_surface_means_no_dead_sites(self):
        sim = Simulator()
        root = ProtectedPipeline(sim)
        report = analyze_root(root, sim=sim)  # surface withheld
        assert not report.surface_known
        assert report.audit().dead_sites() == ()

    def test_canonical_bytes_are_deterministic(self):
        first, _ = protected_report()
        second, _ = protected_report()
        assert first.audit().canonical() == second.audit().canonical()
        assert isinstance(first.audit().canonical(), bytes)

    def test_render_text_lists_gaps(self):
        report, _root = protected_report()
        text = report.audit().render_text()
        assert "dead sites: 2" in text
        assert "dut.spare0.array" in text
        assert "coverage[ecc]" in text

    def test_jsonable_roundtrip_shape(self):
        report, _root = protected_report()
        payload = report.audit().to_jsonable()
        assert payload["tool"] == "vp-reach"
        assert payload["site_count"] == len(report.sites)
        assert set(payload["sites"]) == set(report.sites)


class TestBuiltinPlatforms:
    def test_airbag_sites_fully_covered(self):
        report = analyze_platform("airbag-normal")
        assert report.surface_known
        audit = report.audit()
        assert audit.dead_sites() == ()
        assert audit.undetectable_hazardous() == ()
        coverage = audit.mechanism_coverage()
        assert coverage["ecc"] == 1.0
        assert coverage["watchdog"] == 1.0

    def test_airbag_traced_signals_are_outputs(self):
        report = analyze_platform("airbag-normal")
        assert any("sensor_a" in name for name in report.outputs)

    def test_surfaceless_platform_prunes_nothing(self):
        # acc declares no reach_surface: the analyzer must refuse to
        # call anything dead rather than guess at the observe() probes.
        report = analyze_platform("acc")
        assert not report.surface_known
        assert report.audit().dead_sites() == ()

    def test_unknown_site_gets_every_mechanism(self):
        report = analyze_platform("airbag-normal")
        assert report.site_mechanisms("not.a.site") == frozenset(
            report.detectors
        )

    def test_unknown_platform_raises(self):
        with pytest.raises(KeyError):
            analyze_platform("no-such-platform")


def scenario_for(path, descriptor=SRAM_SEU, time=100):
    return ErrorScenario(
        name=f"inj:{path}",
        injections=(PlannedInjection(time, path, descriptor),),
    )


class TestPruner:
    def test_dead_scenarios_are_pruned(self):
        report, _root = protected_report()
        pruner = ReachabilityPruner(report)
        assert pruner.is_dead(scenario_for("dut.spare0.array"))
        assert not pruner.is_dead(scenario_for("dut.mem.codewords"))

    def test_mixed_scenarios_stay_live(self):
        report, _root = protected_report()
        pruner = ReachabilityPruner(report)
        mixed = ErrorScenario(
            name="mixed",
            injections=(
                PlannedInjection(100, "dut.spare0.array", SRAM_SEU),
                PlannedInjection(200, "dut.mem.codewords", SRAM_SEU),
            ),
        )
        assert not pruner.is_dead(mixed)

    def test_fault_free_scenario_never_pruned(self):
        report, _root = protected_report()
        pruner = ReachabilityPruner(report)
        assert not pruner.is_dead(ErrorScenario(name="golden", injections=()))

    def test_surfaceless_pruner_is_noop(self):
        pruner = ReachabilityPruner.for_platform("acc")
        assert not pruner.dead
        assert not pruner.is_dead(scenario_for("acc.can0.wire"))

    def test_static_hints_rank_by_detector_distance(self):
        report, root = protected_report()
        space = FaultSpace(
            root, [SRAM_SEU.with_rate(5e-7)],
            window_start=0, window_end=1000,
        )
        hints = ReachabilityPruner(report).static_hints(space)
        dead_key = ("dut.spare0.array", "sram_seu")
        live_key = ("dut.mem.codewords", "sram_seu")
        assert hints[dead_key] == 0.0
        assert 0.0 <= hints[live_key] < 1.0


def diamond_with_dangling():
    """a,b -> XOR -> DFF q -> two fanout gates; one AND is dangling
    (never marked output) and one input feeds only the dangling gate."""
    netlist = Netlist("reach-fixture")
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    c = netlist.add_input("c")  # feeds only dead logic
    q = netlist.DFF(netlist.XOR(a, b), "q")
    out1 = netlist.add_gate(GateType.AND, (q, a), "out1")
    netlist.mark_output(out1)
    netlist.add_gate(GateType.AND, (c, q), "deadgate")  # no output mark
    return netlist


class TestGateReachability:
    def test_cone_crosses_flop_boundary(self):
        reach = GateReachability(diamond_with_dangling())
        cone = reach.cone("a")
        assert "q" in cone     # through XOR and the DFF D->Q edge
        assert "out1" in cone

    def test_output_net_reaches_itself(self):
        reach = GateReachability(diamond_with_dangling())
        assert reach.reaches_output("out1")

    def test_dangling_input_is_dead(self):
        reach = GateReachability(diamond_with_dangling())
        assert not reach.reaches_output("c")
        assert set(reach.dead_nets()) == {"c", "deadgate"}

    def test_cone_is_exact_not_conservative(self):
        reach = GateReachability(diamond_with_dangling())
        # c feeds only the dead gate: its cone must NOT contain out1.
        assert "out1" not in reach.cone("c")


class TestCoverageAuditReportUnit:
    def test_empty_report_coverage(self):
        audit = CoverageAuditReport(
            platform=None, sites={}, detectors={"ecc": ("d",)},
            outputs=(), surface_known=True,
        )
        assert audit.mechanism_coverage() == {"ecc": 0.0}
        assert audit.dead_sites() == ()
