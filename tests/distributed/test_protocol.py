"""Wire-protocol unit tests: framing, validation, spec codecs, discovery.

Everything here runs without workers or multicore — a socketpair is
enough to exercise framing, and the RunSpec/RunOutcome JSON round trip
is pure data plumbing.
"""

import json
import socket
import struct

import pytest

from repro.core.runspec import RunSpec
from repro.core.scenario import ErrorScenario, PlannedInjection
from repro.distributed import (
    DEFAULT_ENDPOINT_FILE,
    ENDPOINT_ENV,
    DiscoveryError,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    PeerGone,
    ProtocolError,
    read_endpoint,
    recv_frame,
    resolve_endpoint,
    send_frame,
    write_endpoint,
)
from repro.distributed import protocol
from repro.faults import SRAM_SEU


def spec(index=0, **overrides):
    injection = PlannedInjection(
        time=5000, target_path="sensor.raw", descriptor=SRAM_SEU
    )
    fields = dict(
        index=index,
        scenario=ErrorScenario(name=f"s{index}", injections=[injection]),
        run_seed=41 + index,
        duration=60_000,
        platform="airbag-normal",
        golden={"deployed": False, "code": "0x0"},
        deadline_s=1.5,
    )
    fields.update(overrides)
    return RunSpec(**fields)


class TestFraming:
    def test_round_trip_over_a_socketpair(self):
        left, right = socket.socketpair()
        try:
            send_frame(left, protocol.hello("w0"))
            message = recv_frame(right)
        finally:
            left.close()
            right.close()
        assert message["type"] == "hello"
        assert message["version"] == PROTOCOL_VERSION
        assert message["name"] == "w0"

    def test_frames_are_inspectable_json(self):
        frame = protocol.encode_frame(protocol.idle(0.25))
        (length,) = struct.unpack(">I", frame[:4])
        assert length == len(frame) - 4
        assert json.loads(frame[4:].decode("utf-8")) == {
            "retry_after_s": 0.25,
            "type": "idle",
        }

    def test_eof_raises_peer_gone(self):
        left, right = socket.socketpair()
        left.close()
        try:
            with pytest.raises(PeerGone):
                recv_frame(right)
        finally:
            right.close()

    def test_oversized_length_prefix_rejected(self):
        left, right = socket.socketpair()
        try:
            left.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
            with pytest.raises(ProtocolError, match="cap"):
                recv_frame(right)
        finally:
            left.close()
            right.close()

    def test_undecodable_payload_rejected(self):
        with pytest.raises(ProtocolError, match="undecodable"):
            protocol.decode_payload(b"\xff\xfe not json")

    def test_untyped_payload_rejected(self):
        with pytest.raises(ProtocolError, match="typed"):
            protocol.decode_payload(b'{"no_type": 1}')


class TestHelloValidation:
    def test_valid_hello_returns_name(self):
        assert protocol.check_hello(protocol.hello("worker-3")) == "worker-3"

    def test_version_mismatch_rejected(self):
        message = protocol.hello("w")
        message["version"] = PROTOCOL_VERSION + 1
        with pytest.raises(ProtocolError, match="version"):
            protocol.check_hello(message)

    def test_schema_mismatch_rejected(self):
        message = protocol.hello("w")
        message["schema"] = -1
        with pytest.raises(ProtocolError, match="schema"):
            protocol.check_hello(message)

    def test_nameless_hello_rejected(self):
        message = protocol.hello("w")
        message["name"] = ""
        with pytest.raises(ProtocolError, match="name"):
            protocol.check_hello(message)


class TestSpecCodec:
    def test_runspec_round_trips_through_json(self):
        original = spec()
        # Through *serialized* JSON, as the wire does — tuples become
        # lists and back, which is the part worth pinning.
        restored = RunSpec.from_jsonable(
            json.loads(json.dumps(original.to_jsonable()))
        )
        assert restored == original

    def test_lease_frame_carries_jsonable_specs(self):
        specs = [spec(0), spec(1)]
        message = protocol.lease(7, specs)
        assert message["lease_id"] == 7
        restored = [
            RunSpec.from_jsonable(payload) for payload in message["specs"]
        ]
        assert restored == specs

    def test_attempt_and_reuse_flags_survive(self):
        original = spec(attempt=2, reuse_platform=True)
        restored = RunSpec.from_jsonable(original.to_jsonable())
        assert restored.attempt == 2
        assert restored.reuse_platform is True


class TestDiscovery:
    def test_parse_endpoint(self):
        from repro.distributed.discovery import parse_endpoint

        assert parse_endpoint("127.0.0.1:9000") == ("127.0.0.1", 9000)
        assert parse_endpoint("[::1]:80") == ("::1", 80)
        for bad in ("nohost", "host:", "host:notaport", "host:0", ":9"):
            with pytest.raises(DiscoveryError):
                parse_endpoint(bad)

    def test_endpoint_file_round_trip(self, tmp_path):
        path = tmp_path / DEFAULT_ENDPOINT_FILE
        write_endpoint(path, "10.0.0.5", 4242)
        assert read_endpoint(path) == ("10.0.0.5", 4242)

    def test_resolution_precedence(self, tmp_path, monkeypatch):
        path = tmp_path / "endpoint"
        write_endpoint(path, "filehost", 1111)
        monkeypatch.setenv(ENDPOINT_ENV, "envhost:2222")
        assert resolve_endpoint("explicit:3333", path) == ("explicit", 3333)
        assert resolve_endpoint(None, path) == ("envhost", 2222)
        monkeypatch.delenv(ENDPOINT_ENV)
        assert resolve_endpoint(None, path) == ("filehost", 1111)

    def test_nothing_to_resolve_is_an_error(self, tmp_path, monkeypatch):
        monkeypatch.delenv(ENDPOINT_ENV, raising=False)
        with pytest.raises(DiscoveryError, match="no coordinator"):
            resolve_endpoint(None, tmp_path / "absent")
