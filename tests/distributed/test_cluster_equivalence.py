"""Distributed execution must be invisible in campaign results.

The loopback :class:`LocalCluster` spawns real worker subprocesses
speaking the real socket protocol, so these tests pin the exact
contract a multi-host deployment relies on: records, reports, digests,
and journals byte-identical to a serial run of the same seed — through
work stealing, mid-campaign worker death, elastic join/leave, poison
specs, and hung leases.
"""

import json
import os
import threading
import time

import pytest

from repro.core import Campaign, FaultSpace, RandomStrategy
from repro.core.checkpoint import merge_shards, shard_paths_in
from repro.core.executors import RetryPolicy, make_executor
from repro.core.runspec import clear_warm_platforms
from repro.core.scenario import ErrorScenario, PlannedInjection
from repro.core.strategies import Strategy
from repro.distributed import DistributedExecutor, LocalCluster
from repro.faults import FaultDescriptor, FaultKind, Persistence, SRAM_SEU
from repro.kernel import Simulator, simtime
from repro.observe.telemetry import JsonlTelemetry
from repro.platforms import airbag, hostile

MULTI_CPU = (
    (os.cpu_count() or 1) >= 2
    or os.environ.get("REPRO_FORCE_POOL") == "1"
)

needs_multicore = pytest.mark.skipif(
    not MULTI_CPU, reason="needs >= 2 CPUs for a meaningful cluster"
)

STUCK_HIGH = FaultDescriptor(
    name="sensor_stuck_high",
    kind=FaultKind.STUCK_VALUE,
    persistence=Persistence.PERMANENT,
    params={"value": 4.5},
    rate_per_hour=2e-7,
)

DURATION = simtime.ms(60)
RUNS = 12


@pytest.fixture(autouse=True)
def _fresh_warm_cache():
    clear_warm_platforms()
    yield
    clear_warm_platforms()


def airbag_space():
    probe = Simulator()
    return FaultSpace(
        airbag.build_normal_operation(probe),
        [SRAM_SEU.with_rate(5e-7), STUCK_HIGH],
        window_start=simtime.ms(5),
        window_end=simtime.ms(30),
        time_bins=2,
    )


def run_airbag(backend, runs=RUNS, checkpoint=None, telemetry=None,
               workers=None):
    campaign = Campaign(duration=DURATION, seed=7, platform="airbag-normal")
    strategy = RandomStrategy(airbag_space(), faults_per_scenario=2)
    return campaign.run(
        strategy, runs=runs, backend=backend, workers=workers,
        batch_size=runs, trace=True, checkpoint=checkpoint,
        telemetry=telemetry,
    )


def canonical_records(result):
    rows = []
    for record in result.records:
        stats = dict(record.kernel_stats or {})
        stats.pop("wall_s", None)
        if record.failure == "timeout":
            stats = {}
        rows.append((
            record.index,
            record.outcome,
            tuple(record.matched_rules),
            tuple(sorted(record.observation.items())),
            record.injections_applied,
            tuple(sorted(stats.items())),
            record.attempts,
            record.failure,
            record.digest.canonical() if record.digest else None,
        ))
    return rows


def sans_attempts(rows):
    return [row[:6] + row[7:] for row in rows]


def canonical_report(result):
    report = result.report()
    report.get("kernel", {}).pop("sim_wall_s", None)
    report.get("kernel", {}).pop("runs_per_s", None)
    return report


def canonical_journal(path, drop_attempts=False):
    rows = []
    for line in path.read_text().splitlines():
        payload = json.loads(line)
        if isinstance(payload, dict):
            stats = payload.get("kernel_stats")
            if isinstance(stats, dict):
                stats.pop("wall_s", None)
            if payload.get("failure") == "timeout":
                payload["kernel_stats"] = {}
            if drop_attempts:
                payload.pop("attempts", None)
        rows.append(payload)
    return rows


@needs_multicore
class TestDistributedEquivalence:
    def test_matches_serial_end_to_end(self, tmp_path):
        serial_journal = tmp_path / "serial.jsonl"
        dist_journal = tmp_path / "dist.jsonl"
        shard_dir = tmp_path / "shards"
        serial = run_airbag("serial", checkpoint=str(serial_journal))
        executor = DistributedExecutor(
            "airbag-normal", workers=2, shard_dir=shard_dir
        )
        try:
            distributed = run_airbag(executor, checkpoint=str(dist_journal))
        finally:
            executor.close()
        assert canonical_records(distributed) == canonical_records(serial)
        assert canonical_report(distributed) == canonical_report(serial)
        # The campaign-level journal is backend-independent...
        assert canonical_journal(dist_journal) == canonical_journal(
            serial_journal
        )
        # ...and so is the merge of the per-worker shards.
        merged = tmp_path / "merged.jsonl"
        key = json.loads(serial_journal.read_text().splitlines()[0])["key"]
        stats = merge_shards(merged, shard_paths_in(shard_dir), key)
        assert stats["records"] == RUNS
        assert stats["dropped_lines"] == 0
        assert canonical_journal(merged) == canonical_journal(serial_journal)
        # Work actually spread: both workers wrote a shard.
        assert len(shard_paths_in(shard_dir)) == 2

    def test_worker_killed_mid_campaign_stays_equivalent(self, tmp_path):
        """SIGKILL one of four workers mid-batch: the dead lease
        requeues, innocents re-run uncharged, and everything but the
        in-flight casualty's attempt count (execution history, exactly
        as in the chunked-fallback tests) stays byte-identical."""
        serial_journal = tmp_path / "serial.jsonl"
        dist_journal = tmp_path / "dist.jsonl"
        shard_dir = tmp_path / "shards"
        serial = run_airbag("serial", checkpoint=str(serial_journal))
        executor = DistributedExecutor(
            "airbag-normal", workers=4, shard_dir=shard_dir,
            heartbeat_s=0.1, lease_timeout_s=0.5,
        )

        def assassin():
            while executor._cluster is None:
                time.sleep(0.01)
            time.sleep(0.05)
            executor._cluster.kill_worker(0)

        killer = threading.Thread(target=assassin)
        killer.start()
        try:
            distributed = run_airbag(executor, checkpoint=str(dist_journal))
        finally:
            killer.join()
            executor.close()
        assert sans_attempts(canonical_records(distributed)) == sans_attempts(
            canonical_records(serial)
        )
        assert canonical_journal(
            dist_journal, drop_attempts=True
        ) == canonical_journal(serial_journal, drop_attempts=True)
        merged = tmp_path / "merged.jsonl"
        key = json.loads(serial_journal.read_text().splitlines()[0])["key"]
        merge_shards(merged, shard_paths_in(shard_dir), key)
        assert canonical_journal(
            merged, drop_attempts=True
        ) == canonical_journal(serial_journal, drop_attempts=True)

    def test_elastic_join_mid_campaign(self):
        """Workers attaching *after* the batch started still serve it —
        the coordinator never assumes a fixed fleet."""
        serial = run_airbag("serial")
        executor = DistributedExecutor(
            "airbag-normal", workers=2, spawn_local=False
        )
        outcome = {}

        def campaign_thread():
            try:
                outcome["result"] = run_airbag(executor)
            except Exception as exc:  # pragma: no cover - surfaced below
                outcome["error"] = exc

        runner = threading.Thread(target=campaign_thread)
        runner.start()
        time.sleep(0.2)  # let the batch be submitted with zero workers
        cluster = LocalCluster(executor.endpoint, workers=2)
        try:
            runner.join(timeout=120)
            assert not runner.is_alive()
        finally:
            executor.close()
            cluster.close()
        assert "error" not in outcome, outcome.get("error")
        assert canonical_records(outcome["result"]) == canonical_records(
            serial
        )

    def test_elastic_leave_after_max_leases(self):
        """Workers bowing out cleanly (--max-leases) hand their place
        back without being counted as losses; a late-joining peer
        finishes the batch."""
        serial = run_airbag("serial")
        executor = DistributedExecutor(
            "airbag-normal", workers=2, spawn_local=False, chunk_size=2
        )
        cluster = LocalCluster(
            executor.endpoint, workers=2,
            extra_args=["--max-leases", "1"],
        )
        cluster.add_worker(extra_args=[])  # one unrestricted closer
        try:
            distributed = run_airbag(executor)
        finally:
            executor.close()
            cluster.close()
        assert canonical_records(distributed) == canonical_records(serial)
        assert executor.coordinator.workers_joined == 3
        assert executor.workers_lost == 0

    def test_make_executor_distributed_backend(self):
        serial = run_airbag("serial")
        distributed = run_airbag("distributed", workers=2)
        assert canonical_records(distributed) == canonical_records(serial)

    def test_per_worker_telemetry_attribution(self, tmp_path):
        stream = tmp_path / "telemetry.jsonl"
        telemetry = JsonlTelemetry(str(stream))
        executor = DistributedExecutor(
            "airbag-normal", workers=2, telemetry=telemetry
        )
        try:
            run_airbag(executor, telemetry=telemetry)
        finally:
            executor.close()
            telemetry.close()
        assert sum(telemetry.worker_runs.values()) == RUNS
        assert telemetry.counters["workers_joined"] == 2
        events = [json.loads(line) for line in stream.read_text().splitlines()]
        kinds = {event["event"] for event in events}
        assert {"worker_join", "worker_result", "campaign_end"} <= kinds
        end = [e for e in events if e["event"] == "campaign_end"][-1]
        assert sum(end["worker_runs"].values()) == RUNS


class ScriptedHostility(Strategy):
    def __init__(self, hostility, runs):
        self.scenarios = []
        for index in range(runs):
            descriptor = hostility.get(index)
            injections = (
                [PlannedInjection(
                    time=3 * hostile.TICK,
                    target_path=hostile.TRAP_PATH,
                    descriptor=descriptor,
                )]
                if descriptor is not None else []
            )
            self.scenarios.append(
                ErrorScenario(name=f"scripted_{index}", injections=injections)
            )
        self.cursor = 0
        self.faults_per_scenario = 1
        self.space = None

    def next_scenario(self, rng):
        scenario = self.scenarios[self.cursor % len(self.scenarios)]
        self.cursor += 1
        return scenario


@needs_multicore
class TestDistributedFaultTolerance:
    def test_poison_spec_becomes_terminal_crash_record(self):
        """A spec that kills every worker it lands on burns the PR-2
        retry budget against fresh replacements, then degrades to a
        terminal ``crash:worker`` record; innocents stay uncharged."""
        campaign = Campaign(
            duration=hostile.DURATION, seed=11, platform="hostile-dut"
        )
        executor = DistributedExecutor(
            "hostile-dut", workers=2,
            retry=RetryPolicy(max_retries=2, backoff_s=0.05),
            heartbeat_s=0.2, lease_timeout_s=1.0, chunk_size=1,
        )
        try:
            result = campaign.run(
                ScriptedHostility({2: hostile.CRASH}, 6), runs=6,
                batch_size=6, backend=executor, run_timeout_s=5.0,
            )
        finally:
            executor.close()
        terminal = result.records[2]
        assert terminal.failure == "crash"
        assert terminal.attempts == 1 + executor.coordinator.retry.max_retries
        assert terminal.matched_rules == ["crash:worker"]
        assert executor.workers_lost >= 3
        for record in result.records:
            if record.index != 2:
                assert record.failure is None
                assert record.attempts == 1
        robustness = result.report()["robustness"]
        assert robustness["terminally_failed"] == 1
        assert robustness["retried"] == 2

    def test_hung_lease_times_out_terminally(self):
        """A livelocked run with no worker-side deadline trips the
        lease-level hard timeout while heartbeats still flow: the
        in-flight run is recorded ``timeout:pool`` (a rerun would just
        hang again) and the rest of the batch completes normally."""
        campaign = Campaign(
            duration=hostile.DURATION, seed=11, platform="hostile-dut"
        )
        executor = DistributedExecutor(
            "hostile-dut", workers=2, hard_timeout_s=2.0,
            heartbeat_s=0.2, lease_timeout_s=30.0, chunk_size=1,
        )
        try:
            result = campaign.run(
                ScriptedHostility({1: hostile.LIVELOCK}, 4), runs=4,
                batch_size=4, backend=executor,
            )
        finally:
            executor.close()
        hung = result.records[1]
        assert hung.failure == "timeout"
        assert hung.matched_rules == ["timeout:pool"]
        for record in result.records:
            if record.index != 1:
                assert record.failure is None
