"""Tests for binary mutation on the vp16 ISS (refs [22], [30])."""

import pytest

from repro.hw import Memory, Vp16Cpu, assemble
from repro.kernel import Module, Simulator
from repro.mutation import (
    BinaryMutationEngine,
    apply_mutation,
    enumerate_binary_mutations,
)
from repro.tlm import Router

SUM_SOURCE = """
        ldi  r1, 0
        ldi  r2, 10
    loop:
        add  r1, r1, r2
        addi r2, r2, -1
        bne  r2, r0, loop
        halt
"""
PROGRAM = assemble(SUM_SOURCE)
EXPECTED = sum(range(1, 11))


def run_image(image, max_instructions=10_000):
    """Execute an image; returns (halted, trap_cause, r1)."""
    sim = Simulator()
    top = Module("top", sim=sim)
    router = Router("bus", parent=top, hop_latency=2)
    mem = Memory("mem", parent=top, size=4096, read_latency=2, write_latency=2)
    router.map_target(0x0, 4096, mem.tsock)
    cpu = Vp16Cpu(
        "cpu", parent=top, clock_period=10,
        max_instructions=max_instructions,
    )
    cpu.isock.bind(router.tsock)
    mem.load(0, image)
    cpu.start(pc=0)
    sim.run(until=100_000_000)
    return cpu.halted, cpu.trap_cause, cpu.regs[1]


class TestEnumeration:
    def test_mutations_found_for_every_instruction_class(self):
        mutations = enumerate_binary_mutations(PROGRAM.image)
        descriptions = " ".join(m.description for m in mutations)
        assert "ADD->SUB" in descriptions
        assert "BNE->BEQ" in descriptions
        assert "imm+1" in descriptions
        assert "->NOP" in descriptions
        assert "rs1->r0" in descriptions

    def test_each_mutation_changes_exactly_one_word(self):
        for mutation in enumerate_binary_mutations(PROGRAM.image):
            mutated = apply_mutation(PROGRAM.image, mutation)
            diffs = [
                offset
                for offset in range(0, len(PROGRAM.image), 4)
                if mutated[offset : offset + 4]
                != PROGRAM.image[offset : offset + 4]
            ]
            assert diffs == [mutation.offset]

    def test_code_end_bounds_region(self):
        padded = PROGRAM.image + (0x10100001).to_bytes(4, "little")
        bounded = enumerate_binary_mutations(
            padded, code_end=len(PROGRAM.image)
        )
        unbounded = enumerate_binary_mutations(padded)
        assert len(unbounded) > len(bounded)
        assert all(m.offset < len(PROGRAM.image) for m in bounded)

    def test_unaligned_image_rejected(self):
        with pytest.raises(ValueError):
            enumerate_binary_mutations(b"\x00\x01\x02")


class TestQualification:
    def test_result_checking_testbench_scores_high(self):
        def checking_tb(image):
            halted, trap, r1 = run_image(image)
            return not halted or trap is not None or r1 != EXPECTED

        engine = BinaryMutationEngine(PROGRAM.image, checking_tb)
        result = engine.qualify()
        assert result.total > 10
        assert result.score > 0.9
        # Survivors, if any, are behaviour-equivalent on this input.
        for mutation in result.survivors:
            _, _, r1 = run_image(apply_mutation(PROGRAM.image, mutation))
            assert r1 == EXPECTED

    def test_smoke_testbench_scores_low(self):
        def smoke_tb(image):
            halted, trap, _ = run_image(image)
            return not halted  # only checks "it finished"

        strong = BinaryMutationEngine(
            PROGRAM.image,
            lambda image: run_image(image)[2] != EXPECTED
            or run_image(image)[1] is not None,
        ).qualify()
        weak = BinaryMutationEngine(PROGRAM.image, smoke_tb).qualify()
        assert weak.score < strong.score
        assert weak.survivors

    def test_runaway_mutant_contained_by_budget(self):
        # The BNE->BEQ mutant exits the loop immediately or loops
        # forever depending on direction; the instruction budget turns
        # "forever" into a trap the testbench can see.
        def tb(image):
            halted, trap, r1 = run_image(image, max_instructions=5_000)
            return trap is not None or r1 != EXPECTED

        engine = BinaryMutationEngine(PROGRAM.image, tb)
        result = engine.qualify()
        assert result.score > 0.9

    def test_broken_baseline_rejected(self):
        with pytest.raises(ValueError):
            BinaryMutationEngine(
                PROGRAM.image, lambda image: True
            ).qualify()
