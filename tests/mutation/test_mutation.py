"""Unit tests for mutation operators and the qualification engine."""

import ast

import pytest

from repro.mutation import (
    MutantSchema,
    collect_sites,
    generate_mutants,
    run_mutation_analysis,
)


def clamp(value, low, high):
    if value < low:
        return low
    if value > high:
        return high
    return value


def checksum(data):
    total = 0
    for byte in data:
        total = (total + byte) % 256
    return total


def in_window(value, center, tolerance):
    return value >= center - tolerance and value <= center + tolerance


class TestSiteCollection:
    def test_ror_sites_found(self):
        tree = ast.parse("def f(a, b):\n    return a < b\n")
        sites = collect_sites(tree, operators=("ROR",))
        assert len(sites) == 2  # < -> <=, < -> >

    def test_aor_sites_found(self):
        tree = ast.parse("def f(a, b):\n    return a + b\n")
        sites = collect_sites(tree, operators=("AOR",))
        assert len(sites) == 2  # + -> -, + -> *

    def test_crp_skips_booleans(self):
        tree = ast.parse("def f():\n    return True\n")
        assert collect_sites(tree, operators=("CRP",)) == []

    def test_lcr_site(self):
        tree = ast.parse("def f(a, b):\n    return a and b\n")
        sites = collect_sites(tree, operators=("LCR",))
        assert len(sites) == 1

    def test_operator_filter(self):
        tree = ast.parse("def f(a, b):\n    x = a + b\n    return x < 3\n")
        only_sdl = collect_sites(tree, operators=("SDL",))
        assert all(site.operator == "SDL" for site in only_sdl)
        assert len(only_sdl) == 1


class TestMutantGeneration:
    def test_mutants_differ_from_original(self):
        mutants = generate_mutants(clamp)
        assert mutants
        original = clamp(5, 0, 10)
        assert any(m.fn(5, 0, 10) != original for m in mutants)

    def test_each_mutant_is_single_fault(self):
        # checksum has: AOR on +, CRP on the constants, ...
        mutants = generate_mutants(checksum, operators=("AOR",))
        # Exactly one AOR site (+ -> -, + -> *) ... plus % -> // swap.
        descriptions = {m.site.description for m in mutants}
        assert len(descriptions) == len(mutants)

    def test_mutants_are_callable_with_original_signature(self):
        for mutant in generate_mutants(in_window):
            result = mutant.fn(5, 5, 1)
            assert isinstance(result, bool)


class TestQualification:
    def test_strong_testbench_scores_high(self):
        def strong_tb(fn):
            # Checks boundaries and interior — kills most mutants.
            cases = [
                ((5, 0, 10), 5),
                ((-1, 0, 10), 0),
                ((11, 0, 10), 10),
                ((0, 0, 10), 0),
                ((10, 0, 10), 10),
            ]
            return any(fn(*args) != expected for args, expected in cases)

        result = run_mutation_analysis(clamp, strong_tb)
        assert result.baseline_ok
        # Equivalent mutants (e.g. `<` -> `<=` at a covered boundary)
        # cap the achievable score below 1.0.
        assert result.score > 0.6

    def test_weak_testbench_scores_low(self):
        def weak_tb(fn):
            # One interior point: boundary mutants survive.
            return fn(5, 5, 1) is not True

        def strong_tb(fn):
            cases = [
                ((5, 5, 1), True),   # center
                ((4, 5, 1), True),   # lower boundary
                ((6, 5, 1), True),   # upper boundary
                ((3, 5, 1), False),  # just below
                ((7, 5, 1), False),  # just above
            ]
            return any(fn(*args) is not expected for args, expected in cases)

        strong_score = run_mutation_analysis(in_window, strong_tb).score
        weak_result = run_mutation_analysis(in_window, weak_tb)
        assert weak_result.score < strong_score
        assert weak_result.survivors

    def test_broken_baseline_rejected(self):
        def broken_tb(fn):
            return True  # flags everything, including the original

        with pytest.raises(ValueError):
            run_mutation_analysis(clamp, broken_tb)

    def test_crashing_mutant_counts_as_killed(self):
        def divider(a, b):
            return a // (b + 1)

        def tb(fn):
            return fn(10, 1) != 5

        result = run_mutation_analysis(divider, tb, operators=("CRP",))
        # The b+1 -> b+0 mutant crashes on b=0 cases in other TBs; here
        # it yields 10 != 5 -> killed by value. Check score is defined.
        assert 0.0 <= result.score <= 1.0

    def test_report_shape(self):
        result = run_mutation_analysis(
            in_window, lambda fn: fn(5, 5, 1) is not True
        )
        report = result.report()
        assert report["mutants"] == result.total
        assert report["killed"] + report["survived"] == report["mutants"]
        assert set(report["by_operator"]) <= {
            "AOR", "ROR", "LCR", "CRP", "UOI", "SDL",
        }


class TestSchema:
    def test_schema_matches_one_by_one_results(self):
        def tb(fn):
            cases = [
                ((5, 0, 10), 5), ((-1, 0, 10), 0), ((11, 0, 10), 10),
            ]
            return any(fn(*args) != expected for args, expected in cases)

        schema = MutantSchema(clamp)
        schema_result = schema.qualify(tb)
        direct_result = run_mutation_analysis(clamp, tb)
        assert schema_result.score == pytest.approx(direct_result.score)

    def test_schema_select_bounds(self):
        schema = MutantSchema(clamp)
        with pytest.raises(IndexError):
            schema.select(len(schema.mutants))

    def test_schema_original_behaviour_by_default(self):
        schema = MutantSchema(clamp)
        assert schema(7, 0, 10) == 7
