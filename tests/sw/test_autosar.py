"""Unit tests for the AUTOSAR-flavoured layer."""

import pytest

from repro.kernel import Module, Simulator
from repro.sw import AliveSupervision, Rte, Rtos, Runnable, map_runnable


@pytest.fixture
def rig():
    sim = Simulator()
    top = Module("top", sim=sim)
    rtos = Rtos("os", parent=top)
    rte = Rte(sim)
    return sim, top, rtos, rte


class TestComSignals:
    def test_unwritten_signal_is_stale(self, rig):
        sim, _, _, rte = rig
        rte.define("speed", initial=0, timeout=1000)
        value, fresh = rte.read("speed")
        assert value == 0
        assert not fresh

    def test_fresh_within_timeout(self, rig):
        sim, _, _, rte = rig
        rte.define("speed", timeout=1000)
        rte.write("speed", 42)
        value, fresh = rte.read("speed")
        assert (value, fresh) == (42, True)

    def test_stale_after_timeout(self, rig):
        sim, top, _, rte = rig
        rte.define("speed", timeout=1000)
        results = []

        def scenario():
            rte.write("speed", 42)
            yield 1500
            results.append(rte.read("speed"))

        top.process(scenario())
        sim.run()
        assert results == [(42, False)]

    def test_no_timeout_never_stale(self, rig):
        sim, top, _, rte = rig
        rte.define("mode")
        rte.write("mode", 3)

        def later():
            yield 10**9
            assert rte.read("mode") == (3, True)

        top.process(later())
        sim.run()

    def test_duplicate_definition_rejected(self, rig):
        _, _, _, rte = rig
        rte.define("x")
        with pytest.raises(ValueError):
            rte.define("x")


class TestRunnables:
    def test_runnable_executes_on_task_completion(self, rig):
        sim, _, rtos, rte = rig
        rte.define("counter", initial=0)

        def body(runnable):
            value, _ = runnable.rte.read("counter")
            runnable.rte.write("counter", value + 1)

        runnable = Runnable("step", body)
        map_runnable(rtos, rte, runnable, priority=1, wcet=10, period=100)
        rtos.start()
        sim.run(until=500)
        assert runnable.executions == 5
        assert rte.read("counter")[0] == 5

    def test_unbound_runnable_raises(self):
        runnable = Runnable("orphan", lambda r: None)
        with pytest.raises(RuntimeError):
            _ = runnable.rte

    def test_checkpoints_are_timestamps(self, rig):
        sim, _, rtos, rte = rig
        runnable = Runnable("noop", lambda r: None)
        map_runnable(rtos, rte, runnable, priority=1, wcet=10, period=100)
        rtos.start()
        sim.run(until=250)
        assert runnable.checkpoints == [10, 110, 210]


class TestAliveSupervision:
    def test_healthy_runnable_passes(self, rig):
        sim, top, rtos, rte = rig
        runnable = Runnable("periodic", lambda r: None)
        map_runnable(rtos, rte, runnable, priority=1, wcet=10, period=100)
        supervisor = AliveSupervision(
            "wdgm", parent=top, runnable=runnable,
            window=1000, min_count=9, max_count=11,
        )
        rtos.start()
        sim.run(until=5000)
        assert supervisor.violations == 0
        assert not supervisor.failed

    def test_starved_runnable_flagged(self, rig):
        sim, top, rtos, rte = rig
        runnable = Runnable("starved", lambda r: None)
        # Mapped but never started: zero executions per window.
        runnable.bind(rte)
        supervisor = AliveSupervision(
            "wdgm", parent=top, runnable=runnable,
            window=1000, min_count=1, max_count=100,
        )
        sim.run(until=3000)
        assert supervisor.violations == 3
        assert supervisor.failed

    def test_runaway_runnable_flagged(self, rig):
        sim, top, rtos, rte = rig
        runnable = Runnable("runaway", lambda r: None)
        map_runnable(rtos, rte, runnable, priority=1, wcet=1, period=10)
        supervisor = AliveSupervision(
            "wdgm", parent=top, runnable=runnable,
            window=1000, min_count=0, max_count=50,
        )
        rtos.start()
        sim.run(until=2000)
        assert supervisor.violations == 2  # ~100 executions per window

    def test_failed_threshold_needs_consecutive_windows(self, rig):
        sim, top, rtos, rte = rig
        runnable = Runnable("flaky", lambda r: None)
        runnable.bind(rte)
        supervisor = AliveSupervision(
            "wdgm", parent=top, runnable=runnable,
            window=1000, min_count=1, max_count=10, failed_threshold=3,
        )
        sim.run(until=2000)
        assert supervisor.violations == 2
        assert not supervisor.failed
        sim.run(until=3000)
        assert supervisor.failed

    def test_parameter_validation(self, rig):
        _, top, _, rte = rig
        runnable = Runnable("r", lambda r: None)
        with pytest.raises(ValueError):
            AliveSupervision(
                "w1", parent=top, runnable=runnable,
                window=0, min_count=0, max_count=1,
            )
        with pytest.raises(ValueError):
            AliveSupervision(
                "w2", parent=top, runnable=runnable,
                window=10, min_count=5, max_count=1,
            )
