"""Unit tests for the preemptive RTOS model."""

import pytest

from repro.kernel import Module, Simulator
from repro.sw import Rtos, Task


@pytest.fixture
def rig():
    sim = Simulator()
    top = Module("top", sim=sim)
    rtos = Rtos("os", parent=top)
    return sim, rtos


class TestTaskValidation:
    def test_wcet_positive(self):
        with pytest.raises(ValueError):
            Task("t", priority=1, wcet=0, period=100)

    def test_sporadic_needs_deadline(self):
        with pytest.raises(ValueError):
            Task("t", priority=1, wcet=10)

    def test_deadline_defaults_to_period(self):
        task = Task("t", priority=1, wcet=10, period=100)
        assert task.deadline == 100

    def test_duplicate_names_rejected(self, rig):
        _, rtos = rig
        rtos.add_task(Task("t", priority=1, wcet=10, period=100))
        with pytest.raises(ValueError):
            rtos.add_task(Task("t", priority=2, wcet=10, period=100))


class TestScheduling:
    def test_single_periodic_task_runs(self, rig):
        sim, rtos = rig
        task = rtos.add_task(Task("t", priority=1, wcet=10, period=100))
        rtos.start()
        sim.run(until=1000)
        # Releases at t=0,100,...,1000 inclusive; the last job has no
        # time to finish before the horizon.
        assert task.activations == 11
        assert len(task.completed_jobs) == 10
        assert task.worst_response_time == 10

    def test_high_priority_preempts_low(self, rig):
        sim, rtos = rig
        low = rtos.add_task(Task("low", priority=1, wcet=50, period=200))
        high = rtos.add_task(
            Task("high", priority=10, wcet=10, period=200, offset=20)
        )
        rtos.start()
        sim.run(until=200)
        # High released at t=20 mid low-job; runs immediately.
        high_job = high.completed_jobs[0]
        assert high_job.start_time == 20
        assert high_job.finish_time == 30
        # Low finishes late: 50 demand + 10 preemption = finish at 60.
        low_job = low.completed_jobs[0]
        assert low_job.finish_time == 60

    def test_equal_priority_fifo(self, rig):
        sim, rtos = rig
        t1 = rtos.add_task(Task("t1", priority=5, wcet=10, period=1000))
        t2 = rtos.add_task(Task("t2", priority=5, wcet=10, period=1000))
        rtos.start()
        sim.run(until=100)
        assert t1.completed_jobs[0].finish_time < t2.completed_jobs[0].finish_time

    def test_deadline_miss_detected_on_overload(self, rig):
        sim, rtos = rig
        # Utilization 1.5: something must miss.
        rtos.add_task(Task("a", priority=2, wcet=75, period=100))
        rtos.add_task(Task("b", priority=1, wcet=75, period=100))
        rtos.start()
        sim.run(until=1000)
        assert rtos.total_deadline_misses > 0

    def test_no_misses_in_feasible_set(self, rig):
        sim, rtos = rig
        # Rate-monotonic, utilization ~0.55: trivially schedulable.
        rtos.add_task(Task("fast", priority=3, wcet=10, period=50))
        rtos.add_task(Task("mid", priority=2, wcet=20, period=100))
        rtos.add_task(Task("slow", priority=1, wcet=30, period=200))
        rtos.start()
        sim.run(until=10_000)
        assert rtos.total_deadline_misses == 0

    def test_sporadic_trigger(self, rig):
        sim, rtos = rig
        task = rtos.add_task(
            Task("sporadic", priority=5, wcet=10, deadline=50)
        )
        rtos.start()

        def trigger_later():
            yield 123
            rtos.trigger("sporadic")

        sim.spawn(trigger_later())
        sim.run(until=500)
        assert task.activations == 1
        assert task.completed_jobs[0].finish_time == 133

    def test_body_runs_on_completion(self, rig):
        sim, rtos = rig
        finished = []
        rtos.add_task(
            Task(
                "t", priority=1, wcet=10, period=100,
                body=lambda job: finished.append(sim.now),
            )
        )
        rtos.start()
        sim.run(until=250)
        assert finished == [10, 110, 210]

    def test_offset_delays_first_release(self, rig):
        sim, rtos = rig
        task = rtos.add_task(
            Task("t", priority=1, wcet=10, period=100, offset=40)
        )
        rtos.start()
        sim.run(until=100)
        assert task.jobs[0].release_time == 40

    def test_add_task_after_start_rejected(self, rig):
        _, rtos = rig
        rtos.start()
        with pytest.raises(RuntimeError):
            rtos.add_task(Task("late", priority=1, wcet=10, period=100))

    def test_utilization(self, rig):
        _, rtos = rig
        rtos.add_task(Task("a", priority=1, wcet=10, period=100))
        rtos.add_task(Task("b", priority=2, wcet=30, period=100))
        assert rtos.utilization() == pytest.approx(0.4)


class TestOverheadInjection:
    def test_overhead_extends_next_job_only(self, rig):
        sim, rtos = rig
        task = rtos.add_task(Task("t", priority=1, wcet=10, period=100))
        rtos.add_overhead("t", 25)
        rtos.start()
        sim.run(until=300)
        responses = [j.response_time for j in task.completed_jobs]
        assert responses == [35, 10, 10]

    def test_overhead_causes_deadline_miss(self, rig):
        sim, rtos = rig
        task = rtos.add_task(
            Task("t", priority=1, wcet=10, period=100, deadline=20)
        )
        rtos.add_overhead("t", 50)
        rtos.start()
        sim.run(until=300)
        assert task.deadline_misses == 1
        # The value was computed correctly, just late: this is exactly
        # the "right value at the wrong time" failure mode.
        assert task.completed_jobs[0].response_time == 60

    def test_negative_overhead_rejected(self, rig):
        _, rtos = rig
        rtos.add_task(Task("t", priority=1, wcet=10, period=100))
        with pytest.raises(ValueError):
            rtos.add_overhead("t", -1)

    def test_overhead_accumulates(self, rig):
        sim, rtos = rig
        task = rtos.add_task(Task("t", priority=1, wcet=10, period=100))
        rtos.add_overhead("t", 5)
        rtos.add_overhead("t", 5)
        rtos.start()
        sim.run(until=100)
        assert task.completed_jobs[0].response_time == 20


class TestAccounting:
    def test_busy_plus_idle_spans_runtime(self, rig):
        sim, rtos = rig
        rtos.add_task(Task("t", priority=1, wcet=30, period=100))
        rtos.start()
        sim.run(until=1000)
        assert rtos.busy_time == 300

    def test_context_switches_counted(self, rig):
        sim, rtos = rig
        rtos.add_task(Task("a", priority=1, wcet=50, period=200))
        rtos.add_task(Task("b", priority=5, wcet=10, period=200, offset=20))
        rtos.start()
        sim.run(until=200)
        # a starts, b preempts, a resumes: at least 3 switches.
        assert rtos.context_switches >= 3
