"""Unit tests for symbolic expressions, the solver, and path search."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.symbolic import (
    ConcreteContext,
    NonLinearError,
    SymbolicEngine,
    Var,
    random_search,
    satisfiable,
    solve,
)


class TestExpressions:
    def test_linear_arithmetic(self):
        a, b = Var("a"), Var("b")
        expr = 2 * a - b + 3
        assert expr.evaluate({"a": 5, "b": 1}) == 12

    def test_nested_combination(self):
        a, b = Var("a"), Var("b")
        expr = (a + b) - (a - b)  # = 2b
        assert expr.evaluate({"a": 100, "b": 7}) == 14
        assert expr.variables == {"b"}

    def test_nonlinear_rejected(self):
        a, b = Var("a"), Var("b")
        with pytest.raises(NonLinearError):
            _ = a * b
        with pytest.raises(NonLinearError):
            _ = a * 1.5

    def test_constraint_holds(self):
        a = Var("a")
        assert (a <= 5).holds({"a": 5})
        assert not (a < 5).holds({"a": 5})
        assert (a.eq(3)).holds({"a": 3})
        assert (a.ne(3)).holds({"a": 4})

    def test_negate_roundtrip(self):
        a = Var("a")
        for constraint in (a <= 3, a < 3, a >= 3, a > 3, a.eq(3), a.ne(3)):
            negated = constraint.negate()
            for value in range(0, 7):
                env = {"a": value}
                assert constraint.holds(env) != negated.holds(env)


class TestSolver:
    def test_simple_bounds(self):
        a = Var("a")
        witness = solve([a >= 10, a <= 12], {"a": (0, 100)})
        assert witness is not None and 10 <= witness["a"] <= 12

    def test_unsat_detected(self):
        a = Var("a")
        assert solve([a >= 10, a <= 5], {"a": (0, 100)}) is None

    def test_domain_bound_respected(self):
        a = Var("a")
        assert solve([a >= 200], {"a": (0, 100)}) is None

    def test_two_variable_coupling(self):
        a, b = Var("a"), Var("b")
        witness = solve(
            [(a + b).eq(100), a - b >= 50], {"a": (0, 100), "b": (0, 100)}
        )
        assert witness is not None
        assert witness["a"] + witness["b"] == 100
        assert witness["a"] - witness["b"] >= 50

    def test_negative_coefficients(self):
        a, b = Var("a"), Var("b")
        witness = solve(
            [(3 * a - 2 * b) <= -10], {"a": (0, 20), "b": (0, 20)}
        )
        assert witness is not None
        assert 3 * witness["a"] - 2 * witness["b"] <= -10

    def test_not_equal_constraint(self):
        a = Var("a")
        witness = solve([a >= 3, a <= 4, a.ne(3)], {"a": (0, 10)})
        assert witness == {"a": 4}

    def test_missing_domain_rejected(self):
        a = Var("a")
        with pytest.raises(KeyError):
            solve([a <= 3], {})

    @given(
        st.integers(-50, 50), st.integers(-50, 50), st.integers(-50, 50)
    )
    @settings(max_examples=50, deadline=None)
    def test_solver_sound(self, c1, c2, rhs):
        # Whatever it returns must actually satisfy the constraints.
        a, b = Var("a"), Var("b")
        constraints = [(c1 * a + c2 * b) <= rhs, a + b >= 0]
        witness = solve(constraints, {"a": (-10, 10), "b": (-10, 10)})
        if witness is not None:
            for constraint in constraints:
                assert constraint.holds(witness)

    def test_solver_complete_on_small_domains(self):
        # Exhaustive cross-check on a small grid.
        a, b = Var("a"), Var("b")
        constraints = [(2 * a - 3 * b).eq(1), a > b]
        witness = solve(constraints, {"a": (0, 8), "b": (0, 8)})
        brute = [
            (x, y)
            for x in range(9)
            for y in range(9)
            if 2 * x - 3 * y == 1 and x > y
        ]
        assert (witness is not None) == bool(brute)


def guarded_airbag(ctx):
    """Three stacked plausibility checks guard the firing branch."""
    a = ctx.var("a")
    b = ctx.var("b")
    rate = ctx.var("rate")
    if not ctx.branch((a - b) <= 30):
        return "reject_plausibility"
    if not ctx.branch((b - a) <= 30):
        return "reject_plausibility"
    if not ctx.branch(rate <= 100):
        return "reject_rate"
    if ctx.branch(a >= 3900):
        if ctx.branch(b >= 3900):
            return "fire"
        return "idle"
    return "idle"


DOMAINS = {"a": (0, 4095), "b": (0, 4095), "rate": (0, 4095)}


class TestEngine:
    def test_explores_all_outcomes(self):
        engine = SymbolicEngine(DOMAINS)
        outcomes = {p.outcome for p in engine.explore(guarded_airbag)}
        assert outcomes == {"reject_plausibility", "reject_rate", "idle", "fire"}

    def test_witnesses_replay_concretely(self):
        engine = SymbolicEngine(DOMAINS)
        for path in engine.explore(guarded_airbag):
            assert guarded_airbag(ConcreteContext(path.witness)) == path.outcome

    def test_find_input_reaches_guarded_state(self):
        engine = SymbolicEngine(DOMAINS)
        witness = engine.find_input(guarded_airbag, "fire")
        assert witness is not None
        assert witness["a"] >= 3900 and witness["b"] >= 3900
        assert abs(witness["a"] - witness["b"]) <= 30

    def test_infeasible_target_returns_none(self):
        def impossible(ctx):
            a = ctx.var("a")
            if ctx.branch(a >= 10):
                if ctx.branch(a <= 5):
                    return "never"
            return "ok"

        engine = SymbolicEngine({"a": (0, 100)})
        assert engine.find_input(impossible, "never") is None

    def test_empty_domain_rejected(self):
        with pytest.raises(ValueError):
            SymbolicEngine({"a": (5, 2)})

    def test_random_search_baseline_struggles(self):
        # The fire state needs a ~(196/4096)^2-ish coincidence plus the
        # plausibility band: random search usually burns its budget.
        rng = random.Random(0)
        witness, attempts = random_search(
            guarded_airbag, DOMAINS, "fire", rng, attempts=2000
        )
        engine = SymbolicEngine(DOMAINS)
        symbolic_witness = engine.find_input(guarded_airbag, "fire")
        assert symbolic_witness is not None
        assert witness is None or attempts > engine.paths_explored
