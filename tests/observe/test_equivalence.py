"""Digest determinism across backends, retries, and resumes.

The observability contract extends the PR-1 equivalence guarantee:
for identical seeds, serial and parallel campaigns must return
**byte-identical** trace digests (``TraceDigest.canonical()``), because
digests record only simulation-deterministic content — no wall clock,
no attempt counts, no worker identity.
"""

import os

import pytest

from repro.core import Campaign, RandomStrategy, TraceConfig
from repro.core.scenario import ErrorScenario, FaultSpace, PlannedInjection
from repro.core.strategies import Strategy
from repro.faults import FaultDescriptor, FaultKind, Persistence, SRAM_SEU
from repro.kernel import Simulator, simtime
from repro.platforms import airbag, hostile

MULTI_CPU = (
    (os.cpu_count() or 1) >= 2
    or os.environ.get("REPRO_FORCE_POOL") == "1"
)

needs_multicore = pytest.mark.skipif(
    not MULTI_CPU, reason="needs >= 2 CPUs for a meaningful pool"
)

STUCK_HIGH = FaultDescriptor(
    name="sensor_stuck_high",
    kind=FaultKind.STUCK_VALUE,
    persistence=Persistence.PERMANENT,
    params={"value": 4.5},
    rate_per_hour=1e-6,
)


def airbag_campaign(seed=7):
    return Campaign(
        duration=simtime.ms(60), seed=seed, platform="airbag-normal"
    )


def airbag_strategy(seed=7):
    sim = Simulator()
    root = airbag.build_normal_operation(sim)
    space = FaultSpace(
        root,
        [SRAM_SEU.with_rate(5e-7), STUCK_HIGH],
        window_start=simtime.ms(5),
        window_end=simtime.ms(30),
        time_bins=2,
    )
    return RandomStrategy(space, faults_per_scenario=1)


def canonical_digests(result):
    return [d.canonical() for d in result.digests()]


class ScriptedStrategy(Strategy):
    def __init__(self, scenarios):
        self.scenarios = list(scenarios)
        self.cursor = 0
        self.faults_per_scenario = 1
        self.space = None

    def next_scenario(self, rng):
        scenario = self.scenarios[self.cursor % len(self.scenarios)]
        self.cursor += 1
        return scenario


def hostile_scripted(runs, hostility):
    scenarios = []
    for index in range(runs):
        injections = []
        descriptor = hostility.get(index)
        if descriptor is not None:
            injections.append(
                PlannedInjection(
                    time=3 * hostile.TICK,
                    target_path=hostile.TRAP_PATH,
                    descriptor=descriptor,
                )
            )
        scenarios.append(
            ErrorScenario(name=f"scripted_{index}", injections=injections)
        )
    return ScriptedStrategy(scenarios)


class TestSerialDigestDeterminism:
    def test_same_seed_same_digest_bytes(self):
        first = airbag_campaign().run(airbag_strategy(), runs=8, trace=True)
        second = airbag_campaign().run(airbag_strategy(), runs=8, trace=True)
        assert canonical_digests(first) == canonical_digests(second)
        assert len(first.digests()) == 8

    def test_digest_rides_every_record(self):
        result = airbag_campaign().run(airbag_strategy(), runs=6, trace=True)
        assert all(r.digest is not None for r in result.records)
        assert [r.digest.index for r in result.records] == list(range(6))
        assert [r.digest.seed for r in result.records] != [0] * 6

    def test_untraced_campaign_has_no_digests(self):
        result = airbag_campaign().run(airbag_strategy(), runs=4)
        assert result.digests() == []
        assert all(r.digest is None for r in result.records)

    def test_trace_does_not_change_outcomes(self):
        traced = airbag_campaign().run(airbag_strategy(), runs=8, trace=True)
        plain = airbag_campaign().run(airbag_strategy(), runs=8)
        assert [r.outcome for r in traced.records] == [
            r.outcome for r in plain.records
        ]
        assert [r.matched_rules for r in traced.records] == [
            r.matched_rules for r in plain.records
        ]


@needs_multicore
class TestParallelDigestEquivalence:
    def test_airbag_serial_vs_parallel_byte_identical(self):
        serial = airbag_campaign().run(
            airbag_strategy(), runs=10, trace=True,
            backend="serial", batch_size=4,
        )
        parallel = airbag_campaign().run(
            airbag_strategy(), runs=10, trace=True,
            backend="parallel", workers=2, batch_size=4,
        )
        assert canonical_digests(serial) == canonical_digests(parallel)

    def test_hostile_mix_serial_vs_parallel(self):
        """Timeout (livelock) and raise runs keep digest equality:
        worker-side deadline digests are real partials, raise runs get
        the planned-injection partial on both backends."""
        hostility = {1: hostile.LIVELOCK, 3: hostile.RAISE}

        def run(backend):
            campaign = Campaign(
                duration=hostile.DURATION, seed=11, platform="hostile-dut"
            )
            return campaign.run(
                hostile_scripted(6, hostility),
                runs=6,
                backend=backend,
                workers=2 if backend == "parallel" else None,
                batch_size=3,
                run_timeout_s=0.5,
                trace=True,
            )

        serial = run("serial")
        parallel = run("parallel")
        assert canonical_digests(serial) == canonical_digests(parallel)
        assert serial.records[1].digest.partial
        assert serial.records[1].digest.outcome == "TIMEOUT"
        assert serial.records[3].digest.partial

    def test_crash_retry_digest_matches_clean_run(self):
        """A run whose worker crashed once and then succeeded must
        digest identically to the same run executed cleanly: attempts
        are execution history, not simulation content.  The hostile
        ``die`` mode is persistent (every retry crashes), so the
        terminal record's planned digest is compared instead."""
        hostility = {2: hostile.CRASH}
        campaign = Campaign(
            duration=hostile.DURATION, seed=11, platform="hostile-dut"
        )
        crashed = campaign.run(
            hostile_scripted(6, hostility),
            runs=6,
            backend="parallel",
            workers=2,
            batch_size=3,
            run_timeout_s=0.5,
            max_retries=2,
            retry_backoff_s=0.0,
            trace=True,
        )
        clean = Campaign(
            duration=hostile.DURATION, seed=11, platform="hostile-dut"
        ).run(
            hostile_scripted(6, {}),
            runs=6,
            backend="serial",
            batch_size=3,
            run_timeout_s=0.5,
            trace=True,
        )
        crashed_digests = canonical_digests(crashed)
        clean_digests = canonical_digests(clean)
        # Innocent runs (everything but index 2) digest byte-identically
        # to the crash-free campaign despite pool rebuilds and re-runs.
        for index in (0, 1, 3, 4, 5):
            assert crashed_digests[index] == clean_digests[index]
        # The crashed run still yields evidence: its planned injections
        # as a partial digest.
        terminal = crashed.records[2].digest
        assert terminal.partial
        assert terminal.fault_sites == [
            f"{hostile.TRAP_PATH}:{hostile.CRASH.name}"
        ]


class TestJournalDigestRoundTrip:
    def test_digest_survives_checkpoint_journal(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        campaign = airbag_campaign()
        strategy = airbag_strategy()
        result = campaign.run(
            strategy, runs=6, trace=True, batch_size=2,
            checkpoint=str(path),
        )
        resumed = airbag_campaign().run(
            airbag_strategy(), runs=6, trace=True, batch_size=2,
            checkpoint=str(path),
        )
        assert resumed.resumed == 6
        assert canonical_digests(resumed) == canonical_digests(result)

    def test_traced_and_untraced_journals_do_not_mix(self, tmp_path):
        from repro.core import CheckpointKeyMismatch

        path = tmp_path / "journal.jsonl"
        airbag_campaign().run(
            airbag_strategy(), runs=2, batch_size=2, checkpoint=str(path),
        )
        with pytest.raises(CheckpointKeyMismatch):
            airbag_campaign().run(
                airbag_strategy(), runs=2, batch_size=2,
                checkpoint=str(path), trace=True,
            )

    def test_trace_knobs_pin_the_journal_key(self, tmp_path):
        from repro.core import CheckpointKeyMismatch

        path = tmp_path / "journal.jsonl"
        airbag_campaign().run(
            airbag_strategy(), runs=2, batch_size=2,
            checkpoint=str(path), trace=TraceConfig(ring_capacity=16),
        )
        with pytest.raises(CheckpointKeyMismatch):
            airbag_campaign().run(
                airbag_strategy(), runs=2, batch_size=2,
                checkpoint=str(path), trace=TraceConfig(ring_capacity=32),
            )
