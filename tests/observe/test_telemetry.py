"""Campaign telemetry hooks and the JSONL emitter."""

import itertools
import json

from repro.core import Campaign
from repro.core.scenario import ErrorScenario, PlannedInjection
from repro.core.strategies import Strategy
from repro.observe import CampaignTelemetry, JsonlTelemetry
from repro.platforms import hostile


class ScriptedStrategy(Strategy):
    def __init__(self, scenarios):
        self.scenarios = list(scenarios)
        self.cursor = 0
        self.faults_per_scenario = 1
        self.space = None

    def next_scenario(self, rng):
        scenario = self.scenarios[self.cursor % len(self.scenarios)]
        self.cursor += 1
        return scenario


def scripted(runs, hostility=None):
    hostility = hostility or {}
    scenarios = []
    for index in range(runs):
        injections = []
        descriptor = hostility.get(index)
        if descriptor is not None:
            injections.append(
                PlannedInjection(
                    time=3 * hostile.TICK,
                    target_path=hostile.TRAP_PATH,
                    descriptor=descriptor,
                )
            )
        scenarios.append(
            ErrorScenario(name=f"scripted_{index}", injections=injections)
        )
    return ScriptedStrategy(scenarios)


def hostile_campaign(seed=11):
    return Campaign(
        duration=hostile.DURATION, seed=seed, platform="hostile-dut"
    )


class Recorder(CampaignTelemetry):
    def __init__(self):
        self.calls = []

    def on_campaign_start(self, info):
        self.calls.append(("campaign_start", dict(info)))

    def on_run_start(self, spec):
        self.calls.append(("run_start", spec.index))

    def on_run_end(self, outcome):
        self.calls.append(("run_end", outcome.index))

    def on_retry(self, outcome):
        self.calls.append(("retry", outcome.index))

    def on_resume(self, outcome):
        self.calls.append(("resume", outcome.index))

    def on_batch_end(self, stats):
        self.calls.append(("batch_end", dict(stats)))

    def on_campaign_end(self, info):
        self.calls.append(("campaign_end", dict(info)))

    def kinds(self):
        return [kind for kind, _ in self.calls]


class TestHookOrder:
    def test_campaign_brackets_and_batches(self):
        recorder = Recorder()
        hostile_campaign().run(
            scripted(4), runs=4, batch_size=2,
            run_timeout_s=0.5, telemetry=recorder,
        )
        kinds = recorder.kinds()
        assert kinds[0] == "campaign_start"
        assert kinds[-1] == "campaign_end"
        assert kinds.count("run_start") == 4
        assert kinds.count("run_end") == 4
        assert kinds.count("batch_end") == 2
        # Every run_start precedes its batch's batch_end.
        first_batch_end = kinds.index("batch_end")
        assert kinds[:first_batch_end].count("run_start") == 2

    def test_campaign_start_payload(self):
        recorder = Recorder()
        hostile_campaign().run(
            scripted(2), runs=2, run_timeout_s=0.5,
            telemetry=recorder, trace=True,
        )
        _, info = recorder.calls[0]
        assert info["runs"] == 2
        assert info["backend"] == "serial"
        assert info["platform"] == "hostile-dut"
        assert info["traced"] is True

    def test_batch_stats_carry_throughput(self):
        recorder = Recorder()
        hostile_campaign().run(
            scripted(3), runs=3, batch_size=3,
            run_timeout_s=0.5, telemetry=recorder,
        )
        stats = dict(recorder.calls)["batch_end"]
        assert stats["batch_runs"] == 3
        assert stats["executed"] == 3
        assert stats["resumed"] == 0
        assert stats["wall_s"] >= 0
        assert stats["runs_per_s"] > 0
        assert stats["total_runs"] == 3

    def test_campaign_end_counters(self):
        recorder = Recorder()
        hostile_campaign().run(
            scripted(4, {1: hostile.LIVELOCK}), runs=4,
            run_timeout_s=0.5, telemetry=recorder,
        )
        _, info = recorder.calls[-1]
        assert info["runs"] == 4
        assert info["completed"] == 3
        assert info["timed_out"] == 1
        assert info["resumed"] == 0

    def test_resume_events_replace_run_events(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        hostile_campaign().run(
            scripted(3), runs=3, run_timeout_s=0.5,
            checkpoint=str(path),
        )
        recorder = Recorder()
        hostile_campaign().run(
            scripted(3), runs=3, run_timeout_s=0.5,
            checkpoint=str(path), telemetry=recorder,
        )
        kinds = recorder.kinds()
        assert kinds.count("resume") == 3
        assert kinds.count("run_start") == 0
        assert kinds.count("run_end") == 0

    def test_base_class_is_inert(self):
        # The no-op base must be usable as-is.
        result = hostile_campaign().run(
            scripted(2), runs=2, run_timeout_s=0.5,
            telemetry=CampaignTelemetry(),
        )
        assert result.runs == 2


class TestJsonlTelemetry:
    def test_emits_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        clock = itertools.count(1000.0, 0.5)
        with JsonlTelemetry(str(path), clock=lambda: next(clock)) as sink:
            hostile_campaign().run(
                scripted(3), runs=3, batch_size=3,
                run_timeout_s=0.5, telemetry=sink,
            )
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        kinds = [l["event"] for l in lines]
        assert kinds[0] == "campaign_start"
        assert kinds[-1] == "campaign_end"
        assert kinds.count("run_end") == 3
        # Injected clock stamps every record monotonically.
        stamps = [l["t"] for l in lines]
        assert stamps == sorted(stamps)
        assert stamps[0] == 1000.0

    def test_counters_track_failures(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        sink = JsonlTelemetry(str(path))
        try:
            hostile_campaign().run(
                scripted(4, {1: hostile.LIVELOCK, 2: hostile.RAISE}),
                runs=4, run_timeout_s=0.5, telemetry=sink,
            )
        finally:
            sink.close()
        assert sink.counters["runs"] == 4
        assert sink.counters["timeouts"] == 1
        assert sink.counters["terminal_failures"] == 1
        assert sink.counters["batches"] >= 1
        final = json.loads(path.read_text().splitlines()[-1])
        assert final["event"] == "campaign_end"
        assert final["counters"]["timeouts"] == 1

    def test_partial_digest_flag_on_run_end(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        with JsonlTelemetry(str(path)) as sink:
            hostile_campaign().run(
                scripted(3, {1: hostile.LIVELOCK}), runs=3,
                run_timeout_s=0.5, telemetry=sink, trace=True,
            )
        run_ends = [
            json.loads(l)
            for l in path.read_text().splitlines()
            if json.loads(l)["event"] == "run_end"
        ]
        by_index = {r["index"]: r for r in run_ends}
        assert by_index[1]["partial_digest"] is True
        assert by_index[0]["partial_digest"] is False

    def test_append_mode_preserves_prior_stream(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        path.write_text('{"event":"sentinel"}\n')
        with JsonlTelemetry(str(path)) as sink:
            hostile_campaign().run(
                scripted(1), runs=1, run_timeout_s=0.5, telemetry=sink,
            )
        first = json.loads(path.read_text().splitlines()[0])
        assert first["event"] == "sentinel"
