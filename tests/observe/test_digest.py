"""Unit tests for the trace event vocabulary and the TraceDigest."""

import json
import pickle

import pytest

from repro.observe import (
    TRACE_SCHEMA_VERSION,
    TraceDigest,
    TraceEvent,
    sort_events,
)
from repro.observe.events import (
    CLASSIFICATION,
    DETECTION,
    DEVIATION,
    INJECTION,
)


def sample_events():
    return (
        TraceEvent(100, INJECTION, "caps.params.codewords", "sram_seu"),
        TraceEvent(150, DEVIATION, "caps.sensor_a.output", "10->99"),
        TraceEvent(180, DETECTION, "caps.params", "ecc:corrected"),
        TraceEvent(200, CLASSIFICATION, "run", "MASKED"),
    )


def sample_digest(**overrides):
    kwargs = dict(
        index=3,
        seed=12345,
        events=sample_events(),
        outcome="MASKED",
    )
    kwargs.update(overrides)
    return TraceDigest(**kwargs)


class TestEventOrdering:
    def test_sort_is_time_major(self):
        events = [
            TraceEvent(20, INJECTION, "b", "y"),
            TraceEvent(10, DETECTION, "a", "x"),
        ]
        assert [e.time for e in sort_events(events)] == [10, 20]

    def test_ties_break_causally_then_lexically(self):
        # Same timestamp: fault before error before detection before
        # verdict — then source/label for a total order.
        events = [
            TraceEvent(10, CLASSIFICATION, "run", "SDC"),
            TraceEvent(10, DETECTION, "m", "ecc"),
            TraceEvent(10, DEVIATION, "s", "d"),
            TraceEvent(10, INJECTION, "t", "f"),
            TraceEvent(10, INJECTION, "a", "f"),
        ]
        ordered = sort_events(events)
        assert [e.kind for e in ordered] == [
            INJECTION, INJECTION, DEVIATION, DETECTION, CLASSIFICATION,
        ]
        assert ordered[0].source == "a"  # lexical within a kind

    def test_sort_is_deterministic_under_shuffle(self):
        import random

        events = list(sample_events()) * 2
        reference = sort_events(events)
        for seed in range(5):
            shuffled = list(events)
            random.Random(seed).shuffle(shuffled)
            assert sort_events(shuffled) == reference


class TestDigestViews:
    def test_kind_views(self):
        digest = sample_digest()
        assert len(digest.injections) == 1
        assert len(digest.deviations) == 1
        assert len(digest.detections) == 1

    def test_fault_sites_are_unique_and_ordered(self):
        digest = sample_digest(events=(
            TraceEvent(5, INJECTION, "b.mem", "seu"),
            TraceEvent(7, INJECTION, "a.reg", "stuck"),
            TraceEvent(9, INJECTION, "b.mem", "seu"),
        ))
        assert digest.fault_sites == ["b.mem:seu", "a.reg:stuck"]

    def test_detection_latency(self):
        digest = sample_digest()
        assert digest.first_injection_time == 100
        assert digest.first_detection_time == 180
        assert digest.detection_latency == 80

    def test_latency_none_without_detection(self):
        digest = sample_digest(
            events=(TraceEvent(5, INJECTION, "a", "f"),)
        )
        assert digest.detection_latency is None


class TestDigestSerialization:
    def test_jsonable_round_trip(self):
        digest = sample_digest(partial=True, dropped_events=3)
        data = json.loads(json.dumps(digest.to_jsonable()))
        assert TraceDigest.from_jsonable(data) == digest

    def test_canonical_is_stable_json(self):
        digest = sample_digest()
        canonical = digest.canonical()
        assert json.loads(canonical) == digest.to_jsonable()
        assert canonical == sample_digest().canonical()

    def test_newer_schema_rejected(self):
        data = sample_digest().to_jsonable()
        data["schema"] = TRACE_SCHEMA_VERSION + 1
        with pytest.raises(ValueError):
            TraceDigest.from_jsonable(data)

    def test_pickle_round_trip(self):
        digest = sample_digest()
        assert pickle.loads(pickle.dumps(digest)) == digest

    def test_events_survive_as_trace_events(self):
        restored = TraceDigest.from_jsonable(sample_digest().to_jsonable())
        assert all(isinstance(e, TraceEvent) for e in restored.events)
