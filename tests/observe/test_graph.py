"""PropagationGraph: chaining semantics, latency metrics, and the
end-to-end acceptance path through a real protected platform."""

import json

from repro.core import Campaign, RandomStrategy
from repro.faults import SRAM_SEU
from repro.kernel import Simulator, simtime
from repro.observe import PropagationGraph, TraceDigest, TraceEvent
from repro.observe.events import (
    CLASSIFICATION,
    DETECTION,
    DEVIATION,
    INJECTION,
)
from repro.core.scenario import FaultSpace
from repro.platforms import airbag


def digest(events, index=0, seed=1, outcome=None, partial=False):
    return TraceDigest(
        index=index,
        seed=seed,
        events=tuple(events),
        outcome=outcome,
        partial=partial,
    )


def detected_run(index=0):
    return digest(
        [
            TraceEvent(100, INJECTION, "ecu.mem", "seu"),
            TraceEvent(140, DEVIATION, "ecu.bus", "0->1"),
            TraceEvent(180, DETECTION, "ecu.mem", "ecc:corrected"),
            TraceEvent(200, CLASSIFICATION, "run", "DETECTED_SAFE"),
        ],
        index=index,
        outcome="DETECTED_SAFE",
    )


def hazardous_run(index=1):
    return digest(
        [
            TraceEvent(50, INJECTION, "ecu.reg", "stuck"),
            TraceEvent(90, DEVIATION, "ecu.out", "lo->hi"),
            TraceEvent(300, CLASSIFICATION, "run", "HAZARDOUS"),
        ],
        index=index,
        outcome="HAZARDOUS",
    )


class TestGraphConstruction:
    def test_fault_to_detection_chain(self):
        graph = PropagationGraph.from_digests([detected_run()])
        assert graph.runs == 1
        assert "fault:ecu.mem:seu" in graph.nodes
        assert "dev:ecu.bus" in graph.nodes
        assert "detect:ecu.mem:ecc" in graph.nodes
        assert "outcome:DETECTED_SAFE" in graph.nodes
        # fault -> deviation -> detection -> outcome
        assert graph.edges[("fault:ecu.mem:seu", "dev:ecu.bus")] == 1
        assert graph.edges[("dev:ecu.bus", "detect:ecu.mem:ecc")] == 1
        assert (
            graph.edges[("detect:ecu.mem:ecc", "outcome:DETECTED_SAFE")] == 1
        )

    def test_undetected_run_links_fault_to_outcome(self):
        graph = PropagationGraph.from_digests([hazardous_run()])
        assert graph.edges[("dev:ecu.out", "outcome:HAZARDOUS")] == 1
        assert not any(
            node.startswith("detect:") for node in graph.nodes
        )

    def test_multiplicity_counts_across_runs(self):
        graph = PropagationGraph.from_digests(
            [detected_run(index=i) for i in range(3)]
        )
        assert graph.nodes["fault:ecu.mem:seu"]["count"] == 3
        assert graph.edges[("fault:ecu.mem:seu", "dev:ecu.bus")] == 3

    def test_none_digests_are_skipped(self):
        graph = PropagationGraph.from_digests([None, detected_run(), None])
        assert graph.runs == 1

    def test_partial_digests_counted(self):
        partial = digest(
            [TraceEvent(10, INJECTION, "x", "f")],
            outcome="TIMEOUT",
            partial=True,
        )
        graph = PropagationGraph.from_digests([partial])
        assert graph.partial_runs == 1
        assert graph.site_outcomes["x:f"] == {"TIMEOUT": 1}


class TestLatencyMetrics:
    def test_detection_latency_from_first_injection(self):
        graph = PropagationGraph.from_digests([detected_run()])
        assert graph.detection_latencies == {"ecc": [80]}
        assert graph.median_detection_latency() == {"ecc": 80}
        assert graph.detection_paths == [("ecu.mem:seu", "ecc", 80)]

    def test_mechanism_counted_once_per_run(self):
        storm = digest(
            [
                TraceEvent(10, INJECTION, "m", "seu"),
                TraceEvent(20, DETECTION, "m", "ecc:corrected"),
                TraceEvent(25, DETECTION, "m", "ecc:corrected"),
                TraceEvent(30, DETECTION, "wd", "watchdog:bite"),
            ],
            outcome="DETECTED_SAFE",
        )
        graph = PropagationGraph.from_digests([storm])
        assert graph.detection_latencies == {
            "ecc": [10],
            "watchdog": [20],
        }

    def test_failure_latency_uses_deviation_onset(self):
        graph = PropagationGraph.from_digests([hazardous_run()])
        # Onset at the first deviation (90), injection at 50.
        assert graph.failure_latencies == {"HAZARDOUS": [40]}

    def test_safe_outcomes_have_no_failure_latency(self):
        graph = PropagationGraph.from_digests([detected_run()])
        assert graph.failure_latencies == {}

    def test_detection_latency_percentiles(self):
        runs = []
        for index, delay in enumerate([10, 20, 30, 40, 50]):
            runs.append(
                digest(
                    [
                        TraceEvent(100, INJECTION, "m", "seu"),
                        TraceEvent(100 + delay, DETECTION, "m", "ecc:fix"),
                    ],
                    index=index,
                    outcome="DETECTED_SAFE",
                )
            )
        graph = PropagationGraph.from_digests(runs)
        rows = graph.detection_latency_percentiles((0.0, 50.0, 90.0, 100.0))
        assert rows["ecc"]["p0"] == 10.0
        assert rows["ecc"]["p50"] == 30.0
        # Linear interpolation between the 4th and 5th order statistics.
        assert rows["ecc"]["p90"] == 46.0
        assert rows["ecc"]["p100"] == 50.0

    def test_detection_latency_percentiles_single_sample(self):
        graph = PropagationGraph.from_digests([detected_run()])
        rows = graph.detection_latency_percentiles()
        assert rows == {"ecc": {"p50": 80.0, "p90": 80.0, "p99": 80.0}}

    def test_detection_latency_percentiles_empty_graph(self):
        assert PropagationGraph().detection_latency_percentiles() == {}

    def test_detection_latency_percentile_validation(self):
        import pytest

        graph = PropagationGraph.from_digests([detected_run()])
        with pytest.raises(ValueError):
            graph.detection_latency_percentiles((101.0,))


class TestSiteRanking:
    def test_top_fault_sites_by_severity_threshold(self):
        runs = [detected_run(0), hazardous_run(1), hazardous_run(2)]
        graph = PropagationGraph.from_digests(runs)
        assert graph.top_fault_sites(at_least="HAZARDOUS") == [
            ("ecu.reg:stuck", 2)
        ]
        # Lowering the bar pulls in the detected-safe site too.
        sites = dict(graph.top_fault_sites(at_least="DETECTED_SAFE"))
        assert sites == {"ecu.reg:stuck": 2, "ecu.mem:seu": 1}

    def test_ranking_is_deterministic_on_ties(self):
        tied = [
            digest(
                [
                    TraceEvent(5, INJECTION, site, "f"),
                    TraceEvent(9, CLASSIFICATION, "run", "SDC"),
                ],
                index=i,
                outcome="SDC",
            )
            for i, site in enumerate(["b", "a", "c"])
        ]
        graph = PropagationGraph.from_digests(tied)
        assert graph.top_fault_sites(at_least="SDC") == [
            ("a:f", 1), ("b:f", 1), ("c:f", 1),
        ]


def airbag_seu_campaign(seed=7):
    campaign = Campaign(
        duration=simtime.ms(60), seed=seed, platform="airbag-normal"
    )
    sim = Simulator()
    root = airbag.build_normal_operation(sim)
    space = FaultSpace(
        root,
        [SRAM_SEU.with_rate(5e-7)],
        window_start=simtime.ms(5),
        window_end=simtime.ms(30),
        time_bins=2,
    )
    strategy = RandomStrategy(space, faults_per_scenario=1)
    return campaign, strategy


class TestAirbagAcceptancePath:
    """ISSUE acceptance: the airbag campaign's graph must show at
    least one fault → detection path through a real protection
    mechanism with a finite latency."""

    def test_seu_campaign_reaches_ecc_detection(self):
        campaign, strategy = airbag_seu_campaign()
        result = campaign.run(strategy, runs=40, trace=True)
        graph = result.propagation()
        assert graph.runs == 40
        assert graph.detection_paths, "no fault→detection path found"
        site, mechanism, latency = graph.detection_paths[0]
        assert mechanism in {"ecc", "watchdog", "lockstep", "tmr"}
        assert isinstance(latency, int) and latency >= 0
        assert latency <= simtime.ms(60)
        # The path starts at a real injection site of this fault space.
        assert site.endswith(":sram_seu")
        medians = graph.median_detection_latency()
        assert mechanism in medians

    def test_report_gains_propagation_section(self):
        campaign, strategy = airbag_seu_campaign()
        result = campaign.run(strategy, runs=12, trace=True)
        report = result.report()
        section = report["propagation"]
        assert section["traced_runs"] == 12
        assert section["nodes"] > 0
        assert section["edges"] > 0
        assert isinstance(section["top_fault_sites"], list)
        assert isinstance(section["detection_latency_median"], dict)
        # Pre-existing report sections stay intact.
        for key in ("runs", "outcomes", "dangerous_runs", "kernel"):
            assert key in report

    def test_untraced_report_has_no_propagation_section(self):
        campaign, strategy = airbag_seu_campaign()
        result = campaign.run(strategy, runs=4)
        assert "propagation" not in result.report()


class TestResumeDeterminism:
    def test_graph_identical_across_checkpoint_resume(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        campaign, strategy = airbag_seu_campaign()
        fresh = campaign.run(
            strategy, runs=10, trace=True, batch_size=3,
            checkpoint=str(path),
        )
        campaign2, strategy2 = airbag_seu_campaign()
        resumed = campaign2.run(
            strategy2, runs=10, trace=True, batch_size=3,
            checkpoint=str(path),
        )
        assert resumed.resumed == 10
        fresh_json = json.dumps(
            fresh.propagation().to_jsonable(), sort_keys=True
        )
        resumed_json = json.dumps(
            resumed.propagation().to_jsonable(), sort_keys=True
        )
        assert fresh_json == resumed_json

    def test_graph_identical_after_partial_resume(self, tmp_path):
        """Interrupt mid-campaign (journal holds a prefix), resume to
        completion: the folded graph must match the uninterrupted
        reference run."""
        path = tmp_path / "journal.jsonl"
        campaign, strategy = airbag_seu_campaign()
        reference = campaign.run(strategy, runs=9, trace=True, batch_size=3)

        campaign2, strategy2 = airbag_seu_campaign()
        campaign2.run(
            strategy2, runs=3, trace=True, batch_size=3,
            checkpoint=str(path),
        )
        campaign3, strategy3 = airbag_seu_campaign()
        completed = campaign3.run(
            strategy3, runs=9, trace=True, batch_size=3,
            checkpoint=str(path),
        )
        assert completed.resumed == 3
        assert json.dumps(
            completed.propagation().to_jsonable(), sort_keys=True
        ) == json.dumps(
            reference.propagation().to_jsonable(), sort_keys=True
        )
