"""RunTrace recorder: hook bus, deviations, spill files, partial digests."""

import json

import pytest

from repro.kernel import Module, Simulator
from repro.observe import RunTrace, TraceConfig, resolve_trace
from repro.observe import hooks
from repro.observe.events import DETECTION, DEVIATION, INJECTION


class FakeDescriptor:
    def __init__(self, name):
        self.name = name


class FakeApplied:
    def __init__(self, target_path, descriptor_name, time):
        self.target_path = target_path
        self.descriptor = FakeDescriptor(descriptor_name)
        self.time = time


class FakeStressor:
    def __init__(self, applied=()):
        self.applied = list(applied)
        self.errors = []


@pytest.fixture
def rig():
    sim = Simulator()
    top = Module("top", sim=sim)
    return sim, top


class TestConfig:
    def test_resolve_trace_forms(self):
        assert resolve_trace(None) is None
        assert resolve_trace(False) is None
        assert resolve_trace(True) == TraceConfig()
        assert resolve_trace("digest") == TraceConfig()
        explicit = TraceConfig(ring_capacity=8)
        assert resolve_trace(explicit) is explicit
        with pytest.raises(ValueError):
            resolve_trace("full")
        with pytest.raises(TypeError):
            resolve_trace(42)

    def test_full_mode_requires_spill_dir(self):
        with pytest.raises(ValueError):
            TraceConfig(mode="full")
        TraceConfig(mode="full", spill_dir="/tmp/x")  # ok

    def test_key_excludes_local_details(self):
        config = TraceConfig(
            mode="full", spill_dir="/anywhere",
            golden_signals=(("s", 1),),
        )
        key = config.key()
        assert "spill_dir" not in json.dumps(key)
        assert key == {"mode": "full", "ring": 64, "max_events": 256}


class TestHookBus:
    def test_emit_without_sink_is_noop(self, rig):
        _, top = rig
        hooks.emit_detection(top, "watchdog", "bite")  # must not raise

    def test_sink_receives_module_identity_and_time(self, rig):
        sim, top = rig
        received = []

        class Sink:
            def record_detection(self, time, source, mechanism, label):
                received.append((time, source, mechanism, label))

        sink = Sink()
        hooks.push_sink(sink)
        try:
            def proc():
                yield 42
                hooks.emit_detection(top, "ecc", "corrected")

            top.process(proc())
            sim.run(until=100)
        finally:
            hooks.pop_sink(sink)
        assert received == [(42, "top", "ecc", "corrected")]

    def test_pop_unknown_sink_tolerated(self):
        hooks.pop_sink(object())


class TestRunTraceRecorder:
    def test_detection_events_fold_mechanism_and_label(self, rig):
        sim, top = rig
        trace = RunTrace(TraceConfig(), index=0, seed=1)
        trace.arm(sim, {})
        try:
            trace.record_detection(10, "top.wd", "watchdog", "bite")
            trace.record_detection(20, "top.mem", "ecc", "")
        finally:
            digest = trace.finalize(stressor=FakeStressor(), outcome="SDC")
        labels = [(e.source, e.label) for e in digest.detections]
        assert labels == [("top.wd", "watchdog:bite"), ("top.mem", "ecc")]

    def test_detection_storm_capped_and_counted(self, rig):
        sim, top = rig
        trace = RunTrace(TraceConfig(max_events=5), index=0, seed=1)
        trace.arm(sim, {})
        for t in range(20):
            trace.record_detection(t, "top.mem", "ecc", "corrected")
        digest = trace.finalize(stressor=FakeStressor(), outcome="MASKED")
        assert len(digest.events) == 5
        # 15 dropped at the recorder, plus post-sort truncation of the
        # classification event that no longer fits the budget.
        assert digest.dropped_events == 16

    def test_signal_deviation_onset_vs_golden(self, rig):
        sim, top = rig
        sig = top.signal("out", 7)
        config = TraceConfig(golden_signals=(("top.out", 7),))
        trace = RunTrace(config, index=0, seed=1)
        trace.arm(sim, {"top.out": sig})

        def driver():
            yield 30
            sig.write(9)  # the deviation onset
            yield 30
            sig.write(11)

        top.process(driver())
        sim.run(until=100)
        stressor = FakeStressor([FakeApplied("top.reg", "stuck", 25)])
        digest = trace.finalize(stressor=stressor, outcome="SDC")
        deviations = digest.deviations
        assert len(deviations) == 1
        assert deviations[0].time == 30
        assert deviations[0].source == "top.out"
        assert deviations[0].label == "7->11"

    def test_signal_matching_golden_yields_no_deviation(self, rig):
        sim, top = rig
        sig = top.signal("out", 7)
        config = TraceConfig(golden_signals=(("top.out", 7),))
        trace = RunTrace(config, index=0, seed=1)
        trace.arm(sim, {"top.out": sig})
        sim.run(until=100)
        digest = trace.finalize(stressor=FakeStressor(), outcome="NO_EFFECT")
        assert digest.deviations == []

    def test_observation_deviations_stamped_at_run_end(self, rig):
        sim, top = rig
        trace = RunTrace(TraceConfig(), index=0, seed=1)
        trace.arm(sim, {})
        sim.run(until=50)
        digest = trace.finalize(
            stressor=FakeStressor(),
            observation={"fired": True, "count": 3},
            golden={"fired": False, "count": 3},
            outcome="HAZARDOUS",
        )
        deviations = digest.deviations
        assert len(deviations) == 1
        assert deviations[0] == (50, DEVIATION, "obs:fired", "False->True")

    def test_partial_digest_omits_classification_event(self, rig):
        sim, top = rig
        trace = RunTrace(TraceConfig(), index=0, seed=1)
        trace.arm(sim, {})
        digest = trace.finalize(
            stressor=FakeStressor([FakeApplied("top.x", "seu", 5)]),
            outcome="TIMEOUT",
            partial=True,
        )
        assert digest.partial
        assert digest.outcome == "TIMEOUT"
        assert [e.kind for e in digest.events] == [INJECTION]

    def test_disarm_pops_sink_and_closes_tracer(self, rig):
        sim, top = rig
        sig = top.signal("x", 0)
        trace = RunTrace(TraceConfig(), index=0, seed=1)
        trace.arm(sim, {"top.x": sig})
        assert trace in hooks.active_sinks()
        assert sig.observers
        trace.disarm()
        trace.disarm()  # idempotent
        assert trace not in hooks.active_sinks()
        assert not sig.observers

    def test_full_mode_spills_jsonl(self, rig, tmp_path):
        sim, top = rig
        sig = top.signal("x", 0)
        config = TraceConfig(
            mode="full", spill_dir=str(tmp_path), ring_capacity=4,
            golden_signals=(("top.x", 0),),
        )
        trace = RunTrace(config, index=7, seed=3)
        trace.arm(sim, {"top.x": sig})

        def driver():
            yield 10
            sig.write(1)

        top.process(driver())
        sim.run(until=20)
        trace.record_detection(15, "top.wd", "watchdog", "bite")
        trace.finalize(stressor=FakeStressor(), outcome="DETECTED_SAFE")
        path = tmp_path / "run-000007.jsonl"
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines[0]["type"] == "meta"
        assert lines[0]["index"] == 7
        signal_lines = [l for l in lines if l["type"] == "signal"]
        assert signal_lines[0]["name"] == "top.x"
        assert signal_lines[0]["changes"] == [[0, 0], [10, 1]]
        event_lines = [l for l in lines if l["type"] == "event"]
        assert any(l["event"][1] == DETECTION for l in event_lines)
