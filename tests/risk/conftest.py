"""Shared fixtures for the risk-engine suite: the airbag platform
wired for sampled campaigns."""

import pytest

from repro.core import Campaign, FaultSpace
from repro.faults import (
    SRAM_SEU,
    FaultDescriptor,
    FaultKind,
    Persistence,
)
from repro.kernel import Simulator, simtime
from repro.mission import standard_passenger_car_profile
from repro.platforms import airbag

DURATION = simtime.ms(60)

STUCK_HIGH = FaultDescriptor(
    name="sensor_stuck_high",
    kind=FaultKind.STUCK_VALUE,
    persistence=Persistence.PERMANENT,
    params={"value": 4.5},
    rate_per_hour=2e-7,
)


@pytest.fixture
def profile():
    return standard_passenger_car_profile()


@pytest.fixture
def space():
    probe = Simulator()
    return FaultSpace(
        airbag.build_normal_operation(probe),
        [SRAM_SEU.with_rate(5e-7), STUCK_HIGH],
        window_start=simtime.ms(5),
        window_end=simtime.ms(30),
        time_bins=2,
    )


@pytest.fixture
def campaign():
    return Campaign(duration=DURATION, seed=7, platform="airbag-normal")
