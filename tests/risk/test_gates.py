"""ASIL acceptance gates: measured coverage through the FMEDA."""

import pytest

from repro.faults import STANDARD_CATALOG
from repro.mission import derive_stressor_spec
from repro.risk import (
    SampledScenarioStrategy,
    StressSampler,
    apply_measured_coverage,
    evaluate_gates,
    fmeda_from_spec,
    measured_safe_fraction,
)
from repro.safety import Asil


@pytest.fixture
def spec(profile):
    return derive_stressor_spec(profile, STANDARD_CATALOG)


class TestFmedaFromSpec:
    def test_one_row_per_descriptor(self, spec):
        fmeda = fmeda_from_spec(spec)
        assert len(fmeda.modes) == len(spec.descriptors)
        by_mode = {mode.mode: mode for mode in fmeda.modes}
        for descriptor in spec.descriptors:
            assert by_mode[descriptor.name].rate_per_hour == (
                descriptor.rate_per_hour
            )

    def test_pessimistic_until_measured(self, spec):
        fmeda = fmeda_from_spec(spec)
        for mode in fmeda.modes:
            assert mode.diagnostic_coverage == 0.0

    def test_latent_coverage_applied(self, spec):
        fmeda = fmeda_from_spec(spec, latent_coverage=0.5)
        assert all(m.latent_coverage == 0.5 for m in fmeda.modes)


def run_campaign(campaign, space, profile, runs=40):
    strategy = SampledScenarioStrategy(
        space, StressSampler(profile, seed=11)
    )
    result = campaign.run(
        strategy, runs=runs, backend="serial", batch_size=8
    )
    return result, strategy


class TestMeasuredCoverage:
    def test_safe_fraction_in_unit_interval(
        self, campaign, space, profile
    ):
        result, _ = run_campaign(campaign, space, profile)
        fractions = measured_safe_fraction(result)
        assert fractions
        for value in fractions.values():
            assert 0.0 <= value <= 1.0

    def test_apply_pushes_measured_dc(self, campaign, space, profile):
        result, strategy = run_campaign(campaign, space, profile)
        base_spec = derive_stressor_spec(
            profile, strategy.catalog, target_kinds=strategy._target_kinds
        )
        fmeda = fmeda_from_spec(base_spec)
        applied = apply_measured_coverage(fmeda, result)
        measured = result.diagnostic_coverage_by_descriptor()
        by_mode = {mode.mode: mode for mode in fmeda.modes}
        for name, coverage in applied.items():
            assert by_mode[name].diagnostic_coverage == coverage
            assert measured[name] == coverage

    def test_unexercised_modes_stay_pessimistic(
        self, campaign, space, profile
    ):
        result, strategy = run_campaign(campaign, space, profile)
        base_spec = derive_stressor_spec(
            profile, strategy.catalog, target_kinds=strategy._target_kinds
        )
        fmeda = fmeda_from_spec(base_spec)
        applied = apply_measured_coverage(fmeda, result)
        for mode in fmeda.modes:
            if mode.mode not in applied:
                assert mode.diagnostic_coverage == 0.0


class TestEvaluateGates:
    def test_verdict_per_requested_target(self, campaign, space, profile):
        result, strategy = run_campaign(campaign, space, profile)
        verdicts = evaluate_gates(
            result, strategy, asil_targets=(Asil.B, Asil.D)
        )
        assert [v.asil for v in verdicts] == [Asil.B, Asil.D]
        for verdict in verdicts:
            assert isinstance(verdict.passed, bool)
            assert 0.0 <= verdict.spfm <= 1.0
            assert 0.0 <= verdict.lfm <= 1.0
            assert verdict.pmhf_per_hour >= 0.0

    def test_targets_match_iso_table(self, campaign, space, profile):
        result, strategy = run_campaign(campaign, space, profile)
        verdict, = evaluate_gates(result, strategy, asil_targets=(Asil.D,))
        assert verdict.spfm_target == 0.99
        assert verdict.lfm_target == 0.90
        assert verdict.pmhf_target == 1e-8

    def test_jsonable_round_trip(self, campaign, space, profile):
        result, strategy = run_campaign(campaign, space, profile)
        verdict, = evaluate_gates(result, strategy, asil_targets=(Asil.C,))
        payload = verdict.to_jsonable()
        assert payload["asil"] == "C"
        assert set(payload["targets"]) == {"spfm", "lfm", "pmhf_per_hour"}
        assert isinstance(payload["measured_coverage"], dict)

    def test_qm_target_trivially_passes(self, campaign, space, profile):
        result, strategy = run_campaign(campaign, space, profile)
        verdict, = evaluate_gates(result, strategy, asil_targets=(Asil.QM,))
        assert verdict.passed
