"""RiskReport: tail metrics, interval pairs, attribution, canonical."""

import json
import random

import pytest

from repro.risk import (
    SEVERITY_LOSS,
    HazardEstimate,
    RiskReport,
    SampledScenarioStrategy,
    StressSampler,
    TailMetrics,
)
from repro.stats import clopper_pearson, wilson


class TestTailMetrics:
    def test_var_is_the_level_quantile(self):
        losses = [0.0] * 95 + [1.0] * 5
        metrics = TailMetrics.of(losses, 0.95)
        # 95th percentile of 100 sorted points interpolates between
        # order statistics 94 and 95 (0.0 and 1.0).
        assert 0.0 <= metrics.var <= 1.0
        assert metrics.cvar >= metrics.var

    def test_uniform_losses(self):
        losses = [i / 99 for i in range(100)]
        metrics = TailMetrics.of(losses, 0.90)
        assert metrics.var == pytest.approx(0.9, abs=0.02)
        # CVaR averages the tail beyond VaR.
        assert metrics.cvar == pytest.approx(0.95, abs=0.02)

    def test_all_zero_losses(self):
        metrics = TailMetrics.of([0.0] * 50, 0.99)
        assert metrics.var == 0.0
        assert metrics.cvar == 0.0

    def test_level_validation(self):
        with pytest.raises(ValueError):
            TailMetrics.of([0.0], 1.0)
        with pytest.raises(ValueError):
            TailMetrics.of([0.0], 0.0)

    def test_empty_losses_rejected(self):
        with pytest.raises(ValueError):
            TailMetrics.of([], 0.95)


class TestHazardEstimate:
    def test_interval_pair_matches_estimators(self):
        estimate = HazardEstimate.of(3, 100, 0.028, 0.95)
        exact = clopper_pearson(3, 100, 0.95)
        score = wilson(3, 100, 0.95)
        assert estimate.clopper_pearson_low == exact.low
        assert estimate.clopper_pearson_high == exact.high
        assert estimate.wilson_low == score.low
        assert estimate.wilson_high == score.high

    def test_jsonable_shape(self):
        payload = HazardEstimate.of(0, 10, 0.0, 0.95).to_jsonable()
        assert payload["count"] == 0
        assert payload["clopper_pearson"][0] == 0.0
        assert payload["wilson"][0] == 0.0


def run_report(campaign, space, profile, runs=30, trace=True, **kwargs):
    strategy = SampledScenarioStrategy(
        space, StressSampler(profile, seed=11), **kwargs
    )
    result = campaign.run(
        strategy, runs=runs, backend="serial", batch_size=8, trace=trace
    )
    return RiskReport.from_campaign(result, strategy), result, strategy


class TestFromCampaign:
    def test_core_fields(self, campaign, space, profile):
        report, result, _ = run_report(campaign, space, profile)
        assert report.runs == result.runs == 30
        assert sum(report.outcome_histogram.values()) == 30
        assert report.hazardous.runs == 30
        assert report.dangerous.count >= report.hazardous.count
        assert report.profile_name == profile.name

    def test_tail_metrics_cover_requested_levels(
        self, campaign, space, profile
    ):
        report, _, _ = run_report(campaign, space, profile)
        assert [t.level for t in report.tail] == [0.95, 0.99]
        for metrics in report.tail:
            assert 0.0 <= metrics.var <= metrics.cvar <= 1.0

    def test_tail_by_mechanism_keys_are_descriptors(
        self, campaign, space, profile
    ):
        report, result, _ = run_report(campaign, space, profile)
        injected = {
            inj.descriptor.name
            for record in result.records
            for inj in record.scenario.injections
        }
        assert set(report.tail_by_mechanism) == injected

    def test_event_attribution_covers_every_run(
        self, campaign, space, profile
    ):
        report, _, strategy = run_report(campaign, space, profile)
        # Each run lands in >= 1 attribution row (nominal or events).
        assert sum(
            row["runs"] for row in report.event_attribution.values()
        ) >= report.runs
        assert "nominal" in report.event_attribution or any(
            s.events for s in strategy.samples
        )

    def test_latency_percentiles_present_when_traced(
        self, campaign, space, profile
    ):
        report, _, _ = run_report(campaign, space, profile, trace=True)
        for row in report.detection_latency_percentiles.values():
            assert set(row) == {"p50", "p90", "p99"}
            assert row["p50"] <= row["p99"]

    def test_untraced_campaign_has_empty_latency(
        self, campaign, space, profile
    ):
        report, _, _ = run_report(campaign, space, profile, trace=False)
        assert report.detection_latency_percentiles == {}

    def test_gates_present_per_target(self, campaign, space, profile):
        report, _, _ = run_report(campaign, space, profile)
        assert [gate.asil.name for gate in report.gates] == ["B", "C", "D"]

    def test_empty_campaign_rejected(self, campaign, space, profile):
        strategy = SampledScenarioStrategy(
            space, StressSampler(profile, seed=11)
        )
        from repro.core.campaign import CampaignResult

        with pytest.raises(ValueError, match="no runs"):
            RiskReport.from_campaign(CampaignResult(duration=1), strategy)


class TestCanonical:
    def test_canonical_is_valid_sorted_json(self, campaign, space, profile):
        report, _, _ = run_report(campaign, space, profile)
        payload = json.loads(report.canonical())
        assert payload["runs"] == 30
        assert report.canonical() == json.dumps(
            payload, sort_keys=True, separators=(",", ":")
        )

    def test_canonical_stable_across_rebuilds(self, campaign, space, profile):
        report, result, strategy = run_report(campaign, space, profile)
        again = RiskReport.from_campaign(result, strategy)
        assert report.canonical() == again.canonical()

    def test_summary_mentions_verdicts(self, campaign, space, profile):
        report, _, _ = run_report(campaign, space, profile)
        text = report.summary()
        assert "hazardous" in text
        assert "VaR95%" in text
        assert "ASIL-D" in text


class TestSeverityScale:
    def test_loss_scale_monotone_in_severity(self):
        from repro.core.classification import Outcome

        assert SEVERITY_LOSS[Outcome.NO_EFFECT] == 0.0
        assert SEVERITY_LOSS[Outcome.HAZARDOUS] == 1.0
        assert (
            SEVERITY_LOSS[Outcome.MASKED]
            <= SEVERITY_LOSS[Outcome.DETECTED_SAFE]
            < SEVERITY_LOSS[Outcome.TIMING_FAILURE]
            < SEVERITY_LOSS[Outcome.SDC]
            < SEVERITY_LOSS[Outcome.HAZARDOUS]
        )
        assert set(SEVERITY_LOSS) == set(Outcome)
