"""StressSampler: validation, determinism, marginals, black swans."""

import random

import pytest

from repro.risk import (
    CHANNELS,
    DEFAULT_CORRELATION,
    BlackSwanEvent,
    CorrelationError,
    CorrelationMatrix,
    StressSampler,
)


class TestCorrelationMatrix:
    def test_identity_is_valid(self):
        matrix = CorrelationMatrix.identity()
        assert matrix.values[0][0] == 1.0
        assert matrix.values[0][1] == 0.0

    def test_default_is_valid(self):
        assert DEFAULT_CORRELATION.cholesky().shape == (
            len(CHANNELS), len(CHANNELS)
        )

    def test_from_pairs(self):
        matrix = CorrelationMatrix.from_pairs(
            temperature_load=0.6, vibration_emi=0.2
        )
        index = {name: i for i, name in enumerate(CHANNELS)}
        assert matrix.values[index["temperature"]][index["load"]] == 0.6
        assert matrix.values[index["load"]][index["temperature"]] == 0.6
        assert matrix.values[index["vibration"]][index["emi"]] == 0.2

    def test_from_pairs_unknown_channel(self):
        with pytest.raises(CorrelationError, match="unknown channel pair"):
            CorrelationMatrix.from_pairs(temperature_humidity=0.5)

    def test_wrong_shape_rejected(self):
        with pytest.raises(CorrelationError, match="4x4"):
            CorrelationMatrix(((1.0, 0.0), (0.0, 1.0)))

    def test_asymmetric_rejected(self):
        with pytest.raises(CorrelationError, match="symmetric"):
            CorrelationMatrix((
                (1.0, 0.5, 0.0, 0.0),
                (0.2, 1.0, 0.0, 0.0),
                (0.0, 0.0, 1.0, 0.0),
                (0.0, 0.0, 0.0, 1.0),
            ))

    def test_non_unit_diagonal_rejected(self):
        with pytest.raises(CorrelationError, match="diagonal"):
            CorrelationMatrix((
                (2.0, 0.0, 0.0, 0.0),
                (0.0, 1.0, 0.0, 0.0),
                (0.0, 0.0, 1.0, 0.0),
                (0.0, 0.0, 0.0, 1.0),
            ))

    def test_out_of_range_entry_rejected(self):
        with pytest.raises(CorrelationError, match=r"\[-1, 1\]"):
            CorrelationMatrix.from_pairs(temperature_load=1.5)

    def test_non_psd_rejected_with_clear_error(self):
        # Pairwise "correlations" that are jointly impossible: three
        # variables each strongly anti-correlated with the others.
        with pytest.raises(
            CorrelationError, match="not positive semi-definite"
        ):
            CorrelationMatrix((
                (1.0, -0.9, -0.9, 0.0),
                (-0.9, 1.0, -0.9, 0.0),
                (-0.9, -0.9, 1.0, 0.0),
                (0.0, 0.0, 0.0, 1.0),
            ))

    def test_singular_but_psd_accepted(self):
        # Two perfectly correlated channels: PSD with a zero
        # eigenvalue — valid, and the ridged Cholesky must not fail.
        matrix = CorrelationMatrix((
            (1.0, 1.0, 0.0, 0.0),
            (1.0, 1.0, 0.0, 0.0),
            (0.0, 0.0, 1.0, 0.0),
            (0.0, 0.0, 0.0, 1.0),
        ))
        assert matrix.cholesky() is not None


class TestBlackSwanEvent:
    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError, match="negative hazard rate"):
            BlackSwanEvent("x", rate_per_hour=-1.0)

    def test_span_fraction_bounds(self):
        with pytest.raises(ValueError, match="span_fraction"):
            BlackSwanEvent("x", rate_per_hour=0.0, span_fraction=0.0)
        with pytest.raises(ValueError, match="span_fraction"):
            BlackSwanEvent("x", rate_per_hour=0.0, span_fraction=1.5)

    def test_negative_factor_rejected(self):
        with pytest.raises(ValueError, match="emi_factor"):
            BlackSwanEvent("x", rate_per_hour=0.0, emi_factor=-2.0)


class TestSamplerDeterminism:
    def test_same_seed_same_trajectories(self, profile):
        first = StressSampler(profile, seed=42).draw_many(10)
        second = StressSampler(profile, seed=42).draw_many(10)
        assert [e.to_jsonable() for e in first] == [
            e.to_jsonable() for e in second
        ]

    def test_rng_overrides_seed(self, profile):
        via_seed = StressSampler(profile, seed=42).draw_many(5)
        via_rng = StressSampler(
            profile, seed=999, rng=random.Random(42)
        ).draw_many(5)
        assert [e.to_jsonable() for e in via_seed] == [
            e.to_jsonable() for e in via_rng
        ]

    def test_different_seeds_differ(self, profile):
        a = StressSampler(profile, seed=1).draw()
        b = StressSampler(profile, seed=2).draw()
        assert a.to_jsonable() != b.to_jsonable()

    def test_indices_count_up(self, profile):
        sampler = StressSampler(profile, seed=0)
        assert [e.index for e in sampler.draw_many(4)] == [0, 1, 2, 3]


class TestMarginals:
    def test_temperature_stays_in_histogram_support(self, profile):
        sampler = StressSampler(profile, seed=3, events=())
        support = set(profile.temperature.histogram)
        for env in sampler.draw_many(50):
            assert set(env.temperature_c) <= support

    def test_multiplicative_channels_positive(self, profile):
        sampler = StressSampler(profile, seed=3, events=())
        for env in sampler.draw_many(20):
            assert all(g > 0 for g in env.vibration_grms)
            assert all(e > 0 for e in env.emi_v_per_m)
            assert all(f > 0 for f in env.load_factor)

    def test_vibration_mean_tracks_profile(self, profile):
        # Mean-preserving log-normal: the long-run sample mean of the
        # vibration channel approaches the profile grms.
        sampler = StressSampler(
            profile, seed=5, events=(), persistence=0.0
        )
        values = [
            g for env in sampler.draw_many(400) for g in env.vibration_grms
        ]
        mean = sum(values) / len(values)
        assert mean == pytest.approx(profile.vibration.grms, rel=0.05)

    def test_segment_count(self, profile):
        env = StressSampler(profile, seed=0, segments=12).draw()
        assert env.segments == 12
        assert len(env.vibration_grms) == 12


class TestBlackSwans:
    def test_certain_event_always_overlays(self, profile):
        storm = BlackSwanEvent(
            "storm", rate_per_hour=1e6, emi_factor=100.0, span_fraction=1.0
        )
        sampler = StressSampler(profile, seed=1, events=(storm,))
        env = sampler.draw()
        assert env.events == ("storm",)
        baseline = StressSampler(
            profile, seed=1, events=()
        ).draw()
        # Full-span factor-100 overlay: every segment's EMI is far
        # above anything the nominal marginal produces.
        assert min(env.emi_v_per_m) > max(baseline.emi_v_per_m)

    def test_impossible_event_never_occurs(self, profile):
        never = BlackSwanEvent("never", rate_per_hour=0.0)
        sampler = StressSampler(profile, seed=1, events=(never,))
        for env in sampler.draw_many(20):
            assert env.events == ()

    def test_temperature_delta_applied(self, profile):
        freeze = BlackSwanEvent(
            "freeze", rate_per_hour=1e6,
            temperature_delta_c=-100.0, span_fraction=1.0,
        )
        env = StressSampler(profile, seed=2, events=(freeze,)).draw()
        support_min = min(profile.temperature.histogram)
        assert max(env.temperature_c) <= support_min - 100.0 + (
            max(profile.temperature.histogram)
            - min(profile.temperature.histogram)
        )
        assert min(env.temperature_c) < support_min

    def test_duplicate_event_names_rejected(self, profile):
        event = BlackSwanEvent("dup", rate_per_hour=0.0)
        with pytest.raises(ValueError, match="duplicate"):
            StressSampler(profile, events=(event, event))


class TestEffectiveProfile:
    def test_histogram_sums_to_one(self, profile):
        env = StressSampler(profile, seed=9).draw()
        effective = env.effective_profile(profile)
        assert sum(
            effective.temperature.histogram.values()
        ) == pytest.approx(1.0)

    def test_folds_rms_and_peak(self, profile):
        env = StressSampler(profile, seed=9, events=()).draw()
        effective = env.effective_profile(profile)
        assert effective.emi.field_v_per_m == max(env.emi_v_per_m)
        assert effective.vibration.grms <= max(env.vibration_grms)
        assert effective.vibration.grms >= min(env.vibration_grms)

    def test_states_preserved(self, profile):
        env = StressSampler(profile, seed=9).draw()
        assert env.effective_profile(profile).states == profile.states


class TestValidation:
    def test_bad_segments(self, profile):
        with pytest.raises(ValueError, match="segment"):
            StressSampler(profile, segments=0)

    def test_bad_persistence(self, profile):
        with pytest.raises(ValueError, match="persistence"):
            StressSampler(profile, persistence=1.0)

    def test_negative_sigma(self, profile):
        with pytest.raises(ValueError, match="sigma"):
            StressSampler(profile, sigma=(-0.1, 0.2, 0.2))

    def test_negative_exposure(self, profile):
        with pytest.raises(ValueError, match="exposure"):
            StressSampler(profile, hours_per_sample=-1.0)
