"""SampledScenarioStrategy: the bridge into the campaign machinery."""

import random

from repro.core.runspec import fork_groups, fork_time
from repro.kernel import simtime
from repro.risk import SampledScenarioStrategy, StressSampler


def make_strategy(space, profile, seed=11, **kwargs):
    return SampledScenarioStrategy(
        space, StressSampler(profile, seed=seed), **kwargs
    )


class TestScenarioGeneration:
    def test_scenarios_carry_sample_metadata(self, space, profile):
        strategy = make_strategy(space, profile)
        rng = random.Random(7)
        scenario = strategy.next_scenario(rng)
        assert scenario.name.startswith("risk-0-")
        assert len(scenario.injections) == 1
        assert scenario.operating_state is not None
        assert scenario.sampling_weight > 0

    def test_samples_recorded_in_scenario_order(self, space, profile):
        strategy = make_strategy(space, profile)
        rng = random.Random(7)
        for _ in range(5):
            strategy.next_scenario(rng)
        assert [s.index for s in strategy.samples] == [0, 1, 2, 3, 4]
        assert len(strategy.specs) == 5

    def test_multi_fault_scenarios(self, space, profile):
        strategy = make_strategy(space, profile, faults_per_scenario=3)
        scenario = strategy.next_scenario(random.Random(7))
        assert len(scenario.injections) == 3

    def test_injections_stay_in_space_window(self, space, profile):
        strategy = make_strategy(space, profile)
        rng = random.Random(7)
        for _ in range(20):
            for injection in strategy.next_scenario(rng).injections:
                assert space.window_start <= injection.time < space.window_end

    def test_descriptors_come_from_space_pairs(self, space, profile):
        strategy = make_strategy(space, profile)
        names = {descriptor.name for _, descriptor in space.pairs}
        rng = random.Random(7)
        for _ in range(20):
            for injection in strategy.next_scenario(rng).injections:
                assert injection.descriptor.name in names

    def test_per_sample_specs_rescale_rates(self, space, profile):
        strategy = make_strategy(space, profile)
        rng = random.Random(7)
        for _ in range(10):
            strategy.next_scenario(rng)
        totals = {
            round(spec.total_rate_per_hour, 18) for spec in strategy.specs
        }
        # Different sampled environments produce different derived
        # total rates — the per-sample Fig. 2 re-derivation is live.
        assert len(totals) > 1

    def test_importance_weight_is_true_over_sampled(self, space, profile):
        strategy = make_strategy(space, profile)
        rng = random.Random(7)
        for _ in range(30):
            scenario = strategy.next_scenario(rng)
            spec = strategy.specs[-1]
            weights = {w.state.name: w.weight for w in spec.state_weights}
            state = scenario.operating_state
            assert scenario.sampling_weight == (
                state.fraction / weights[state.name]
            )


class TestForkGrouping:
    def test_pinned_injection_time_forms_single_fork_group(
        self, space, profile, campaign
    ):
        pin = simtime.ms(50)
        strategy = make_strategy(space, profile, injection_time=pin)
        specs = campaign.plan_batch(
            strategy, random.Random(3), count=8, start_index=0, fork=True
        )
        for spec in specs:
            assert fork_time(spec) == pin
        groups, singles = fork_groups(specs)
        assert len(groups) == 1 and not singles
        (key, members), = groups
        assert key == ("airbag-normal", pin)
        assert len(members) == 8

    def test_unpinned_times_vary(self, space, profile):
        strategy = make_strategy(space, profile)
        rng = random.Random(3)
        times = {
            injection.time
            for _ in range(10)
            for injection in strategy.next_scenario(rng).injections
        }
        assert len(times) > 1


class TestDeterminism:
    def test_same_seeds_same_stream(self, space, profile):
        def stream():
            strategy = make_strategy(space, profile, seed=23)
            rng = random.Random(5)
            return [
                (
                    s.name,
                    [(i.time, i.target_path, i.descriptor.name)
                     for i in s.injections],
                    s.operating_state.name,
                    s.sampling_weight,
                )
                for s in (strategy.next_scenario(rng) for _ in range(15))
            ]

        assert stream() == stream()
