"""Backend equivalence for sampled risk campaigns.

The acceptance contract of the risk engine: a fixed-seed sampled
campaign yields the *same* `RiskReport.canonical()` bytes — and the
same checkpoint journal, modulo wall-clock fields — whether it executes
serially, on the process pool, or through snapshot-fork groups.
"""

import json

import pytest

from repro.core import Campaign, FaultSpace
from repro.kernel import Simulator, simtime
from repro.platforms import airbag
from repro.risk import RiskReport, SampledScenarioStrategy, StressSampler
from repro.mission import standard_passenger_car_profile

from .conftest import DURATION, STUCK_HIGH
from repro.faults import SRAM_SEU

RUNS = 24
PIN = simtime.ms(50)


def build_campaign():
    return Campaign(duration=DURATION, seed=7, platform="airbag-normal")


def build_space():
    probe = Simulator()
    return FaultSpace(
        airbag.build_normal_operation(probe),
        [SRAM_SEU.with_rate(5e-7), STUCK_HIGH],
        window_start=simtime.ms(5),
        window_end=simtime.ms(30),
        time_bins=2,
    )


def run_risk(
    backend="serial", fork=False, checkpoint=None, injection_time=None
):
    profile = standard_passenger_car_profile()
    strategy = SampledScenarioStrategy(
        build_space(),
        StressSampler(profile, seed=11),
        injection_time=injection_time,
    )
    kwargs = dict(
        backend=backend, batch_size=8, trace=True, fork=fork,
        checkpoint=checkpoint,
    )
    if backend == "parallel":
        kwargs["workers"] = 2
    result = build_campaign().run(strategy, runs=RUNS, **kwargs)
    return RiskReport.from_campaign(result, strategy)


def canonical_journal(path):
    rows = []
    for line in path.read_text().splitlines():
        payload = json.loads(line)
        if isinstance(payload, dict):
            stats = payload.get("kernel_stats")
            if isinstance(stats, dict):
                stats.pop("wall_s", None)
        rows.append(payload)
    return rows


class TestBackendEquivalence:
    def test_serial_parallel_identical_reports(self, monkeypatch):
        monkeypatch.setenv("REPRO_FORCE_POOL", "1")
        assert run_risk("serial").canonical() == run_risk(
            "parallel"
        ).canonical()

    def test_fork_identical_to_per_run(self):
        # Same pinned-time strategy with and without fork execution:
        # the fork fast path must be invisible in the report.
        per_run = run_risk("serial", fork=False, injection_time=PIN)
        forked = run_risk("serial", fork=True, injection_time=PIN)
        assert per_run.canonical() == forked.canonical()

    def test_parallel_fork_identical_too(self, monkeypatch):
        monkeypatch.setenv("REPRO_FORCE_POOL", "1")
        serial = run_risk("serial", fork=True, injection_time=PIN)
        parallel = run_risk("parallel", fork=True, injection_time=PIN)
        assert serial.canonical() == parallel.canonical()

    def test_repeat_runs_are_byte_identical(self):
        assert run_risk("serial").canonical() == run_risk(
            "serial"
        ).canonical()


class TestJournalEquivalence:
    def test_serial_parallel_journals_match(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FORCE_POOL", "1")
        serial_path = tmp_path / "serial.jsonl"
        parallel_path = tmp_path / "parallel.jsonl"
        run_risk("serial", checkpoint=serial_path)
        run_risk("parallel", checkpoint=parallel_path)
        assert canonical_journal(serial_path) == canonical_journal(
            parallel_path
        )

    def test_fork_journal_matches_per_run(self, tmp_path):
        fork_path = tmp_path / "fork.jsonl"
        plain_path = tmp_path / "plain.jsonl"
        run_risk(
            "serial", fork=True, checkpoint=fork_path, injection_time=PIN
        )
        run_risk(
            "serial", fork=False, checkpoint=plain_path, injection_time=PIN
        )
        assert canonical_journal(fork_path) == canonical_journal(plain_path)


class TestCheckpointResume:
    def test_interrupted_campaign_resumes_to_same_report(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        # "Interrupt" after 8 of 24 runs, then resume to completion
        # with a freshly constructed strategy + sampler.
        profile = standard_passenger_car_profile()
        strategy = SampledScenarioStrategy(
            build_space(), StressSampler(profile, seed=11)
        )
        build_campaign().run(
            strategy, runs=8, backend="serial", batch_size=8,
            trace=True, checkpoint=path,
        )
        resumed = run_risk("serial", checkpoint=path)
        fresh = run_risk("serial")
        assert resumed.canonical() == fresh.canonical()
        assert resumed.runs == RUNS
