"""Unit tests for mission profiles and the supply-chain refinement."""

import pytest

from repro.mission import (
    EmiProfile,
    MissionProfile,
    OperatingState,
    ProfileTransfer,
    SupplyChainLevel,
    TemperatureProfile,
    VibrationProfile,
    standard_passenger_car_profile,
)


class TestTemperatureProfile:
    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError):
            TemperatureProfile({25.0: 0.5, 60.0: 0.2})

    def test_mean(self):
        profile = TemperatureProfile({0.0: 0.5, 100.0: 0.5})
        assert profile.mean == 50.0

    def test_shifted(self):
        profile = TemperatureProfile({20.0: 1.0}).shifted(15.0)
        assert profile.histogram == {35.0: 1.0}


class TestStressValidation:
    def test_negative_vibration_rejected(self):
        with pytest.raises(ValueError):
            VibrationProfile(-1.0)

    def test_negative_field_rejected(self):
        with pytest.raises(ValueError):
            EmiProfile(-5.0)

    def test_vibration_amplified(self):
        assert VibrationProfile(2.0).amplified(1.5).grms == 3.0


class TestMissionProfile:
    def test_standard_profile_is_valid(self):
        profile = standard_passenger_car_profile()
        assert profile.level is SupplyChainLevel.OEM
        assert profile.operating_hours <= profile.lifetime_hours
        assert profile.special_states[0].name == "curbstone_steering"

    def test_state_lookup(self):
        profile = standard_passenger_car_profile()
        state = profile.state("city_driving")
        assert state.loads["servo_load"] == 4.0
        with pytest.raises(KeyError):
            profile.state("flying")

    def test_hours_in_state(self):
        profile = standard_passenger_car_profile()
        assert profile.hours_in("curbstone_steering") == pytest.approx(80.0)

    def test_state_fractions_validated(self):
        with pytest.raises(ValueError):
            MissionProfile(
                name="bad",
                level=SupplyChainLevel.OEM,
                lifetime_hours=1000,
                operating_hours=100,
                temperature=TemperatureProfile({25.0: 1.0}),
                vibration=VibrationProfile(1.0),
                emi=EmiProfile(10.0),
                states=(OperatingState("only", 0.5),),
            )

    def test_operating_hours_bounded_by_lifetime(self):
        with pytest.raises(ValueError):
            MissionProfile(
                name="bad",
                level=SupplyChainLevel.OEM,
                lifetime_hours=100,
                operating_hours=200,
                temperature=TemperatureProfile({25.0: 1.0}),
                vibration=VibrationProfile(1.0),
                emi=EmiProfile(10.0),
                states=(),
            )

    def test_duplicate_state_names_rejected(self):
        with pytest.raises(ValueError):
            MissionProfile(
                name="bad",
                level=SupplyChainLevel.OEM,
                lifetime_hours=1000,
                operating_hours=100,
                temperature=TemperatureProfile({25.0: 1.0}),
                vibration=VibrationProfile(1.0),
                emi=EmiProfile(10.0),
                states=(
                    OperatingState("x", 0.5),
                    OperatingState("x", 0.5),
                ),
            )


class TestRefinement:
    def test_refine_walks_supply_chain(self):
        oem = standard_passenger_car_profile()
        tier1 = oem.refine(
            ProfileTransfer(
                component_name="steering_ecu",
                temperature_rise_c=20.0,
                vibration_amplification=2.0,
                emi_shielding=0.5,
            )
        )
        assert tier1.level is SupplyChainLevel.TIER1
        assert tier1.vibration.grms == oem.vibration.grms * 2.0
        assert tier1.emi.field_v_per_m == oem.emi.field_v_per_m * 0.5
        assert tier1.temperature.mean == pytest.approx(
            oem.temperature.mean + 20.0
        )
        chip = tier1.refine(
            ProfileTransfer(component_name="mcu", temperature_rise_c=15.0)
        )
        assert chip.level is SupplyChainLevel.SEMICONDUCTOR
        assert "steering_ecu" in chip.name and "mcu" in chip.name

    def test_cannot_refine_past_semiconductor(self):
        profile = standard_passenger_car_profile()
        chip = profile.refine(ProfileTransfer("a")).refine(
            ProfileTransfer("b")
        )
        with pytest.raises(ValueError):
            chip.refine(ProfileTransfer("c"))

    def test_duty_cycle_scales_operating_hours(self):
        oem = standard_passenger_car_profile()
        refined = oem.refine(
            ProfileTransfer(component_name="airbag", duty_cycle=0.5)
        )
        assert refined.operating_hours == oem.operating_hours * 0.5

    def test_transfer_validation(self):
        with pytest.raises(ValueError):
            ProfileTransfer("x", duty_cycle=0.0)
        with pytest.raises(ValueError):
            ProfileTransfer("x", vibration_amplification=-1.0)
