"""Edge cases of the rate models and the supply-chain refinement."""

import math

import pytest

from repro.mission import (
    MissionProfile,
    ProfileTransfer,
    SupplyChainLevel,
    TemperatureProfile,
    standard_passenger_car_profile,
)
from repro.mission.rates import (
    expected_events,
    probability_of_at_least_one,
    temperature_factor,
)


# ---------------------------------------------------------------------------
# Zero-hours missions
# ---------------------------------------------------------------------------

def test_zero_hours_mean_zero_events():
    assert expected_events(1e-3, 0.0) == 0.0
    assert probability_of_at_least_one(1e-3, 0.0) == 0.0


def test_zero_rate_means_zero_probability_at_any_exposure():
    assert probability_of_at_least_one(0.0, 1e9) == 0.0


def test_zero_operating_hours_profile_is_valid():
    base = standard_passenger_car_profile()
    parked = MissionProfile(
        name="museum_exhibit",
        level=base.level,
        lifetime_hours=base.lifetime_hours,
        operating_hours=0.0,
        temperature=base.temperature,
        vibration=base.vibration,
        emi=base.emi,
        states=base.states,
    )
    assert parked.hours_in("city_driving") == 0.0


def test_negative_rate_and_exposure_rejected():
    with pytest.raises(ValueError):
        expected_events(-1e-6, 10.0)
    with pytest.raises(ValueError):
        expected_events(1e-6, -10.0)
    with pytest.raises(ValueError):
        probability_of_at_least_one(-1e-6, 10.0)


# ---------------------------------------------------------------------------
# Empty temperature histograms
# ---------------------------------------------------------------------------

def test_empty_temperature_histogram_rejected():
    # An empty histogram sums to zero, not one — the constructor guard
    # refuses it before a silent zero acceleration factor can leak
    # into the derivation.
    with pytest.raises(ValueError):
        TemperatureProfile({})


def test_partial_temperature_histogram_rejected():
    with pytest.raises(ValueError):
        TemperatureProfile({23.0: 0.5})


def test_single_bin_histogram_matches_point_factor():
    profile = TemperatureProfile({55.0: 1.0})
    # At the reference temperature the Arrhenius factor is exactly 1.
    assert temperature_factor(profile) == pytest.approx(1.0)


# ---------------------------------------------------------------------------
# Saturation at large rate × hours
# ---------------------------------------------------------------------------

def test_probability_saturates_at_one_without_overflow():
    assert probability_of_at_least_one(1e6, 1e6) == 1.0
    assert probability_of_at_least_one(1e300, 1e5) == 1.0


def test_probability_monotone_in_exposure():
    previous = -1.0
    for hours in (0.0, 1.0, 1e2, 1e4, 1e6, 1e8):
        current = probability_of_at_least_one(1e-4, hours)
        assert 0.0 <= current <= 1.0
        assert current >= previous
        previous = current


def test_small_rate_matches_linear_approximation():
    rate, hours = 1e-9, 10.0
    probability = probability_of_at_least_one(rate, hours)
    assert probability == pytest.approx(rate * hours, rel=1e-6)
    assert math.isfinite(probability)


# ---------------------------------------------------------------------------
# ProfileTransfer round trip across all three supply-chain levels
# ---------------------------------------------------------------------------

TIER1 = ProfileTransfer(
    component_name="ecu",
    temperature_rise_c=25.0,
    vibration_amplification=2.5,
    emi_shielding=0.7,
    duty_cycle=0.8,
)
CHIP = ProfileTransfer(
    component_name="mcu",
    temperature_rise_c=15.0,
    vibration_amplification=1.0,
    emi_shielding=0.5,
)


def test_refinement_walks_every_level_exactly_once():
    oem = standard_passenger_car_profile()
    assert oem.level is SupplyChainLevel.OEM
    tier1 = oem.refine(TIER1)
    assert tier1.level is SupplyChainLevel.TIER1
    chip = tier1.refine(CHIP)
    assert chip.level is SupplyChainLevel.SEMICONDUCTOR
    # The semiconductor level is the end of the Fig. 2 chain.
    with pytest.raises(ValueError):
        chip.refine(CHIP)


def test_refinement_composes_stress_transforms():
    oem = standard_passenger_car_profile()
    chip = oem.refine(TIER1).refine(CHIP)
    # Temperature shifts add, vibration/EMI factors multiply, duty
    # cycles multiply — refinement is the composition of its transfers.
    assert chip.temperature.mean == pytest.approx(
        oem.temperature.mean
        + TIER1.temperature_rise_c + CHIP.temperature_rise_c
    )
    assert chip.vibration.grms == pytest.approx(
        oem.vibration.grms
        * TIER1.vibration_amplification * CHIP.vibration_amplification
    )
    assert chip.emi.field_v_per_m == pytest.approx(
        oem.emi.field_v_per_m * TIER1.emi_shielding * CHIP.emi_shielding
    )
    assert chip.operating_hours == pytest.approx(
        oem.operating_hours * TIER1.duty_cycle * CHIP.duty_cycle
    )
    # Operating states pass through the chain untouched: scenario
    # selection uses the same state fractions at every level.
    assert chip.states == oem.states
    assert chip.name == "passenger_car/ecu/mcu"


def test_identity_transfer_round_trip_preserves_stresses():
    oem = standard_passenger_car_profile()
    tier1 = oem.refine(TIER1)
    # Undoing the tier-1 stress transform at the next level restores
    # every OEM stress figure (levels still advance — the chain is a
    # one-way street, only the physics is invertible).
    inverse = ProfileTransfer(
        component_name="inverse",
        temperature_rise_c=-TIER1.temperature_rise_c,
        vibration_amplification=1.0 / TIER1.vibration_amplification,
        emi_shielding=1.0 / TIER1.emi_shielding,
    )
    restored = tier1.refine(inverse)
    assert restored.level is SupplyChainLevel.SEMICONDUCTOR
    assert restored.temperature.mean == pytest.approx(oem.temperature.mean)
    assert restored.vibration.grms == pytest.approx(oem.vibration.grms)
    assert restored.emi.field_v_per_m == pytest.approx(
        oem.emi.field_v_per_m
    )
