"""Unit tests for rate models and the fault-description derivation."""

import pytest

from repro.faults import (
    FaultKind,
    SENSOR_OPEN_LOAD,
    SRAM_SEU,
    STANDARD_CATALOG,
)
from repro.mission import (
    EmiProfile,
    TemperatureProfile,
    VibrationProfile,
    arrhenius_factor,
    derive_descriptors,
    derive_stressor_spec,
    emi_factor,
    expected_events,
    probability_of_at_least_one,
    standard_passenger_car_profile,
    temperature_factor,
    vibration_factor,
)


class TestArrhenius:
    def test_reference_temperature_is_unity(self):
        assert arrhenius_factor(55.0, 55.0) == pytest.approx(1.0)

    def test_hotter_accelerates(self):
        assert arrhenius_factor(85.0, 55.0) > 1.0

    def test_colder_decelerates(self):
        assert arrhenius_factor(25.0, 55.0) < 1.0

    def test_higher_activation_energy_steeper(self):
        mild = arrhenius_factor(85.0, 55.0, activation_energy_ev=0.3)
        steep = arrhenius_factor(85.0, 55.0, activation_energy_ev=0.9)
        assert steep > mild

    def test_absolute_zero_guard(self):
        with pytest.raises(ValueError):
            arrhenius_factor(-300.0)

    def test_histogram_weighting(self):
        cool = TemperatureProfile({25.0: 1.0})
        hot = TemperatureProfile({85.0: 1.0})
        mixed = TemperatureProfile({25.0: 0.5, 85.0: 0.5})
        assert (
            temperature_factor(cool)
            < temperature_factor(mixed)
            < temperature_factor(hot)
        )


class TestVibrationAndEmi:
    def test_reference_vibration_is_unity(self):
        assert vibration_factor(VibrationProfile(1.0)) == pytest.approx(1.0)

    def test_power_law(self):
        double = vibration_factor(VibrationProfile(2.0), exponent=2.5)
        assert double == pytest.approx(2**2.5)

    def test_emi_quadratic(self):
        assert emi_factor(EmiProfile(20.0)) == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            vibration_factor(VibrationProfile(1.0), reference_grms=0.0)
        with pytest.raises(ValueError):
            emi_factor(EmiProfile(1.0), reference_v_per_m=0.0)


class TestExposure:
    def test_expected_events(self):
        assert expected_events(1e-6, 8000) == pytest.approx(8e-3)

    def test_probability_bounds(self):
        assert probability_of_at_least_one(0.0, 100.0) == 0.0
        assert probability_of_at_least_one(1.0, 1e9) == pytest.approx(1.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            expected_events(-1.0, 1.0)


class TestDerivation:
    def test_vibration_scales_wiring_faults(self):
        profile = standard_passenger_car_profile()
        rough_road = profile.refine(
            __import__(
                "repro.mission", fromlist=["ProfileTransfer"]
            ).ProfileTransfer(
                component_name="engine_bay", vibration_amplification=3.0
            )
        )
        base = {d.name: d for d in derive_descriptors(profile, STANDARD_CATALOG)}
        rough = {d.name: d for d in derive_descriptors(rough_road, STANDARD_CATALOG)}
        ratio = (
            rough["sensor_open_load"].rate_per_hour
            / base["sensor_open_load"].rate_per_hour
        )
        assert ratio == pytest.approx(3.0**2.5, rel=1e-6)

    def test_temperature_scales_seu(self):
        profile = standard_passenger_car_profile()
        derived = {
            d.name: d for d in derive_descriptors(profile, STANDARD_CATALOG)
        }
        # BIT_FLIP is temperature-sensitive only: derived rate is the
        # base rate times the lifetime-weighted Arrhenius factor.
        expected = SRAM_SEU.rate_per_hour * temperature_factor(
            profile.temperature
        )
        assert derived["sram_seu"].rate_per_hour == pytest.approx(expected)

    def test_derivation_preserves_catalog_size(self):
        profile = standard_passenger_car_profile()
        assert len(derive_descriptors(profile, STANDARD_CATALOG)) == len(
            STANDARD_CATALOG
        )


class TestStressorSpec:
    def test_spec_filters_by_target_kind(self):
        profile = standard_passenger_car_profile()
        spec = derive_stressor_spec(
            profile, STANDARD_CATALOG, target_kinds=["analog"]
        )
        assert spec.descriptors
        assert all(
            d.applicable_to("analog") for d in spec.descriptors
        )

    def test_descriptor_weights_sum_to_one(self):
        profile = standard_passenger_car_profile()
        spec = derive_stressor_spec(profile, STANDARD_CATALOG)
        total = sum(w for _, w in spec.descriptor_weights())
        assert total == pytest.approx(1.0)

    def test_special_state_boosted(self):
        profile = standard_passenger_car_profile()
        spec = derive_stressor_spec(
            profile, STANDARD_CATALOG, special_boost=10.0
        )
        weights = {w.state.name: w.weight for w in spec.state_weights}
        # Real-time fraction ratio city:curbstone is 45:1; boosted
        # sampling ratio must be 45:10.
        assert weights["city_driving"] / weights["curbstone_steering"] == (
            pytest.approx(4.5)
        )

    def test_state_weights_normalized(self):
        profile = standard_passenger_car_profile()
        spec = derive_stressor_spec(profile, STANDARD_CATALOG)
        assert sum(w.weight for w in spec.state_weights) == pytest.approx(1.0)

    def test_boost_validation(self):
        profile = standard_passenger_car_profile()
        with pytest.raises(ValueError):
            derive_stressor_spec(profile, STANDARD_CATALOG, special_boost=0.5)

    def test_expected_faults_requires_hours(self):
        profile = standard_passenger_car_profile()
        spec = derive_stressor_spec(profile, STANDARD_CATALOG)
        assert spec.expected_faults(hours=8000) > 0
        with pytest.raises(ValueError):
            spec.expected_faults()
