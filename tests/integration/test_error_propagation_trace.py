"""Integration: tracking error propagation with the tracer.

Exercises the paper's observability argument (Sec. 1): inject a fault,
watch its effect travel sensor -> control decision -> actuator on the
recorded waveforms, and export a valid VCD.
"""

import pytest

from repro.core import ErrorScenario, PlannedInjection, Stressor
from repro.faults import FaultDescriptor, FaultKind, Persistence
from repro.kernel import Simulator, Tracer, simtime
from repro.platforms import airbag

STUCK_HIGH = FaultDescriptor(
    name="sensor_stuck_high",
    kind=FaultKind.STUCK_VALUE,
    persistence=Persistence.PERMANENT,
    params={"value": 4.5},
)


@pytest.fixture
def traced_run():
    sim = Simulator()
    platform = airbag.build_normal_operation(sim)
    tracer = Tracer()
    tracer.watch(platform.sensor_a.output)
    tracer.watch(platform.sensor_b.output)
    stressor = Stressor(
        "stressor", parent=platform, platform_root=platform
    )
    stressor.arm(
        ErrorScenario(
            "one-high",
            [
                PlannedInjection(
                    simtime.ms(20), "caps.sensor_a.frontend", STUCK_HIGH
                )
            ],
        )
    )
    sim.run(until=simtime.ms(50))
    return platform, tracer


class TestPropagationVisibility:
    def test_fault_onset_visible_in_trace(self, traced_run):
        platform, tracer = traced_run
        name = "caps.sensor_a.output"
        before = tracer.value_at(name, simtime.ms(19))
        after = tracer.value_at(name, simtime.ms(22))
        assert after > before  # the stuck-high onset is on the waveform
        assert after == platform.sensor_a.quantize(4.5)

    def test_healthy_channel_unaffected(self, traced_run):
        platform, tracer = traced_run
        name = "caps.sensor_b.output"
        values = {change.value for change in tracer.history(name)}
        nominal = platform.sensor_b.quantize(2.6)
        assert values <= {0, nominal}

    def test_containment_no_actuation(self, traced_run):
        platform, _ = traced_run
        # The plausibility check contains the error before the squib.
        assert platform.ecu.plausibility_rejects > 0
        assert not platform.squib.fired

    def test_vcd_export_round_trip(self, traced_run, tmp_path):
        _, tracer = traced_run
        path = tmp_path / "propagation.vcd"
        tracer.write_vcd(str(path))
        text = path.read_text()
        assert "$enddefinitions" in text
        # Both channels declared; the sample at the injection time is
        # on the waveform (fault lands exactly on the 20 ms sample).
        assert "caps.sensor_a.output" in text
        assert f"#{simtime.ms(20)}" in text
