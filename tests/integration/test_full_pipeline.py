"""End-to-end integration: the complete paper methodology in one flow.

HARA -> safety goals -> mission profile -> derived fault descriptions
-> requirement-derived coverage goals -> guided stress-test campaign
-> measured diagnostic coverage -> FMEDA -> ASIL verdict -> fault tree.

This is the test that the pieces actually compose the way DESIGN.md
claims, not just work in isolation.
"""

import pytest

from repro.core import (
    Campaign,
    CoverageGuidedStrategy,
    FaultSpace,
    FaultSpaceCoverage,
    Outcome,
    RandomStrategy,
    RequirementCoverage,
    SafetyRequirement,
    derive_coverage_goals,
    fmeda_from_campaign,
    synthesize_fault_tree,
)
from repro.faults import FaultKind, STANDARD_CATALOG
from repro.kernel import Simulator, simtime
from repro.mission import (
    ProfileTransfer,
    derive_stressor_spec,
    standard_passenger_car_profile,
)
from repro.platforms import airbag
from repro.safety import (
    Asil,
    Controllability,
    Exposure,
    Hazard,
    Severity,
    hara,
    valid_decomposition,
)

DURATION = simtime.ms(60)


@pytest.fixture(scope="module")
def pipeline():
    """Run the whole flow once; individual tests assert its stages."""
    # 1. HARA: the spurious-deployment hazard.
    hazards = [
        Hazard(
            name="spurious_deployment",
            situation="normal driving",
            severity=Severity.S3,
            exposure=Exposure.E4,
            controllability=Controllability.C3,
        )
    ]
    goals = hara(
        hazards,
        {"spurious_deployment":
         "The airbag shall not deploy without a crash."},
    )

    # 2. Mission profile, refined to the airbag ECU, derived to a
    #    stressor spec restricted to the platform's target kinds.
    profile = standard_passenger_car_profile().refine(
        ProfileTransfer(
            component_name="airbag_ecu",
            temperature_rise_c=15.0,
            vibration_amplification=1.5,
        )
    )
    spec = derive_stressor_spec(
        profile, STANDARD_CATALOG, target_kinds=["analog", "memory"]
    )

    # 3. The platform fault space built from the derived descriptors.
    campaign = Campaign(
        platform_factory=airbag.build_normal_operation,
        observe=airbag.observe,
        classifier=airbag.normal_operation_classifier(),
        duration=DURATION,
        seed=5,
    )
    probe = Simulator()
    space = FaultSpace(
        airbag.build_normal_operation(probe),
        spec.descriptors,
        window_start=simtime.ms(5),
        window_end=simtime.ms(30),
        time_bins=2,
    )

    # 4. Requirement-derived coverage goals.
    requirements = [
        SafetyRequirement(
            name="REQ_SENSOR",
            statement="Single sensor faults shall be detected or masked.",
            target_glob="caps.sensor_*.frontend",
            fault_kinds=frozenset(
                {
                    FaultKind.STUCK_VALUE,
                    FaultKind.OPEN_CIRCUIT,
                    FaultKind.SHORT_TO_GROUND,
                    FaultKind.OFFSET_DRIFT,
                }
            ),
            max_acceptable=Outcome.DETECTED_SAFE,
        ),
        SafetyRequirement(
            name="REQ_PARAMS",
            statement="Parameter memory upsets shall not corrupt outputs.",
            target_glob="caps.params.*",
            fault_kinds=frozenset({FaultKind.BIT_FLIP}),
            max_acceptable=Outcome.DETECTED_SAFE,
        ),
    ]
    coverage = FaultSpaceCoverage(space)
    goal_rows = derive_coverage_goals(requirements, space)
    tracker = RequirementCoverage(goal_rows, coverage)

    # 5. Coverage-guided campaign to closure, single faults only
    #    (requirements are about single-fault behaviour).
    strategy = CoverageGuidedStrategy(space, coverage, faults_per_scenario=1)
    result = campaign.run(strategy, runs=space.bin_count + 10, coverage=coverage)

    # 6. Bridges into the classical analyses.
    descriptors = {d.name: d for d in spec.descriptors}
    fmeda = fmeda_from_campaign(result, descriptors)
    tree = synthesize_fault_tree(
        result, descriptors, exposure_hours=profile.operating_hours,
        at_least=Outcome.SDC,
    )
    return {
        "goals": goals,
        "spec": spec,
        "campaign_result": result,
        "tracker": tracker,
        "fmeda": fmeda,
        "tree": tree,
    }


class TestPipeline:
    def test_hara_yields_asil_d_goal(self, pipeline):
        goals = pipeline["goals"]
        assert len(goals) == 1
        assert goals[0].asil is Asil.D
        # The platform's dual channels realise a valid decomposition.
        assert valid_decomposition(Asil.D, Asil.B, Asil.B)

    def test_spec_is_platform_applicable(self, pipeline):
        spec = pipeline["spec"]
        assert spec.descriptors
        assert all(
            d.applicable_to("analog") or d.applicable_to("memory")
            for d in spec.descriptors
        )

    def test_campaign_respects_safety_goal(self, pipeline):
        result = pipeline["campaign_result"]
        # Single faults: the ASIL-D goal demands zero hazards.
        assert result.count(Outcome.HAZARDOUS) == 0

    def test_requirements_reach_closure(self, pipeline):
        tracker = pipeline["tracker"]
        assert tracker.closure == 1.0
        report = tracker.requirement_report()
        assert report["REQ_SENSOR"]["verified"]
        assert report["REQ_PARAMS"]["verified"]

    def test_fmeda_built_from_measurements(self, pipeline):
        fmeda = pipeline["fmeda"]
        result = pipeline["campaign_result"]
        measured = result.diagnostic_coverage_by_descriptor()
        assert len(fmeda.modes) == len(measured)
        report = fmeda.report()
        assert 0.0 <= report["spfm"] <= 1.0
        assert report["achieved_asil"] in ("QM", "B", "C", "D")

    def test_fault_tree_reflects_single_fault_cleanliness(self, pipeline):
        # No SDC-or-worse single-fault record -> no tree, which *is*
        # the verification statement for single faults.
        result = pipeline["campaign_result"]
        if pipeline["tree"] is None:
            assert all(
                not record.outcome.is_dangerous
                for record in result.records
            )
        else:
            assert pipeline["tree"].minimal_cut_sets()


class TestReplayDeterminism:
    @pytest.mark.parametrize("platform_name", ["airbag", "acc", "steering"])
    def test_campaigns_replay_exactly(self, platform_name):
        from repro.platforms import acc, steering

        configs = {
            "airbag": (
                airbag.build_normal_operation,
                airbag.observe,
                airbag.normal_operation_classifier,
                simtime.ms(40),
            ),
            "acc": (
                acc.build_acc, acc.observe, acc.acc_classifier,
                simtime.ms(300),
            ),
            "steering": (
                steering.build_steering(), steering.observe,
                steering.steering_classifier, simtime.ms(200),
            ),
        }
        factory, observe, classifier_fn, duration = configs[platform_name]

        def run_once():
            campaign = Campaign(
                platform_factory=factory,
                observe=observe,
                classifier=classifier_fn(),
                duration=duration,
                seed=123,
            )
            probe = Simulator()
            space = FaultSpace(
                factory(probe),
                list(STANDARD_CATALOG),
                window_start=simtime.ms(2),
                window_end=duration // 2,
            )
            strategy = RandomStrategy(space, faults_per_scenario=1)
            result = campaign.run(strategy, runs=10)
            return [
                (record.outcome, tuple(record.scenario.bins()))
                for record in result.records
            ]

        assert run_once() == run_once()
