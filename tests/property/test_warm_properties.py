"""Property-based equivalence of warm-platform reuse.

For *any* sequence of scenarios — arbitrary injection targets, fault
descriptors, injection times, and run seeds — pushing the whole
sequence through **one** warm platform (reset between runs) must
produce the same :class:`~repro.core.runspec.RunOutcome` content and
the same :class:`~repro.observe.digest.TraceDigest` bytes as running
each scenario on its own freshly elaborated platform.  This is the
generative version of the example-based fresh-vs-warm tests in
``tests/core/test_warm_equivalence.py``: hypothesis searches the
scenario space for any state the reset protocol fails to restore.
"""

from hypothesis import given, settings, strategies as st

from repro.core import Campaign, TraceConfig
from repro.core.runspec import (
    RunSpec,
    clear_warm_platforms,
    execute_runspec,
)
from repro.core.scenario import ErrorScenario, FaultSpace, PlannedInjection
from repro.faults import FaultDescriptor, FaultKind, Persistence, SRAM_SEU
from repro.kernel import Simulator, simtime
from repro.platforms import airbag, registry

STUCK_HIGH = FaultDescriptor(
    name="sensor_stuck_high",
    kind=FaultKind.STUCK_VALUE,
    persistence=Persistence.PERMANENT,
    params={"value": 4.5},
    rate_per_hour=1e-6,
)

OFFSET_DRIFT = FaultDescriptor(
    name="sensor_offset",
    kind=FaultKind.OFFSET_DRIFT,
    persistence=Persistence.PERMANENT,
    params={"offset": 0.4},
    rate_per_hour=1e-7,
)

DURATION = simtime.ms(40)
WINDOW_START = simtime.ms(2)
WINDOW_END = simtime.ms(30)

_SPACE = FaultSpace(
    airbag.build_normal_operation(Simulator()),
    [SRAM_SEU.with_rate(5e-7), STUCK_HIGH, OFFSET_DRIFT],
    window_start=WINDOW_START,
    window_end=WINDOW_END,
    time_bins=2,
)

_CAMPAIGN = Campaign(
    duration=DURATION, seed=3, platform="airbag-normal"
)
_GOLDEN = _CAMPAIGN.golden()
_TRACE = TraceConfig(golden_signals=_CAMPAIGN.golden_signals())
_BUNDLE = registry.get_platform("airbag-normal")
_CLASSIFIER = _BUNDLE.classifier_factory()


@st.composite
def scenario_sequences(draw):
    """A short campaign worth of arbitrary scenarios."""
    count = draw(st.integers(1, 4))
    sequence = []
    for index in range(count):
        injections = []
        for _ in range(draw(st.integers(0, 2))):
            pair_index = draw(st.integers(0, len(_SPACE.pairs) - 1))
            path, descriptor = _SPACE.pairs[pair_index]
            time = draw(st.integers(WINDOW_START, WINDOW_END - 1))
            injections.append(
                PlannedInjection(
                    time=time, target_path=path, descriptor=descriptor
                )
            )
        sequence.append((
            ErrorScenario(name=f"prop_{index}", injections=injections),
            draw(st.integers(0, 2**31 - 1)),
        ))
    return sequence


def _outcome_bytes(outcome):
    stats = {
        key: value
        for key, value in outcome.kernel_stats.items()
        if key != "wall_s"
    }
    return (
        outcome.index,
        outcome.outcome,
        outcome.matched_rules,
        tuple(sorted(outcome.observation.items())),
        outcome.injections_applied,
        tuple(sorted(stats.items())),
        outcome.stressor_errors,
        outcome.digest.canonical() if outcome.digest else None,
    )


def _execute(sequence, reset):
    outcomes = []
    for index, (scenario, run_seed) in enumerate(sequence):
        spec = RunSpec(
            index=index,
            scenario=scenario,
            run_seed=run_seed,
            duration=DURATION,
            platform="airbag-normal",
            golden=_GOLDEN,
            trace=_TRACE,
            reuse_platform=reset is not None,
        )
        outcomes.append(
            execute_runspec(
                spec, _BUNDLE.factory, _BUNDLE.observe, _CLASSIFIER,
                reset=reset,
            )
        )
    return outcomes


class TestWarmReuseProperty:
    @given(scenario_sequences())
    @settings(max_examples=25, deadline=None)
    def test_one_warm_platform_equals_n_fresh_platforms(self, sequence):
        clear_warm_platforms()
        try:
            warm = _execute(sequence, reset=_BUNDLE.reset)
        finally:
            clear_warm_platforms()
        fresh = _execute(sequence, reset=None)
        assert [_outcome_bytes(o) for o in warm] == [
            _outcome_bytes(o) for o in fresh
        ]
