"""Property-based invariants of the risk engine.

* sampler marginals stay within the profile's declared envelopes
  (temperature inside the histogram support) for any valid
  correlation / persistence / segment configuration;
* correlation-matrix validation rejects every non-PSD input with a
  clear error and accepts every generated PSD one;
* same-seed sampled campaigns journal byte-identically and produce the
  same ``RiskReport.canonical()`` across serial, parallel, and
  snapshot-fork executors.
"""

import json
import os
import pathlib
import tempfile

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import Campaign, FaultSpace
from repro.faults import SRAM_SEU
from repro.kernel import Simulator, simtime
from repro.mission import standard_passenger_car_profile
from repro.risk import (
    CorrelationError,
    CorrelationMatrix,
    RiskReport,
    SampledScenarioStrategy,
    StressSampler,
)

from ..risk.conftest import DURATION, STUCK_HIGH

# ---------------------------------------------------------------------------
# Correlation matrices: generated PSD inputs pass, perturbed ones fail.
# ---------------------------------------------------------------------------

@st.composite
def psd_correlations(draw):
    """A guaranteed-valid correlation: normalized Gram matrix A·Aᵀ."""
    rows = draw(
        st.lists(
            st.lists(
                st.floats(-1.0, 1.0, allow_nan=False, allow_infinity=False),
                min_size=4, max_size=4,
            ),
            min_size=4, max_size=4,
        )
    )
    a = np.asarray(rows, dtype=float)
    gram = a @ a.T + 1e-3 * np.eye(4)
    d = np.sqrt(np.diag(gram))
    normalized = gram / np.outer(d, d)
    # Exact symmetry + unit diagonal despite float division.
    normalized = (normalized + normalized.T) / 2.0
    np.fill_diagonal(normalized, 1.0)
    return tuple(tuple(float(v) for v in row) for row in normalized)


class TestCorrelationValidation:
    @given(psd_correlations())
    @settings(max_examples=40, deadline=None)
    def test_generated_psd_matrices_accepted(self, values):
        matrix = CorrelationMatrix(values)
        assert matrix.cholesky().shape == (4, 4)

    @given(psd_correlations(), st.integers(0, 2))
    @settings(max_examples=40, deadline=None)
    def test_rank_breaking_perturbation_rejected(self, values, k):
        # Push one off-diagonal pair past what PSD-ness can bear while
        # keeping entries in [-1, 1]: copy a row's correlation pattern
        # into another row but flip its sign — with magnitudes near 1
        # the matrix cannot stay PSD.
        broken = [list(row) for row in values]
        i, j = k, k + 1
        broken[i][j] = 0.99
        broken[j][i] = 0.99
        other = (k + 2) % 4 if (k + 2) % 4 not in (i, j) else 3
        broken[i][other] = 0.99
        broken[other][i] = 0.99
        broken[j][other] = -0.99
        broken[other][j] = -0.99
        try:
            CorrelationMatrix(tuple(tuple(row) for row in broken))
        except CorrelationError as error:
            assert "positive semi-definite" in str(error)
        else:
            # The construction above is always non-PSD: x+y strongly
            # correlated while pulling a third variable both ways.
            raise AssertionError("non-PSD matrix was accepted")


# ---------------------------------------------------------------------------
# Sampler marginals stay inside the profile envelope.
# ---------------------------------------------------------------------------

@st.composite
def sampler_configs(draw):
    seed = draw(st.integers(0, 2**16))
    segments = draw(st.integers(1, 12))
    persistence = draw(st.floats(0.0, 0.95, allow_nan=False))
    correlation = CorrelationMatrix(draw(psd_correlations()))
    return seed, segments, persistence, correlation


class TestMarginalSupport:
    @given(sampler_configs())
    @settings(max_examples=25, deadline=None)
    def test_temperature_within_histogram_support(self, config):
        seed, segments, persistence, correlation = config
        profile = standard_passenger_car_profile()
        sampler = StressSampler(
            profile,
            correlation=correlation,
            segments=segments,
            persistence=persistence,
            events=(),  # overlays intentionally leave the envelope
            seed=seed,
        )
        support = set(profile.temperature.histogram)
        for env in sampler.draw_many(5):
            assert set(env.temperature_c) <= support
            assert all(g > 0 for g in env.vibration_grms)
            assert all(e > 0 for e in env.emi_v_per_m)
            assert all(f > 0 for f in env.load_factor)

    @given(st.integers(0, 2**16))
    @settings(max_examples=15, deadline=None)
    def test_same_seed_reproduces_stream(self, seed):
        profile = standard_passenger_car_profile()

        def draw():
            return [
                e.to_jsonable()
                for e in StressSampler(profile, seed=seed).draw_many(4)
            ]

        assert draw() == draw()


# ---------------------------------------------------------------------------
# Same-seed campaigns: byte-identical journals and canonical reports
# across serial / parallel / fork execution.
# ---------------------------------------------------------------------------

PIN = simtime.ms(50)


def _run(seed, backend, fork, checkpoint):
    profile = standard_passenger_car_profile()
    probe = Simulator()
    from repro.platforms import airbag

    space = FaultSpace(
        airbag.build_normal_operation(probe),
        [SRAM_SEU.with_rate(5e-7), STUCK_HIGH],
        window_start=simtime.ms(5),
        window_end=simtime.ms(30),
        time_bins=2,
    )
    strategy = SampledScenarioStrategy(
        space, StressSampler(profile, seed=seed), injection_time=PIN
    )
    campaign = Campaign(
        duration=DURATION, seed=seed + 1, platform="airbag-normal"
    )
    kwargs = dict(
        backend=backend, batch_size=6, trace=True, fork=fork,
        checkpoint=checkpoint,
    )
    if backend == "parallel":
        kwargs["workers"] = 2
    result = campaign.run(strategy, runs=12, **kwargs)
    return RiskReport.from_campaign(result, strategy)


def _journal(path):
    rows = []
    for line in path.read_text().splitlines():
        payload = json.loads(line)
        if isinstance(payload, dict):
            stats = payload.get("kernel_stats")
            if isinstance(stats, dict):
                stats.pop("wall_s", None)
        rows.append(payload)
    return rows


class TestCampaignEquivalenceProperty:
    # tempfile (not the tmp_path fixture) so each hypothesis example
    # gets a fresh directory without tripping the function-scoped
    # fixture health check.
    @given(st.integers(0, 2**10))
    @settings(max_examples=4, deadline=None)
    def test_serial_fork_journals_and_reports_match(self, seed):
        with tempfile.TemporaryDirectory() as tmp:
            plain_path = pathlib.Path(tmp) / "plain.jsonl"
            fork_path = pathlib.Path(tmp) / "fork.jsonl"
            plain = _run(seed, "serial", fork=False, checkpoint=plain_path)
            forked = _run(seed, "serial", fork=True, checkpoint=fork_path)
            assert plain.canonical() == forked.canonical()
            assert _journal(plain_path) == _journal(fork_path)

    @given(st.integers(0, 2**10))
    @settings(max_examples=2, deadline=None)
    def test_serial_parallel_journals_and_reports_match(self, seed):
        previous = os.environ.get("REPRO_FORCE_POOL")
        os.environ["REPRO_FORCE_POOL"] = "1"
        try:
            with tempfile.TemporaryDirectory() as tmp:
                serial_path = pathlib.Path(tmp) / "serial.jsonl"
                pool_path = pathlib.Path(tmp) / "pool.jsonl"
                serial = _run(
                    seed, "serial", fork=False, checkpoint=serial_path
                )
                pooled = _run(
                    seed, "parallel", fork=False, checkpoint=pool_path
                )
                assert serial.canonical() == pooled.canonical()
                assert _journal(serial_path) == _journal(pool_path)
        finally:
            if previous is None:
                del os.environ["REPRO_FORCE_POOL"]
            else:
                os.environ["REPRO_FORCE_POOL"] = previous
