"""Property-based invariants of the observability layer.

The load-bearing claim behind ``TraceConfig.ring_capacity`` is that
tracing a run costs O(watched signals), never O(simulated activity):
no matter how chatty a signal is, the ring retains at most ``capacity``
changes and accounts for every drop.  Hypothesis drives the storm.
"""

import json

from hypothesis import given, settings, strategies as st

from repro.kernel import Module, Simulator, Tracer
from repro.observe import TraceDigest, TraceEvent, sort_events
from repro.observe.events import (
    CLASSIFICATION,
    DETECTION,
    DEVIATION,
    INJECTION,
)

KINDS = [INJECTION, DEVIATION, DETECTION, CLASSIFICATION]

events = st.builds(
    TraceEvent,
    st.integers(min_value=0, max_value=10_000),
    st.sampled_from(KINDS),
    st.text(
        alphabet="abcdef.glr_0123456789", min_size=1, max_size=12
    ),
    st.text(alphabet="abcdef:->_0123456789", max_size=12),
)


class TestBoundedRingBuffer:
    @given(
        capacity=st.integers(min_value=1, max_value=16),
        writes=st.lists(
            st.integers(min_value=0, max_value=1_000),
            min_size=0,
            max_size=200,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_ring_never_exceeds_capacity_and_accounts_drops(
        self, capacity, writes
    ):
        sim = Simulator()
        top = Module("top", sim=sim)
        sig = top.signal("noisy", -1)
        tracer = Tracer(capacity=capacity)
        tracer.watch(sig)

        def storm():
            for value in writes:
                yield 1
                sig.write(value)

        top.process(storm())
        sim.run(until=len(writes) + 2)

        history = tracer.history("top.noisy")
        assert len(history) <= capacity
        # Every change is either retained or counted as dropped; the
        # baseline snapshot at watch() time is a change too.
        distinct_changes = 1 + sum(
            1
            for previous, value in zip([-1] + writes, writes)
            if value != previous
        )
        assert len(history) + tracer.dropped("top.noisy") == distinct_changes
        # The ring keeps the *newest* suffix of the change stream.
        if history and tracer.dropped("top.noisy"):
            assert history[-1].time == max(c.time for c in history)

    @given(
        capacity=st.integers(min_value=1, max_value=8),
        signals=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=20, deadline=None)
    def test_memory_bound_is_per_signal(self, capacity, signals):
        sim = Simulator()
        top = Module("top", sim=sim)
        tracer = Tracer(capacity=capacity)
        sigs = [top.signal(f"s{i}", 0) for i in range(signals)]
        for sig in sigs:
            tracer.watch(sig)

        def storm(sig):
            for value in range(1, 40):
                yield 1
                sig.write(value)

        for sig in sigs:
            top.process(storm(sig))
        sim.run(until=100)
        total = sum(len(tracer.history(s.name)) for s in sigs)
        assert total <= capacity * signals


class TestDigestProperties:
    @given(st.lists(events, max_size=40))
    @settings(max_examples=80, deadline=None)
    def test_sort_events_is_idempotent_and_total(self, batch):
        once = sort_events(batch)
        assert sort_events(once) == once
        assert sorted(e.sort_key() for e in batch) == [
            e.sort_key() for e in once
        ]

    @given(
        st.lists(events, max_size=30),
        st.integers(min_value=0, max_value=1_000_000),
        st.booleans(),
        st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=80, deadline=None)
    def test_digest_round_trips_and_canonical_is_stable(
        self, batch, seed, partial, dropped
    ):
        digest = TraceDigest(
            index=0,
            seed=seed,
            events=tuple(sort_events(batch)),
            outcome="SDC" if not partial else None,
            partial=partial,
            dropped_events=dropped,
        )
        restored = TraceDigest.from_jsonable(
            json.loads(json.dumps(digest.to_jsonable()))
        )
        assert restored == digest
        assert restored.canonical() == digest.canonical()
