"""Property-based invariants of the hardware substrate."""

import random

from hypothesis import given, settings, strategies as st

from repro.hw import CanBus, CanFrame, CanNode, Memory
from repro.hw.cpu import assemble, disassemble
from repro.kernel import Module, Simulator
from repro.tlm import GenericPayload


class TestCanProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 0x7FF), st.binary(min_size=0, max_size=8)),
            min_size=1,
            max_size=12,
            unique_by=lambda t: t[0],
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_single_controller_delivers_fifo_exactly_once(self, frames):
        # One controller's transmit queue is FIFO (only its *head*
        # takes part in bus arbitration); every frame arrives exactly
        # once, uncorrupted.
        sim = Simulator()
        top = Module("top", sim=sim)
        bus = CanBus("bus", parent=top, bit_time=10)
        sender = CanNode("tx", parent=top, bus=bus)
        receiver = CanNode("rx", parent=top, bus=bus)
        for can_id, payload in frames:
            sender.send(CanFrame(can_id, payload))
        sim.run(until=10_000_000)
        received = [(f.can_id, bytes(f.data)) for f in receiver.rx_queue]
        assert received == frames
        assert bus.crc_errors_detected == 0

    @given(
        st.lists(
            st.integers(0, 0x7FF), min_size=2, max_size=8, unique=True
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_multi_node_arbitration_is_global_priority(self, ids):
        sim = Simulator()
        top = Module("top", sim=sim)
        bus = CanBus("bus", parent=top, bit_time=10)
        nodes = [
            CanNode(f"n{i}", parent=top, bus=bus) for i in range(len(ids))
        ]
        observer = CanNode("obs", parent=top, bus=bus)
        for node, can_id in zip(nodes, ids):
            node.send(CanFrame(can_id, b"\x00"))
        sim.run(until=10_000_000)
        assert [f.can_id for f in observer.rx_queue] == sorted(ids)


class TestMemoryProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 63), st.binary(min_size=1, max_size=8)),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_memory_behaves_like_bytearray(self, operations):
        sim = Simulator()
        top = Module("top", sim=sim)
        mem = Memory("mem", parent=top, size=64)
        model = bytearray(64)
        for address, data in operations:
            data = data[: 64 - address]
            if not data:
                continue
            payload = GenericPayload.write(address, data)
            mem.tsock.deliver(payload, 0)
            assert payload.ok
            model[address : address + len(data)] = data
        read = GenericPayload.read(0, 64)
        mem.tsock.deliver(read, 0)
        assert read.data == model

    @given(
        st.lists(
            st.tuples(st.integers(0, 31), st.integers(0, 7)),
            min_size=0,
            max_size=30,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_double_flip_is_identity(self, flips):
        sim = Simulator()
        top = Module("top", sim=sim)
        mem = Memory("mem", parent=top, size=32)
        mem.load(0, bytes(range(32)))
        point = mem.injection_points["array"]
        for address, bit in flips + list(reversed(flips)):
            point.flip(address, bit)
        assert mem.data == bytearray(range(32))


class TestDisassemblerProperties:
    @given(st.binary(min_size=4, max_size=64).filter(lambda b: len(b) % 4 == 0))
    @settings(max_examples=80, deadline=None)
    def test_disassemble_reassemble_is_identity(self, image):
        """Any word-aligned image survives disasm -> asm byte-exactly.

        Branch immediates are emitted as raw offsets (not labels), so
        re-assembly must reproduce the encoding bit for bit; illegal
        words pass through as .word directives.
        """
        text = disassemble(image)
        program = assemble(text)
        assert program.image == image

    def test_known_listing(self):
        program = assemble("ldi r1, 5\nadd r2, r1, r1\nhalt")
        text = disassemble(program.image)
        assert text.splitlines() == [
            "ldi r1, 5",
            "add r2, r1, r1",
            "halt",
        ]
