"""Differential fuzzing: vector engine vs scalar ground truth.

The soundness anchor of the bit-parallel gate engine.  Hypothesis
drives seeded random netlists (``tests/gate/gen.py``) through both
engines — random input patterns, random fault-site subsets of every
kind, random cycle counts, lane-packing edge cases — and demands
bit-for-bit agreement everywhere.  The committed regression corpus of
structurally nasty netlists (deep MUX chains, fanout through flops,
feedback, inverter towers) is swept exhaustively on every run.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.gate import (
    GateSimulator,
    VectorGateSimulator,
    enumerate_sites,
    run_campaign,
)
from repro.gate.faults import FAULT_KINDS

from tests.gate.gen import CORPUS, random_circuit, random_vector


def sample_sites(rng, circuit, max_sites):
    """A random site subset covering every fault kind."""
    pool = enumerate_sites(circuit, FAULT_KINDS)
    count = rng.randint(1, min(max_sites, len(pool)))
    return rng.sample(pool, count)


# -- the main differential property (the >= 200 example acceptance) --------


@given(seed=st.integers(0, 2**32 - 1))
@settings(max_examples=200, deadline=None)
def test_random_netlist_campaign_equivalence(seed):
    """Scalar and vector campaigns agree byte-for-byte on random
    netlists x input patterns x fault sites x cycle counts."""
    rng = random.Random(seed)
    circuit = random_circuit(rng)
    sites = sample_sites(rng, circuit, max_sites=8)
    runs_per_site = rng.randint(1, 2)
    settle_cycles = rng.randint(1, 3)
    campaign_seed = rng.randrange(2**31)
    results = {}
    for engine in ("scalar", "vector"):
        results[engine] = run_campaign(
            circuit,
            "out",
            sites=sites,
            runs_per_site=runs_per_site,
            settle_cycles=settle_cycles,
            seed=campaign_seed,
            engine=engine,
        )
    scalar_profile, scalar_outcomes = results["scalar"]
    vector_profile, vector_outcomes = results["vector"]
    assert scalar_profile.canonical() == vector_profile.canonical()
    assert scalar_outcomes == vector_outcomes


# -- lane-level equivalence on free-form stimulus sequences -----------------


@given(seed=st.integers(0, 2**32 - 1))
@settings(max_examples=60, deadline=None)
def test_random_netlist_lane_equivalence(seed):
    """Each vector lane replays an independent scalar run exactly —
    including mid-sequence SEUs and per-lane stuck-ats — across every
    evaluate of a multi-cycle stimulus sequence."""
    rng = random.Random(seed)
    circuit = random_circuit(rng)
    nets = circuit.netlist.nets
    cycles = rng.randint(1, 4)
    vectors = [random_vector(rng, circuit) for _ in range(cycles)]
    lanes = rng.choice([1, 2, 63, 64, 65])
    lane_faults = []
    for _ in range(lanes):
        faults = []
        for _ in range(rng.randint(0, 2)):
            net = rng.choice(nets)
            if rng.random() < 0.5:
                faults.append(("stuck", net, rng.randrange(2)))
            else:
                faults.append(("seu", net, rng.randrange(cycles)))
        lane_faults.append(faults)

    vec = VectorGateSimulator(circuit.netlist, lanes=lanes)
    scalars = [GateSimulator(circuit.netlist) for _ in range(lanes)]
    for lane, faults in enumerate(lane_faults):
        for fault in faults:
            if fault[0] == "stuck":
                vec.set_stuck(fault[1], fault[2], lanes=(lane,))
                scalars[lane].set_stuck(fault[1], fault[2])

    for cycle, vector in enumerate(vectors):
        for lane, faults in enumerate(lane_faults):
            for fault in faults:
                if fault[0] == "seu" and fault[2] == cycle:
                    # Injection order within a cycle is irrelevant for
                    # distinct nets and idempotent for equal comb nets;
                    # flop nets toggle identically in both engines.
                    vec.inject_seu(fault[1], lanes=(lane,))
                    scalars[lane].inject_seu(fault[1])
        rows = vec.evaluate(vector)
        words = vec.unpack_lanes(circuit.buses["out"], rows)
        for lane, scalar in enumerate(scalars):
            outputs = scalar.evaluate(vector)
            assert words[lane] == GateSimulator.unpack(
                circuit.buses["out"], outputs
            ), (lane, cycle)
            scalar.clock()
        vec.clock()


# -- lane-packing edges on a fixed circuit ----------------------------------


@given(
    seed=st.integers(0, 2**32 - 1),
    lanes=st.sampled_from([1, 63, 64, 65, 127, 128, 130]),
)
@settings(max_examples=40, deadline=None)
def test_lane_packing_edges_stay_canonical(seed, lanes):
    """Any lane count: inverted rows never leak bits above the lane
    range, and every lane decodes to a scalar-consistent word."""
    rng = random.Random(seed)
    circuit = random_circuit(rng)
    vec = VectorGateSimulator(circuit.netlist, lanes=lanes)
    scalar = GateSimulator(circuit.netlist)
    for _ in range(2):
        vector = random_vector(rng, circuit)
        rows = vec.evaluate(vector)
        expected = scalar.evaluate(vector)
        scalar.clock()
        vec.clock()
        for net, row in rows.items():
            assert not (row & ~vec.lane_mask).any(), net
        words = vec.unpack_lanes(circuit.buses["out"], rows)
        want = GateSimulator.unpack(circuit.buses["out"], expected)
        assert words == [want] * lanes


# -- committed regression corpus --------------------------------------------


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_corpus_campaign_equivalence(name):
    """Every corpus netlist, every fault kind, both engines."""
    circuit = CORPUS[name]()
    kwargs = dict(
        kinds=FAULT_KINDS,
        runs_per_site=2,
        settle_cycles=3,
        seed=29,
    )
    scalar_profile, scalar_outcomes = run_campaign(
        circuit, "out", engine="scalar", **kwargs
    )
    vector_profile, vector_outcomes = run_campaign(
        circuit, "out", engine="vector", **kwargs
    )
    assert scalar_profile.canonical() == vector_profile.canonical()
    assert scalar_outcomes == vector_outcomes
    assert scalar_profile.total > 0


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_corpus_fault_free_parity(name):
    """Corpus netlists settle identically over a long fault-free run
    (feedback circuits evolve state every cycle)."""
    circuit = CORPUS[name]()
    rng = random.Random(3)
    scalar = GateSimulator(circuit.netlist)
    vec = VectorGateSimulator(circuit.netlist, lanes=65)
    for cycle in range(8):
        vector = random_vector(rng, circuit)
        expected = scalar.evaluate(vector)
        rows = vec.evaluate(vector)
        want = GateSimulator.unpack(circuit.buses["out"], expected)
        assert vec.unpack_lanes(circuit.buses["out"], rows) == [want] * 65, (
            name, cycle
        )
        scalar.clock()
        vec.clock()


def test_generator_is_seed_deterministic():
    """Same seed, same netlist — the fuzz population is reproducible."""
    a = random_circuit(random.Random(1234))
    b = random_circuit(random.Random(1234))
    assert [g.name for g in a.netlist.gates] == [
        g.name for g in b.netlist.gates
    ]
    assert a.netlist.inputs == b.netlist.inputs
    assert a.buses["out"] == b.buses["out"]
