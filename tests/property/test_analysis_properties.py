"""Property-based invariants of the analysis layers (FTA, solver,
classification, coverage)."""

import itertools
import random

from hypothesis import given, settings, strategies as st

from repro.core import Outcome
from repro.safety import AndGate, BasicEvent, FaultTree, OrGate
from repro.symbolic import Var, solve


@st.composite
def random_trees(draw):
    """A random 2-level tree over up to 5 basic events with
    probabilities, returned with its boolean structure for brute force.
    Structure: OR of groups, each group an AND of event indices.
    """
    event_count = draw(st.integers(1, 5))
    probabilities = [
        draw(st.floats(min_value=0.0, max_value=0.9)) for _ in range(event_count)
    ]
    group_count = draw(st.integers(1, 4))
    groups = []
    for _ in range(group_count):
        size = draw(st.integers(1, event_count))
        members = draw(
            st.lists(
                st.integers(0, event_count - 1),
                min_size=size, max_size=size, unique=True,
            )
        )
        groups.append(tuple(sorted(members)))
    return probabilities, groups


def brute_force_probability(probabilities, groups):
    """Exact P(top) by enumerating all event-state combinations."""
    total = 0.0
    count = len(probabilities)
    for states in itertools.product([0, 1], repeat=count):
        top = any(all(states[i] for i in group) for group in groups)
        if not top:
            continue
        weight = 1.0
        for index, state in enumerate(states):
            weight *= probabilities[index] if state else 1 - probabilities[index]
        total += weight
    return total


class TestFtaAgainstBruteForce:
    @given(random_trees())
    @settings(max_examples=60, deadline=None)
    def test_top_probability_matches_enumeration(self, tree_spec):
        probabilities, groups = tree_spec
        events = [
            BasicEvent(f"e{i}", p) for i, p in enumerate(probabilities)
        ]
        branches = []
        for g_index, group in enumerate(groups):
            members = [events[i] for i in group]
            if len(members) == 1:
                branches.append(members[0])
            else:
                branches.append(AndGate(f"g{g_index}", members))
        top = branches[0] if len(branches) == 1 else OrGate("top", branches)
        tree = FaultTree(top)
        exact = brute_force_probability(probabilities, groups)
        assert abs(tree.top_event_probability() - exact) < 1e-9

    @given(random_trees())
    @settings(max_examples=40, deadline=None)
    def test_cut_sets_are_minimal_and_sufficient(self, tree_spec):
        probabilities, groups = tree_spec
        events = [BasicEvent(f"e{i}", p) for i, p in enumerate(probabilities)]
        branches = [
            AndGate(f"g{j}", [events[i] for i in group])
            if len(group) > 1 else events[group[0]]
            for j, group in enumerate(groups)
        ]
        top = branches[0] if len(branches) == 1 else OrGate("top", branches)
        tree = FaultTree(top)
        cut_sets = tree.minimal_cut_sets()
        # No cut set contains another (minimality).
        for a in cut_sets:
            for b in cut_sets:
                if a is not b:
                    assert not a < b
        # Each cut set actually triggers the top event (sufficiency).
        for cut_set in cut_sets:
            states = [
                1 if f"e{i}" in cut_set else 0
                for i in range(len(probabilities))
            ]
            assert any(
                all(states[i] for i in group) for group in groups
            )


class TestSolverProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(-5, 5),
                st.integers(-5, 5),
                st.integers(-20, 20),
                st.sampled_from(["<=", ">=", "=="]),
            ),
            min_size=1,
            max_size=4,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_solver_agrees_with_brute_force_on_satisfiability(self, rows):
        x, y = Var("x"), Var("y")
        constraints = []
        for cx, cy, c, op in rows:
            expr = cx * x + cy * y + c
            if op == "<=":
                constraints.append(expr <= 0)
            elif op == ">=":
                constraints.append(expr >= 0)
            else:
                constraints.append(expr.eq(0))
        domains = {"x": (0, 12), "y": (0, 12)}
        witness = solve(constraints, domains)
        brute = any(
            all(c.holds({"x": vx, "y": vy}) for c in constraints)
            for vx in range(13)
            for vy in range(13)
        )
        assert (witness is not None) == brute
        if witness is not None:
            assert all(c.holds(witness) for c in constraints)


class TestClassificationProperties:
    @given(st.lists(st.sampled_from(list(Outcome)), min_size=1, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_classifier_returns_max_of_matching_rules(self, outcomes):
        from repro.core import Classifier

        classifier = Classifier()
        for index, outcome in enumerate(outcomes):
            classifier.add_rule(
                outcome, lambda f, g: True, f"rule{index}"
            )
        verdict, labels = classifier.classify({}, {})
        assert verdict == max(outcomes)
        assert len(labels) == len(outcomes)

    def test_lattice_flags_are_consistent(self):
        for outcome in Outcome:
            if outcome.is_dangerous:
                assert outcome.is_failure
