"""Property-based invariants of fault-tolerant campaign execution.

Random hostility profiles (which run indices livelock or raise, which
wall-clock deadline applies, how big the retry budget is) must never
break the degradation accounting:

* every planned run yields exactly one record, in index order;
* ``runs == completed + timed_out + terminally_failed``;
* degraded runs classify ``TIMEOUT`` (inconclusive), never a failure;
* the retry policy's backoff schedule is deterministic and monotone.
"""

from hypothesis import given, settings, strategies as st

from repro.core import Campaign, Outcome, RetryPolicy
from repro.platforms import hostile

from ..core.test_fault_tolerance import scripted

#: Hostility per run index: None = nominal, else a behavior fault.
MODES = st.sampled_from([None, "livelock", "raise"])

DESCRIPTOR = {"livelock": hostile.LIVELOCK, "raise": hostile.RAISE}


@st.composite
def hostility_profiles(draw):
    runs = draw(st.integers(1, 6))
    modes = [draw(MODES) for _ in range(runs)]
    deadline = draw(st.sampled_from([0.05, 0.2]))
    seed = draw(st.integers(0, 2**16))
    return runs, modes, deadline, seed


class TestDegradationAccounting:
    @given(hostility_profiles())
    @settings(max_examples=12, deadline=None)
    def test_every_run_is_accounted_for(self, profile):
        runs, modes, deadline, seed = profile
        hostility = {
            index: DESCRIPTOR[mode]
            for index, mode in enumerate(modes)
            if mode is not None
        }
        campaign = Campaign(
            duration=hostile.DURATION, seed=seed, platform="hostile-dut"
        )
        result = campaign.run(
            scripted(runs, hostility),
            runs=runs,
            run_timeout_s=deadline,
        )
        # One record per planned run, sorted by run index.
        assert [r.index for r in result.records] == list(range(runs))
        # The partition invariant.
        assert result.runs == (
            result.completed + result.timed_out + result.terminally_failed
        )
        assert result.timed_out == modes.count("livelock")
        assert result.terminally_failed == modes.count("raise")
        # Degraded runs are inconclusive, never failures; nominal runs
        # on the hostile DUT are NO_EFFECT.
        for index, mode in enumerate(modes):
            record = result.records[index]
            if mode is None:
                assert record.outcome is Outcome.NO_EFFECT
                assert record.failure is None
            else:
                assert record.outcome is Outcome.TIMEOUT
                assert record.outcome.is_inconclusive
                assert not record.outcome.is_failure

    @given(hostility_profiles())
    @settings(max_examples=8, deadline=None)
    def test_report_robustness_matches_counters(self, profile):
        runs, modes, deadline, seed = profile
        hostility = {
            index: DESCRIPTOR[mode]
            for index, mode in enumerate(modes)
            if mode is not None
        }
        campaign = Campaign(
            duration=hostile.DURATION, seed=seed, platform="hostile-dut"
        )
        result = campaign.run(
            scripted(runs, hostility), runs=runs, run_timeout_s=deadline
        )
        report = result.report()
        if not hostility:
            assert "robustness" not in report
        else:
            section = report["robustness"]
            assert section["completed"] == result.completed
            assert section["timed_out"] == result.timed_out
            assert section["terminally_failed"] == result.terminally_failed
            assert (
                section["completed"]
                + section["timed_out"]
                + section["terminally_failed"]
                == report["runs"]
            )


class TestRetryPolicyProperties:
    @given(
        st.integers(0, 6),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_backoff_schedule_deterministic_and_monotone(
        self, max_retries, backoff_s
    ):
        policy = RetryPolicy(max_retries=max_retries, backoff_s=backoff_s)
        assert policy.max_attempts == max_retries + 1
        schedule = [policy.backoff_for(n) for n in range(1, 6)]
        # Deterministic: same policy, same schedule.
        again = RetryPolicy(max_retries=max_retries, backoff_s=backoff_s)
        assert [again.backoff_for(n) for n in range(1, 6)] == schedule
        # Monotone non-decreasing, exponential in the rebuild count.
        assert all(a <= b for a, b in zip(schedule, schedule[1:]))
        if backoff_s > 0:
            assert schedule[1] == 2 * schedule[0]
