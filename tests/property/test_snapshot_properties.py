"""Property-based equivalence of snapshot-fork execution.

For *any* group of scenarios sharing an earliest injection time —
arbitrary injection targets, descriptors, extra later injections, and
run seeds — simulating the fault-free prefix once and forking every
run from the mid-run kernel snapshot
(:func:`~repro.core.runspec.execute_fork_group_from_registry`) must
produce the same :class:`~repro.core.runspec.RunOutcome` content and
the same :class:`~repro.observe.digest.TraceDigest` bytes as running
each scenario on its own freshly elaborated platform.  This is the
generative version of the example-based tests in
``tests/core/test_fork_equivalence.py``: hypothesis searches the
scenario space for any kernel or module state the snapshot/restore
protocol fails to reproduce.

A second property covers the fallback contract: a platform without
snapshot hooks (hostile-dut) must journal byte-identically whether or
not ``fork=True`` was requested — including when its runs crash and
are retried.
"""

import json

from hypothesis import given, settings, strategies as st

from repro.core import Campaign, TraceConfig
from repro.core.runspec import (
    RunSpec,
    clear_warm_platforms,
    execute_fork_group_from_registry,
    execute_runspec,
    fork_groups,
)
from repro.core.scenario import ErrorScenario, FaultSpace, PlannedInjection
from repro.faults import SENSOR_OFFSET_DRIFT, SENSOR_STUCK, SRAM_SEU
from repro.kernel import Simulator, simtime
from repro.platforms import hostile, registry


def _platform_fixture(key, duration, descriptors):
    """Shared per-platform constants: campaign, golden, trace, space."""
    campaign = Campaign(duration=duration, seed=3, platform=key)
    bundle = registry.get_platform(key)
    space = FaultSpace(
        bundle.factory(Simulator()),
        descriptors,
        window_start=duration // 4,
        window_end=duration - 1,
        time_bins=2,
    )
    return {
        "key": key,
        "duration": duration,
        "bundle": bundle,
        "golden": campaign.golden(),
        "trace": TraceConfig(golden_signals=campaign.golden_signals()),
        "space": space,
    }


_AIRBAG = _platform_fixture(
    "airbag-normal", simtime.ms(40),
    [SRAM_SEU, SENSOR_OFFSET_DRIFT, SENSOR_STUCK],
)
_STEERING = _platform_fixture(
    "steering", simtime.ms(50),
    [SENSOR_OFFSET_DRIFT, SENSOR_STUCK],
)


@st.composite
def fork_group_specs(draw, fixture):
    """2-3 RunSpecs sharing an earliest injection time ``t1``."""
    space = fixture["space"]
    duration = fixture["duration"]
    t1 = draw(st.integers(duration // 4, duration - 2))
    count = draw(st.integers(2, 3))
    specs = []
    for index in range(count):
        pair_index = draw(st.integers(0, len(space.pairs) - 1))
        path, descriptor = space.pairs[pair_index]
        injections = [
            PlannedInjection(time=t1, target_path=path, descriptor=descriptor)
        ]
        for _ in range(draw(st.integers(0, 1))):
            extra_index = draw(st.integers(0, len(space.pairs) - 1))
            extra_path, extra_descriptor = space.pairs[extra_index]
            extra_time = draw(st.integers(t1, duration - 1))
            injections.append(
                PlannedInjection(
                    time=extra_time,
                    target_path=extra_path,
                    descriptor=extra_descriptor,
                )
            )
        specs.append(
            RunSpec(
                index=index,
                scenario=ErrorScenario(
                    name=f"prop_{index}", injections=injections
                ),
                run_seed=draw(st.integers(0, 2**31 - 1)),
                duration=duration,
                platform=fixture["key"],
                golden=fixture["golden"],
                trace=fixture["trace"],
                fork=True,
            )
        )
    return specs


def _outcome_bytes(outcome):
    stats = {
        key: value
        for key, value in outcome.kernel_stats.items()
        if key != "wall_s"
    }
    return (
        outcome.index,
        outcome.outcome,
        outcome.matched_rules,
        tuple(sorted(outcome.observation.items())),
        outcome.injections_applied,
        tuple(sorted(stats.items())),
        outcome.stressor_errors,
        outcome.digest.canonical() if outcome.digest else None,
    )


def _fresh(specs, fixture):
    bundle = fixture["bundle"]
    classifier = bundle.classifier_factory()
    return [
        execute_runspec(spec, bundle.factory, bundle.observe, classifier)
        for spec in specs
    ]


def _assert_fork_equals_fresh(specs, fixture):
    groups, singles = fork_groups(specs)
    assert len(groups) == 1 and not singles
    clear_warm_platforms()
    try:
        forked = execute_fork_group_from_registry(specs)
    finally:
        clear_warm_platforms()
    fresh = _fresh(specs, fixture)
    assert [_outcome_bytes(o) for o in forked] == [
        _outcome_bytes(o) for o in fresh
    ]


class TestForkEquivalenceProperty:
    @given(fork_group_specs(_AIRBAG))
    @settings(max_examples=12, deadline=None)
    def test_airbag_fork_group_equals_fresh_runs(self, specs):
        _assert_fork_equals_fresh(specs, _AIRBAG)

    @given(fork_group_specs(_STEERING))
    @settings(max_examples=10, deadline=None)
    def test_steering_fork_group_equals_fresh_runs(self, specs):
        _assert_fork_equals_fresh(specs, _STEERING)


# ---------------------------------------------------------------------------
# Fallback contract: fork=True on a snapshot-less platform is inert.
# ---------------------------------------------------------------------------

def _canonical_journal(path):
    rows = []
    for line in path.read_text().splitlines():
        payload = json.loads(line)
        if isinstance(payload, dict):
            stats = payload.get("kernel_stats")
            if isinstance(stats, dict):
                stats.pop("wall_s", None)
            if payload.get("failure") == "timeout":
                payload["kernel_stats"] = {}
        rows.append(payload)
    return rows


def _scripted_hostile(runs, hostility):
    from repro.core.strategies import Strategy

    class Scripted(Strategy):
        def __init__(self):
            self.cursor = 0
            self.faults_per_scenario = 1
            self.space = None

        def next_scenario(self, rng):
            index = self.cursor
            self.cursor += 1
            injections = []
            descriptor = hostility.get(index)
            if descriptor is not None:
                injections.append(
                    PlannedInjection(
                        time=3 * hostile.TICK,
                        target_path=hostile.TRAP_PATH,
                        descriptor=descriptor,
                    )
                )
            return ErrorScenario(
                name=f"scripted_{index}", injections=injections
            )

    return Scripted()


def _run_hostile(fork, checkpoint, hostility):
    campaign = Campaign(
        duration=hostile.DURATION, seed=11, platform="hostile-dut"
    )
    return campaign.run(
        _scripted_hostile(6, hostility),
        runs=6,
        backend="serial",
        batch_size=6,
        run_timeout_s=0.5,
        max_retries=2,
        retry_backoff_s=0.0,
        trace=True,
        checkpoint=checkpoint,
        fork=fork,
    )


class TestForkFallbackJournal:
    def test_hostile_journal_identical_with_fork_requested(self, tmp_path):
        """hostile-dut has no snapshot hooks: fork=True must take the
        per-run path and journal byte-identically, livelocks and all."""
        hostility = {1: hostile.LIVELOCK}
        plain_path = tmp_path / "plain.jsonl"
        forked_path = tmp_path / "forked.jsonl"
        _run_hostile(False, str(plain_path), hostility)
        _run_hostile(True, str(forked_path), hostility)
        assert _canonical_journal(forked_path) == _canonical_journal(
            plain_path
        )

    def test_fork_flag_outside_checkpoint_identity(self, tmp_path):
        """A campaign journaled with fork=False must resume cleanly
        with fork=True — the knob is execution strategy, not identity
        (exactly like ``reuse_platform``)."""
        path = tmp_path / "resume.jsonl"
        first = _run_hostile(False, str(path), {})
        resumed = _run_hostile(True, str(path), {})
        assert [r.index for r in resumed.records] == [
            r.index for r in first.records
        ]
        assert [r.outcome for r in resumed.records] == [
            r.outcome for r in first.records
        ]
