"""Property-based invariants of the simulation kernel.

Campaign reproducibility rests on these: time never runs backwards,
scheduling is deterministic, and signal update semantics hold for any
write pattern.
"""

from hypothesis import given, settings, strategies as st

from repro.kernel import Signal, Simulator


@st.composite
def process_specs(draw):
    """A list of processes, each a list of (delay, tag) steps."""
    count = draw(st.integers(1, 5))
    specs = []
    for index in range(count):
        steps = draw(
            st.lists(st.integers(0, 50), min_size=1, max_size=8)
        )
        specs.append((index, steps))
    return specs


class TestSchedulingProperties:
    @given(process_specs())
    @settings(max_examples=60, deadline=None)
    def test_time_is_monotone_and_all_steps_run(self, specs):
        sim = Simulator()
        log = []

        def body(tag, steps):
            for step_index, delay in enumerate(steps):
                yield delay
                log.append((sim.now, tag, step_index))

        for tag, steps in specs:
            sim.spawn(body(tag, steps), name=f"p{tag}")
        sim.run()
        # Every step executed.
        assert len(log) == sum(len(steps) for _, steps in specs)
        # Observed times never decrease.
        times = [entry[0] for entry in log]
        assert times == sorted(times)
        # Each process saw the cumulative sum of its own delays.
        for tag, steps in specs:
            own = [t for t, p, _ in log if p == tag]
            expected = []
            acc = 0
            for delay in steps:
                acc += delay
                expected.append(acc)
            assert own == expected

    @given(process_specs())
    @settings(max_examples=30, deadline=None)
    def test_execution_is_deterministic(self, specs):
        def run_once():
            sim = Simulator()
            log = []

            def body(tag, steps):
                for delay in steps:
                    yield delay
                    log.append((sim.now, tag))

            for tag, steps in specs:
                sim.spawn(body(tag, steps), name=f"p{tag}")
            sim.run()
            return log

        assert run_once() == run_once()


class TestSignalProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 30), st.integers(0, 255)),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_final_value_is_last_write(self, writes):
        sim = Simulator()
        sig = Signal(sim, "s", initial=-1)

        def writer():
            for delay, value in writes:
                yield delay
                sig.write(value)

        sim.spawn(writer())
        sim.run()
        assert sig.read() == writes[-1][1]

    @given(
        st.lists(st.integers(0, 255), min_size=1, max_size=20)
    )
    @settings(max_examples=60, deadline=None)
    def test_change_count_bounded_by_distinct_transitions(self, values):
        sim = Simulator()
        sig = Signal(sim, "s", initial=None)

        def writer():
            for value in values:
                yield 1
                sig.write(value)

        sim.spawn(writer())
        sim.run()
        # Committed changes equal the number of value transitions in
        # the write sequence (writes of the current value are silent).
        transitions = 0
        current = None
        for value in values:
            if value != current:
                transitions += 1
                current = value
        assert sig.change_count == transitions

    @given(st.lists(st.integers(0, 100), min_size=2, max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_same_delta_writers_resolve_to_last_spawned(self, values):
        # All writers write in the same delta: the kernel commits the
        # staged value of the last write performed (FIFO order).
        sim = Simulator()
        sig = Signal(sim, "s", initial=-1)

        def writer(value):
            sig.write(value)
            yield 0

        for value in values:
            sim.spawn(writer(value))
        sim.run()
        assert sig.read() == values[-1]
