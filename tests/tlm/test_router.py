"""Unit tests for the address-decoding router and sockets."""

import pytest

from repro.hw import Memory
from repro.kernel import Module, Simulator
from repro.tlm import GenericPayload, InitiatorSocket, Response, Router


@pytest.fixture
def platform():
    sim = Simulator()
    top = Module("top", sim=sim)
    router = Router("bus", parent=top, hop_latency=10)
    mem0 = Memory("mem0", parent=top, size=256, read_latency=20, write_latency=30)
    mem1 = Memory("mem1", parent=top, size=256)
    router.map_target(0x1000, 256, mem0.tsock, "mem0")
    router.map_target(0x2000, 256, mem1.tsock, "mem1")
    initiator = InitiatorSocket(top, "isock")
    initiator.bind(router.tsock)
    return sim, top, router, mem0, mem1, initiator


class TestDecode:
    def test_routes_to_correct_target(self, platform):
        _, _, _, mem0, mem1, isock = platform
        payload = GenericPayload.write(0x2010, b"\x42\x00\x00\x00")
        isock.b_transport(payload)
        assert payload.ok
        assert mem1.data[0x10] == 0x42
        assert mem0.data[0x10] == 0

    def test_address_rebased_and_restored(self, platform):
        _, _, _, mem0, _, isock = platform
        payload = GenericPayload.write(0x1004, b"\x99\x00\x00\x00")
        isock.b_transport(payload)
        assert mem0.data[4] == 0x99
        assert payload.address == 0x1004  # restored for the initiator

    def test_unmapped_address_errors(self, platform):
        _, _, router, _, _, isock = platform
        payload = GenericPayload.read(0x5000, 4)
        isock.b_transport(payload)
        assert payload.response is Response.ADDRESS_ERROR
        assert router.decode_errors == 1

    def test_access_straddling_region_end_errors(self, platform):
        _, _, _, _, _, isock = platform
        payload = GenericPayload.read(0x10FE, 4)  # crosses mem0 end
        isock.b_transport(payload)
        assert payload.response is Response.ADDRESS_ERROR

    def test_overlapping_map_rejected(self, platform):
        _, top, router, mem0, _, _ = platform
        with pytest.raises(ValueError):
            router.map_target(0x1080, 256, mem0.tsock)

    def test_zero_size_map_rejected(self, platform):
        _, _, router, mem0, _, _ = platform
        with pytest.raises(ValueError):
            router.map_target(0x9000, 0, mem0.tsock)

    def test_address_map_listing(self, platform):
        _, _, router, _, _, _ = platform
        assert router.address_map == [
            (0x1000, 256, "mem0"),
            (0x2000, 256, "mem1"),
        ]


class TestLatency:
    def test_hop_latency_accumulates(self, platform):
        _, _, _, _, _, isock = platform
        payload = GenericPayload.read(0x1000, 4)
        delay = isock.b_transport(payload, 0)
        assert delay == 10 + 20  # router hop + mem0 read latency

    def test_write_latency_differs(self, platform):
        _, _, _, _, _, isock = platform
        payload = GenericPayload.write(0x1000, b"\x00" * 4)
        delay = isock.b_transport(payload, 5)
        assert delay == 5 + 10 + 30


class TestDmi:
    def test_dmi_grant_translated_to_initiator_space(self, platform):
        _, _, _, mem0, _, isock = platform
        payload = GenericPayload.read(0x1000, 4)
        region = isock.get_dmi(payload)
        assert region is not None
        assert region.start == 0x1000
        assert region.end == 0x1100
        assert region.store is mem0.data

    def test_dmi_denied_when_memory_forbids(self, platform):
        sim, top, router, *_ = platform
        nodmi = Memory("nodmi", parent=top, size=64, dmi_allowed=False)
        router.map_target(0x3000, 64, nodmi.tsock)
        isock = InitiatorSocket(top, "isock2")
        isock.bind(router.tsock)
        assert isock.get_dmi(GenericPayload.read(0x3000, 4)) is None

    def test_dmi_unmapped_is_none(self, platform):
        _, _, _, _, _, isock = platform
        assert isock.get_dmi(GenericPayload.read(0x9000, 4)) is None


class TestSocketBinding:
    def test_unbound_transport_raises(self):
        sim = Simulator()
        top = Module("top", sim=sim)
        isock = InitiatorSocket(top, "isock")
        with pytest.raises(RuntimeError):
            isock.b_transport(GenericPayload.read(0, 4))

    def test_double_bind_raises(self, platform):
        _, top, router, _, _, isock = platform
        with pytest.raises(RuntimeError):
            isock.bind(router.tsock)

    def test_interceptors_see_payload(self, platform):
        _, _, _, mem0, _, isock = platform
        seen = []
        isock.interceptors.append(lambda p: seen.append(p.address))
        isock.b_transport(GenericPayload.read(0x1000, 4))
        assert seen == [0x1000]

    def test_target_interceptor_can_corrupt(self, platform):
        _, _, _, mem0, _, isock = platform

        def flip_low_bit(payload):
            if payload.command.value == "write":
                payload.data[0] ^= 1

        mem0.tsock.interceptors.append(flip_low_bit)
        isock.b_transport(GenericPayload.write(0x1000, b"\x10\x00\x00\x00"))
        assert mem0.data[0] == 0x11


class TestApproximatelyTimed:
    def test_at_transport_consumes_kernel_time(self, platform):
        sim, top, _, mem0, _, isock = platform
        done = []

        def initiator():
            payload = GenericPayload.read(0x1000, 4)
            yield from isock.at_transport(payload)
            done.append((sim.now, payload.ok))

        sim.spawn(initiator())
        sim.run()
        # hop latency + split read latency = 10 + 20 total
        assert done == [(30, True)]

    def test_nested_routers_accumulate_at_latency(self):
        sim = Simulator()
        top = Module("top", sim=sim)
        backbone = Router("backbone", parent=top, hop_latency=7)
        local = Router("local", parent=top, hop_latency=3)
        mem = Memory("mem", parent=top, size=64, read_latency=10)
        local.map_target(0x0, 64, mem.tsock)
        backbone.map_target(0x8000, 64, local.tsock)
        isock = InitiatorSocket(top, "isock")
        isock.bind(backbone.tsock)
        done = []

        def initiator():
            payload = GenericPayload.read(0x8004, 4)
            yield from isock.at_transport(payload)
            done.append((sim.now, payload.ok))

        sim.spawn(initiator())
        sim.run()
        assert done[0][1] is True
        assert done[0][0] == 7 + 3 + 10
