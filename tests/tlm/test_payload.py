"""Unit tests for the TLM generic payload."""

import pytest

from repro.tlm import Command, GenericPayload, Response


class TestConstruction:
    def test_read_constructor(self):
        payload = GenericPayload.read(0x100, 4)
        assert payload.command is Command.READ
        assert payload.address == 0x100
        assert len(payload.data) == 4
        assert payload.response is Response.INCOMPLETE

    def test_write_constructor_copies_data(self):
        source = bytearray(b"\x01\x02")
        payload = GenericPayload.write(0x200, source)
        source[0] = 0xFF
        assert payload.data == bytearray(b"\x01\x02")

    def test_word_round_trip(self):
        payload = GenericPayload.write_word(0, 0xDEADBEEF)
        assert payload.word == 0xDEADBEEF
        payload.word = 0x12345678
        assert payload.data == bytearray((0x12345678).to_bytes(4, "little"))

    def test_streaming_width_defaults_to_length(self):
        payload = GenericPayload.read(0, 8)
        assert payload.streaming_width == 8


class TestStatus:
    def test_ok_helpers(self):
        payload = GenericPayload.read(0, 4)
        assert not payload.ok
        payload.set_ok()
        assert payload.ok

    def test_set_error_rejects_non_error(self):
        payload = GenericPayload.read(0, 4)
        with pytest.raises(ValueError):
            payload.set_error(Response.OK)

    def test_error_classification(self):
        assert Response.ADDRESS_ERROR.is_error
        assert not Response.OK.is_error
        assert not Response.INCOMPLETE.is_error


class TestClone:
    def test_clone_is_independent(self):
        payload = GenericPayload.write(0x10, b"\xAA\xBB")
        payload.extensions["tag"] = 1
        payload.injected.append("inj0")
        copy = payload.clone()
        copy.data[0] = 0
        copy.extensions["tag"] = 2
        copy.injected.append("inj1")
        assert payload.data[0] == 0xAA
        assert payload.extensions["tag"] == 1
        assert payload.injected == ["inj0"]

    def test_clone_preserves_response(self):
        payload = GenericPayload.read(0, 4)
        payload.set_error(Response.ADDRESS_ERROR)
        assert payload.clone().response is Response.ADDRESS_ERROR
