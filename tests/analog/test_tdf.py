"""Unit tests for the timed-dataflow analog layer."""

import math

import pytest

from repro.analog import (
    Adder,
    Comparator,
    Delay,
    Gain,
    LowPass,
    Quantizer,
    Saturation,
    Source,
    TdfGraph,
)
from repro.kernel import Module, Simulator


@pytest.fixture
def top():
    return Module("top", sim=Simulator())


def build_chain(top, source_fn, timestep=1000):
    graph = TdfGraph("graph", parent=top, timestep=timestep)
    graph.add(Source("src", source_fn))
    graph.add(Gain("amp", 2.0))
    graph.connect("src", "amp")
    graph.watch("amp")
    return graph


class TestGraphExecution:
    def test_samples_at_timestep(self, top):
        graph = build_chain(top, lambda t: 1.0)
        top.sim.run(until=5000)
        assert graph.samples == 5
        assert graph.traces[("amp", "out")] == [2.0] * 5

    def test_topological_ordering(self, top):
        graph = TdfGraph("g", parent=top, timestep=1000)
        graph.add(Source("s", lambda t: 3.0))
        graph.add(Gain("g1", 2.0))
        graph.add(Gain("g2", 10.0))
        graph.add(Adder("sum"))
        graph.connect("s", "g1")
        graph.connect("s", "g2")
        graph.connect("g1", "sum", dst_port="a")
        graph.connect("g2", "sum", dst_port="b")
        top.sim.run(until=1000)
        assert graph.value_of("sum") == 3.0 * 2 + 3.0 * 10

    def test_unconnected_input_rejected(self, top):
        graph = TdfGraph("g", parent=top, timestep=1000)
        graph.add(Gain("orphan", 1.0))
        from repro.kernel import ProcessError

        with pytest.raises(ProcessError):
            top.sim.run(until=1000)

    def test_cycle_without_delay_rejected(self, top):
        graph = TdfGraph("g", parent=top, timestep=1000)
        graph.add(Gain("a", 1.0))
        graph.add(Gain("b", 1.0))
        graph.connect("a", "b")
        graph.connect("b", "a")
        from repro.kernel import ProcessError

        with pytest.raises(ProcessError):
            top.sim.run(until=1000)

    def test_feedback_through_delay(self, top):
        # Accumulator: y[n] = y[n-1] + 1
        graph = TdfGraph("g", parent=top, timestep=1000)
        graph.add(Source("one", lambda t: 1.0))
        graph.add(Adder("acc"))
        graph.add(Delay("z", initial=0.0))
        graph.connect("one", "acc", dst_port="a")
        graph.connect("z", "acc", dst_port="b")
        graph.connect("acc", "z")
        graph.watch("acc")
        top.sim.run(until=4000)
        assert graph.traces[("acc", "out")] == [1.0, 2.0, 3.0, 4.0]

    def test_double_drive_rejected(self, top):
        graph = TdfGraph("g", parent=top, timestep=1000)
        graph.add(Source("s1", lambda t: 1.0))
        graph.add(Source("s2", lambda t: 2.0))
        graph.add(Gain("g1", 1.0))
        graph.connect("s1", "g1")
        with pytest.raises(ValueError):
            graph.connect("s2", "g1")


class TestBlocks:
    def test_lowpass_converges(self, top):
        graph = TdfGraph("g", parent=top, timestep=1000)
        graph.add(Source("s", lambda t: 10.0))
        graph.add(LowPass("lp", alpha=0.5))
        graph.connect("s", "lp")
        top.sim.run(until=20_000)
        assert graph.value_of("lp") == pytest.approx(10.0, abs=1e-3)

    def test_lowpass_attenuates_steps_gradually(self, top):
        graph = TdfGraph("g", parent=top, timestep=1000)
        graph.add(Source("s", lambda t: 10.0))
        graph.add(LowPass("lp", alpha=0.5))
        graph.connect("s", "lp")
        graph.watch("lp")
        top.sim.run(until=3000)
        assert graph.traces[("lp", "out")] == [5.0, 7.5, 8.75]

    def test_saturation(self, top):
        graph = TdfGraph("g", parent=top, timestep=1000)
        graph.add(Source("s", lambda t: 99.0))
        graph.add(Saturation("sat", low=0.0, high=5.0))
        graph.connect("s", "sat")
        top.sim.run(until=1000)
        assert graph.value_of("sat") == 5.0

    def test_comparator_hysteresis(self, top):
        values = iter([0.0, 3.0, 2.6, 2.2, 3.0])
        graph = TdfGraph("g", parent=top, timestep=1000)
        graph.add(Source("s", lambda t: next(values)))
        graph.add(Comparator("cmp", threshold=2.5, hysteresis=0.4))
        graph.connect("s", "cmp")
        graph.watch("cmp")
        top.sim.run(until=5000)
        # Turns on at 3.0, stays on at 2.6 and 2.2 (within hysteresis
        # band bottom 2.1), still on at 3.0.
        assert graph.traces[("cmp", "out")] == [0.0, 1.0, 1.0, 1.0, 1.0]

    def test_quantizer_rounds_to_levels(self, top):
        graph = TdfGraph("g", parent=top, timestep=1000)
        graph.add(Source("s", lambda t: 2.501))
        graph.add(Quantizer("adc", bits=2, vmin=0.0, vmax=5.0))
        graph.connect("s", "adc")
        top.sim.run(until=1000)
        # 2-bit levels: 0, 5/3, 10/3, 5 -> nearest to 2.501 is 10/3.
        assert graph.value_of("adc") == pytest.approx(10 / 3)

    def test_block_validation(self):
        with pytest.raises(ValueError):
            LowPass("bad", alpha=0.0)
        with pytest.raises(ValueError):
            Saturation("bad", low=5.0, high=0.0)
        with pytest.raises(ValueError):
            Quantizer("bad", bits=0, vmin=0, vmax=5)


class TestFaultIntegration:
    def test_blocks_register_injection_points(self, top):
        graph = build_chain(top, lambda t: 1.0)
        points = top.all_injection_points()
        assert "top.graph.src" in points
        assert points["top.graph.amp"].kind == "analog"

    def test_gain_drift_fault(self, top):
        graph = build_chain(top, lambda t: 1.0)
        top.all_injection_points()["top.graph.amp"].set_gain(0.5)
        top.sim.run(until=1000)
        assert graph.value_of("amp") == 1.0  # 1.0 * 2.0 * 0.5

    def test_stuck_fault_on_source(self, top):
        graph = build_chain(top, lambda t: math.sin(t))
        top.all_injection_points()["top.graph.src"].stick_at(4.0)
        top.sim.run(until=3000)
        assert graph.value_of("amp") == 8.0

    def test_campaign_descriptor_applies_to_tdf(self, top):
        from repro.core import apply_fault
        from repro.faults import SENSOR_OPEN_LOAD
        import random

        graph = build_chain(top, lambda t: 1.0)
        apply_fault(
            SENSOR_OPEN_LOAD,
            "top.graph.src",
            top.all_injection_points()["top.graph.src"],
            top.sim,
            random.Random(0),
        )
        top.sim.run(until=1000)
        assert graph.value_of("amp") == 0.0
