"""Unit tests for HARA classification and ASIL decomposition."""

import pytest

from repro.safety import (
    Asil,
    Controllability as C,
    Exposure as E,
    Hazard,
    Severity as S,
    classify_asil,
    decomposition_options,
    hara,
    valid_decomposition,
)


class TestClassification:
    def test_worst_case_is_asil_d(self):
        assert classify_asil(S.S3, E.E4, C.C3) is Asil.D

    def test_zero_parameters_are_qm(self):
        assert classify_asil(S.S0, E.E4, C.C3) is Asil.QM
        assert classify_asil(S.S3, E.E0, C.C3) is Asil.QM
        assert classify_asil(S.S3, E.E4, C.C0) is Asil.QM

    def test_risk_graph_rows(self):
        # Classic table spot checks.
        assert classify_asil(S.S3, E.E4, C.C2) is Asil.C
        assert classify_asil(S.S3, E.E3, C.C3) is Asil.C
        assert classify_asil(S.S2, E.E4, C.C3) is Asil.C
        assert classify_asil(S.S3, E.E2, C.C2) is Asil.A
        assert classify_asil(S.S1, E.E4, C.C3) is Asil.B
        assert classify_asil(S.S1, E.E2, C.C2) is Asil.QM

    def test_monotone_in_every_axis(self):
        base = classify_asil(S.S2, E.E3, C.C2)
        assert classify_asil(S.S3, E.E3, C.C2).value >= base.value
        assert classify_asil(S.S2, E.E4, C.C2).value >= base.value
        assert classify_asil(S.S2, E.E3, C.C3).value >= base.value


class TestHara:
    SPURIOUS_AIRBAG = Hazard(
        name="spurious_deployment",
        situation="normal driving, any speed",
        severity=S.S3,
        exposure=E.E4,
        controllability=C.C3,
    )
    MINOR = Hazard(
        name="comfort_glitch",
        situation="parked",
        severity=S.S0,
        exposure=E.E4,
        controllability=C.C1,
    )

    def test_hazard_carries_asil(self):
        assert self.SPURIOUS_AIRBAG.asil is Asil.D
        assert self.MINOR.asil is Asil.QM

    def test_hara_produces_goals_above_qm(self):
        goals = hara(
            [self.SPURIOUS_AIRBAG, self.MINOR],
            {"spurious_deployment": "The airbag shall not deploy without a crash."},
        )
        assert len(goals) == 1
        goal = goals[0]
        assert goal.asil is Asil.D
        assert goal.name == "SG_spurious_deployment"

    def test_missing_statement_rejected(self):
        with pytest.raises(KeyError):
            hara([self.SPURIOUS_AIRBAG], {})


class TestDecomposition:
    def test_asil_d_options(self):
        options = decomposition_options(Asil.D)
        assert (Asil.B, Asil.B) in options
        assert (Asil.C, Asil.A) in options
        assert (Asil.D, Asil.QM) in options

    def test_qm_cannot_decompose(self):
        assert decomposition_options(Asil.QM) == []

    def test_validity_is_order_insensitive(self):
        assert valid_decomposition(Asil.D, Asil.B, Asil.B)
        assert valid_decomposition(Asil.D, Asil.A, Asil.C)
        assert valid_decomposition(Asil.D, Asil.C, Asil.A)

    def test_invalid_combinations_rejected(self):
        assert not valid_decomposition(Asil.D, Asil.A, Asil.A)
        assert not valid_decomposition(Asil.B, Asil.B, Asil.B)
        assert not valid_decomposition(Asil.C, Asil.C, Asil.C)

    def test_caps_redundant_channels_pattern(self):
        # The CAPS platform's dual sensor channels implement exactly
        # the B(D)+B(D) decomposition of the ASIL-D deployment goal.
        assert valid_decomposition(Asil.D, Asil.B, Asil.B)
