"""Unit tests for the fault propagation and transformation calculus."""

import pytest

from repro.safety import FptcComponent, FptcModel, Rule


def sensor(name, introduces=("value",)):
    return FptcComponent(
        name, inputs=[], outputs=["out"], source_tokens=introduces
    )


class TestComponentTransform:
    def test_source_component_emits_its_tokens(self):
        comp = sensor("s")
        outputs = comp.transform({})
        assert outputs["out"] == {"*", "value"}

    def test_default_propagation(self):
        comp = FptcComponent("filter", inputs=["in"], outputs=["out"])
        outputs = comp.transform({"in": {"*", "value"}})
        assert "value" in outputs["out"]

    def test_transformation_rule(self):
        # A retry-based corrector: value errors become late outputs.
        comp = FptcComponent(
            "corrector",
            inputs=["in"],
            outputs=["out"],
            rules=[
                Rule({"in": "value"}, {"out": "late"}),
                Rule({"in": "_"}, {"out": "*"}),
            ],
        )
        outputs = comp.transform({"in": {"*", "value"}})
        assert outputs["out"] == {"*", "late"}

    def test_masking_rule(self):
        # A voter with three inputs masks any single corrupted input.
        comp = FptcComponent(
            "voter",
            inputs=["a", "b", "c"],
            outputs=["out"],
            rules=[
                Rule({"a": "value", "b": "value"}, {"out": "value"}),
                Rule({"a": "value", "c": "value"}, {"out": "value"}),
                Rule({"b": "value", "c": "value"}, {"out": "value"}),
                Rule({}, {"out": "*"}),  # everything else masked
            ],
        )
        single = comp.transform(
            {"a": {"*", "value"}, "b": {"*"}, "c": {"*"}}
        )
        assert single["out"] == {"*"}
        double = comp.transform(
            {"a": {"*", "value"}, "b": {"*", "value"}, "c": {"*"}}
        )
        assert "value" in double["out"]

    def test_rule_validation(self):
        with pytest.raises(ValueError):
            FptcComponent(
                "bad", inputs=["in"], outputs=["out"],
                rules=[Rule({"ghost": "value"}, {"out": "*"})],
            )
        with pytest.raises(ValueError):
            FptcComponent(
                "bad", inputs=["in"], outputs=["out"],
                rules=[Rule({"in": "value"}, {"ghost": "*"})],
            )


class TestModel:
    def build_chain(self):
        """sensor -> filter -> actuator, sensor introduces value errors."""
        model = FptcModel()
        model.add_component(sensor("sensor"))
        model.add_component(
            FptcComponent("filter", inputs=["in"], outputs=["out"])
        )
        model.add_component(
            FptcComponent("actuator", inputs=["in"], outputs=["out"])
        )
        model.connect("sensor", "out", "filter", "in")
        model.connect("filter", "out", "actuator", "in")
        return model

    def test_propagation_through_chain(self):
        model = self.build_chain()
        assert model.failures_at("actuator", "out") == {"value"}

    def test_checker_stops_propagation(self):
        model = FptcModel()
        model.add_component(sensor("sensor"))
        model.add_component(
            FptcComponent(
                "checker",
                inputs=["in"],
                outputs=["out"],
                rules=[
                    # Plausibility check converts value errors into
                    # omissions (output suppressed, safe state).
                    Rule({"in": "value"}, {"out": "omission"}),
                    Rule({"in": "_"}, {"out": "*"}),
                ],
            )
        )
        model.add_component(
            FptcComponent("actuator", inputs=["in"], outputs=["out"])
        )
        model.connect("sensor", "out", "checker", "in")
        model.connect("checker", "out", "actuator", "in")
        failures = model.failures_at("actuator", "out")
        assert failures == {"omission"}

    def test_cyclic_graph_converges(self):
        # Feedback loop: controller <-> plant.
        model = FptcModel()
        model.add_component(
            FptcComponent(
                "controller", inputs=["fb"], outputs=["cmd"],
                source_tokens=("late",),
            )
        )
        model.add_component(
            FptcComponent("plant", inputs=["cmd"], outputs=["fb"])
        )
        model.connect("controller", "cmd", "plant", "cmd")
        model.connect("plant", "fb", "controller", "fb")
        result = model.solve()
        assert "late" in result["plant"]["fb"]
        assert "late" in result["controller"]["cmd"]

    def test_connection_validation(self):
        model = self.build_chain()
        with pytest.raises(ValueError):
            model.connect("sensor", "ghost", "filter", "in")
        with pytest.raises(ValueError):
            model.connect("sensor", "out", "filter", "ghost")

    def test_duplicate_component_rejected(self):
        model = FptcModel()
        model.add_component(sensor("s"))
        with pytest.raises(ValueError):
            model.add_component(sensor("s"))

    def test_multi_output_component(self):
        model = FptcModel()
        model.add_component(
            FptcComponent(
                "splitter", inputs=[], outputs=["a", "b"],
                source_tokens=("omission",),
            )
        )
        result = model.solve()
        assert result["splitter"]["a"] == {"*", "omission"}
        assert result["splitter"]["b"] == {"*", "omission"}
