"""Unit and property tests for fault tree analysis."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.safety import AndGate, BasicEvent, FaultTree, KofNGate, OrGate


def simple_tree():
    """(A or B) and C — MCS: {A,C}, {B,C}."""
    a = BasicEvent("A", 0.01)
    b = BasicEvent("B", 0.02)
    c = BasicEvent("C", 0.1)
    return FaultTree(AndGate("top", [OrGate("front", [a, b]), c]))


class TestCutSets:
    def test_single_event(self):
        tree = FaultTree(BasicEvent("X", 0.5))
        assert tree.minimal_cut_sets() == [frozenset({"X"})]

    def test_or_gate_unions(self):
        tree = FaultTree(
            OrGate("top", [BasicEvent("A", 0.1), BasicEvent("B", 0.1)])
        )
        assert set(tree.minimal_cut_sets()) == {
            frozenset({"A"}), frozenset({"B"}),
        }

    def test_and_gate_products(self):
        tree = FaultTree(
            AndGate("top", [BasicEvent("A", 0.1), BasicEvent("B", 0.1)])
        )
        assert tree.minimal_cut_sets() == [frozenset({"A", "B"})]

    def test_nested_structure(self):
        assert set(simple_tree().minimal_cut_sets()) == {
            frozenset({"A", "C"}), frozenset({"B", "C"}),
        }

    def test_absorption_removes_supersets(self):
        # A or (A and B) == A
        a = BasicEvent("A", 0.1)
        b = BasicEvent("B", 0.1)
        tree = FaultTree(OrGate("top", [a, AndGate("g", [a, b])]))
        assert tree.minimal_cut_sets() == [frozenset({"A"})]

    def test_k_of_n_gate(self):
        events = [BasicEvent(f"E{i}", 0.1) for i in range(3)]
        tree = FaultTree(KofNGate("vote", 2, events))
        assert set(tree.minimal_cut_sets()) == {
            frozenset({"E0", "E1"}),
            frozenset({"E0", "E2"}),
            frozenset({"E1", "E2"}),
        }

    def test_k_of_n_validation(self):
        with pytest.raises(ValueError):
            KofNGate("bad", 4, [BasicEvent(f"E{i}", 0.1) for i in range(3)])

    def test_empty_gate_rejected(self):
        with pytest.raises(ValueError):
            OrGate("empty", [])

    def test_inconsistent_shared_event_rejected(self):
        a1 = BasicEvent("A", 0.1)
        a2 = BasicEvent("A", 0.2)
        with pytest.raises(ValueError):
            FaultTree(OrGate("top", [a1, a2]))


class TestProbability:
    def test_single_event_probability(self):
        assert FaultTree(BasicEvent("X", 0.25)).top_event_probability() == 0.25

    def test_independent_or_exact(self):
        tree = FaultTree(
            OrGate("top", [BasicEvent("A", 0.1), BasicEvent("B", 0.2)])
        )
        # P(A or B) = 0.1 + 0.2 - 0.02
        assert tree.top_event_probability() == pytest.approx(0.28)

    def test_and_probability(self):
        tree = FaultTree(
            AndGate("top", [BasicEvent("A", 0.1), BasicEvent("B", 0.2)])
        )
        assert tree.top_event_probability() == pytest.approx(0.02)

    def test_shared_event_handled_by_inclusion_exclusion(self):
        # top = (A and B) or (A and C); P = p_A(p_B + p_C - p_B p_C)
        a = BasicEvent("A", 0.5)
        b = BasicEvent("B", 0.4)
        c = BasicEvent("C", 0.2)
        tree = FaultTree(
            OrGate("top", [AndGate("g1", [a, b]), AndGate("g2", [a, c])])
        )
        assert tree.top_event_probability() == pytest.approx(
            0.5 * (0.4 + 0.2 - 0.08)
        )

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=0.2), min_size=2, max_size=6
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_probability_via_monte_carlo_enumeration(self, probabilities):
        # Exhaustive truth-table check of the inclusion-exclusion math
        # on an OR-of-singles tree.
        events = [
            BasicEvent(f"E{i}", p) for i, p in enumerate(probabilities)
        ]
        tree = FaultTree(OrGate("top", events))
        exact = 1.0
        for p in probabilities:
            exact *= 1 - p
        assert tree.top_event_probability() == pytest.approx(
            1 - exact, abs=1e-9
        )

    def test_rare_event_bound_for_large_families(self):
        events = [BasicEvent(f"E{i}", 1e-6) for i in range(40)]
        tree = FaultTree(OrGate("top", events))
        assert tree.top_event_probability(exact_limit=8) == pytest.approx(
            40e-6, rel=1e-6
        )


class TestImportance:
    def test_single_points_of_failure(self):
        a = BasicEvent("A", 0.1)
        b = BasicEvent("B", 0.1)
        c = BasicEvent("C", 0.1)
        tree = FaultTree(OrGate("top", [a, AndGate("g", [b, c])]))
        assert tree.single_points_of_failure() == ["A"]

    def test_no_spof_in_redundant_design(self):
        assert simple_tree().single_points_of_failure() == []

    def test_fussell_vesely_ranks_shared_event_highest(self):
        tree = simple_tree()
        ranking = tree.importance_ranking()
        assert ranking[0][0] == "C"  # C is in every cut set
        assert tree.fussell_vesely("C") == pytest.approx(1.0, abs=1e-9)

    def test_fussell_vesely_unknown_event(self):
        with pytest.raises(KeyError):
            simple_tree().fussell_vesely("Z")

    def test_higher_probability_event_more_important(self):
        tree = simple_tree()
        assert tree.fussell_vesely("B") > tree.fussell_vesely("A")
