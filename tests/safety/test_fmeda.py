"""Unit tests for FMEDA and ISO 26262 metrics."""

import pytest

from repro.safety import Asil, FailureMode, Fmeda


def make_mode(**overrides):
    defaults = dict(
        component="mcu",
        mode="seu",
        rate_per_hour=1e-7,
        safe_fraction=0.5,
        diagnostic_coverage=0.9,
        latent_coverage=0.8,
    )
    defaults.update(overrides)
    return FailureMode(**defaults)


class TestFailureMode:
    def test_rate_decomposition(self):
        mode = make_mode(rate_per_hour=100.0)
        assert mode.dangerous_rate == pytest.approx(50.0)
        assert mode.residual_rate == pytest.approx(5.0)
        assert mode.detected_dangerous_rate == pytest.approx(45.0)
        assert mode.latent_rate == pytest.approx(9.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_mode(rate_per_hour=-1.0)
        with pytest.raises(ValueError):
            make_mode(diagnostic_coverage=1.5)
        with pytest.raises(ValueError):
            make_mode(safe_fraction=-0.1)

    def test_full_coverage_no_residual(self):
        mode = make_mode(diagnostic_coverage=1.0)
        assert mode.residual_rate == 0.0


class TestFmedaMetrics:
    def test_empty_worksheet_perfect_metrics(self):
        fmeda = Fmeda("empty")
        assert fmeda.spfm == 1.0
        assert fmeda.lfm == 1.0
        assert fmeda.pmhf == 0.0

    def test_duplicate_mode_rejected(self):
        fmeda = Fmeda("x")
        fmeda.add(make_mode())
        with pytest.raises(ValueError):
            fmeda.add(make_mode())

    def test_spfm_computation(self):
        fmeda = Fmeda("x")
        fmeda.add(
            make_mode(
                mode="m1", rate_per_hour=100.0,
                safe_fraction=0.0, diagnostic_coverage=0.99,
            )
        )
        # residual = 1.0, total = 100 -> SPFM = 0.99
        assert fmeda.spfm == pytest.approx(0.99)

    def test_non_safety_related_excluded(self):
        fmeda = Fmeda("x")
        fmeda.add(
            make_mode(mode="relevant", rate_per_hour=10.0)
        )
        fmeda.add(
            make_mode(
                mode="irrelevant", rate_per_hour=1e6, safety_related=False,
                diagnostic_coverage=0.0,
            )
        )
        assert fmeda.total_rate == 10.0

    def test_pmhf_sums_residuals(self):
        fmeda = Fmeda("x")
        fmeda.add(
            make_mode(
                mode="m1", rate_per_hour=1e-7,
                safe_fraction=0.0, diagnostic_coverage=0.9,
            )
        )
        fmeda.add(
            make_mode(
                mode="m2", rate_per_hour=2e-7,
                safe_fraction=0.5, diagnostic_coverage=0.9,
            )
        )
        assert fmeda.pmhf == pytest.approx(1e-8 + 1e-8)

    def test_measured_coverage_update(self):
        fmeda = Fmeda("x")
        fmeda.add(make_mode(diagnostic_coverage=0.5))
        before = fmeda.spfm
        fmeda.set_measured_coverage("mcu/seu", 0.99)
        assert fmeda.spfm > before
        with pytest.raises(ValueError):
            fmeda.set_measured_coverage("mcu/seu", 2.0)


class TestAsilDetermination:
    def good_fmeda(self, coverage, rate=1e-8):
        fmeda = Fmeda("x")
        fmeda.add(
            make_mode(
                rate_per_hour=rate,
                safe_fraction=0.0,
                diagnostic_coverage=coverage,
                latent_coverage=0.95,
            )
        )
        return fmeda

    def test_asil_d_needs_99_percent(self):
        assert self.good_fmeda(0.995).achieved_asil() is Asil.D
        assert self.good_fmeda(0.98).achieved_asil() is Asil.C

    def test_pmhf_gates_asil_d(self):
        # Great coverage but huge residual rate: PMHF blocks ASIL D.
        fmeda = self.good_fmeda(0.995, rate=1e-5)
        assert fmeda.pmhf > 1e-8
        assert fmeda.achieved_asil() is not Asil.D

    def test_poor_coverage_is_qm(self):
        assert self.good_fmeda(0.2, rate=1e-4).achieved_asil() is Asil.QM

    def test_meets_lower_levels_trivially(self):
        fmeda = self.good_fmeda(0.5, rate=1e-3)
        assert fmeda.meets(Asil.QM)
        assert fmeda.meets(Asil.A)

    def test_report_fields(self):
        report = self.good_fmeda(0.99).report()
        assert set(report) == {
            "name", "modes", "total_rate_per_hour",
            "spfm", "lfm", "pmhf_per_hour", "achieved_asil",
        }
