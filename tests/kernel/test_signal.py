"""Unit tests for signals, wires, and clocks."""

import pytest

from repro.kernel import Clock, Signal, Simulator, Wire


@pytest.fixture
def sim():
    return Simulator()


class TestSignalSemantics:
    def test_write_not_visible_until_update_phase(self, sim):
        sig = Signal(sim, "s", 0)
        observed = []

        def writer():
            sig.write(42)
            observed.append(sig.read())  # still old value
            yield None
            observed.append(sig.read())  # committed after delta

        sim.spawn(writer())
        sim.run()
        assert observed == [0, 42]

    def test_changed_event_fires_on_commit(self, sim):
        sig = Signal(sim, "s", 0)
        log = []

        def watcher():
            while True:
                yield sig.changed
                log.append((sim.now, sig.read()))

        def writer():
            yield 5
            sig.write(1)
            yield 5
            sig.write(2)

        sim.spawn(watcher())
        sim.spawn(writer())
        sim.run(until=20)
        assert log == [(5, 1), (10, 2)]

    def test_same_value_write_does_not_notify(self, sim):
        sig = Signal(sim, "s", 7)
        log = []

        def watcher():
            yield sig.changed
            log.append(sig.read())

        def writer():
            yield 1
            sig.write(7)  # no change

        sim.spawn(watcher())
        sim.spawn(writer())
        sim.run(until=10)
        assert log == []
        assert sig.change_count == 0

    def test_last_write_in_delta_wins(self, sim):
        sig = Signal(sim, "s", 0)

        def writer():
            sig.write(1)
            sig.write(2)
            yield None

        sim.spawn(writer())
        sim.run()
        assert sig.read() == 2
        assert sig.change_count == 1

    def test_value_property_sugar(self, sim):
        sig = Signal(sim, "s", 0)

        def writer():
            sig.value = 9
            yield None

        sim.spawn(writer())
        sim.run()
        assert sig.value == 9

    def test_observers_called_with_old_and_new(self, sim):
        sig = Signal(sim, "s", 0)
        seen = []
        sig.observers.append(lambda s, old, new: seen.append((old, new)))

        def writer():
            sig.write(3)
            yield None

        sim.spawn(writer())
        sim.run()
        assert seen == [(0, 3)]

    def test_force_bypasses_update_phase(self, sim):
        sig = Signal(sim, "s", 0)
        log = []

        def watcher():
            yield sig.changed
            log.append(sig.read())

        def injector():
            yield 2
            sig.force(99)
            assert sig.read() == 99  # visible immediately

        sim.spawn(watcher())
        sim.spawn(injector())
        sim.run(until=10)
        assert log == [99]

    def test_force_same_value_is_silent(self, sim):
        sig = Signal(sim, "s", 5)
        sig.force(5)
        assert sig.change_count == 0

    def test_force_wakes_wait_armed_later_in_same_phase(self, sim):
        """force() fires mid-evaluation, so a process stepped *after*
        the injector in the same phase may arm its wait only after the
        announcement — the no-waiter fast path must not eat it."""
        sig = Signal(sim, "s", 0)
        log = []

        def injector():
            yield 10
            sig.force(1)

        def monitor():
            yield 10  # wakes at the same timestamp, after the injector
            yield sig.changed
            log.append(sim.now)

        sim.spawn(injector())  # spawned first: steps before the monitor
        sim.spawn(monitor())
        sim.run(until=50)
        assert log == [10]


class TestForceEdges:
    def test_force_posedge_wakes_wait_armed_later_in_same_phase(self, sim):
        wire = Wire(sim, "w", initial=False)
        log = []

        def injector():
            yield 10
            wire.force(True)

        def monitor():
            yield 10
            yield wire.posedge
            log.append(sim.now)

        sim.spawn(injector())
        sim.spawn(monitor())
        sim.run(until=50)
        assert log == [10]

    def test_force_negedge_wakes_wait_armed_later_in_same_phase(self, sim):
        wire = Wire(sim, "w", initial=True)
        log = []

        def injector():
            yield 10
            wire.force(False)

        def monitor():
            yield 10
            yield wire.negedge
            log.append(sim.now)

        sim.spawn(injector())
        sim.spawn(monitor())
        sim.run(until=50)
        assert log == [10]


class TestWire:
    def test_posedge_and_negedge(self, sim):
        wire = Wire(sim, "w")
        log = []

        def edge_watcher():
            while True:
                yield wire.posedge
                log.append(("pos", sim.now))

        def neg_watcher():
            while True:
                yield wire.negedge
                log.append(("neg", sim.now))

        def driver():
            yield 1
            wire.write(True)
            yield 1
            wire.write(False)

        sim.spawn(edge_watcher())
        sim.spawn(neg_watcher())
        sim.spawn(driver())
        sim.run(until=10)
        assert log == [("pos", 1), ("neg", 2)]

    def test_write_coerces_to_bool(self, sim):
        wire = Wire(sim, "w")

        def driver():
            wire.write(1)
            yield None

        sim.spawn(driver())
        sim.run()
        assert wire.read() is True


class TestClock:
    def test_clock_toggles_at_half_period(self, sim):
        clk = Clock(sim, "clk", period=10)
        edges = []

        def watcher():
            while True:
                yield clk.posedge
                edges.append(sim.now)

        sim.spawn(watcher())
        sim.run(until=50)
        # First toggle happens one half-period after start (the clock
        # starts low), then every full period.
        assert edges == [5, 15, 25, 35, 45]

    def test_clock_stop_halts_toggling(self, sim):
        clk = Clock(sim, "clk", period=10)

        def stopper():
            yield 25
            clk.stop()

        sim.spawn(stopper())
        sim.run(until=100)
        # After stopping at t=25 the last committed edge is at t=25.
        assert clk.change_count <= 5

    def test_period_too_small_rejected(self, sim):
        with pytest.raises(ValueError):
            Clock(sim, "clk", period=1)
