"""Unit tests for the discrete-event scheduler and processes."""

import pytest

from repro.kernel import (
    AllOf,
    AnyOf,
    Event,
    ProcessError,
    Simulator,
    Timeout,
)


@pytest.fixture
def sim():
    return Simulator()


class TestTimedWaits:
    def test_single_timeout_advances_time(self, sim):
        log = []

        def proc():
            yield 10
            log.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert log == [10]

    def test_timeout_object_equivalent_to_int(self, sim):
        log = []

        def proc():
            yield Timeout(7)
            log.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert log == [7]

    def test_sequential_timeouts_accumulate(self, sim):
        log = []

        def proc():
            for _ in range(3):
                yield 5
                log.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert log == [5, 10, 15]

    def test_run_until_horizon_clamps_time(self, sim):
        def proc():
            yield 1000

        sim.spawn(proc())
        final = sim.run(until=100)
        assert final == 100
        assert sim.now == 100

    def test_run_until_exact_boundary_executes(self, sim):
        log = []

        def proc():
            yield 100
            log.append(sim.now)

        sim.spawn(proc())
        sim.run(until=100)
        assert log == [100]

    def test_zero_timeout_is_same_time_resume(self, sim):
        log = []

        def proc():
            yield 0
            log.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert log == [0]

    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError):
            Timeout(-1)

    def test_idle_run_until_advances_clock(self, sim):
        assert sim.run(until=500) == 500


class TestDeterminism:
    def test_fifo_order_within_timestamp(self, sim):
        log = []

        def proc(tag):
            yield 10
            log.append(tag)

        for tag in "abcd":
            sim.spawn(proc(tag))
        sim.run()
        assert log == list("abcd")

    def test_interleaving_is_reproducible(self):
        def run_once():
            sim = Simulator()
            log = []

            def producer():
                for i in range(5):
                    yield 3
                    log.append(("p", sim.now, i))

            def consumer():
                for i in range(5):
                    yield 2
                    log.append(("c", sim.now, i))

            sim.spawn(producer())
            sim.spawn(consumer())
            sim.run()
            return log

        assert run_once() == run_once()


class TestEvents:
    def test_timed_notify_wakes_waiter(self, sim):
        evt = Event(sim, "e")
        log = []

        def waiter():
            yield evt
            log.append(sim.now)

        def notifier():
            yield 5
            evt.notify(10)

        sim.spawn(waiter())
        sim.spawn(notifier())
        sim.run()
        assert log == [15]

    def test_delta_notify_wakes_in_same_timestamp(self, sim):
        evt = Event(sim, "e")
        log = []

        def waiter():
            yield evt
            log.append(sim.now)

        def notifier():
            yield 3
            evt.notify(0)

        sim.spawn(waiter())
        sim.spawn(notifier())
        sim.run()
        assert log == [3]

    def test_immediate_notify_only_wakes_current_waiters(self, sim):
        evt = Event(sim, "e")
        log = []

        def early_waiter():
            yield evt
            log.append("early")

        def late_waiter():
            yield 2
            yield evt
            log.append("late")

        def notifier():
            yield 1
            evt.notify()  # immediate: only early_waiter is waiting

        sim.spawn(early_waiter())
        sim.spawn(late_waiter())
        sim.spawn(notifier())
        sim.run(until=10)
        assert log == ["early"]

    def test_notify_with_negative_delay_rejected(self, sim):
        evt = Event(sim, "e")
        with pytest.raises(ValueError):
            evt.notify(-5)

    def test_multiple_waiters_all_wake(self, sim):
        evt = Event(sim, "e")
        log = []

        def waiter(tag):
            yield evt
            log.append(tag)

        def notifier():
            yield 1
            evt.notify(0)

        for tag in "xyz":
            sim.spawn(waiter(tag))
        sim.spawn(notifier())
        sim.run()
        assert sorted(log) == ["x", "y", "z"]


class TestCompositeWaits:
    def test_anyof_resumes_on_first_and_reports_which(self, sim):
        a = Event(sim, "a")
        b = Event(sim, "b")
        log = []

        def waiter():
            fired = yield AnyOf(a, b)
            log.append(fired)

        def notifier():
            yield 4
            b.notify(0)

        sim.spawn(waiter())
        sim.spawn(notifier())
        sim.run()
        assert log == [b]

    def test_anyof_removes_stale_waiters(self, sim):
        a = Event(sim, "a")
        b = Event(sim, "b")

        def waiter():
            yield AnyOf(a, b)

        def notifier():
            yield 1
            a.notify(0)

        sim.spawn(waiter())
        sim.spawn(notifier())
        sim.run()
        assert b._waiters == []

    def test_allof_waits_for_every_event(self, sim):
        a = Event(sim, "a")
        b = Event(sim, "b")
        log = []

        def waiter():
            yield AllOf(a, b)
            log.append(sim.now)

        def notifier():
            yield 2
            a.notify(0)
            yield 5
            b.notify(0)

        sim.spawn(waiter())
        sim.spawn(notifier())
        sim.run()
        assert log == [7]

    def test_empty_composites_rejected(self):
        with pytest.raises(ValueError):
            AnyOf()
        with pytest.raises(ValueError):
            AllOf()


class TestProcessLifecycle:
    def test_join_waits_for_child(self, sim):
        log = []

        def child():
            yield 10
            log.append("child done")

        def parent():
            proc = sim.spawn(child(), name="child")
            yield proc
            log.append(("joined", sim.now))

        sim.spawn(parent(), name="parent")
        sim.run()
        assert log == ["child done", ("joined", 10)]

    def test_join_already_finished_process(self, sim):
        log = []

        def child():
            yield 1

        def parent():
            proc = sim.spawn(child())
            yield 5
            yield proc  # child long finished
            log.append(sim.now)

        sim.spawn(parent())
        sim.run()
        assert log == [5]

    def test_kill_stops_process(self, sim):
        log = []

        def victim():
            while True:
                yield 1
                log.append(sim.now)

        def killer(proc):
            yield 3
            proc.kill()

        victim_proc = sim.spawn(victim())
        sim.spawn(killer(victim_proc))
        sim.run(until=10)
        # The killer was scheduled for t=3 before the victim's third
        # resume, so within the t=3 slot it runs first: the victim never
        # logs t=3.
        assert log == [1, 2]
        assert not victim_proc.alive

    def test_process_exception_propagates(self, sim):
        def bad():
            yield 1
            raise RuntimeError("boom")

        sim.spawn(bad(), name="bad")
        with pytest.raises(ProcessError) as excinfo:
            sim.run()
        assert "boom" in repr(excinfo.value.original)

    def test_simulator_reusable_after_process_error(self, sim):
        def bad():
            yield 1
            raise ValueError("first")

        def good():
            yield 5

        sim.spawn(bad())
        with pytest.raises(ProcessError):
            sim.run()
        sim.spawn(good())
        sim.run()
        assert sim.now >= 5

    def test_yield_none_resumes_next_delta(self, sim):
        log = []

        def proc():
            yield None
            log.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert log == [0]

    def test_yield_garbage_raises(self, sim):
        def proc():
            yield "nonsense"

        sim.spawn(proc(), name="garbage")
        with pytest.raises(ProcessError):
            sim.run()

    def test_stop_requests_early_return(self, sim):
        def proc():
            yield 5
            sim.stop()
            yield 100

        sim.spawn(proc())
        sim.run()
        assert sim.now == 5


class TestRunCounters:
    """Lifetime instrumentation used by campaign executors."""

    def test_fresh_simulator_counts_zero(self, sim):
        assert sim.stats() == {
            "events": 0, "process_steps": 0, "delta_cycles": 0,
        }

    def test_counters_grow_with_activity(self, sim):
        def ticker():
            for _ in range(5):
                yield 10

        sim.spawn(ticker())
        sim.run()
        stats = sim.stats()
        assert stats["process_steps"] >= 5
        assert stats["events"] >= 5
        assert stats["delta_cycles"] >= 1

    def test_counters_are_deterministic(self):
        def run_once():
            sim = Simulator()

            def ping(signal):
                for value in range(4):
                    signal.write(value)
                    yield 7

            def pong(signal):
                while True:
                    yield signal.changed
                    _ = signal.read()

            from repro.kernel import Signal

            wire = Signal(sim, "wire", 0)
            sim.spawn(ping(wire))
            sim.spawn(pong(wire))
            sim.run(until=100)
            return sim.stats()

        assert run_once() == run_once()
