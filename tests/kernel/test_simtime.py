"""Unit tests for kernel time helpers."""

import pytest

from repro.kernel import simtime as st


class TestConversions:
    def test_ns_is_identity_at_default_resolution(self):
        assert st.ns(1) == 1
        assert st.ns(250) == 250

    def test_us_ms_s_scale(self):
        assert st.us(1) == 1_000
        assert st.ms(1) == 1_000_000
        assert st.s(1) == 1_000_000_000

    def test_fractional_values_round(self):
        assert st.us(1.5) == 1_500
        assert st.ms(0.002) == 2_000

    def test_to_seconds_round_trip(self):
        assert st.to_seconds(st.s(3)) == pytest.approx(3.0)
        assert st.to_seconds(st.ms(1)) == pytest.approx(1e-3)


class TestFormatting:
    def test_zero(self):
        assert st.format_time(0) == "0ns"

    def test_picks_largest_exact_unit(self):
        assert st.format_time(5_000_000) == "5ms"
        assert st.format_time(2_000) == "2us"
        assert st.format_time(7) == "7ns"

    def test_inexact_falls_back_to_ns(self):
        assert st.format_time(1_500) == "1500ns"

    def test_whole_seconds(self):
        assert st.format_time(st.s(2)) == "2s"
