"""Unit tests for :meth:`Simulator.snapshot` / :meth:`restore` — the
mid-run kernel capture underneath snapshot-fork execution.

The contract (DESIGN.md · Mid-run snapshots & fork execution): a
kernel restored from a :class:`~repro.kernel.state.KernelState` and
run to completion is *bit-for-bit* indistinguishable from the kernel
that was captured running straight through — signal values, time,
statistics counters, process scheduling order.  Platform-level and
campaign-level layers are pinned in
``tests/core/test_fork_equivalence.py`` and
``tests/property/test_snapshot_properties.py``.
"""

import pytest

from repro.kernel import Clock, Signal, Simulator
from repro.kernel.state import (
    SCHEMA_VERSION,
    KernelState,
    SnapshotRestoreError,
    SnapshotUnsupported,
)


def build_counter(sim):
    """A tiny deterministic platform: clock, wire, edge counter."""
    clk = Clock(sim, "clk", period=10)
    out = Signal(sim, "count", initial=0)

    def counter():
        while True:
            yield clk.posedge
            out.write(out.read() + 1)

    sim.spawn(counter, name="counter")
    return clk, out


def build_two_phase(sim):
    """Two interacting factory processes with module-free state kept
    in signals — the wait-site-convergent shape restore supports."""
    clk = Clock(sim, "clk", period=6)
    ping = Signal(sim, "ping", initial=0)
    pong = Signal(sim, "pong", initial=0)

    def producer():
        while True:
            yield clk.posedge
            ping.write(ping.read() + 1)

    def consumer():
        while True:
            yield ping.changed
            pong.write(pong.read() + ping.read())

    sim.spawn(producer, name="producer")
    sim.spawn(consumer, name="consumer")
    return ping, pong


def final_state(sim, *signals):
    return tuple(s.read() for s in signals) + (sim.now, sim.stats())


class TestSnapshotRestore:
    def test_restore_resumes_bit_for_bit(self):
        """Reference: a run split at the same boundary *without* any
        snapshot (splitting itself costs one empty boundary delta
        cycle, which fork execution compensates — see
        ``execute_fork_group``); the restored continuation must match
        it exactly, counters included."""
        split = Simulator()
        _, split_out = build_counter(split)
        split.run(until=90)
        split.run(until=200)
        expected = final_state(split, split_out)

        sim = Simulator()
        _, out = build_counter(sim)
        sim.run(until=90)
        state = sim.snapshot()
        sim.run(until=200)
        assert final_state(sim, out) == expected

        sim.restore(state)
        assert sim.now == 90
        assert out.read() == 9
        sim.run(until=200)
        assert final_state(sim, out) == expected
        # Content (values, time) also matches an unsplit straight run.
        straight = Simulator()
        _, straight_out = build_counter(straight)
        straight.run(until=200)
        assert (straight_out.read(), straight.now) == (out.read(), sim.now)

    def test_restore_replays_any_number_of_times(self):
        sim = Simulator()
        ping, pong = build_two_phase(sim)
        sim.run(until=60)
        state = sim.snapshot()
        sim.run(until=150)
        reference = final_state(sim, ping, pong)
        for _ in range(3):
            sim.restore(state)
            sim.run(until=150)
            assert final_state(sim, ping, pong) == reference

    def test_snapshot_is_isolated_from_later_mutation(self):
        """The capture deep-copies mutable signal values: mutating the
        live value after the snapshot must not leak into a restore."""
        sim = Simulator()
        payload = Signal(sim, "payload", initial=[0])

        def mutator():
            while True:
                yield 10
                payload.read().append(sim.now)
                payload.write(payload.read())

        sim.spawn(mutator, name="mutator")
        sim.run(until=35)
        state = sim.snapshot()
        sim.run(until=95)
        assert len(payload.read()) > 3
        sim.restore(state)
        assert payload.read() == [0, 10, 20, 30]

    def test_schema_version_is_pinned(self):
        sim = Simulator()
        build_counter(sim)
        sim.run(until=50)
        state = sim.snapshot()
        assert isinstance(state, KernelState)
        assert state.schema == SCHEMA_VERSION == 1

    def test_restore_rejects_foreign_schema(self):
        sim = Simulator()
        build_counter(sim)
        sim.run(until=50)
        state = sim.snapshot()
        state.schema = SCHEMA_VERSION + 1
        with pytest.raises(SnapshotRestoreError):
            sim.restore(state)

    def test_strict_snapshot_refuses_bare_generators(self):
        """Bare-generator processes cannot be re-wound; strict capture
        names the offender instead of silently dropping it."""
        sim = Simulator()
        build_counter(sim)

        def one_shot():
            yield 5
            yield 5

        sim.spawn(one_shot(), name="bare")
        sim.run(until=7)
        with pytest.raises(SnapshotUnsupported, match="bare"):
            sim.snapshot()
        # Lenient mode (the elaboration-snapshot shape) still captures.
        assert sim.snapshot(strict=False).schema == SCHEMA_VERSION


class TestWarmResetWrappers:
    def test_reset_is_a_restore_of_the_elaboration_snapshot(self):
        """PR 4's reset() now rides the KernelState machinery: after a
        dirty run, reset == restore(elab snapshot) + cleared hooks."""
        sim = Simulator()
        _, out = build_counter(sim)
        sim.snapshot_elaboration()
        assert isinstance(sim._elab_snapshot, KernelState)
        sim.run(until=200)
        sim.delta_hooks.append(lambda _sim: None)
        sim.reset()
        assert sim.now == 0
        assert out.read() == 0
        assert sim.delta_hooks == []
        sim.run(until=200)
        assert out.read() == 20

    def test_reset_still_equals_fresh_after_mid_run_snapshots(self):
        """Taking mid-run snapshots must not disturb the pinned
        elaboration boundary reset() restores."""
        fresh = Simulator()
        _, fresh_out = build_counter(fresh)
        fresh.run(until=130)
        expected = final_state(fresh, fresh_out)

        sim = Simulator()
        _, out = build_counter(sim)
        sim.run(until=40)
        sim.snapshot()
        sim.run(until=130)
        sim.reset()
        sim.run(until=130)
        assert final_state(sim, out) == expected
