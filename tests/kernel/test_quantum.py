"""Unit tests for temporal decoupling (quantum keeper)."""

import pytest

from repro.kernel import GlobalQuantum, QuantumKeeper, Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestGlobalQuantum:
    def test_set_and_get(self):
        old = GlobalQuantum.get()
        try:
            GlobalQuantum.set(500)
            assert GlobalQuantum.get() == 500
        finally:
            GlobalQuantum.set(old)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            GlobalQuantum.set(0)

    def test_scoped_sets_and_restores(self):
        before = GlobalQuantum.get()
        with GlobalQuantum.scoped(777) as active:
            assert active == 777
            assert GlobalQuantum.get() == 777
        assert GlobalQuantum.get() == before

    def test_scoped_restores_on_exception(self):
        before = GlobalQuantum.get()
        with pytest.raises(RuntimeError):
            with GlobalQuantum.scoped(333):
                raise RuntimeError("boom")
        assert GlobalQuantum.get() == before

    def test_scoped_nests(self):
        before = GlobalQuantum.get()
        with GlobalQuantum.scoped(100):
            with GlobalQuantum.scoped(200):
                assert GlobalQuantum.get() == 200
            assert GlobalQuantum.get() == 100
        assert GlobalQuantum.get() == before

    def test_scoped_rejects_non_positive(self):
        before = GlobalQuantum.get()
        with pytest.raises(ValueError):
            with GlobalQuantum.scoped(0):
                pass  # pragma: no cover
        assert GlobalQuantum.get() == before


class TestQuantumKeeper:
    def test_local_time_runs_ahead(self, sim):
        qk = QuantumKeeper(sim, quantum=100)
        qk.inc(30)
        assert qk.local_offset == 30
        assert qk.local_time == 30
        assert not qk.need_sync()

    def test_need_sync_at_quantum_boundary(self, sim):
        qk = QuantumKeeper(sim, quantum=50)
        qk.inc(49)
        assert not qk.need_sync()
        qk.inc(1)
        assert qk.need_sync()

    def test_sync_returns_offset_and_resets(self, sim):
        qk = QuantumKeeper(sim, quantum=10)
        qk.inc(25)
        assert qk.sync() == 25
        assert qk.local_offset == 0
        assert qk.sync_count == 1

    def test_decoupled_process_advances_kernel_time(self, sim):
        qk = QuantumKeeper(sim, quantum=100)

        def initiator():
            for _ in range(10):
                qk.inc(30)  # 10 transactions of 30 units = 300 total
                if qk.need_sync():
                    yield qk.sync()
            if qk.local_offset:
                yield qk.sync()

        sim.spawn(initiator())
        sim.run()
        assert sim.now == 300

    def test_larger_quantum_means_fewer_syncs(self, sim):
        def run_with(quantum):
            local_sim = Simulator()
            qk = QuantumKeeper(local_sim, quantum=quantum)

            def initiator():
                for _ in range(100):
                    qk.inc(10)
                    if qk.need_sync():
                        yield qk.sync()
                if qk.local_offset:
                    yield qk.sync()

            local_sim.spawn(initiator())
            local_sim.run()
            assert local_sim.now == 1000
            return qk.sync_count

        assert run_with(10) > run_with(100) > run_with(1000)

    def test_negative_inc_rejected(self, sim):
        qk = QuantumKeeper(sim, quantum=10)
        with pytest.raises(ValueError):
            qk.inc(-1)

    def test_reset_clears_offset(self, sim):
        qk = QuantumKeeper(sim, quantum=10)
        qk.inc(5)
        qk.reset()
        assert qk.local_offset == 0
