"""Unit tests for the signal tracer and VCD export."""

import pytest

from repro.kernel import Module, Signal, Simulator, Tracer, Wire


@pytest.fixture
def rig():
    sim = Simulator()
    top = Module("top", sim=sim)
    return sim, top


class TestTracer:
    def test_records_changes_with_timestamps(self, rig):
        sim, top = rig
        sig = top.signal("speed", 0)
        tracer = Tracer()
        tracer.watch(sig)

        def driver():
            yield 10
            sig.write(5)
            yield 10
            sig.write(9)

        top.process(driver())
        sim.run(until=100)
        history = tracer.history("top.speed")
        assert [(c.time, c.value) for c in history] == [
            (0, 0), (10, 5), (20, 9),
        ]

    def test_value_at_interpolates_step_wise(self, rig):
        sim, top = rig
        sig = top.signal("x", 1)
        tracer = Tracer()
        tracer.watch(sig)

        def driver():
            yield 50
            sig.write(2)

        top.process(driver())
        sim.run(until=100)
        assert tracer.value_at("top.x", 0) == 1
        assert tracer.value_at("top.x", 49) == 1
        assert tracer.value_at("top.x", 50) == 2
        assert tracer.value_at("top.x", 99) == 2

    def test_duplicate_watch_rejected(self, rig):
        _, top = rig
        sig = top.signal("x", 0)
        tracer = Tracer()
        tracer.watch(sig)
        with pytest.raises(ValueError):
            tracer.watch(sig)

    def test_force_is_traced_too(self, rig):
        sim, top = rig
        sig = top.signal("x", 0)
        tracer = Tracer()
        tracer.watch(sig)

        def injector():
            yield 5
            sig.force(0xFF)

        top.process(injector())
        sim.run(until=10)
        assert tracer.value_at("top.x", 5) == 0xFF


class TestVcdExport:
    def test_vcd_structure(self, rig):
        sim, top = rig
        speed = top.signal("speed", 0)
        enable = Wire(sim, "top.enable")
        tracer = Tracer()
        tracer.watch(speed)
        tracer.watch(enable)

        def driver():
            yield 10
            speed.write(1234)
            enable.write(True)

        top.process(driver())
        sim.run(until=20)
        vcd = tracer.to_vcd()
        assert "$timescale 1ns $end" in vcd
        assert "$var wire 64 ! top.speed $end" in vcd
        assert "top.enable" in vcd
        assert "#10" in vcd
        assert f"b{bin(1234)[2:]} !" in vcd

    def test_vcd_events_time_sorted(self, rig):
        sim, top = rig
        a = top.signal("a", 0)
        b = top.signal("b", 0)
        tracer = Tracer()
        tracer.watch(a)
        tracer.watch(b)

        def driver():
            yield 30
            b.write(1)
            yield 10
            a.write(1)

        top.process(driver())
        sim.run(until=100)
        vcd = tracer.to_vcd()
        assert vcd.index("#30") < vcd.index("#40")

    def test_write_vcd_file(self, rig, tmp_path):
        sim, top = rig
        sig = top.signal("x", 0)
        tracer = Tracer()
        tracer.watch(sig)
        sim.run(until=10)
        path = tmp_path / "trace.vcd"
        tracer.write_vcd(str(path))
        assert path.read_text().startswith("$comment")

    def test_identifier_uniqueness(self):
        identifiers = {Tracer._identifier(i) for i in range(500)}
        assert len(identifiers) == 500
