"""Unit tests for the signal tracer and VCD export."""

import pytest

from repro.kernel import Module, Signal, Simulator, Tracer, Wire


@pytest.fixture
def rig():
    sim = Simulator()
    top = Module("top", sim=sim)
    return sim, top


class TestTracer:
    def test_records_changes_with_timestamps(self, rig):
        sim, top = rig
        sig = top.signal("speed", 0)
        tracer = Tracer()
        tracer.watch(sig)

        def driver():
            yield 10
            sig.write(5)
            yield 10
            sig.write(9)

        top.process(driver())
        sim.run(until=100)
        history = tracer.history("top.speed")
        assert [(c.time, c.value) for c in history] == [
            (0, 0), (10, 5), (20, 9),
        ]

    def test_value_at_interpolates_step_wise(self, rig):
        sim, top = rig
        sig = top.signal("x", 1)
        tracer = Tracer()
        tracer.watch(sig)

        def driver():
            yield 50
            sig.write(2)

        top.process(driver())
        sim.run(until=100)
        assert tracer.value_at("top.x", 0) == 1
        assert tracer.value_at("top.x", 49) == 1
        assert tracer.value_at("top.x", 50) == 2
        assert tracer.value_at("top.x", 99) == 2

    def test_duplicate_watch_rejected(self, rig):
        _, top = rig
        sig = top.signal("x", 0)
        tracer = Tracer()
        tracer.watch(sig)
        with pytest.raises(ValueError):
            tracer.watch(sig)

    def test_force_is_traced_too(self, rig):
        sim, top = rig
        sig = top.signal("x", 0)
        tracer = Tracer()
        tracer.watch(sig)

        def injector():
            yield 5
            sig.force(0xFF)

        top.process(injector())
        sim.run(until=10)
        assert tracer.value_at("top.x", 5) == 0xFF


class TestTracerLifecycle:
    def test_unwatch_detaches_observer_and_keeps_history(self, rig):
        sim, top = rig
        sig = top.signal("x", 0)
        tracer = Tracer()
        tracer.watch(sig)

        def driver():
            yield 10
            sig.write(1)
            yield 10
            sig.write(2)

        top.process(driver())
        sim.run(until=15)
        tracer.unwatch(sig)
        assert not sig.observers  # callback actually removed
        sim.run(until=100)  # second write happens unobserved
        history = tracer.history("top.x")
        assert [(c.time, c.value) for c in history] == [(0, 0), (10, 1)]

    def test_unwatch_by_name_and_unknown_name_raises(self, rig):
        _, top = rig
        sig = top.signal("x", 0)
        tracer = Tracer()
        tracer.watch(sig)
        tracer.unwatch("top.x")
        assert not sig.observers
        with pytest.raises(KeyError):
            tracer.unwatch("top.y")

    def test_close_detaches_everything_and_is_idempotent(self, rig):
        _, top = rig
        a = top.signal("a", 0)
        b = top.signal("b", 0)
        tracer = Tracer()
        tracer.watch(a)
        tracer.watch(b)
        tracer.close()
        tracer.close()
        assert not a.observers
        assert not b.observers
        # Histories stay readable after close.
        assert tracer.history("top.a") == [(0, 0)]

    def test_context_manager_closes(self, rig):
        _, top = rig
        sig = top.signal("x", 0)
        with Tracer() as tracer:
            tracer.watch(sig)
            assert sig.observers
        assert not sig.observers

    def test_repeated_arm_disarm_does_not_accumulate_observers(self, rig):
        """The leak the campaign layer cares about: one tracer per run
        against a long-lived signal must not grow the observer list."""
        _, top = rig
        sig = top.signal("x", 0)
        for _ in range(10):
            tracer = Tracer()
            tracer.watch(sig)
            tracer.close()
        assert len(sig.observers) == 0


class TestBoundedTracer:
    def test_capacity_bounds_history_and_counts_drops(self, rig):
        sim, top = rig
        sig = top.signal("x", 0)
        tracer = Tracer(capacity=4)
        tracer.watch(sig)

        def driver():
            for value in range(1, 11):
                yield 10
                sig.write(value)

        top.process(driver())
        sim.run(until=200)
        history = tracer.history("top.x")
        assert len(history) == 4
        # Ring keeps the newest changes.
        assert [c.value for c in history] == [7, 8, 9, 10]
        # 11 changes seen (baseline + 10 writes), 4 retained.
        assert tracer.dropped("top.x") == 7

    def test_unbounded_tracer_reports_zero_dropped(self, rig):
        sim, top = rig
        sig = top.signal("x", 0)
        tracer = Tracer()
        tracer.watch(sig)
        sim.run(until=10)
        assert tracer.dropped("top.x") == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)


class TestVcdExport:
    def test_vcd_structure(self, rig):
        sim, top = rig
        speed = top.signal("speed", 0)
        enable = Wire(sim, "top.enable")
        tracer = Tracer()
        tracer.watch(speed)
        tracer.watch(enable)

        def driver():
            yield 10
            speed.write(1234)
            enable.write(True)

        top.process(driver())
        sim.run(until=20)
        vcd = tracer.to_vcd()
        assert "$timescale 1ns $end" in vcd
        assert "$var wire 64 ! top.speed $end" in vcd
        assert "top.enable" in vcd
        assert "#10" in vcd
        assert f"b{bin(1234)[2:]} !" in vcd

    def test_vcd_events_time_sorted(self, rig):
        sim, top = rig
        a = top.signal("a", 0)
        b = top.signal("b", 0)
        tracer = Tracer()
        tracer.watch(a)
        tracer.watch(b)

        def driver():
            yield 30
            b.write(1)
            yield 10
            a.write(1)

        top.process(driver())
        sim.run(until=100)
        vcd = tracer.to_vcd()
        assert vcd.index("#30") < vcd.index("#40")

    def test_write_vcd_file(self, rig, tmp_path):
        sim, top = rig
        sig = top.signal("x", 0)
        tracer = Tracer()
        tracer.watch(sig)
        sim.run(until=10)
        path = tmp_path / "trace.vcd"
        tracer.write_vcd(str(path))
        assert path.read_text().startswith("$comment")

    def test_identifier_uniqueness(self):
        identifiers = {Tracer._identifier(i) for i in range(500)}
        assert len(identifiers) == 500

    def test_var_names_sanitized_for_viewers(self, rig):
        """Spaces and brackets in signal names (e.g. array elements)
        are folded to underscores in the ``$var`` record; dotted
        hierarchy paths pass through untouched."""
        sim, top = rig
        weird = Wire(sim, "top.bus[3] (shadow)")
        plain = top.signal("speed", 0)
        tracer = Tracer()
        tracer.watch(weird)
        tracer.watch(plain)
        sim.run(until=10)
        vcd = tracer.to_vcd()
        assert "top.bus_3___shadow_" in vcd
        assert "bus[3]" not in vcd
        assert "top.speed" in vcd
