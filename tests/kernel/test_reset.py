"""Unit tests for :meth:`Simulator.reset` — the warm-reuse kernel half.

The reset protocol (DESIGN.md · Campaign performance) promises that a
reset kernel is *bit-for-bit* indistinguishable from a freshly built
one: factory processes rebuilt and rescheduled in spawn order, every
queue and counter zeroed, every registered signal back at its initial
value.  These tests pin that promise at the kernel level; the
platform-level half lives in ``tests/core/test_warm_equivalence.py``.
"""

import pytest

from repro.kernel import Clock, Signal, Simulator, Wire


def build_counter(sim):
    """A tiny deterministic platform: clock, wire, edge counter."""
    clk = Clock(sim, "clk", period=10)
    out = Signal(sim, "count", initial=0)

    def counter():
        while True:
            yield clk.posedge
            out.write(out.read() + 1)

    sim.spawn(counter, name="counter")
    return clk, out


def run_to(sim, out, until):
    sim.run(until=until)
    return out.read(), sim.now, sim.stats()


class TestResetEquivalence:
    def test_reset_run_matches_fresh_run(self):
        fresh = Simulator()
        _, fresh_out = build_counter(fresh)
        fresh_final = run_to(fresh, fresh_out, 200)

        warm = Simulator()
        _, warm_out = build_counter(warm)
        run_to(warm, warm_out, 200)  # dirty the kernel
        warm.reset()
        assert warm_out.read() == 0  # signals restored pre-run
        assert warm.now == 0
        warm_final = run_to(warm, warm_out, 200)

        assert warm_final == fresh_final

    def test_reset_after_interrupted_run_matches_fresh(self):
        """A run stopped mid-flight (the deadline-timeout shape) leaves
        pending wheel entries and runnable state; reset must still
        restore power-on behavior exactly."""
        fresh = Simulator()
        _, fresh_out = build_counter(fresh)
        fresh_final = run_to(fresh, fresh_out, 200)

        warm = Simulator()
        _, warm_out = build_counter(warm)
        warm.run(until=73)  # interrupt at an odd time, mid-period
        warm.reset()
        warm_final = run_to(warm, warm_out, 200)

        assert warm_final == fresh_final

    def test_repeated_resets_stay_identical(self):
        sim = Simulator()
        _, out = build_counter(sim)
        finals = []
        for _ in range(4):
            finals.append(run_to(sim, out, 150))
            sim.reset()
        assert finals.count(finals[0]) == 4


class TestResetMechanics:
    def test_bare_generator_processes_are_killed(self):
        sim = Simulator()

        def ticks():
            while True:
                yield 5

        bare = sim.spawn(ticks(), name="bare")  # generator, no factory
        factory = sim.spawn(ticks, name="factory")
        sim.run(until=20)
        sim.reset()
        assert bare.state == "killed"
        assert bare not in sim._processes
        assert factory in sim._processes
        assert factory.state == "created"

    def test_counters_queues_and_signals_restored(self):
        sim = Simulator()
        sig = Signal(sim, "s", initial=7)
        wire = Wire(sim, "w", initial=False)

        def writer():
            yield 3
            sig.write(42)
            wire.write(True)
            yield 100  # leaves a wheel entry when interrupted

        sim.spawn(writer, name="writer")
        sim.run(until=10)
        assert sig.read() == 42
        sim.reset()
        assert sig.read() == 7
        assert wire.read() is False
        assert sig.change_count == 0
        assert sim.now == 0
        assert sim.delta_count == 0
        assert sim.stats() == {
            "events": 0, "process_steps": 0, "delta_cycles": 0
        }
        assert not sim._wheel
        assert not sim._timed_now
        assert not sim._delta_events
        assert not sim._update_queue

    def test_delta_hooks_cleared(self):
        sim = Simulator()
        sim.delta_hooks.append(lambda s: None)
        sim.reset()
        assert sim.delta_hooks == []

    def test_restart_requires_factory(self):
        sim = Simulator()

        def body():
            yield 1

        process = sim.spawn(body(), name="bare")
        with pytest.raises(TypeError):
            process.restart()

    def test_elaboration_timed_event_replayed_after_reset(self):
        """Timed notifications issued at elaboration time (a platform
        factory calling ``sim.timeout_event`` / ``event.notify(delay)``)
        must fire again after a reset, exactly as on a fresh build."""

        def build(sim):
            log = []
            boot = sim.timeout_event(50, name="boot")

            def waiter():
                yield boot
                log.append(sim.now)

            sim.spawn(waiter, name="waiter")
            return log

        fresh = Simulator()
        fresh_log = build(fresh)
        fresh.run(until=200)

        warm = Simulator()
        warm_log = build(warm)
        warm.run(until=200)
        assert warm_log == [50]
        warm.reset()
        warm_log.clear()
        warm.run(until=200)

        assert warm_log == fresh_log == [50]

    def test_elaboration_staged_write_and_delta_replayed_after_reset(self):
        """Staged signal writes and delta notifications left behind by
        elaboration are part of the power-on state too."""

        def build(sim):
            log = []
            sig = Signal(sim, "s", initial=0)
            kick = sim.event("kick")
            sig.write(5)  # staged at elaboration, commits in delta 0
            kick.notify(0)  # delta-pending at elaboration

            def kick_watcher():
                yield kick
                log.append(("kick", sim.now, sig.read()))

            def change_watcher():
                yield sig.changed
                log.append(("changed", sim.now, sig.read()))

            sim.spawn(kick_watcher, name="kick_watcher")
            sim.spawn(change_watcher, name="change_watcher")
            return log

        fresh = Simulator()
        fresh_log = build(fresh)
        fresh.run(until=10)
        assert fresh_log == [("kick", 0, 5), ("changed", 0, 5)]

        warm = Simulator()
        warm_log = build(warm)
        warm.run(until=10)
        warm.reset()
        warm_log.clear()
        warm.run(until=10)

        assert warm_log == fresh_log

    def test_mutable_initial_value_restored_pristine(self):
        """A run mutating a signal's (mutable) value in place must not
        leak the mutation into the value a warm reset restores."""
        sim = Simulator()
        sig = Signal(sim, "buf", initial=[0, 0, 0])

        def mutator():
            yield 1
            sig.read().append(99)
            sig.read()[0] = 7

        sim.spawn(mutator, name="mutator")
        sim.run(until=10)
        assert sig.read() == [7, 0, 0, 99]
        sim.reset()
        assert sig.read() == [0, 0, 0]
        # A second dirty run must start from an equally pristine copy.
        sim.run(until=10)
        assert sig.read() == [7, 0, 0, 99]
        sim.reset()
        assert sig.read() == [0, 0, 0]

    def test_zero_delay_notifications_survive_reset_cycle(self):
        """The ``_timed_now`` fast path must behave identically on a
        reset kernel — the deque is per-kernel state like the wheel."""

        def build(sim):
            log = []

            def pinger():
                for _ in range(3):
                    yield 0
                    log.append(sim.now)
                yield 10
                log.append(sim.now)

            sim.spawn(pinger, name="pinger")
            return log

        fresh = Simulator()
        fresh_log = build(fresh)
        fresh.run()

        warm = Simulator()
        warm_log = build(warm)
        warm.run()
        warm.reset()
        warm_log.clear()
        warm.run()

        assert warm_log == fresh_log == [0, 0, 0, 10]
