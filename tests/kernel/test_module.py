"""Unit tests for the module hierarchy and injection-point registry."""

import pytest

from repro.kernel import Module, Simulator


@pytest.fixture
def sim():
    return Simulator()


def build_tree(sim):
    top = Module("top", sim=sim)
    ecu = Module("ecu0", parent=top)
    cpu = Module("cpu", parent=ecu)
    mem = Module("mem", parent=ecu)
    return top, ecu, cpu, mem


class TestHierarchy:
    def test_full_names(self, sim):
        top, ecu, cpu, mem = build_tree(sim)
        assert top.full_name == "top"
        assert cpu.full_name == "top.ecu0.cpu"
        assert mem.full_name == "top.ecu0.mem"

    def test_children_registered_in_order(self, sim):
        top, ecu, cpu, mem = build_tree(sim)
        assert top.children == [ecu]
        assert ecu.children == [cpu, mem]

    def test_find_by_path(self, sim):
        top, ecu, cpu, mem = build_tree(sim)
        assert top.find("ecu0.cpu") is cpu
        assert top.find("ecu0") is ecu

    def test_find_missing_raises_keyerror(self, sim):
        top, *_ = build_tree(sim)
        with pytest.raises(KeyError):
            top.find("ecu0.gpu")

    def test_walk_is_depth_first(self, sim):
        top, ecu, cpu, mem = build_tree(sim)
        assert [m.basename for m in top.walk()] == ["top", "ecu0", "cpu", "mem"]

    def test_module_needs_parent_or_sim(self):
        with pytest.raises(ValueError):
            Module("orphan")

    def test_child_inherits_simulator(self, sim):
        top, ecu, cpu, _ = build_tree(sim)
        assert cpu.sim is sim


class TestConstructionHelpers:
    def test_signal_and_wire_names_are_hierarchical(self, sim):
        top, ecu, *_ = build_tree(sim)
        sig = ecu.signal("speed", 0)
        wire = ecu.wire("enable")
        assert sig.name == "top.ecu0.speed"
        assert wire.name == "top.ecu0.enable"

    def test_process_runs_under_module_name(self, sim):
        top, *_ = build_tree(sim)
        log = []

        def body():
            yield 1
            log.append("ran")

        proc = top.process(body(), name="worker")
        assert proc.name == "top.worker"
        sim.run()
        assert log == ["ran"]


class TestDetach:
    def test_detach_unlinks_from_parent(self, sim):
        top, ecu, *_ = build_tree(sim)
        ecu.detach()
        assert top.children == []
        assert ecu.parent is None

    def test_detach_reaps_owned_signals_and_processes(self, sim):
        """Per-run helpers on a warm kernel must not leak: detach hands
        every signal/process the subtree created back to the kernel."""
        top = Module("top", sim=sim)
        baseline_signals = len(sim._signals)
        baseline_processes = len(sim._processes)

        for run in range(3):
            helper = Module(f"helper{run}", parent=top)
            child = Module("child", parent=helper)
            helper.signal("s", 0)
            child.wire("w")
            child.clock("clk", period=10)

            def body():
                yield 1

            helper.process(body(), name="worker")
            sim.run(until=5)
            helper.detach()
            sim.reset()
            assert len(sim._signals) == baseline_signals
            assert len(sim._processes) == baseline_processes

    def test_detach_kills_still_waiting_processes(self, sim):
        top = Module("top", sim=sim)
        helper = Module("helper", parent=top)

        def body():
            yield 1_000_000

        proc = helper.process(body(), name="sleeper")
        sim.run(until=5)
        helper.detach()
        assert proc.state == "killed"
        assert proc not in sim._processes


class TestInjectionPoints:
    def test_register_and_enumerate(self, sim):
        top, ecu, cpu, mem = build_tree(sim)
        cpu.register_injection_point("regfile", object())
        mem.register_injection_point("array", object())
        points = top.all_injection_points()
        assert set(points) == {
            "top.ecu0.cpu.regfile",
            "top.ecu0.mem.array",
        }

    def test_duplicate_registration_rejected(self, sim):
        top, *_ = build_tree(sim)
        top.register_injection_point("x", object())
        with pytest.raises(ValueError):
            top.register_injection_point("x", object())

    def test_local_view_is_a_copy(self, sim):
        top, *_ = build_tree(sim)
        top.register_injection_point("x", object())
        view = top.injection_points
        view["y"] = object()
        assert "y" not in top.injection_points
