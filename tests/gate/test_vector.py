"""Unit tests for the bit-parallel vector gate engine.

The scalar :class:`GateSimulator` is the ground truth; everything here
checks that the vector engine's lanes are bit-for-bit scalar runs —
per-lane fault masks, SEU timing, lane-packing edges, and the
campaign-level byte-equivalence acceptance on every built-in circuit.
The randomized population lives in
``tests/property/test_gate_vector_properties.py``; this file pins the
deterministic contracts.
"""

import random

import numpy as np
import pytest

from repro.gate import (
    GateProgram,
    GateSimulator,
    VectorGateSimulator,
    alu,
    comparator,
    enumerate_sites,
    majority_voter,
    mux_chain,
    registered_adder,
    ripple_adder,
    run_campaign,
)

BUILTINS = {
    "full_adder": lambda: ripple_adder(1, name="fa"),
    "ripple_adder": lambda: ripple_adder(8),
    "comparator": lambda: comparator(4),
    "majority_voter": lambda: majority_voter(8),
    "alu": lambda: alu(8),
    "registered_adder": lambda: registered_adder(8),
    "mux_chain": lambda: mux_chain(6),
}


def output_bus(circuit):
    for name in ("out", "sum", "eq"):
        if name in circuit.buses:
            return name
    raise AssertionError("no known output bus")


def scalar_lane_run(circuit, vectors, faults, cycles):
    """Reference: one scalar simulator driven like a single lane.

    *faults* is a list of ("stuck", net, level) armed up front and
    ("seu", net, at_cycle) injected before that cycle's evaluate.
    Returns the output-net values after each evaluate.
    """
    sim = GateSimulator(circuit.netlist)
    for fault in faults:
        if fault[0] == "stuck":
            sim.set_stuck(fault[1], fault[2])
    history = []
    for cycle, vector in enumerate(vectors):
        for fault in faults:
            if fault[0] == "seu" and fault[2] == cycle:
                sim.inject_seu(fault[1])
        outputs = sim.evaluate(vector)
        history.append(dict(outputs))
        if cycle < cycles - 1:
            sim.clock()
    return history


class TestEvaluateParity:
    @pytest.mark.parametrize("name", sorted(BUILTINS))
    def test_broadcast_matches_scalar(self, name):
        """Fault-free, every lane must equal the one scalar run."""
        circuit = BUILTINS[name]()
        rng = random.Random(42)
        scalar = GateSimulator(circuit.netlist)
        vec = VectorGateSimulator(circuit.netlist, lanes=70)
        for cycle in range(4):
            vector = {
                net: rng.randrange(2) for net in circuit.netlist.inputs
            }
            expected = scalar.evaluate(vector)
            rows = vec.evaluate(vector)
            for net, value in expected.items():
                want = vec.broadcast(value)
                assert np.array_equal(rows[net], want), (name, cycle, net)
            scalar.clock()
            vec.clock()

    def test_per_lane_inputs(self):
        """Each lane can carry its own stimulus word."""
        circuit = ripple_adder(8)
        lanes = 65
        rng = random.Random(7)
        pairs = [
            (rng.randrange(256), rng.randrange(256)) for _ in range(lanes)
        ]
        vec = VectorGateSimulator(circuit.netlist, lanes=lanes)
        inputs = {}
        inputs.update(vec.pack(circuit.buses["a"], [a for a, _ in pairs]))
        inputs.update(vec.pack(circuit.buses["b"], [b for _, b in pairs]))
        rows = vec.evaluate(inputs)
        sums = vec.unpack_lanes(circuit.buses["sum"], rows)
        couts = vec.unpack_lanes(circuit.buses["cout"], rows)
        for lane, (a, b) in enumerate(pairs):
            assert sums[lane] == (a + b) & 0xFF
            assert couts[lane] == (a + b) >> 8

    def test_shared_program_instances(self):
        circuit = alu(8)
        program = GateProgram(circuit.netlist)
        one = VectorGateSimulator(program, lanes=1)
        many = VectorGateSimulator(program, lanes=64)
        assert one.program is many.program
        vector = {net: 1 for net in circuit.netlist.inputs}
        a = one.evaluate(vector)
        b = many.evaluate(vector)
        for net in a:
            assert int(a[net][0]) & 1 == int(b[net][0]) & 1


class TestLanePacking:
    @pytest.mark.parametrize("lanes", [1, 2, 63, 64, 65, 100, 128, 130])
    def test_word_allocation_and_masks(self, lanes):
        circuit = ripple_adder(2)
        vec = VectorGateSimulator(circuit.netlist, lanes=lanes)
        assert vec.words == -(-lanes // 64)
        # lane_mask has exactly `lanes` bits set.
        assert sum(int(w).bit_count() for w in vec.lane_mask) == lanes
        # Inverted rows stay canonical: no bits above the lane range.
        rows = vec.evaluate({net: 0 for net in circuit.netlist.inputs})
        for row in rows.values():
            assert np.array_equal(row & ~vec.lane_mask, np.zeros_like(row))

    def test_lane_out_of_range_rejected(self):
        vec = VectorGateSimulator(ripple_adder(2).netlist, lanes=4)
        with pytest.raises(IndexError):
            vec.set_stuck("a0", 1, lanes=(4,))
        with pytest.raises(IndexError):
            vec.inject_seu("a0", lanes=(-1,))

    def test_invalid_lane_count_rejected(self):
        with pytest.raises(ValueError):
            VectorGateSimulator(ripple_adder(2).netlist, lanes=0)

    def test_pack_lanes_length_checked(self):
        vec = VectorGateSimulator(ripple_adder(2).netlist, lanes=3)
        with pytest.raises(ValueError):
            vec.pack_lanes([1, 0])
        with pytest.raises(ValueError):
            vec.pack(["a0"], [1, 0])


class TestFaultMasks:
    def test_stuck_applies_only_to_selected_lanes(self):
        circuit = ripple_adder(4)
        vec = VectorGateSimulator(circuit.netlist, lanes=66)
        vec.set_stuck("a0", 1, lanes=(0, 65))
        inputs = {}
        inputs.update(vec.pack(circuit.buses["a"], 0))
        inputs.update(vec.pack(circuit.buses["b"], 0))
        inputs["cin"] = 0
        sums = vec.unpack_lanes(circuit.buses["sum"], vec.evaluate(inputs))
        assert sums[0] == 1 and sums[65] == 1
        assert all(s == 0 for lane, s in enumerate(sums) if lane not in (0, 65))

    def test_stuck_rearm_overwrites_level(self):
        """stuck0 then stuck1 on the same lane must read 1, like scalar."""
        circuit = ripple_adder(2)
        scalar = GateSimulator(circuit.netlist)
        scalar.set_stuck("a0", 0)
        scalar.set_stuck("a0", 1)
        vec = VectorGateSimulator(circuit.netlist, lanes=2)
        vec.set_stuck("a0", 0, lanes=(1,))
        vec.set_stuck("a0", 1, lanes=(1,))
        inputs = {net: 0 for net in circuit.netlist.inputs}
        want = scalar.evaluate(inputs)
        rows = vec.evaluate(inputs)
        got = vec.unpack_lanes(circuit.buses["sum"], rows)
        assert got[1] == GateSimulator.unpack(circuit.buses["sum"], want)
        assert got[0] == 0  # untouched lane

    def test_clear_stuck_per_lane_per_net_and_all(self):
        circuit = ripple_adder(2)
        vec = VectorGateSimulator(circuit.netlist, lanes=3)
        vec.set_stuck("a0", 1)
        vec.set_stuck("b0", 1)
        vec.clear_stuck("a0", lanes=(1,))
        inputs = {net: 0 for net in circuit.netlist.inputs}
        sums = vec.unpack_lanes(circuit.buses["sum"], vec.evaluate(inputs))
        assert sums == [0b10, 0b01, 0b10]  # a0+b0 stuck, lane1 a0 cleared
        vec.clear_stuck("b0")
        sums = vec.unpack_lanes(circuit.buses["sum"], vec.evaluate(inputs))
        assert sums == [1, 0, 1]
        vec.clear_stuck()
        sums = vec.unpack_lanes(circuit.buses["sum"], vec.evaluate(inputs))
        assert sums == [0, 0, 0]
        assert not vec._stuck  # fully-cleared entries are dropped

    def test_pending_seu_is_idempotent_like_scalar_set(self):
        circuit = ripple_adder(4)
        scalar = GateSimulator(circuit.netlist)
        net = circuit.buses["sum"][0]
        scalar.inject_seu(net)
        scalar.inject_seu(net)  # set semantics: still one flip
        vec = VectorGateSimulator(circuit.netlist, lanes=1)
        vec.inject_seu(net)
        vec.inject_seu(net)
        inputs = {n: 0 for n in circuit.netlist.inputs}
        want = scalar.evaluate(inputs)
        rows = vec.evaluate(inputs)
        assert vec.unpack_lane(circuit.buses["sum"], rows) == \
            GateSimulator.unpack(circuit.buses["sum"], want) == 1
        # And transient: the next evaluate is clean in both engines.
        assert GateSimulator.unpack(
            circuit.buses["sum"], scalar.evaluate(inputs)
        ) == 0
        assert vec.unpack_lane(
            circuit.buses["sum"], vec.evaluate(inputs)
        ) == 0

    def test_flop_seu_toggles_like_scalar_state_flip(self):
        circuit = registered_adder(4)
        scalar = GateSimulator(circuit.netlist)
        scalar.inject_seu("areg1")
        scalar.inject_seu("areg1")  # state ^= 1 twice: back to 0
        vec = VectorGateSimulator(circuit.netlist, lanes=1)
        vec.inject_seu("areg1")
        vec.inject_seu("areg1")
        assert scalar.state["areg1"] == 0
        assert int(vec.state[vec.program.flop_row_of[vec.program.index["areg1"]]][0]) == 0

    def test_unknown_net_rejected(self):
        vec = VectorGateSimulator(ripple_adder(2).netlist, lanes=1)
        with pytest.raises(KeyError):
            vec.inject_seu("ghost")
        with pytest.raises(KeyError):
            vec.set_stuck("ghost", 1)
        with pytest.raises(KeyError):
            vec.clear_stuck("ghost")

    def test_reset_keeps_stuck_drops_pending(self):
        """Mirrors GateSimulator.reset: state/values/pending cleared,
        stuck-at masks survive."""
        circuit = registered_adder(4)
        scalar = GateSimulator(circuit.netlist)
        vec = VectorGateSimulator(circuit.netlist, lanes=1)
        for sim in (scalar, vec):
            sim.set_stuck("areg0", 1)
            sim.inject_seu(circuit.buses["sum"][0])
            sim.reset()
        inputs = {net: 0 for net in circuit.netlist.inputs}
        want = scalar.evaluate(inputs)
        rows = vec.evaluate(inputs)
        for net, value in want.items():
            assert int(rows[net][0]) == value


class TestLaneVsScalarSequences:
    @pytest.mark.parametrize("name", ["registered_adder", "mux_chain", "alu"])
    def test_mixed_faults_over_cycles(self, name):
        """Three faulted lanes + golden lane vs four scalar runs."""
        circuit = BUILTINS[name]()
        nets = circuit.netlist.nets
        rng = random.Random(9)
        cycles = 3
        vectors = [
            {net: rng.randrange(2) for net in circuit.netlist.inputs}
            for _ in range(cycles)
        ]
        lane_faults = [
            [],
            [("stuck", nets[rng.randrange(len(nets))], 1)],
            [("stuck", nets[rng.randrange(len(nets))], 0)],
            [("seu", nets[rng.randrange(len(nets))], 1)],
        ]
        vec = VectorGateSimulator(circuit.netlist, lanes=len(lane_faults))
        for lane, faults in enumerate(lane_faults):
            for fault in faults:
                if fault[0] == "stuck":
                    vec.set_stuck(fault[1], fault[2], lanes=(lane,))
        bus = circuit.buses[output_bus(circuit)]
        scalar_words = []
        for faults in lane_faults:
            history = scalar_lane_run(circuit, vectors, faults, cycles)
            scalar_words.append(
                [GateSimulator.unpack(bus, h) for h in history]
            )
        for cycle, vector in enumerate(vectors):
            for lane, faults in enumerate(lane_faults):
                for fault in faults:
                    if fault[0] == "seu" and fault[2] == cycle:
                        vec.inject_seu(fault[1], lanes=(lane,))
            rows = vec.evaluate(vector)
            words = vec.unpack_lanes(bus, rows)
            for lane in range(len(lane_faults)):
                assert words[lane] == scalar_words[lane][cycle], (
                    name, lane, cycle
                )
            if cycle < cycles - 1:
                vec.clock()


class TestCampaignEquivalence:
    """The acceptance criterion: byte-identical WordErrorProfiles on
    every built-in circuit, both engines, all fault kinds."""

    @pytest.mark.parametrize("name", sorted(BUILTINS))
    def test_builtin_profiles_byte_identical(self, name):
        circuit = BUILTINS[name]()
        bus = output_bus(circuit)
        kwargs = dict(
            kinds=("seu", "stuck0", "stuck1"),
            runs_per_site=2,
            seed=23,
        )
        scalar_profile, scalar_outcomes = run_campaign(
            circuit, bus, engine="scalar", **kwargs
        )
        vector_profile, vector_outcomes = run_campaign(
            circuit, bus, engine="vector", **kwargs
        )
        assert scalar_profile.canonical() == vector_profile.canonical()
        assert scalar_outcomes == vector_outcomes
        assert scalar_profile.total == 2 * len(
            enumerate_sites(circuit, ("seu", "stuck0", "stuck1"))
        )

    def test_explicit_rng_matches_seed(self):
        circuit = ripple_adder(4)
        by_seed, _ = run_campaign(circuit, "sum", seed=5, engine="vector")
        by_rng, _ = run_campaign(
            circuit, "sum", rng=random.Random(5), engine="vector"
        )
        assert by_seed.canonical() == by_rng.canonical()

    def test_lane_edge_site_counts(self):
        """1, exactly 64, and 65 sites pack into 1, 1, and 2 words."""
        circuit = alu(8)
        all_sites = enumerate_sites(circuit, ("seu",))
        for count in (1, 64, 65):
            sites = all_sites[:count]
            scalar, s_out = run_campaign(
                circuit, "out", sites=sites, runs_per_site=1,
                seed=2, engine="scalar",
            )
            vector, v_out = run_campaign(
                circuit, "out", sites=sites, runs_per_site=1,
                seed=2, engine="vector",
            )
            assert scalar.canonical() == vector.canonical()
            assert s_out == v_out

    def test_empty_sites_and_zero_runs(self):
        circuit = ripple_adder(2)
        for engine in ("scalar", "vector"):
            profile, outcomes = run_campaign(
                circuit, "sum", sites=[], runs_per_site=2, engine=engine
            )
            assert profile.total == 0 and outcomes == []
            profile, outcomes = run_campaign(
                circuit, "sum", runs_per_site=0, engine=engine
            )
            assert profile.total == 0 and outcomes == []

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            run_campaign(ripple_adder(2), "sum", engine="quantum")

    def test_provided_sites_validated(self):
        from repro.gate.faults import FaultSite

        with pytest.raises(ValueError):
            run_campaign(
                ripple_adder(2), "sum",
                sites=[FaultSite("a0", "meteor")],
            )
