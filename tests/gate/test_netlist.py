"""Unit tests for netlist construction and validation."""

import pytest

from repro.gate import Gate, GateType, Netlist


class TestGate:
    def test_arity_checks(self):
        with pytest.raises(ValueError):
            Gate(GateType.NOT, ("a", "b"), "y")
        with pytest.raises(ValueError):
            Gate(GateType.AND, ("a",), "y")
        with pytest.raises(ValueError):
            Gate(GateType.MUX, ("s", "a"), "y")

    def test_evaluate_basic_gates(self):
        assert Gate(GateType.AND, ("a", "b"), "y").evaluate([1, 1]) == 1
        assert Gate(GateType.AND, ("a", "b"), "y").evaluate([1, 0]) == 0
        assert Gate(GateType.OR, ("a", "b"), "y").evaluate([0, 0]) == 0
        assert Gate(GateType.NOT, ("a",), "y").evaluate([0]) == 1
        assert Gate(GateType.XOR, ("a", "b"), "y").evaluate([1, 1]) == 0
        assert Gate(GateType.NAND, ("a", "b"), "y").evaluate([1, 1]) == 0
        assert Gate(GateType.NOR, ("a", "b"), "y").evaluate([0, 0]) == 1
        assert Gate(GateType.XNOR, ("a", "b"), "y").evaluate([1, 1]) == 1

    def test_mux_select(self):
        mux = Gate(GateType.MUX, ("s", "a", "b"), "y")
        assert mux.evaluate([0, 1, 0]) == 1  # select=0 -> a
        assert mux.evaluate([1, 1, 0]) == 0  # select=1 -> b

    def test_wide_gates(self):
        assert Gate(GateType.AND, ("a", "b", "c"), "y").evaluate([1, 1, 1]) == 1
        assert Gate(GateType.XOR, ("a", "b", "c"), "y").evaluate([1, 1, 1]) == 1


class TestNetlist:
    def test_duplicate_driver_rejected(self):
        netlist = Netlist("t")
        netlist.add_input("a")
        with pytest.raises(ValueError):
            netlist.add_input("a")
        netlist.add_gate(GateType.NOT, ("a",), "y")
        with pytest.raises(ValueError):
            netlist.add_gate(GateType.BUF, ("a",), "y")

    def test_validate_catches_undriven_net(self):
        netlist = Netlist("t")
        netlist.add_input("a")
        netlist.add_gate(GateType.AND, ("a", "ghost"), "y")
        with pytest.raises(ValueError):
            netlist.validate()

    def test_validate_catches_undriven_output(self):
        netlist = Netlist("t")
        netlist.mark_output("nowhere")
        with pytest.raises(ValueError):
            netlist.validate()

    def test_levelize_orders_dependencies(self):
        netlist = Netlist("t")
        a = netlist.add_input("a")
        b = netlist.add_input("b")
        x = netlist.AND(a, b)
        y = netlist.OR(x, a)
        order = netlist.levelize()
        positions = {g.output: i for i, g in enumerate(order)}
        assert positions[x] < positions[y]

    def test_levelize_detects_loop(self):
        netlist = Netlist("t")
        netlist.add_input("a")
        netlist.add_gate(GateType.AND, ("a", "loop2"), "loop1")
        netlist.add_gate(GateType.BUF, ("loop1",), "loop2")
        with pytest.raises(ValueError):
            netlist.levelize()

    def test_dff_breaks_loop(self):
        netlist = Netlist("counter")
        bit = netlist.DFF("next", "state")
        netlist.add_gate(GateType.NOT, ("state",), "next")
        netlist.mark_output("state")
        netlist.levelize()  # no loop: DFF output is a source

    def test_stats(self):
        netlist = Netlist("t")
        a = netlist.add_input("a")
        netlist.DFF(a, "q")
        netlist.mark_output(netlist.NOT("q"))
        stats = netlist.stats()
        assert stats == {
            "inputs": 1, "outputs": 1, "gates": 1, "flops": 1, "nets": 3,
        }

    def test_bus_inputs_little_endian(self):
        netlist = Netlist("t")
        bus = netlist.add_inputs("d", 4)
        assert bus == ["d0", "d1", "d2", "d3"]
