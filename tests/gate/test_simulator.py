"""Tests for the gate simulator, reference circuits, and fault campaigns."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.gate import (
    GateSimulator,
    alu,
    comparator,
    enumerate_sites,
    majority_voter,
    registered_adder,
    ripple_adder,
    run_seu_campaign,
)
from repro.gate.faults import FaultSite


def drive_adder(circuit, a, b, cin=0):
    sim = GateSimulator(circuit.netlist)
    inputs = {}
    inputs.update(GateSimulator.pack(circuit.buses["a"], a))
    inputs.update(GateSimulator.pack(circuit.buses["b"], b))
    inputs[circuit.buses["cin"][0]] = cin
    outputs = sim.evaluate(inputs)
    total = GateSimulator.unpack(circuit.buses["sum"], outputs)
    cout = outputs[circuit.buses["cout"][0]]
    return total, cout


class TestRippleAdder:
    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 1))
    @settings(max_examples=50, deadline=None)
    def test_adds_correctly(self, a, b, cin):
        circuit = ripple_adder(8)
        total, cout = drive_adder(circuit, a, b, cin)
        expected = a + b + cin
        assert total == expected & 0xFF
        assert cout == expected >> 8

    def test_width_validation(self):
        with pytest.raises(ValueError):
            ripple_adder(0)


class TestComparator:
    @given(st.integers(0, 15), st.integers(0, 15))
    @settings(max_examples=30, deadline=None)
    def test_equality(self, a, b):
        circuit = comparator(4)
        sim = GateSimulator(circuit.netlist)
        inputs = {}
        inputs.update(GateSimulator.pack(circuit.buses["a"], a))
        inputs.update(GateSimulator.pack(circuit.buses["b"], b))
        outputs = sim.evaluate(inputs)
        assert outputs[circuit.buses["eq"][0]] == int(a == b)


class TestMajorityVoter:
    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=30, deadline=None)
    def test_bitwise_majority(self, a, b, c):
        circuit = majority_voter(8)
        sim = GateSimulator(circuit.netlist)
        inputs = {}
        inputs.update(GateSimulator.pack(circuit.buses["a"], a))
        inputs.update(GateSimulator.pack(circuit.buses["b"], b))
        inputs.update(GateSimulator.pack(circuit.buses["c"], c))
        outputs = sim.evaluate(inputs)
        result = GateSimulator.unpack(circuit.buses["out"], outputs)
        assert result == (a & b) | (a & c) | (b & c)


class TestAlu:
    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 3))
    @settings(max_examples=40, deadline=None)
    def test_operations(self, a, b, op):
        circuit = alu(8)
        sim = GateSimulator(circuit.netlist)
        inputs = {}
        inputs.update(GateSimulator.pack(circuit.buses["a"], a))
        inputs.update(GateSimulator.pack(circuit.buses["b"], b))
        inputs.update(GateSimulator.pack(circuit.buses["op"], op))
        outputs = sim.evaluate(inputs)
        result = GateSimulator.unpack(circuit.buses["out"], outputs)
        expected = [
            (a + b) & 0xFF, a & b, a | b, a ^ b,
        ][op]
        assert result == expected


class TestRegisteredAdder:
    def test_pipeline_latency(self):
        circuit = registered_adder(8)
        sim = GateSimulator(circuit.netlist)
        inputs = {}
        inputs.update(GateSimulator.pack(circuit.buses["a"], 3))
        inputs.update(GateSimulator.pack(circuit.buses["b"], 4))
        sim.step(inputs)  # inputs latched
        sim.step(inputs)  # sum latched
        outputs = sim.evaluate(inputs)
        assert GateSimulator.unpack(circuit.buses["out"], outputs) == 7


class TestFaultInjection:
    def test_stuck_at_changes_output(self):
        circuit = ripple_adder(4)
        sim = GateSimulator(circuit.netlist)
        sim.set_stuck("a0", 1)
        inputs = {}
        inputs.update(GateSimulator.pack(circuit.buses["a"], 0))
        inputs.update(GateSimulator.pack(circuit.buses["b"], 0))
        inputs["cin"] = 0
        outputs = sim.evaluate(inputs)
        assert GateSimulator.unpack(circuit.buses["sum"], outputs) == 1
        sim.clear_stuck("a0")
        outputs = sim.evaluate(inputs)
        assert GateSimulator.unpack(circuit.buses["sum"], outputs) == 0

    def test_seu_is_transient_on_combinational_net(self):
        circuit = ripple_adder(4)
        sim = GateSimulator(circuit.netlist)
        inputs = {}
        inputs.update(GateSimulator.pack(circuit.buses["a"], 2))
        inputs.update(GateSimulator.pack(circuit.buses["b"], 3))
        inputs["cin"] = 0
        sim.inject_seu(circuit.buses["sum"][0])
        corrupted = sim.evaluate(inputs)
        clean = sim.evaluate(inputs)
        assert GateSimulator.unpack(circuit.buses["sum"], corrupted) != 5
        assert GateSimulator.unpack(circuit.buses["sum"], clean) == 5

    def test_seu_on_flop_flips_state(self):
        circuit = registered_adder(4)
        sim = GateSimulator(circuit.netlist)
        inputs = {}
        inputs.update(GateSimulator.pack(circuit.buses["a"], 0))
        inputs.update(GateSimulator.pack(circuit.buses["b"], 0))
        sim.step(inputs)
        sim.inject_seu("areg1")  # stored 0 -> 1, worth +2
        sim.step(inputs)
        outputs = sim.evaluate(inputs)
        assert GateSimulator.unpack(circuit.buses["out"], outputs) == 2

    def test_unknown_net_rejected(self):
        circuit = ripple_adder(2)
        sim = GateSimulator(circuit.netlist)
        with pytest.raises(KeyError):
            sim.inject_seu("ghost")
        with pytest.raises(KeyError):
            sim.set_stuck("ghost", 1)


class TestCampaign:
    @staticmethod
    def _vectors(circuit):
        def source(rng):
            inputs = {}
            inputs.update(
                GateSimulator.pack(circuit.buses["a"], rng.randrange(256))
            )
            inputs.update(
                GateSimulator.pack(circuit.buses["b"], rng.randrange(256))
            )
            return inputs

        return source

    def test_enumerate_sites_covers_all_nets(self):
        circuit = ripple_adder(4)
        sites = enumerate_sites(circuit, kinds=("seu", "stuck1"))
        assert len(sites) == 2 * len(circuit.netlist.nets)

    def test_enumerate_rejects_bad_kind(self):
        circuit = ripple_adder(2)
        with pytest.raises(ValueError):
            enumerate_sites(circuit, kinds=("meteor",))

    def test_campaign_produces_profile(self):
        circuit = registered_adder(8)
        profile, outcomes = run_seu_campaign(
            circuit,
            output_bus="out",
            vector_source=self._vectors(circuit),
            runs_per_site=2,
            seed=3,
        )
        assert profile.total == len(outcomes) > 0
        assert 0.0 < profile.masking_rate < 1.0
        # Carry-chain SEUs produce multi-bit error patterns.
        assert profile.multi_bit_fraction > 0.0

    def test_campaign_reproducible_under_seed(self):
        circuit = ripple_adder(4)
        kwargs = dict(
            output_bus="sum",
            vector_source=self._vectors(circuit),
            runs_per_site=2,
            seed=11,
        )
        profile_a, _ = run_seu_campaign(circuit, **kwargs)
        profile_b, _ = run_seu_campaign(circuit, **kwargs)
        assert profile_a.pattern_counts == profile_b.pattern_counts

    def test_profile_sampling_matches_support(self):
        circuit = ripple_adder(4)
        profile, _ = run_seu_campaign(
            circuit,
            output_bus="sum",
            vector_source=self._vectors(circuit),
            runs_per_site=3,
            seed=5,
        )
        rng = random.Random(0)
        support = set(profile.pattern_counts)
        for _ in range(50):
            pattern = profile.sample_pattern(rng)
            assert pattern is None or pattern in support

    def test_stuck_fault_site_in_campaign(self):
        circuit = ripple_adder(4)
        sites = [FaultSite("a0", "stuck1")]
        profile, outcomes = run_seu_campaign(
            circuit,
            output_bus="sum",
            vector_source=self._vectors(circuit),
            sites=sites,
            runs_per_site=8,
            seed=1,
        )
        # stuck1 on a0 manifests whenever the chosen a is even.
        assert any(not o.masked for o in outcomes)
