"""Tests for the gate simulator, reference circuits, and fault campaigns."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.gate import (
    Gate,
    GateSimulator,
    GateType,
    alu,
    comparator,
    enumerate_sites,
    majority_voter,
    mux_chain,
    registered_adder,
    ripple_adder,
    run_campaign,
    run_seu_campaign,
)
from repro.gate.faults import FaultSite


def drive_adder(circuit, a, b, cin=0):
    sim = GateSimulator(circuit.netlist)
    inputs = {}
    inputs.update(GateSimulator.pack(circuit.buses["a"], a))
    inputs.update(GateSimulator.pack(circuit.buses["b"], b))
    inputs[circuit.buses["cin"][0]] = cin
    outputs = sim.evaluate(inputs)
    total = GateSimulator.unpack(circuit.buses["sum"], outputs)
    cout = outputs[circuit.buses["cout"][0]]
    return total, cout


class TestRippleAdder:
    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 1))
    @settings(max_examples=50, deadline=None)
    def test_adds_correctly(self, a, b, cin):
        circuit = ripple_adder(8)
        total, cout = drive_adder(circuit, a, b, cin)
        expected = a + b + cin
        assert total == expected & 0xFF
        assert cout == expected >> 8

    def test_width_validation(self):
        with pytest.raises(ValueError):
            ripple_adder(0)


class TestComparator:
    @given(st.integers(0, 15), st.integers(0, 15))
    @settings(max_examples=30, deadline=None)
    def test_equality(self, a, b):
        circuit = comparator(4)
        sim = GateSimulator(circuit.netlist)
        inputs = {}
        inputs.update(GateSimulator.pack(circuit.buses["a"], a))
        inputs.update(GateSimulator.pack(circuit.buses["b"], b))
        outputs = sim.evaluate(inputs)
        assert outputs[circuit.buses["eq"][0]] == int(a == b)


class TestMajorityVoter:
    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=30, deadline=None)
    def test_bitwise_majority(self, a, b, c):
        circuit = majority_voter(8)
        sim = GateSimulator(circuit.netlist)
        inputs = {}
        inputs.update(GateSimulator.pack(circuit.buses["a"], a))
        inputs.update(GateSimulator.pack(circuit.buses["b"], b))
        inputs.update(GateSimulator.pack(circuit.buses["c"], c))
        outputs = sim.evaluate(inputs)
        result = GateSimulator.unpack(circuit.buses["out"], outputs)
        assert result == (a & b) | (a & c) | (b & c)


class TestAlu:
    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 3))
    @settings(max_examples=40, deadline=None)
    def test_operations(self, a, b, op):
        circuit = alu(8)
        sim = GateSimulator(circuit.netlist)
        inputs = {}
        inputs.update(GateSimulator.pack(circuit.buses["a"], a))
        inputs.update(GateSimulator.pack(circuit.buses["b"], b))
        inputs.update(GateSimulator.pack(circuit.buses["op"], op))
        outputs = sim.evaluate(inputs)
        result = GateSimulator.unpack(circuit.buses["out"], outputs)
        expected = [
            (a + b) & 0xFF, a & b, a | b, a ^ b,
        ][op]
        assert result == expected


class TestRegisteredAdder:
    def test_pipeline_latency(self):
        circuit = registered_adder(8)
        sim = GateSimulator(circuit.netlist)
        inputs = {}
        inputs.update(GateSimulator.pack(circuit.buses["a"], 3))
        inputs.update(GateSimulator.pack(circuit.buses["b"], 4))
        sim.step(inputs)  # inputs latched
        sim.step(inputs)  # sum latched
        outputs = sim.evaluate(inputs)
        assert GateSimulator.unpack(circuit.buses["out"], outputs) == 7


class TestFaultInjection:
    def test_stuck_at_changes_output(self):
        circuit = ripple_adder(4)
        sim = GateSimulator(circuit.netlist)
        sim.set_stuck("a0", 1)
        inputs = {}
        inputs.update(GateSimulator.pack(circuit.buses["a"], 0))
        inputs.update(GateSimulator.pack(circuit.buses["b"], 0))
        inputs["cin"] = 0
        outputs = sim.evaluate(inputs)
        assert GateSimulator.unpack(circuit.buses["sum"], outputs) == 1
        sim.clear_stuck("a0")
        outputs = sim.evaluate(inputs)
        assert GateSimulator.unpack(circuit.buses["sum"], outputs) == 0

    def test_seu_is_transient_on_combinational_net(self):
        circuit = ripple_adder(4)
        sim = GateSimulator(circuit.netlist)
        inputs = {}
        inputs.update(GateSimulator.pack(circuit.buses["a"], 2))
        inputs.update(GateSimulator.pack(circuit.buses["b"], 3))
        inputs["cin"] = 0
        sim.inject_seu(circuit.buses["sum"][0])
        corrupted = sim.evaluate(inputs)
        clean = sim.evaluate(inputs)
        assert GateSimulator.unpack(circuit.buses["sum"], corrupted) != 5
        assert GateSimulator.unpack(circuit.buses["sum"], clean) == 5

    def test_seu_on_flop_flips_state(self):
        circuit = registered_adder(4)
        sim = GateSimulator(circuit.netlist)
        inputs = {}
        inputs.update(GateSimulator.pack(circuit.buses["a"], 0))
        inputs.update(GateSimulator.pack(circuit.buses["b"], 0))
        sim.step(inputs)
        sim.inject_seu("areg1")  # stored 0 -> 1, worth +2
        sim.step(inputs)
        outputs = sim.evaluate(inputs)
        assert GateSimulator.unpack(circuit.buses["out"], outputs) == 2

    def test_unknown_net_rejected(self):
        circuit = ripple_adder(2)
        sim = GateSimulator(circuit.netlist)
        with pytest.raises(KeyError):
            sim.inject_seu("ghost")
        with pytest.raises(KeyError):
            sim.set_stuck("ghost", 1)

    def test_seu_on_flop_flips_before_next_evaluate(self):
        """Flop SEUs hit the stored state immediately; the corruption
        is visible on the very next evaluate without a clock edge."""
        circuit = registered_adder(4)
        sim = GateSimulator(circuit.netlist)
        inputs = {net: 0 for net in circuit.netlist.inputs}
        sim.step(inputs)
        sim.inject_seu("areg0")
        assert sim.state["areg0"] == 1  # flipped in place, pre-evaluate
        outputs = sim.evaluate(inputs)
        # areg0 feeds the adder cloud: sum bit 0 corrupts this cycle,
        # but the *output register* still holds the clean value.
        assert outputs == {net: 0 for net in circuit.buses["out"]}
        assert sim.values["sreg0"] == 0 and sim.values[circuit.buses["sum"][0]] == 1

    def test_seu_on_combinational_waits_for_evaluate(self):
        """Combinational SEUs are pending: nothing changes until the
        next evaluate applies (and then clears) the flip."""
        circuit = ripple_adder(4)
        sim = GateSimulator(circuit.netlist)
        net = circuit.buses["sum"][2]
        sim.inject_seu(net)
        assert sim.values[net] == 0  # still untouched
        assert net in sim._pending_seu
        inputs = {n: 0 for n in circuit.netlist.inputs}
        outputs = sim.evaluate(inputs)
        assert outputs[net] == 1
        assert net not in sim._pending_seu

    def test_clear_stuck_none_clears_all_nets(self):
        circuit = ripple_adder(4)
        sim = GateSimulator(circuit.netlist)
        sim.set_stuck("a0", 1)
        sim.set_stuck("b1", 1)
        sim.clear_stuck("a0")  # per-net: b1 stays armed
        inputs = {n: 0 for n in circuit.netlist.inputs}
        outputs = sim.evaluate(inputs)
        assert GateSimulator.unpack(circuit.buses["sum"], outputs) == 0b0010
        sim.set_stuck("a0", 1)
        sim.clear_stuck(None)  # everything disarmed at once
        outputs = sim.evaluate(inputs)
        assert GateSimulator.unpack(circuit.buses["sum"], outputs) == 0
        assert sim._stuck == {}

    def test_clear_stuck_unknown_net_is_noop(self):
        circuit = ripple_adder(2)
        sim = GateSimulator(circuit.netlist)
        sim.set_stuck("a0", 1)
        sim.clear_stuck("never-armed-net")
        assert sim._stuck == {"a0": 1}


class TestMuxEvaluation:
    def test_mux_truth_table(self):
        gate = Gate(GateType.MUX, ("s", "a", "b"), "y")
        # inputs ordered (select, a, b): b when select else a.
        assert gate.evaluate([0, 0, 1]) == 0
        assert gate.evaluate([0, 1, 0]) == 1
        assert gate.evaluate([1, 0, 1]) == 1
        assert gate.evaluate([1, 1, 0]) == 0

    def test_mux_arity_enforced(self):
        with pytest.raises(ValueError):
            Gate(GateType.MUX, ("s", "a"), "y")

    @given(st.integers(0, 2**6 - 1), st.integers(0, 2**7 - 1))
    @settings(max_examples=30, deadline=None)
    def test_mux_chain_selects_expected_leaf(self, selects, data):
        """The chain output equals the reference fold of its inputs."""
        depth = 6
        circuit = mux_chain(depth)
        sim = GateSimulator(circuit.netlist)
        inputs = {}
        inputs.update(GateSimulator.pack(circuit.buses["s"], selects))
        inputs.update(GateSimulator.pack(circuit.buses["d"], data))
        outputs = sim.evaluate(inputs)
        value = (data >> 0) & 1
        for i in range(depth):
            if (selects >> i) & 1:
                value = (data >> (i + 1)) & 1
        assert outputs[circuit.buses["out"][0]] == value

    def test_mux_select_stuck_steers_chain(self):
        """A stuck select forces the late-stage data leg regardless of
        the driven select value."""
        circuit = mux_chain(3)
        sim = GateSimulator(circuit.netlist)
        inputs = {net: 0 for net in circuit.netlist.inputs}
        inputs["d3"] = 1
        assert sim.evaluate(inputs)[circuit.buses["out"][0]] == 0
        sim.set_stuck("s2", 1)
        assert sim.evaluate(inputs)[circuit.buses["out"][0]] == 1


class TestCampaign:
    @staticmethod
    def _vectors(circuit):
        def source(rng):
            inputs = {}
            inputs.update(
                GateSimulator.pack(circuit.buses["a"], rng.randrange(256))
            )
            inputs.update(
                GateSimulator.pack(circuit.buses["b"], rng.randrange(256))
            )
            return inputs

        return source

    def test_enumerate_sites_covers_all_nets(self):
        circuit = ripple_adder(4)
        sites = enumerate_sites(circuit, kinds=("seu", "stuck1"))
        assert len(sites) == 2 * len(circuit.netlist.nets)

    def test_enumerate_rejects_bad_kind(self):
        circuit = ripple_adder(2)
        with pytest.raises(ValueError):
            enumerate_sites(circuit, kinds=("meteor",))

    def test_enumerate_validates_kinds_before_yielding_sites(self):
        """Kind validation is hoisted: a bad kind mixed with good ones
        raises up front, producing no partial site list."""
        circuit = ripple_adder(4)
        with pytest.raises(ValueError, match="meteor"):
            enumerate_sites(circuit, kinds=("seu", "stuck0", "meteor"))
        # The same vocabulary guards campaign-supplied site lists.
        with pytest.raises(ValueError, match="meteor"):
            run_campaign(
                circuit, "sum", sites=[FaultSite("a0", "meteor")]
            )

    def test_stuck0_campaign_kind(self):
        """stuck0 manifests iff the golden run drives the net to 1."""
        circuit = ripple_adder(4)
        profile, outcomes = run_campaign(
            circuit,
            "sum",
            self._vectors(circuit),
            sites=[FaultSite("a1", "stuck0")],
            runs_per_site=16,
            seed=6,
        )
        for outcome in outcomes:
            a1_driven = outcome.input_vector.get("a1", 0)
            if not a1_driven:
                assert outcome.masked, outcome
        assert any(not o.masked for o in outcomes)
        assert profile.total == 16

    def test_stuck1_campaign_kind(self):
        """stuck1 on a carry input perturbs exactly the +1 column."""
        circuit = ripple_adder(4)
        profile, outcomes = run_campaign(
            circuit,
            "sum",
            self._vectors(circuit),
            sites=[FaultSite("cin", "stuck1")],
            runs_per_site=16,
            seed=6,
        )
        # cin is never driven by _vectors, so every run adds exactly 1:
        # the error pattern is the ripple pattern of value+1 vs value.
        for outcome in outcomes:
            a = GateSimulator.unpack(
                circuit.buses["a"], outcome.input_vector
            )
            b = GateSimulator.unpack(
                circuit.buses["b"], outcome.input_vector
            )
            expected = ((a + b) & 0xF) ^ ((a + b + 1) & 0xF)
            assert outcome.error_pattern == expected
        assert profile.masking_rate == 0.0

    def test_mixed_kind_enumeration_campaign(self):
        """A full (seu, stuck0, stuck1) enumeration records one outcome
        per (site, run) and keeps site identity on each outcome."""
        circuit = ripple_adder(2)
        sites = enumerate_sites(circuit, ("seu", "stuck0", "stuck1"))
        profile, outcomes = run_campaign(
            circuit,
            "sum",
            self._vectors(circuit),
            sites=sites,
            runs_per_site=2,
            seed=9,
        )
        assert profile.total == len(outcomes) == 2 * len(sites)
        assert {o.site.kind for o in outcomes} == {
            "seu", "stuck0", "stuck1"
        }

    def test_campaign_rng_overrides_seed(self):
        circuit = ripple_adder(4)
        kwargs = dict(
            output_bus="sum",
            vector_source=self._vectors(circuit),
            runs_per_site=2,
        )
        by_seed, _ = run_seu_campaign(circuit, seed=11, **kwargs)
        by_rng, _ = run_seu_campaign(
            circuit, seed=999, rng=random.Random(11), **kwargs
        )
        assert by_seed.pattern_counts == by_rng.pattern_counts
        assert by_seed.canonical() == by_rng.canonical()

    def test_campaign_produces_profile(self):
        circuit = registered_adder(8)
        profile, outcomes = run_seu_campaign(
            circuit,
            output_bus="out",
            vector_source=self._vectors(circuit),
            runs_per_site=2,
            seed=3,
        )
        assert profile.total == len(outcomes) > 0
        assert 0.0 < profile.masking_rate < 1.0
        # Carry-chain SEUs produce multi-bit error patterns.
        assert profile.multi_bit_fraction > 0.0

    def test_campaign_reproducible_under_seed(self):
        circuit = ripple_adder(4)
        kwargs = dict(
            output_bus="sum",
            vector_source=self._vectors(circuit),
            runs_per_site=2,
            seed=11,
        )
        profile_a, _ = run_seu_campaign(circuit, **kwargs)
        profile_b, _ = run_seu_campaign(circuit, **kwargs)
        assert profile_a.pattern_counts == profile_b.pattern_counts

    def test_profile_sampling_matches_support(self):
        circuit = ripple_adder(4)
        profile, _ = run_seu_campaign(
            circuit,
            output_bus="sum",
            vector_source=self._vectors(circuit),
            runs_per_site=3,
            seed=5,
        )
        rng = random.Random(0)
        support = set(profile.pattern_counts)
        for _ in range(50):
            pattern = profile.sample_pattern(rng)
            assert pattern is None or pattern in support

    def test_stuck_fault_site_in_campaign(self):
        circuit = ripple_adder(4)
        sites = [FaultSite("a0", "stuck1")]
        profile, outcomes = run_seu_campaign(
            circuit,
            output_bus="sum",
            vector_source=self._vectors(circuit),
            sites=sites,
            runs_per_site=8,
            seed=1,
        )
        # stuck1 on a0 manifests whenever the chosen a is even.
        assert any(not o.masked for o in outcomes)
