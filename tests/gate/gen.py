"""Seeded random-netlist generation for the differential fuzz harness.

The vector engine's correctness currency is bit-for-bit equivalence
with the scalar :class:`~repro.gate.simulator.GateSimulator`, and that
claim is only as strong as the netlist population it is checked
against.  This module provides:

* :func:`random_circuit` — a seeded generator of arbitrary acyclic
  netlists (all gate types, DFFs, shared fanout, multi-output buses)
  used by the hypothesis properties in
  ``tests/property/test_gate_vector_properties.py``;
* :data:`CORPUS` — a committed regression corpus of structurally
  nasty shapes (deep MUX chains, fanout through flops, flop feedback
  loops, inverter towers) that either previously diverged during
  development or exercise the engine's edge paths deliberately.

Everything is driven by an explicit ``random.Random`` — same seed,
same netlist, on every host.
"""

from __future__ import annotations

import random
import typing as _t

from repro.gate import Circuit, GateType, Netlist, mux_chain

#: Gate types the generator draws from, with rough weights: variadic
#: gates dominate, inverters and MUXes stay common enough to matter,
#: DFFs appear often enough that sequential paths are routine.
_GATE_CHOICES = (
    [GateType.AND] * 3
    + [GateType.OR] * 3
    + [GateType.XOR] * 3
    + [GateType.NAND] * 2
    + [GateType.NOR] * 2
    + [GateType.XNOR] * 2
    + [GateType.NOT] * 2
    + [GateType.BUF]
    + [GateType.MUX] * 3
    + [GateType.DFF] * 2
)


def random_circuit(
    rng: random.Random,
    *,
    max_inputs: int = 5,
    max_gates: int = 18,
    max_outputs: int = 8,
) -> Circuit:
    """A random acyclic netlist with at least one primary output.

    Every gate reads only already-created nets, so the combinational
    part is acyclic by construction; DFF outputs re-enter the pool and
    give fanout *through* flops.  The output bus ``"out"`` is a random
    sample of nets (little-endian), so campaigns can compare words.
    """
    netlist = Netlist("fuzz")
    inputs = [
        netlist.add_input(f"i{k}")
        for k in range(rng.randint(1, max_inputs))
    ]
    pool: _t.List[str] = list(inputs)
    for _ in range(rng.randint(1, max_gates)):
        gate_type = rng.choice(_GATE_CHOICES)
        if gate_type in (GateType.NOT, GateType.BUF, GateType.DFF):
            chosen = [rng.choice(pool)]
        elif gate_type is GateType.MUX:
            chosen = [rng.choice(pool) for _ in range(3)]
        else:
            chosen = [rng.choice(pool) for _ in range(rng.randint(2, 3))]
        pool.append(netlist.add_gate(gate_type, chosen))
    width = min(len(pool), rng.randint(1, max_outputs))
    bus = rng.sample(pool, width)
    for net in bus:
        netlist.mark_output(net)
    return Circuit(netlist, {"in": inputs, "out": bus})


def random_vector(
    rng: random.Random, circuit: Circuit
) -> _t.Dict[str, int]:
    """One uniform random bit per primary input."""
    return {net: rng.randrange(2) for net in circuit.netlist.inputs}


# -- committed regression corpus -------------------------------------------


def deep_mux_chain() -> Circuit:
    """A 12-deep select chain: one select-line fault steers a whole
    subtree, the pure stress test of MUX vectorization."""
    return mux_chain(12, name="corpus-muxchain")


def flop_fanout() -> Circuit:
    """One flop fanning out into reconvergent combinational cones.

    A single state bit feeds four gates whose outputs reconverge; an
    SEU on the flop must corrupt every cone in the same cycle, and a
    stuck-at on one branch must not leak into the others.
    """
    netlist = Netlist("corpus-flop-fanout")
    a, b = netlist.add_input("a"), netlist.add_input("b")
    q = netlist.DFF(netlist.XOR(a, b), "q")
    x1 = netlist.AND(q, a)
    x2 = netlist.OR(q, b)
    x3 = netlist.XOR(q, a, b)
    x4 = netlist.add_gate(GateType.NAND, (q, x1))
    recon = netlist.XOR(netlist.OR(x1, x2), netlist.AND(x3, x4))
    for net in (x1, x2, x3, x4, recon):
        netlist.mark_output(net)
    return Circuit(netlist, {"in": [a, b], "out": [x1, x2, x3, x4, recon]})


def toggle_feedback() -> Circuit:
    """Flops closing feedback loops through combinational logic.

    ``q0`` toggles itself through an inverter; ``q1`` accumulates
    ``q0 XOR enable``.  State evolves every cycle even under constant
    inputs, so any engine disagreement about clocking order or SEU
    timing shows up within a few cycles.
    """
    netlist = Netlist("corpus-toggle")
    enable = netlist.add_input("en")
    # The flop is created reading a net that is only driven afterwards —
    # legal (validate() checks the finished netlist) and the canonical
    # way to close a feedback loop in this builder API.
    q0 = netlist.DFF("q0_next", "q0")
    netlist.add_gate(GateType.NOT, (q0,), output="q0_next")
    q1 = netlist.DFF("q1_next", "q1")
    netlist.add_gate(GateType.XOR, (q1, q0, enable), output="q1_next")
    out = netlist.AND(q1, netlist.OR(q0, enable))
    for net in (q0, q1, out):
        netlist.mark_output(net)
    return Circuit(netlist, {"in": [enable], "out": [q0, q1, out]})


def inverter_tower() -> Circuit:
    """A 16-high tower of alternating NOT/NAND/NOR/XNOR gates.

    Every level inverts, so any engine that forgets to mask inverted
    rows back to the lane range corrupts the next level's inputs —
    the exact bug class the canonical-row contract exists to stop.
    """
    netlist = Netlist("corpus-invtower")
    a, b = netlist.add_input("a"), netlist.add_input("b")
    value = a
    taps: _t.List[str] = []
    for level in range(16):
        kind = (GateType.NOT, GateType.NAND, GateType.NOR, GateType.XNOR)[
            level % 4
        ]
        if kind is GateType.NOT:
            value = netlist.add_gate(kind, (value,))
        else:
            value = netlist.add_gate(kind, (value, b))
        if level % 5 == 0:
            taps.append(value)
    outputs = taps + [value]
    for net in outputs:
        netlist.mark_output(net)
    return Circuit(netlist, {"in": [a, b], "out": outputs})


def registered_mux_pipe() -> Circuit:
    """MUX chain with pipeline registers between stages.

    Combines the two nasty shapes: select-path steering *and* state
    elements mid-path, so SEU-on-flop timing interacts with MUX
    select faults across cycles.
    """
    netlist = Netlist("corpus-regmux")
    select = netlist.add_inputs("s", 3)
    data = netlist.add_inputs("d", 4)
    value = data[0]
    for i in range(3):
        value = netlist.DFF(netlist.MUX(select[i], value, data[i + 1]))
    netlist.mark_output(value)
    return Circuit(
        netlist, {"s": select, "d": data, "out": [value]}
    )


#: name -> builder; every entry is swept by the corpus differential test
#: over every fault kind and both engines.
CORPUS: _t.Dict[str, _t.Callable[[], Circuit]] = {
    "deep_mux_chain": deep_mux_chain,
    "flop_fanout": flop_fanout,
    "toggle_feedback": toggle_feedback,
    "inverter_tower": inverter_tower,
    "registered_mux_pipe": registered_mux_pipe,
}
