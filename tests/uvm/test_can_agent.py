"""Tests for the reusable CAN UVM agent."""

import pytest

from repro.hw import CanBus
from repro.kernel import Module, Simulator
from repro.uvm import (
    BabblingDriver,
    CanAgent,
    CanDriver,
    PeriodicBroadcastSequence,
    PhaseRunner,
    UvmComponent,
    UvmFactory,
    UvmScoreboard,
)
from repro.uvm.can_agent import register


def make_factory():
    factory = UvmFactory()
    register(factory)
    return factory


class CanEnv(UvmComponent):
    """Two agents on one bus: a transmitter and a passive receiver."""

    def __init__(self, name, sim, factory, driver_type="CanDriver"):
        super().__init__(name, sim=sim)
        self.factory = factory
        self.driver_type = driver_type
        self.bus = None
        self.tx_agent = None
        self.rx_agent = None
        self.scoreboard = None

    def build_phase(self):
        self.bus = CanBus("bus", parent=self, bit_time=100)
        self.tx_agent = CanAgent(
            "tx", self, self.bus,
            driver_type=self.driver_type, factory=self.factory,
        )
        self.rx_agent = CanAgent("rx", self, self.bus, active=False)
        self.scoreboard = UvmScoreboard("scoreboard", self, strict_check=False)

    def connect_phase(self):
        self.rx_agent.monitor.analysis_port.connect(
            lambda item: self.scoreboard.write_actual(
                (item.can_id, item.data)
            )
        )


def run_env(driver_type="CanDriver", frames=5):
    sim = Simulator()
    factory = make_factory()
    env = CanEnv("env", sim, factory, driver_type=driver_type)
    runner = PhaseRunner(env)
    runner.elaborate()
    sequence = PeriodicBroadcastSequence(0x123, count=frames, gap=10_000)
    env.tx_agent.sequencer.start_sequence(sequence)
    for index in range(frames):
        env.scoreboard.write_expected((0x123, bytes([index])))
    runner.start_run_phases()
    sim.run(until=50_000_000)
    return env, runner


class TestCanAgent:
    def test_nominal_traffic_matches(self):
        env, runner = run_env()
        runner.finish()
        assert env.scoreboard.matches == 5
        assert env.scoreboard.clean
        assert env.rx_agent.monitor.frames_observed == 5

    def test_passive_agent_has_no_driver(self):
        env, _ = run_env()
        assert env.rx_agent.driver is None
        assert env.rx_agent.sequencer is None

    def test_factory_override_swaps_driver(self):
        sim = Simulator()
        factory = make_factory()
        factory.set_type_override("CanDriver", "BabblingDriver")
        env = CanEnv("env", sim, factory)
        runner = PhaseRunner(env)
        runner.elaborate()
        assert type(env.tx_agent.driver) is BabblingDriver

    def test_babbling_driver_triples_traffic(self):
        env, runner = run_env(driver_type="BabblingDriver")
        runner.finish()
        # 5 items x 3 repeats: the receiver sees 15 frames; the
        # scoreboard flags the 10 spurious ones.
        assert env.rx_agent.monitor.frames_observed == 15
        assert env.scoreboard.matches + len(env.scoreboard.mismatches) >= 5
        assert env.scoreboard.pending_actual > 0

    def test_wire_injector_composes_with_agent(self):
        sim = Simulator()
        factory = make_factory()
        env = CanEnv("env", sim, factory)
        runner = PhaseRunner(env)
        runner.elaborate()
        # A wire-level fault interceptor attaches to the bus without
        # the agent knowing (Sec. 3.3's separation).
        state = {"hits": 0}

        def corrupt_first(frame):
            if state["hits"] == 0:
                state["hits"] += 1
                frame.data[0] ^= 0xFF
            return frame

        env.bus.injection_points["wire"].add_interceptor(corrupt_first)
        sequence = PeriodicBroadcastSequence(0x123, count=3, gap=10_000)
        env.tx_agent.sequencer.start_sequence(sequence)
        runner.start_run_phases()
        sim.run(until=50_000_000)
        # CRC catches the corruption; retransmission delivers all 3.
        assert env.bus.crc_errors_detected == 1
        assert env.rx_agent.monitor.frames_observed == 3
