"""End-to-end UVM testbench over a TLM memory DUT.

Exercises the whole stack the way a real verification environment
would: a sequence generates bus items, the driver converts them to TLM
transactions against a router+memory platform, the monitor publishes
completed transactions, and a scoreboard compares against a reference
model.
"""

import pytest

from repro.hw import Memory
from repro.kernel import Simulator
from repro.tlm import GenericPayload, InitiatorSocket, Router
from repro.uvm import (
    Sequence,
    SequenceItem,
    UvmAgent,
    UvmComponent,
    UvmDriver,
    UvmMonitor,
    UvmScoreboard,
    run_test,
)


class BusItem(SequenceItem):
    def __init__(self, command, address, data=0):
        super().__init__("bus_item")
        self.command = command
        self.address = address
        self.data = data


class WriteReadSequence(Sequence):
    """Write a pattern then read it back, with inter-item delays."""

    def __init__(self, base, count):
        super().__init__("write_read")
        self.base = base
        self.count = count

    def body(self):
        for i in range(self.count):
            yield BusItem("write", self.base + 4 * i, (i * 7 + 1) & 0xFFFFFFFF)
            yield 10  # idle cycles between transactions
        for i in range(self.count):
            yield BusItem("read", self.base + 4 * i)


class BusDriver(UvmDriver):
    def __init__(self, name, parent, isock, monitor):
        super().__init__(name, parent)
        self.isock = isock
        self.monitor = monitor

    def drive_item(self, item):
        if item.command == "write":
            payload = GenericPayload.write_word(item.address, item.data)
        else:
            payload = GenericPayload.read_word(item.address)
        delay = self.isock.b_transport(payload, 0)
        yield delay
        observed = BusItem(item.command, item.address, payload.word)
        observed.ok = payload.ok
        self.monitor.analysis_port.write(observed)


class BusMonitor(UvmMonitor):
    pass


class RefModel:
    """Golden memory model feeding the scoreboard's expected stream."""

    def __init__(self, scoreboard):
        self.mem = {}
        self.scoreboard = scoreboard

    def predict(self, item):
        if item.command == "write":
            self.mem[item.address] = item.data
            expected = item.data
        else:
            expected = self.mem.get(item.address, 0)
        self.scoreboard.write_expected((item.command, item.address, expected))


class BusAgent(UvmAgent):
    def __init__(self, name, parent, isock):
        super().__init__(name, parent)
        self.isock = isock

    def build_phase(self):
        super().build_phase()
        self.monitor = BusMonitor("monitor", self)
        self.driver = BusDriver("driver", self, self.isock, self.monitor)


class MemEnv(UvmComponent):
    def __init__(self, name, sim, isock):
        super().__init__(name, sim=sim)
        self.isock = isock
        self.agent = None
        self.scoreboard = None

    def build_phase(self):
        self.agent = BusAgent("agent", self, self.isock)
        self.scoreboard = UvmScoreboard("scoreboard", self)
        self.ref_model = RefModel(self.scoreboard)

    def connect_phase(self):
        self.agent.monitor.analysis_port.connect(
            lambda item: self.scoreboard.write_actual(
                (item.command, item.address, item.data)
            )
        )


def build_platform():
    sim = Simulator()
    from repro.kernel import Module

    top = Module("hw", sim=sim)
    router = Router("bus", parent=top, hop_latency=5)
    mem = Memory("mem", parent=top, size=4096)
    router.map_target(0x0, 4096, mem.tsock)
    isock = InitiatorSocket(top, "isock")
    isock.bind(router.tsock)
    return sim, mem, isock


class TestEndToEnd:
    def test_clean_run_matches_reference(self):
        sim, mem, isock = build_platform()
        env = MemEnv("env", sim, isock)
        # Hook prediction into the sequence stream via the sequencer.
        from repro.uvm import PhaseRunner

        runner = PhaseRunner(env)
        runner.elaborate()
        sequence = WriteReadSequence(base=0x100, count=8)
        env.agent.sequencer.start_sequence(sequence)

        # Prediction: tap items as the driver sees them.
        original_drive = env.agent.driver.drive_item

        def tapped(item):
            env.ref_model.predict(item)
            return original_drive(item)

        env.agent.driver.drive_item = tapped
        runner.start_run_phases()
        sim.run(until=100_000)
        reports = runner.finish()
        assert env.scoreboard.clean
        assert env.scoreboard.matches == 16
        assert reports["env.scoreboard"]["matches"] == 16

    def test_corrupted_dut_detected_by_scoreboard(self):
        sim, mem, isock = build_platform()
        env = MemEnv("env", sim, isock)
        from repro.uvm import PhaseRunner

        runner = PhaseRunner(env)
        runner.elaborate()
        env.scoreboard.strict_check = False

        # Inject: flip a memory bit between write and read phases via
        # a target-side interceptor on the 3rd read.
        state = {"reads": 0}

        def corrupt(payload):
            if payload.command.value == "read":
                state["reads"] += 1
                if state["reads"] == 3:
                    mem.injection_points["array"].flip(payload.address, 0)

        mem.tsock.interceptors.append(corrupt)

        sequence = WriteReadSequence(base=0x0, count=5)
        env.agent.sequencer.start_sequence(sequence)
        original_drive = env.agent.driver.drive_item

        def tapped(item):
            env.ref_model.predict(item)
            return original_drive(item)

        env.agent.driver.drive_item = tapped
        runner.start_run_phases()
        sim.run(until=100_000)
        runner.finish()
        assert len(env.scoreboard.mismatches) == 1
        assert env.scoreboard.matches == 9

    def test_strict_scoreboard_raises_on_mismatch(self):
        sim, mem, isock = build_platform()
        env = MemEnv("env", sim, isock)
        from repro.uvm import PhaseRunner

        runner = PhaseRunner(env)
        runner.elaborate()
        env.scoreboard.write_expected(("read", 0, 1))
        env.scoreboard.write_actual(("read", 0, 2))
        with pytest.raises(AssertionError):
            runner.finish()

    def test_sequence_completion_event(self):
        sim, mem, isock = build_platform()
        env = MemEnv("env", sim, isock)
        from repro.uvm import PhaseRunner

        runner = PhaseRunner(env)
        runner.elaborate()
        sequence = WriteReadSequence(base=0x0, count=2)
        done = env.agent.sequencer.start_sequence(sequence)
        finished_at = []

        def waiter():
            yield done
            finished_at.append(sim.now)

        sim.spawn(waiter())
        original_drive = env.agent.driver.drive_item

        def tapped(item):
            env.ref_model.predict(item)
            return original_drive(item)

        env.agent.driver.drive_item = tapped
        runner.start_run_phases()
        sim.run(until=100_000)
        assert finished_at and finished_at[0] > 0
        assert sequence.items_generated == 4

    def test_driver_without_sequencer_raises(self):
        sim, mem, isock = build_platform()

        class Lonely(UvmComponent):
            def build_phase(self):
                self.monitor = BusMonitor("mon", self)
                self.driver = BusDriver("drv", self, isock, self.monitor)

        top = Lonely("lonely", sim=sim)
        from repro.kernel import ProcessError

        with pytest.raises(ProcessError):
            run_test(top, duration=1000)
