"""Unit tests for the UVM factory and config DB."""

import pytest

from repro.uvm import ConfigDb, UvmFactory


class Base:
    def __init__(self, tag="base"):
        self.tag = tag


class Derived(Base):
    def __init__(self, tag="derived"):
        super().__init__(tag)


class Other(Base):
    pass


@pytest.fixture
def fac():
    factory = UvmFactory()
    factory.register(Base)
    factory.register(Derived)
    factory.register(Other)
    return factory


class TestFactory:
    def test_create_registered_type(self, fac):
        assert isinstance(fac.create("Base"), Base)

    def test_create_unregistered_raises(self, fac):
        with pytest.raises(KeyError):
            fac.create("Ghost")

    def test_type_override(self, fac):
        fac.set_type_override("Base", "Derived")
        assert type(fac.create("Base")) is Derived

    def test_override_chain(self, fac):
        fac.set_type_override("Base", "Derived")
        fac.set_type_override("Derived", "Other")
        assert type(fac.create("Base")) is Other

    def test_override_cycle_detected(self, fac):
        fac.set_type_override("Base", "Derived")
        fac.set_type_override("Derived", "Base")
        with pytest.raises(RuntimeError):
            fac.create("Base")

    def test_instance_override_scoped_by_path(self, fac):
        fac.set_instance_override("Base", "Derived", "top.env0.*")
        assert type(fac.create("Base", instance_path="top.env0.agent")) is Derived
        assert type(fac.create("Base", instance_path="top.env1.agent")) is Base

    def test_instance_override_beats_type_override(self, fac):
        fac.set_type_override("Base", "Other")
        fac.set_instance_override("Base", "Derived", "top.special*")
        assert type(fac.create("Base", instance_path="top.special.x")) is Derived
        assert type(fac.create("Base", instance_path="top.normal")) is Other

    def test_clear_overrides(self, fac):
        fac.set_type_override("Base", "Derived")
        fac.clear_overrides()
        assert type(fac.create("Base")) is Base

    def test_register_custom_name(self, fac):
        fac.register(Base, name="alias")
        assert fac.is_registered("alias")

    def test_constructor_arguments_forwarded(self, fac):
        created = fac.create("Base", tag="custom")
        assert created.tag == "custom"


class TestConfigDb:
    def test_get_default_when_missing(self):
        db = ConfigDb()
        assert db.get("top.a", "knob", default=7) == 7

    def test_exact_path_match(self):
        db = ConfigDb()
        db.set("top.env.agent", "knob", 1)
        assert db.get("top.env.agent", "knob") == 1
        assert db.get("top.env.other", "knob") is None

    def test_glob_match(self):
        db = ConfigDb()
        db.set("top.*", "knob", 2)
        assert db.get("top.anything.deep", "knob") == 2

    def test_most_specific_wins(self):
        db = ConfigDb()
        db.set("top.*", "knob", "generic")
        db.set("top.env0.*", "knob", "specific")
        assert db.get("top.env0.agent", "knob") == "specific"
        assert db.get("top.env1.agent", "knob") == "generic"

    def test_later_entry_wins_ties(self):
        db = ConfigDb()
        db.set("top.*", "knob", "first")
        db.set("top.*", "knob", "second")
        assert db.get("top.x", "knob") == "second"

    def test_field_name_isolated(self):
        db = ConfigDb()
        db.set("*", "alpha", 1)
        assert db.get("anything", "beta") is None

    def test_exists(self):
        db = ConfigDb()
        db.set("*", "present", None)  # even a None value exists
        assert db.exists("x", "present")
        assert not db.exists("x", "absent")
