"""Unit tests for functional coverage."""

import pytest

from repro.uvm import Bin, Covergroup, Coverpoint, Cross, range_bins


class TestBin:
    def test_value_bin(self):
        bin_ = Bin("low", values=(0, 1, 2))
        assert bin_.matches(1)
        assert not bin_.matches(5)

    def test_range_bin(self):
        bin_ = Bin("mid", low=10, high=20)
        assert bin_.matches(10)
        assert bin_.matches(20)
        assert not bin_.matches(21)

    def test_open_ended_range(self):
        assert Bin("hi", low=100).matches(10**9)
        assert Bin("lo", high=0).matches(-5)

    def test_needs_definition(self):
        with pytest.raises(ValueError):
            Bin("empty")


class TestCoverpoint:
    def make_point(self):
        return Coverpoint(
            "speed",
            bins=[
                Bin("stopped", values=(0,)),
                Bin("slow", low=1, high=50),
                Bin("fast", low=51, high=250),
            ],
        )

    def test_coverage_progression(self):
        point = self.make_point()
        assert point.coverage == 0.0
        point.sample(0)
        assert point.coverage == pytest.approx(1 / 3)
        point.sample(30)
        point.sample(100)
        assert point.coverage == 1.0

    def test_miss_counted(self):
        point = self.make_point()
        point.sample(9999)
        assert point.misses == 1

    def test_uncovered_bins(self):
        point = self.make_point()
        point.sample(10)
        assert point.uncovered_bins() == ["stopped", "fast"]

    def test_extract_function(self):
        point = Coverpoint(
            "cmd",
            bins=[Bin("read", values=("read",)), Bin("write", values=("write",))],
            extract=lambda item: item["cmd"],
        )
        point.sample({"cmd": "read"})
        assert point.coverage == 0.5

    def test_duplicate_bin_names_rejected(self):
        with pytest.raises(ValueError):
            Coverpoint("p", bins=[Bin("x", values=(1,)), Bin("x", values=(2,))])

    def test_empty_bins_rejected(self):
        with pytest.raises(ValueError):
            Coverpoint("p", bins=[])


class TestRangeBins:
    def test_partition_covers_span(self):
        bins = range_bins("b", 0, 100, 4)
        assert len(bins) == 4
        for value in (0, 25, 50, 99, 100):
            assert any(b.matches(value) for b in bins)

    def test_no_overlap_at_boundaries(self):
        bins = range_bins("b", 0, 100, 4)
        for value in (10, 30, 60, 90):
            assert sum(b.matches(value) for b in bins) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            range_bins("b", 0, 100, 0)
        with pytest.raises(ValueError):
            range_bins("b", 100, 0, 4)


class TestCross:
    def make_cross(self):
        cmd = Coverpoint(
            "cmd", bins=[Bin("r", values=("r",)), Bin("w", values=("w",))]
        )
        region = Coverpoint(
            "region",
            bins=[Bin("lo", low=0, high=99), Bin("hi", low=100, high=199)],
        )
        return Cross("cmd_x_region", [cmd, region]), cmd, region

    def test_goal_size(self):
        cross, *_ = self.make_cross()
        assert cross.goal_size == 4

    def test_sampling_fills_product(self):
        cross, *_ = self.make_cross()
        cross.sample(("r", 10))
        assert cross.coverage == 0.25
        cross.sample(("w", 10))
        cross.sample(("r", 150))
        cross.sample(("w", 150))
        assert cross.coverage == 1.0

    def test_subject_count_checked(self):
        cross, *_ = self.make_cross()
        with pytest.raises(ValueError):
            cross.sample(("r",))

    def test_needs_two_points(self):
        point = Coverpoint("p", bins=[Bin("x", values=(1,))])
        with pytest.raises(ValueError):
            Cross("c", [point])


class TestCovergroup:
    def test_sample_by_name_and_report(self):
        group = Covergroup("g")
        group.add_coverpoint(
            Coverpoint("a", bins=[Bin("one", values=(1,)), Bin("two", values=(2,))])
        )
        group.sample(a=1)
        report = group.report()
        assert report["coverpoint.a"] == 0.5
        assert report["total"] == 0.5

    def test_duplicate_names_rejected(self):
        group = Covergroup("g")
        point = Coverpoint("a", bins=[Bin("x", values=(1,))])
        group.add_coverpoint(point)
        with pytest.raises(ValueError):
            group.add_coverpoint(point)

    def test_empty_group_coverage_zero(self):
        assert Covergroup("g").coverage == 0.0
