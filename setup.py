"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` falls back to the legacy setup.py develop path when
PEP 517 builds are unavailable (this offline environment lacks
``wheel``).  All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
