#!/usr/bin/env python3
"""Testbench qualification by mutation analysis (Sec. 2.4).

The DUT model is the CAN frame validation function an ECU's receive
path runs (DLC check, CRC check, alive-counter window check, signal
range extraction).  Two testbenches are qualified against it:

* a *weak* one that drives every branch but only checks the happy-path
  value — it reaches the *same statement coverage* as the strong one,
  yet kills far fewer mutants;
* a *strong* one actually asserting boundary and rejection behaviour.

The mutation score separates them where statement coverage cannot —
the paper's argument for mutation analysis as "an advanced metric to
assess a testbench's quality compared with coverage based metrics".

Run:  python examples/testbench_qualification.py
"""

import sys
import trace

from repro.hw import ecc
from repro.mutation import MutantSchema, run_mutation_analysis


# ---------------------------------------------------------------------------
# The DUT model: receive-path validation of a protected CAN payload
# ---------------------------------------------------------------------------

def validate_frame(data, expected_counter):
    """Validate one protected payload; returns (speed, next_counter) or
    (None, expected_counter) when the frame must be discarded.

    Layout: [counter | speed_lo | speed_hi | crc8], speed in 0.01 m/s.
    """
    if len(data) != 4:
        return None, expected_counter
    body = data[:3]
    crc = data[3]
    if ecc.crc8(body) != crc:
        return None, expected_counter
    counter = body[0] & 15
    if counter != expected_counter:
        return None, (counter + 1) & 15
    speed = body[1] + body[2] * 256
    if speed > 10000:
        return None, (counter + 1) & 15
    return speed, (counter + 1) & 15


def make_frame(speed, counter):
    body = bytes([counter & 15, speed & 0xFF, (speed >> 8) & 0xFF])
    return body + bytes([ecc.crc8(body)])


# ---------------------------------------------------------------------------
# Two testbenches
# ---------------------------------------------------------------------------

def weak_testbench(dut) -> bool:
    """A coverage-chasing testbench: drives every branch of the DUT
    (reaching full statement coverage) but only checks the one
    happy-path value.  Returns True when the DUT looks broken."""
    dut(b"\x00\x01", 0)  # short frame branch...
    corrupted = bytearray(make_frame(1234, 0))
    corrupted[1] ^= 0x40
    dut(bytes(corrupted), 0)  # ...CRC-reject branch...
    dut(make_frame(1234, 3), 0)  # ...counter-reject branch...
    dut(make_frame(10001, 0), 0)  # ...range-reject branch: none checked
    speed, _ = dut(make_frame(1234, 0), 0)
    return speed != 1234


def strong_testbench(dut) -> bool:
    cases_ok = [
        (make_frame(1234, 0), 0, 1234, 1),
        (make_frame(0, 5), 5, 0, 6),            # zero speed
        (make_frame(10000, 15), 15, 10000, 0),  # range + counter wrap
    ]
    for frame, counter, expected, expected_next in cases_ok:
        speed, next_counter = dut(frame, counter)
        if speed != expected or next_counter != expected_next:
            return True
    # Corruption must be rejected.
    corrupted = bytearray(make_frame(1234, 0))
    corrupted[1] ^= 0x40
    if dut(bytes(corrupted), 0)[0] is not None:
        return True
    # Wrong counter must be rejected.
    if dut(make_frame(1234, 3), 0)[0] is not None:
        return True
    # Out-of-range speed must be rejected.
    if dut(make_frame(10001, 0), 0)[0] is not None:
        return True
    # Short frame must be rejected.
    if dut(b"\x00\x01", 0)[0] is not None:
        return True
    return False


# ---------------------------------------------------------------------------
# Statement coverage (the metric mutation analysis outclasses)
# ---------------------------------------------------------------------------

def statement_coverage(testbench) -> float:
    tracer = trace.Trace(count=True, trace=False)
    tracer.runfunc(testbench, validate_frame)
    counts = tracer.results().counts
    this_file = __file__
    executed = {
        line for (filename, line), hits in counts.items()
        if filename == this_file and hits > 0
    }
    import inspect

    source_lines, start = inspect.getsourcelines(validate_frame)
    executable = set()
    for offset, text in enumerate(source_lines):
        stripped = text.strip()
        if stripped and not stripped.startswith(("#", '"""', "'''")):
            executable.add(start + offset)
    covered = executed & executable
    return len(covered) / len(executable)


def main() -> None:
    print("== DUT: CAN receive-path validation ==")
    for name, testbench in (
        ("weak", weak_testbench), ("strong", strong_testbench),
    ):
        result = run_mutation_analysis(validate_frame, testbench)
        coverage = statement_coverage(testbench)
        print(f"\n  {name} testbench:")
        print(f"    statement coverage : {coverage:6.1%}")
        print(
            f"    mutation score     : {result.score:6.1%} "
            f"({len(result.killed)}/{result.total} killed)"
        )
        by_op = result.by_operator()
        for operator in sorted(by_op):
            killed, total = by_op[operator]
            print(f"      {operator}: {killed}/{total}")
        if result.survivors and name == "weak":
            print("    surviving mutants point at untested behaviour:")
            for mutant in result.survivors[:6]:
                print(f"      - {mutant.site.operator}: {mutant.site.description}")

    print("\n== mutant schema (single compile, switched execution) ==")
    schema = MutantSchema(validate_frame)
    result = schema.qualify(strong_testbench)
    print(
        f"  schema qualification reproduces the score: {result.score:.1%} "
        f"over {result.total} mutants"
    )
    print("done.")


if __name__ == "__main__":
    sys.setrecursionlimit(10000)
    main()
