#!/usr/bin/env python3
"""Adaptive cruise control: timing failures and distributed faults.

Demonstrates the paper's temporal criterion — *"The right value at the
wrong time can still be an error"* (Sec. 3.4) — on a two-ECU CAN
platform running preemptive RTOS task sets:

* error-correction overheads injected into the control task produce
  deadline misses with *correct* brake values (TIMING_FAILURE);
* CAN wire corruption is absorbed by CRC + retransmission (MASKED);
* a radar front-end stuck at "far" silently disables braking
  (HAZARDOUS);
* a rate-weighted Monte-Carlo campaign over the realistic fault mix
  classifies the whole space.

Run:  python examples/adaptive_cruise.py
"""

from repro.core import (
    Campaign,
    ErrorScenario,
    FaultSpace,
    PlannedInjection,
    RandomStrategy,
    summarize,
)
from repro.faults import (
    CAN_BIT_CORRUPTION,
    CAN_MASQUERADE,
    FaultDescriptor,
    FaultKind,
    Persistence,
    RECOVERY_OVERHEAD,
    SENSOR_OFFSET_DRIFT,
    SENSOR_STUCK,
)
from repro.kernel import Simulator, simtime
from repro.platforms import acc

RADAR_STUCK_FAR = FaultDescriptor(
    name="radar_stuck_far",
    kind=FaultKind.STUCK_VALUE,
    persistence=Persistence.PERMANENT,
    params={"value": 110.0},
    rate_per_hour=1e-7,
)

CATALOG = [
    CAN_BIT_CORRUPTION,
    CAN_MASQUERADE,
    RECOVERY_OVERHEAD.with_params(extra=simtime.ms(17)),
    SENSOR_OFFSET_DRIFT.with_params(offset=-20.0),
    RADAR_STUCK_FAR,
]


def make_campaign() -> Campaign:
    return Campaign(
        platform_factory=acc.build_acc,
        observe=acc.observe,
        classifier=acc.acc_classifier(),
        duration=acc.DEFAULT_DURATION,
        seed=11,
    )


def showcase_scenarios(campaign: Campaign) -> None:
    print("== hand-picked scenarios ==")
    golden = campaign.golden()
    print(
        f"  golden: final pressure {golden['final_pressure']}%, "
        f"brake crossing at "
        f"{simtime.format_time(golden['brake_crossing'])}"
    )

    cases = {
        "retry overhead x10 on control task": [
            PlannedInjection(
                simtime.ms(40 + 20 * i),
                "acc.actuator_ecu.os.sched",
                RECOVERY_OVERHEAD.with_params(
                    task="control", extra=simtime.ms(18)
                ),
            )
            for i in range(10)
        ],
        "one corrupted CAN frame": [
            PlannedInjection(
                simtime.ms(100), "acc.can0.wire", CAN_BIT_CORRUPTION
            )
        ],
        "radar stuck at 110 m": [
            PlannedInjection(
                simtime.ms(10), "acc.sensor_ecu.radar.frontend",
                RADAR_STUCK_FAR,
            )
        ],
    }
    for name, injections in cases.items():
        outcome, labels, obs, _ = campaign.execute_scenario(
            ErrorScenario(name, injections), run_seed=5
        )
        print(f"  {outcome.name:<15} {name}")
        print(
            f"      pressure={obs['final_pressure']}%  "
            f"deadline_misses={obs['deadline_misses']}  "
            f"crc_rejects={obs['crc_rejects']}  "
            f"retransmissions={obs['bus_retransmissions']}"
        )


def monte_carlo(campaign: Campaign) -> None:
    print("\n== rate-weighted Monte-Carlo campaign (60 runs) ==")
    probe = Simulator()
    space = FaultSpace(
        acc.build_acc(probe),
        CATALOG,
        window_start=simtime.ms(20),
        window_end=simtime.ms(400),
        time_bins=4,
    )
    strategy = RandomStrategy(
        space, faults_per_scenario=1, rate_weighted=True
    )
    result = campaign.run(strategy, runs=60)
    print(summarize(result))
    print("\n  measured diagnostic coverage per fault class:")
    for name, coverage in sorted(
        result.diagnostic_coverage_by_descriptor().items()
    ):
        print(f"    {name:<24} {coverage:6.1%}")


def main() -> None:
    campaign = make_campaign()
    showcase_scenarios(campaign)
    monte_carlo(campaign)
    print("\ndone.")


if __name__ == "__main__":
    main()
