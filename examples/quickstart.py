#!/usr/bin/env python3
"""Quickstart: build a virtual prototype, run an error-effect campaign.

This walks the whole Fig. 3 loop in ~60 lines of user code:

1. a platform factory building a tiny protected system,
2. an observation function probing its state after a run,
3. a classifier mapping observations to the fault-error-failure lattice,
4. a fault space + strategy, and
5. the campaign loop with coverage.

Run:  python examples/quickstart.py
"""

from repro.core import (
    Campaign,
    FaultSpace,
    FaultSpaceCoverage,
    Outcome,
    RandomStrategy,
    build_standard_classifier,
    summarize,
)
from repro.faults import SRAM_SEU
from repro.hw import EccMemory, Memory
from repro.kernel import Module, Simulator
from repro.tlm import GenericPayload


def build_platform(sim: Simulator) -> Module:
    """A DMA-style copier moving data from ECC RAM to plain RAM."""
    top = Module("demo", sim=sim)
    source = EccMemory("source", parent=top, size=64)
    source.load(0, bytes(range(64)))
    dest = Memory("dest", parent=top, size=64)
    top.bus_errors = 0

    def copier():
        for address in range(64):
            yield 1000  # 1 us per byte
            read = GenericPayload.read(address, 1)
            source.tsock.deliver(read, 0)
            if not read.ok:
                top.bus_errors += 1  # ECC said uncorrectable: skip byte
                continue
            dest.tsock.deliver(GenericPayload.write(address, read.data), 0)

    top.process(copier(), name="dma")
    return top


def observe(root: Module) -> dict:
    source = root.find("source")
    dest = root.find("dest")
    return {
        "dest_image": bytes(dest.data).hex(),
        "ecc_corrected": source.corrected_errors,
        "ecc_detected": source.detected_errors + root.bus_errors,
    }


def main() -> None:
    classifier = build_standard_classifier(
        value_keys=["dest_image"],          # wrong copied data = SDC
        detection_keys=["ecc_detected"],    # uncorrectable, flagged
        masking_keys=["ecc_corrected"],     # corrected transparently
    )
    campaign = Campaign(
        platform_factory=build_platform,
        observe=observe,
        classifier=classifier,
        duration=70_000,  # 70 us: the full copy
        seed=1,
    )

    # The fault space: SEUs in *both* memories (ECC-protected source
    # codewords and unprotected destination bytes), any time during
    # the copy.  Expect source flips to be masked and destination
    # flips to surface as silent data corruption.
    probe = Simulator()
    space = FaultSpace(
        build_platform(probe),
        [SRAM_SEU],
        window_start=0,
        window_end=70_000,
        time_bins=4,
    )
    coverage = FaultSpaceCoverage(space)

    # Single-fault Monte Carlo: everything should be masked (ECC
    # corrects single flips) except flips in bytes already copied.
    single = campaign.run(
        RandomStrategy(space, faults_per_scenario=1), runs=50,
        coverage=coverage,
    )
    print("=== single-fault campaign ===")
    print(summarize(single))

    # Double faults: two flips can land in one codeword -> detected,
    # or corrupt two different words.
    double = campaign.run(
        RandomStrategy(space, faults_per_scenario=2), runs=50,
    )
    print("\n=== double-fault campaign ===")
    print(summarize(double))

    print("\nfault-space coverage:", f"{coverage.closure:.0%}")
    assert single.count(Outcome.HAZARDOUS) == 0
    print("done.")


if __name__ == "__main__":
    main()
