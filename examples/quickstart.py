#!/usr/bin/env python3
"""Quickstart: build a virtual prototype, run an error-effect campaign.

This walks the whole Fig. 3 loop in ~60 lines of user code:

1. a platform factory building a tiny protected system,
2. an observation function probing its state after a run,
3. a classifier mapping observations to the fault-error-failure lattice,
4. a fault space + strategy,
5. the campaign loop with coverage,
6. the same campaign fanned over a process pool (``backend="parallel"``),
7. a fault-tolerant, resumable variant: per-run wall-clock
   deadlines plus a checkpoint journal that lets an interrupted
   campaign pick up where it stopped,
8. a traced campaign: ``trace=True`` returns per-run fault →
   error → failure digests that fold into a propagation graph with
   fault-to-detection latencies,
9. and snapshot-fork execution (``fork=True``): runs sharing an
   injection time simulate their fault-free prefix once and fork from
   a mid-run kernel snapshot — same results, fraction of the cost.

Run:  python examples/quickstart.py
"""

import os
import time

from repro.core import (
    Campaign,
    ErrorScenario,
    FaultSpace,
    FaultSpaceCoverage,
    Outcome,
    PlannedInjection,
    RandomStrategy,
    build_standard_classifier,
    summarize,
)
from repro.faults import SRAM_SEU
from repro.hw import EccMemory, Memory
from repro.kernel import Module, Simulator, simtime
from repro.platforms import register_platform, registry
from repro.tlm import GenericPayload


def build_platform(sim: Simulator) -> Module:
    """A DMA-style copier moving data from ECC RAM to plain RAM."""
    top = Module("demo", sim=sim)
    source = EccMemory("source", parent=top, size=64)
    source.load(0, bytes(range(64)))
    dest = Memory("dest", parent=top, size=64)
    top.bus_errors = 0

    def copier():
        for address in range(64):
            yield 1000  # 1 us per byte
            read = GenericPayload.read(address, 1)
            source.tsock.deliver(read, 0)
            if not read.ok:
                top.bus_errors += 1  # ECC said uncorrectable: skip byte
                continue
            dest.tsock.deliver(GenericPayload.write(address, read.data), 0)

    top.process(copier(), name="dma")
    return top


def observe(root: Module) -> dict:
    source = root.find("source")
    dest = root.find("dest")
    return {
        "dest_image": bytes(dest.data).hex(),
        "ecc_corrected": source.corrected_errors,
        "ecc_detected": source.detected_errors + root.bus_errors,
    }


def make_classifier():
    return build_standard_classifier(
        value_keys=["dest_image"],          # wrong copied data = SDC
        detection_keys=["ecc_detected"],    # uncorrectable, flagged
        masking_keys=["ecc_corrected"],     # corrected transparently
    )


# Registering the platform by name is what lets parallel workers
# rebuild it in their own processes; registration must run at import
# time so spawned workers see it too.
register_platform(  # vp-lint: disable=VP009 - tutorial platform, kept minimal; fresh build per run is the point being taught
    "quickstart-dma", build_platform, observe, make_classifier,
    description="ECC RAM -> plain RAM copier from the quickstart",
)


def main() -> None:
    campaign = Campaign(
        duration=70_000,  # 70 us: the full copy
        seed=1,
        platform="quickstart-dma",
    )

    # The fault space: SEUs in *both* memories (ECC-protected source
    # codewords and unprotected destination bytes), any time during
    # the copy.  Expect source flips to be masked and destination
    # flips to surface as silent data corruption.
    probe = Simulator()
    space = FaultSpace(
        build_platform(probe),
        [SRAM_SEU],
        window_start=0,
        window_end=70_000,
        time_bins=4,
    )
    coverage = FaultSpaceCoverage(space)

    # Single-fault Monte Carlo: everything should be masked (ECC
    # corrects single flips) except flips in bytes already copied.
    single = campaign.run(
        RandomStrategy(space, faults_per_scenario=1), runs=50,
        coverage=coverage,
    )
    print("=== single-fault campaign ===")
    print(summarize(single))

    # Double faults: two flips can land in one codeword -> detected,
    # or corrupt two different words.
    double = campaign.run(
        RandomStrategy(space, faults_per_scenario=2), runs=50,
    )
    print("\n=== double-fault campaign ===")
    print(summarize(double))

    # The same seeded campaign through the process-pool backend: the
    # planner freezes each run into a picklable RunSpec, workers
    # rebuild "quickstart-dma" from the registry, and the aggregated
    # result is identical to the serial one (same seed + batch size).
    workers = min(4, os.cpu_count() or 1) or 1
    serial = campaign.run(
        RandomStrategy(space, faults_per_scenario=1), runs=40,
        batch_size=2 * workers,
    )
    parallel = campaign.run(
        RandomStrategy(space, faults_per_scenario=1), runs=40,
        backend="parallel", workers=workers, batch_size=2 * workers,
    )
    print(f"\n=== parallel backend ({workers} workers) ===")
    print(summarize(parallel))
    assert parallel.outcome_histogram() == serial.outcome_histogram()
    kernel = parallel.report()["kernel"]
    print(f"kernel work/run: {kernel['events'] // parallel.runs} events, "
          f"{kernel['delta_cycles'] // parallel.runs} delta cycles")

    # Long campaigns survive interruption: run_timeout_s degrades any
    # hung run to an inconclusive TIMEOUT record instead of stalling
    # the campaign, and checkpoint= journals every completed outcome
    # to an append-only JSONL file.  Re-running the same seeded
    # campaign against the same journal skips the journaled runs — so
    # this second call executes nothing and resumes to the identical
    # result.
    journal_path = "quickstart_campaign.jsonl"
    robust = campaign.run(
        RandomStrategy(space, faults_per_scenario=1), runs=30,
        run_timeout_s=10.0, checkpoint=journal_path,
    )
    resumed = campaign.run(
        RandomStrategy(space, faults_per_scenario=1), runs=30,
        run_timeout_s=10.0, checkpoint=journal_path,
    )
    print(f"\n=== checkpoint/resume ({journal_path}) ===")
    print(f"first pass executed {robust.runs - robust.resumed} runs; "
          f"second pass resumed {resumed.resumed} from the journal")
    assert resumed.resumed == resumed.runs == robust.runs
    assert resumed.outcome_histogram() == robust.outcome_histogram()
    os.remove(journal_path)

    # trace=True arms a per-run recorder: every record comes back
    # with a TraceDigest (injections, deviations vs golden, detection
    # events from the ECC hardware, verdict — all in sim time).
    # Folding the digests yields the propagation graph: which fault
    # sites reached which detection mechanism, and how fast.
    traced = campaign.run(
        RandomStrategy(space, faults_per_scenario=1), runs=40,
        trace=True,
    )
    graph = traced.propagation()
    print("\n=== traced campaign ===")
    print(f"digests: {len(traced.digests())}, graph: {graph!r}")
    for site, mechanism, latency in graph.detection_paths[:3]:
        print(f"  {site} -> {mechanism} after {latency} time units")
    medians = graph.median_detection_latency()
    if medians:
        print("median fault-to-detection latency:", medians)
    assert len(traced.digests()) == traced.runs

    # Snapshot-fork execution.  The quickstart DMA platform is
    # deliberately *not* fork-capable (its copier keeps state in a
    # generator local, which a mid-run restore cannot rebuild), so
    # this demo uses the built-in airbag platform, whose registry
    # bundle provides capture_state/restore_state hooks.  Pinning
    # every scenario's injection at 50 of 60 ms makes the whole batch
    # one fork group: ~83% of every run is shared prefix, simulated
    # once instead of 32 times.
    class LateInjectionStrategy(RandomStrategy):
        """Random fault draws at one fixed (late) injection time."""

        def next_scenario(self, rng):
            self.scenario_count += 1
            path, descriptor = self.space.pairs[
                rng.randrange(len(self.space.pairs))
            ]
            return ErrorScenario(
                name=f"late-{self.scenario_count}",
                injections=[PlannedInjection(
                    time=simtime.ms(50), target_path=path,
                    descriptor=descriptor,
                )],
            )

    airbag = Campaign(
        duration=simtime.ms(60), seed=2, platform="airbag-normal"
    )
    airbag.golden()  # prime outside the timed region
    airbag_space = FaultSpace(
        registry.get_platform("airbag-normal").factory(Simulator()),
        [SRAM_SEU],
        window_start=simtime.ms(5),
        window_end=simtime.ms(55),
        time_bins=2,
    )

    def timed_airbag(fork):
        start = time.perf_counter()  # vp-lint: disable=VP005 - harness-side speedup demo, not model behaviour
        result = airbag.run(
            LateInjectionStrategy(airbag_space), runs=32,
            batch_size=32, fork=fork,
        )
        return result, time.perf_counter() - start  # vp-lint: disable=VP005 - harness-side speedup demo, not model behaviour

    per_run, per_run_wall = timed_airbag(fork=False)
    forked, forked_wall = timed_airbag(fork=True)
    print("\n=== snapshot-fork execution (airbag-normal) ===")
    print(f"per-run {per_run_wall:.3f}s vs fork {forked_wall:.3f}s "
          f"({per_run_wall / forked_wall:.1f}x)")
    assert forked.outcome_histogram() == per_run.outcome_histogram()

    print("\nfault-space coverage:", f"{coverage.closure:.0%}")
    assert single.count(Outcome.HAZARDOUS) == 0
    print("done.")


if __name__ == "__main__":
    main()
