#!/usr/bin/env python3
"""Lockstep cores + binary mutation: qualifying software-level safety.

Two themes from the paper on one platform:

1. **Measured diagnostic coverage** — random register upsets are
   injected into a vp16 program running (a) on a single core and
   (b) on a dual-core lockstep pair. The campaign measures how many
   corruptions each configuration detects; that number is the
   diagnostic coverage an FMEDA would otherwise have to estimate.
2. **Binary mutation testing** (refs [22], [30]) — the same program's
   *binary* is mutated instruction by instruction and re-executed on
   the ISS, qualifying the software test against faults at the level
   the hardware actually runs.

Run:  python examples/lockstep_qualification.py
"""

import random

from repro.hw import LockstepCpuPair, Memory, Vp16Cpu, assemble, disassemble
from repro.kernel import Module, Simulator
from repro.mutation import BinaryMutationEngine
from repro.tlm import Router

PROGRAM = assemble(
    """
        ldi  r1, 0         ; checksum accumulator
        ldi  r2, 50        ; iterations
        ldi  r3, 7
    loop:
        mul  r4, r2, r3
        add  r1, r1, r4
        addi r2, r2, -1
        bne  r2, r0, loop
        halt
    """
)
GOLDEN = sum(i * 7 for i in range(1, 51))


def run_single(inject=None):
    sim = Simulator()
    top = Module("top", sim=sim)
    router = Router("bus", parent=top, hop_latency=2)
    mem = Memory("mem", parent=top, size=4096, read_latency=2, write_latency=2)
    router.map_target(0x0, 4096, mem.tsock)
    cpu = Vp16Cpu("cpu", parent=top, clock_period=10, max_instructions=20_000)
    cpu.isock.bind(router.tsock)
    mem.load(0, PROGRAM.image)
    cpu.start(pc=0)
    if inject is not None:
        time, reg, bit = inject

        def injector():
            yield time
            cpu.injection_points["arch"].flip_reg(reg, bit)

        sim.spawn(injector())  # vp-lint: disable=VP002 - throwaway sim, torn down after one run; warm reuse never applies
    sim.run(until=10_000_000)
    detected = cpu.trap_cause is not None
    corrupted = cpu.regs[1] != GOLDEN
    return detected, corrupted


def run_lockstep(inject=None):
    sim = Simulator()
    top = Module("top", sim=sim)
    pair = LockstepCpuPair(
        "pair", parent=top, image=PROGRAM.image, compare_interval=500,
        max_instructions=20_000,
    )
    pair.start(pc=0)
    if inject is not None:
        time, reg, bit = inject

        def injector():
            yield time
            pair.cores[0].injection_points["arch"].flip_reg(reg, bit)

        sim.spawn(injector())  # vp-lint: disable=VP002 - throwaway sim, torn down after one run; warm reuse never applies
    sim.run(until=10_000_000)
    detected = pair.halted_on_mismatch or any(
        core.trap_cause is not None for core in pair.cores
    )
    corrupted = pair.cores[0].regs[1] != GOLDEN
    return detected, corrupted


def coverage_campaign() -> None:
    print("== measured diagnostic coverage: single core vs lockstep ==")
    rng = random.Random(17)
    injections = [
        (rng.randrange(1_000, 5_000), rng.randrange(1, 5), rng.randrange(16))
        for _ in range(40)
    ]
    for label, runner in (("single core", run_single), ("lockstep", run_lockstep)):
        detected = corrupted_silently = benign = 0
        for inject in injections:
            was_detected, was_corrupted = runner(inject)
            if was_detected:
                detected += 1
            elif was_corrupted:
                corrupted_silently += 1
            else:
                benign += 1
        effective = detected + corrupted_silently
        coverage = detected / effective if effective else 1.0
        print(
            f"  {label:<12} detected={detected:>2}  silent={corrupted_silently:>2}  "
            f"benign={benign:>2}  -> DC = {coverage:.0%}"
        )


def binary_mutation() -> None:
    print("\n== binary mutation qualification on the ISS ==")

    def testbench(image) -> bool:
        sim = Simulator()
        top = Module("top", sim=sim)
        router = Router("bus", parent=top, hop_latency=2)
        mem = Memory("mem", parent=top, size=4096)
        router.map_target(0x0, 4096, mem.tsock)
        cpu = Vp16Cpu("cpu", parent=top, clock_period=10, max_instructions=5_000)
        cpu.isock.bind(router.tsock)
        mem.load(0, image)
        cpu.start(pc=0)
        sim.run(until=10_000_000)
        return (
            not cpu.halted
            or cpu.trap_cause is not None
            or cpu.regs[1] != GOLDEN
        )

    engine = BinaryMutationEngine(PROGRAM.image, testbench)
    result = engine.qualify()
    print(
        f"  {result.total} binary mutants, "
        f"{result.killed} killed -> score {result.score:.1%}"
    )
    if result.survivors:
        print("  survivors (behaviour-equivalent on this workload):")
        for mutation in result.survivors[:5]:
            print(f"    - {mutation.description}")

    print("\n  disassembly of the qualified image:")
    for line in disassemble(PROGRAM.image, with_addresses=True).splitlines():
        print(f"    {line}")


def main() -> None:
    coverage_campaign()
    binary_mutation()
    print("done.")


if __name__ == "__main__":
    main()
