#!/usr/bin/env python3
"""CAPS airbag safety evaluation — the paper's motivating example.

Checks the paper's safety goal directly: *"it must be absolutely
guaranteed that the failure of any system component does not trigger
the airbag in normal operation"* (Sec. 1).

The script:

1. validates nominal behaviour (no deploy without a crash; prompt
   deploy with one);
2. exhaustively sweeps *single* faults over the platform's fault space
   — the safety goal says none may be hazardous;
3. lets the weak-spot strategy search for *multi-fault* scenarios that
   do defeat the protection, and synthesizes a fault tree from the
   findings;
4. bridges the measured diagnostic coverage into an ISO 26262 FMEDA.

Run:  python examples/caps_airbag.py
"""

import random

from repro.core import (
    Campaign,
    ErrorScenario,
    FaultSpace,
    Outcome,
    WeakSpotStrategy,
    fmeda_from_campaign,
    summarize,
    synthesize_fault_tree,
)
from repro.faults import (
    FaultDescriptor,
    FaultKind,
    Persistence,
    SENSOR_OFFSET_DRIFT,
    SENSOR_OPEN_LOAD,
    SRAM_SEU,
)
from repro.kernel import Simulator, simtime
from repro.platforms import airbag

DURATION = simtime.ms(100)

#: The fault classes considered, with derived-looking rates.
STUCK_HIGH = FaultDescriptor(
    name="sensor_stuck_high",
    kind=FaultKind.STUCK_VALUE,
    persistence=Persistence.PERMANENT,
    params={"value": 4.5},
    rate_per_hour=2e-7,
)
CATALOG = [
    SRAM_SEU.with_rate(5e-7),
    STUCK_HIGH,
    SENSOR_OPEN_LOAD.with_rate(1e-7),
    SENSOR_OFFSET_DRIFT.with_rate(3e-7),
]
DESCRIPTORS = {d.name: d for d in CATALOG}


def nominal_checks() -> None:
    print("== nominal behaviour ==")
    sim = Simulator()
    platform = airbag.build_normal_operation(sim)
    sim.run(until=DURATION)
    print(f"  normal operation: squib fired = {platform.squib.fired}")
    assert not platform.squib.fired

    sim = Simulator()
    platform = airbag.build_crash_scenario(sim)
    sim.run(until=simtime.ms(200))
    latency = platform.squib.fire_time - simtime.ms(50)
    print(
        "  crash scenario:   deployed "
        f"{simtime.format_time(latency)} after impact"
    )
    assert platform.squib.fired


def make_campaign() -> Campaign:
    return Campaign(
        platform_factory=airbag.build_normal_operation,
        observe=airbag.observe,
        classifier=airbag.normal_operation_classifier(),
        duration=DURATION,
        seed=7,
    )


def make_space() -> FaultSpace:
    probe = Simulator()
    return FaultSpace(
        airbag.build_normal_operation(probe),
        CATALOG,
        window_start=simtime.ms(5),
        window_end=simtime.ms(50),
        time_bins=2,
    )


def single_fault_sweep(campaign: Campaign, space: FaultSpace) -> None:
    """Every (target, descriptor) pair once: the safety-goal check."""
    print("\n== exhaustive single-fault sweep ==")
    rng = random.Random(0)
    hazards = []
    outcomes = {}
    for pair in space.pairs:
        injection = space.sample_injection(rng, pair=pair, time_bin=0)
        scenario = ErrorScenario(f"{pair[0]}/{pair[1].name}", [injection])
        outcome, *_ = campaign.execute_scenario(scenario, run_seed=1)
        outcomes[scenario.name] = outcome
        if outcome is Outcome.HAZARDOUS:
            hazards.append(scenario.name)
    for name, outcome in sorted(outcomes.items()):
        print(f"  {outcome.name:<14} {name}")
    print(
        f"  -> {len(space.pairs)} single faults, "
        f"{len(hazards)} hazardous (safety goal requires 0)"
    )
    assert not hazards, f"single-point failures found: {hazards}"


def multi_fault_search(campaign: Campaign, space: FaultSpace) -> None:
    print("\n== weak-spot search for multi-fault hazards ==")
    strategy = WeakSpotStrategy(space, faults_per_scenario=2, exploration=0.3)
    result = campaign.run(strategy, runs=80)
    print(summarize(result))
    print("\n  learned weak spots:")
    for (path, descriptor, time_bin), score in strategy.top_cells(4):
        print(f"    score {score:5.1f}  {path} / {descriptor} (bin {time_bin})")

    tree = synthesize_fault_tree(result, DESCRIPTORS, exposure_hours=8000)
    if tree is None:
        print("  no hazardous combination found in this budget")
        return
    print("\n  synthesized fault tree (from simulation evidence):")
    for cut_set in tree.minimal_cut_sets():
        print(f"    cut set: {sorted(cut_set)}")
    print(
        "    P(spurious deployment per mission) = "
        f"{tree.top_event_probability():.3e}"
    )

    fmeda = fmeda_from_campaign(result, DESCRIPTORS)
    report = fmeda.report()
    print("\n  FMEDA with measured diagnostic coverage:")
    print(
        f"    SPFM = {report['spfm']:.4f}   LFM = {report['lfm']:.4f}   "
        f"PMHF = {report['pmhf_per_hour']:.2e}/h   "
        f"-> ASIL {report['achieved_asil']}"
    )


def main() -> None:
    nominal_checks()
    campaign = make_campaign()
    space = make_space()
    single_fault_sweep(campaign, space)
    multi_fault_search(campaign, space)
    print("\ndone.")


if __name__ == "__main__":
    main()
