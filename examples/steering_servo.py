#!/usr/bin/env python3
"""Steering servo: mission-profile-driven stress testing (Fig. 2).

The paper's Sec. 3.2 walkthrough, end to end:

1. start from the OEM-level mission profile of a passenger car;
2. refine it down the supply chain (Tier-1 steering ECU in the engine
   bay: hotter, much more vibration);
3. derive fault/error descriptions — the vibration stress raises the
   open-load / short-to-ground rates, exactly the example in the text;
4. build the stressor specification with the operating states,
   over-sampling the special "steering against a curbstone" state;
5. run the campaign per operating state — the same fault mix produces
   visibly different outcome distributions per state (the stalled
   curbstone state masks sensor faults that the driving states expose
   as silent deviations), which is exactly why mission profiles must
   parameterise the stress tests.

Run:  python examples/steering_servo.py
"""

import random

from repro.core import (
    Campaign,
    FaultSpace,
    RandomStrategy,
    summarize,
)
from repro.faults import STANDARD_CATALOG, catalog_for_target
from repro.kernel import Simulator, simtime
from repro.mission import (
    ProfileTransfer,
    derive_stressor_spec,
    standard_passenger_car_profile,
)
from repro.platforms import steering


def derive() -> tuple:
    print("== mission profile refinement (OEM -> Tier1 -> component) ==")
    oem = standard_passenger_car_profile()
    print(
        f"  OEM   : vib {oem.vibration.grms:.1f} g, "
        f"mean temp {oem.temperature.mean:.0f} C, "
        f"EMI {oem.emi.field_v_per_m:.0f} V/m"
    )
    tier1 = oem.refine(
        ProfileTransfer(
            component_name="steering_ecu",
            temperature_rise_c=25.0,
            vibration_amplification=2.5,  # column bracket resonance
            emi_shielding=0.7,
        )
    )
    print(
        f"  Tier1 : vib {tier1.vibration.grms:.1f} g, "
        f"mean temp {tier1.temperature.mean:.0f} C, "
        f"EMI {tier1.emi.field_v_per_m:.0f} V/m"
    )

    spec = derive_stressor_spec(
        tier1,
        catalog_for_target("analog"),
        target_kinds=["analog"],
        special_boost=10.0,
    )
    print("\n== derived fault/error descriptions (rates per hour) ==")
    base = {d.name: d for d in STANDARD_CATALOG}
    for descriptor in spec.descriptors:
        ratio = descriptor.rate_per_hour / base[descriptor.name].rate_per_hour
        print(
            f"  {descriptor.name:<24} {descriptor.rate_per_hour:.2e} "
            f"({ratio:5.1f}x catalog base)"
        )
    print(
        "\n  note the vibration-driven wiring faults (open load, short "
        "to ground)\n  accelerated far beyond the thermally driven ones "
        "— the Sec. 3.2 example."
    )
    return tier1, spec


def campaign_per_state(spec) -> None:
    print("\n== error-effect simulation per operating state ==")
    rng = random.Random(3)
    for weight in spec.state_weights:
        state = weight.state
        factory = steering.build_steering(state)
        campaign = Campaign(
            platform_factory=factory,
            observe=steering.observe,
            classifier=steering.steering_classifier(),
            duration=steering.DEFAULT_DURATION,
            seed=rng.randrange(2**31),
        )
        probe = Simulator()
        space = FaultSpace(
            factory(probe),
            spec.descriptors,
            window_start=simtime.ms(20),
            window_end=simtime.ms(200),
            time_bins=2,
        )
        strategy = RandomStrategy(
            space, faults_per_scenario=1, rate_weighted=True, spec=spec
        )
        result = campaign.run(strategy, runs=25)
        histogram = result.outcome_histogram()
        marker = "  <- special state" if state.special else ""
        print(
            f"  {state.name:<22} (sample weight {weight.weight:.2f}, "
            f"servo load {state.loads.get('servo_load', 0.0):4.1f})"
            f"{marker}"
        )
        parts = ", ".join(
            f"{outcome.name}={count}"
            for outcome, count in histogram.items()
            if count
        )
        print(f"      {parts}")


def main() -> None:
    tier1, spec = derive()
    campaign_per_state(spec)
    print(
        "\nexpected faults over the component's operating life: "
        f"{spec.expected_faults(hours=tier1.operating_hours):.4f}"
    )
    print("done.")


if __name__ == "__main__":
    main()
