#!/usr/bin/env python3
"""Mission-profile Monte Carlo risk report (E18).

One mission profile gives one stressor spec — a point estimate. The
risk engine samples the *distribution* around it:

1. draw correlated environment trajectories (temperature, vibration,
   EMI, load) from the passenger-car profile, with rare black-swan
   overlays (cold start, thermal runaway, EMI burst);
2. re-derive the Fig. 2 stressor spec per sample, so a hot, loaded
   trajectory genuinely shifts the fault-rate mix;
3. run the sampled scenarios through the ordinary campaign machinery
   (snapshot-fork amortizes the shared fault-free prefix);
4. fold the outcome into the decision artifact: hazard probability
   with exact + score intervals, detection-latency percentiles,
   VaR/CVaR tail metrics, per-event attribution, and ASIL gates over
   the campaign-measured diagnostic coverage.

Everything flows from two explicit seeds; re-running this script
reproduces the report byte for byte.

Run:  python examples/risk_report.py
"""

from repro.core import Campaign, FaultSpace
from repro.faults import (
    FaultDescriptor,
    FaultKind,
    Persistence,
    SRAM_SEU,
)
from repro.kernel import Simulator, simtime
from repro.mission import standard_passenger_car_profile
from repro.platforms import airbag
from repro.risk import (
    RiskReport,
    SampledScenarioStrategy,
    StressSampler,
)

STUCK_HIGH = FaultDescriptor(
    name="sensor_stuck_high",
    kind=FaultKind.STUCK_VALUE,
    persistence=Persistence.PERMANENT,
    params={"value": 4.5},
    rate_per_hour=2e-7,
)


def build_space() -> FaultSpace:
    probe = Simulator()
    return FaultSpace(
        airbag.build_normal_operation(probe),
        [SRAM_SEU.with_rate(5e-7), STUCK_HIGH],
        window_start=simtime.ms(5),
        window_end=simtime.ms(30),
        time_bins=2,
    )


def main() -> None:
    profile = standard_passenger_car_profile()
    sampler = StressSampler(profile, seed=11)
    strategy = SampledScenarioStrategy(
        build_space(), sampler, injection_time=simtime.ms(50)
    )
    campaign = Campaign(
        duration=simtime.ms(60), seed=7, platform="airbag-normal"
    )

    print("== sampled mission environments ==")
    result = campaign.run(
        strategy, runs=200, backend="serial", batch_size=32,
        trace=True, fork=True,
    )
    eventful = [s for s in strategy.samples if s.events]
    print(
        f"  {len(strategy.samples)} trajectories drawn, "
        f"{len(eventful)} with black-swan overlays"
    )
    for sample in eventful[:3]:
        print(
            f"    sample {sample.index}: {'+'.join(sample.events)}, "
            f"peak {sample.peak_temperature_c:.0f} C, "
            f"mean load {sample.mean_load:.2f}"
        )

    print("\n== risk report ==")
    report = RiskReport.from_campaign(result, strategy)
    print(report.summary())
    print("done.")


if __name__ == "__main__":
    main()
