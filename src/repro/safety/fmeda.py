"""FMEDA — Failure Modes, Effects, and Diagnostic Analysis.

The second classical method the paper starts from (Sec. 2.1), carried
through to the ISO 26262 hardware architectural metrics:

* **SPFM** (single-point fault metric) — fraction of the safety-related
  failure rate that is *not* a single-point or residual fault;
* **LFM** (latent fault metric) — fraction of the remaining rate whose
  latent (multiple-point, undetected) share is controlled;
* **PMHF** — probabilistic metric for random hardware failures, the
  residual dangerous failure rate per hour.

A key output of the error-effect simulation is *measured* diagnostic
coverage per failure mode (how often injections of that mode were
detected) — replacing the expert guess the paper says traditional
FMEDA relies on.  :meth:`Fmeda.set_measured_coverage` is that bridge.
"""

from __future__ import annotations

import dataclasses
import enum
import typing as _t


class Asil(enum.Enum):
    """Automotive Safety Integrity Levels (QM = no safety requirement)."""

    QM = 0
    A = 1
    B = 2
    C = 3
    D = 4


#: ISO 26262-5 target values per ASIL: (SPFM, LFM, PMHF per hour).
ASIL_TARGETS: _t.Dict[Asil, _t.Tuple[float, float, float]] = {
    Asil.B: (0.90, 0.60, 1e-7),
    Asil.C: (0.97, 0.80, 1e-7),
    Asil.D: (0.99, 0.90, 1e-8),
}


@dataclasses.dataclass
class FailureMode:
    """One row of the FMEDA worksheet.

    Parameters
    ----------
    rate_per_hour:
        Raw failure rate λ of this mode.
    safety_related:
        Modes of parts not in the safety path are excluded from the
        metrics' numerators but kept for documentation.
    safe_fraction:
        Fraction of occurrences that are intrinsically safe (cannot
        violate the safety goal even undetected).
    diagnostic_coverage:
        Fraction of the dangerous share caught by a safety mechanism
        (0..1).  May be an expert estimate or measured by injection.
    latent_coverage:
        Fraction of multiple-point faults revealed by tests/driver
        perception before they can combine with a second fault.
    """

    component: str
    mode: str
    rate_per_hour: float
    safety_related: bool = True
    safe_fraction: float = 0.0
    diagnostic_coverage: float = 0.0
    latent_coverage: float = 0.0

    def __post_init__(self):
        if self.rate_per_hour < 0:
            raise ValueError(f"{self.key}: negative rate")
        for field in ("safe_fraction", "diagnostic_coverage", "latent_coverage"):
            value = getattr(self, field)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{self.key}: {field} out of [0,1]")

    @property
    def key(self) -> str:
        return f"{self.component}/{self.mode}"

    # -- rate decomposition (ISO 26262-5 Annex) ---------------------------

    @property
    def dangerous_rate(self) -> float:
        return self.rate_per_hour * (1.0 - self.safe_fraction)

    @property
    def residual_rate(self) -> float:
        """Dangerous and undetected: the single-point/residual share."""
        return self.dangerous_rate * (1.0 - self.diagnostic_coverage)

    @property
    def detected_dangerous_rate(self) -> float:
        return self.dangerous_rate * self.diagnostic_coverage

    @property
    def latent_rate(self) -> float:
        """Detected-dangerous faults that stay latent (not revealed)."""
        return self.detected_dangerous_rate * (1.0 - self.latent_coverage)


class Fmeda:
    """The worksheet plus metric computation."""

    def __init__(self, name: str):
        self.name = name
        self._modes: _t.Dict[str, FailureMode] = {}

    def add(self, mode: FailureMode) -> FailureMode:
        if mode.key in self._modes:
            raise ValueError(f"duplicate failure mode {mode.key!r}")
        self._modes[mode.key] = mode
        return mode

    def mode(self, key: str) -> FailureMode:
        return self._modes[key]

    @property
    def modes(self) -> _t.List[FailureMode]:
        return list(self._modes.values())

    def set_measured_coverage(self, key: str, coverage: float) -> None:
        """Install a diagnostic coverage *measured* by error-effect
        simulation, replacing the expert estimate."""
        if not 0.0 <= coverage <= 1.0:
            raise ValueError("coverage out of [0,1]")
        self._modes[key].diagnostic_coverage = coverage

    # -- metrics ------------------------------------------------------------

    def _safety_related(self) -> _t.List[FailureMode]:
        return [m for m in self._modes.values() if m.safety_related]

    @property
    def total_rate(self) -> float:
        return sum(m.rate_per_hour for m in self._safety_related())

    @property
    def spfm(self) -> float:
        """Single-point fault metric: 1 - λ_residual / λ_total."""
        total = self.total_rate
        if total == 0:
            return 1.0
        residual = sum(m.residual_rate for m in self._safety_related())
        return 1.0 - residual / total

    @property
    def lfm(self) -> float:
        """Latent fault metric: 1 - λ_latent / (λ_total - λ_residual)."""
        total = self.total_rate
        residual = sum(m.residual_rate for m in self._safety_related())
        denominator = total - residual
        if denominator <= 0:
            return 1.0
        latent = sum(m.latent_rate for m in self._safety_related())
        return 1.0 - latent / denominator

    @property
    def pmhf(self) -> float:
        """Residual dangerous failure rate per hour (first-order PMHF)."""
        return sum(m.residual_rate for m in self._safety_related())

    def achieved_asil(self) -> Asil:
        """Highest ASIL whose three targets are all met."""
        achieved = Asil.QM
        for asil in (Asil.B, Asil.C, Asil.D):
            spfm_target, lfm_target, pmhf_target = ASIL_TARGETS[asil]
            if (
                self.spfm >= spfm_target
                and self.lfm >= lfm_target
                and self.pmhf <= pmhf_target
            ):
                achieved = asil
        return achieved

    def meets(self, asil: Asil) -> bool:
        if asil in (Asil.QM, Asil.A):
            return True  # no quantitative hardware targets
        spfm_target, lfm_target, pmhf_target = ASIL_TARGETS[asil]
        return (
            self.spfm >= spfm_target
            and self.lfm >= lfm_target
            and self.pmhf <= pmhf_target
        )

    def report(self) -> _t.Dict[str, _t.Any]:
        return {
            "name": self.name,
            "modes": len(self._modes),
            "total_rate_per_hour": self.total_rate,
            "spfm": self.spfm,
            "lfm": self.lfm,
            "pmhf_per_hour": self.pmhf,
            "achieved_asil": self.achieved_asil().name,
        }
