"""ISO 26262 concept-phase machinery: HARA and ASIL decomposition.

The paper's methodology plugs into a surrounding ISO 26262 process —
safety goals come from hazard analysis and risk assessment (HARA), and
the quantitative targets the FMEDA metrics are checked against depend
on the ASIL assigned there.  This module provides that context:

* :func:`classify_asil` — the standard S×E×C determination table;
* :class:`Hazard` / :func:`hara` — a minimal HARA worksheet producing
  safety goals with ASILs;
* :func:`decomposition_options` — ISO 26262-9 ASIL decomposition
  (ASIL D → C(D)+A(D) / B(D)+B(D) / D(D)+QM(D), etc.) for allocating a
  goal onto redundant elements, which is exactly what the redundant
  sensor channels of the CAPS platform implement.
"""

from __future__ import annotations

import dataclasses
import enum
import typing as _t

from .fmeda import Asil


class Severity(enum.IntEnum):
    """S: severity of harm (ISO 26262-3)."""

    S0 = 0  # no injuries
    S1 = 1  # light/moderate injuries
    S2 = 2  # severe injuries, survival probable
    S3 = 3  # life-threatening/fatal injuries


class Exposure(enum.IntEnum):
    """E: probability of the operational situation."""

    E0 = 0  # incredible
    E1 = 1  # very low
    E2 = 2  # low
    E3 = 3  # medium
    E4 = 4  # high


class Controllability(enum.IntEnum):
    """C: controllability by the driver."""

    C0 = 0  # controllable in general
    C1 = 1  # simply controllable
    C2 = 2  # normally controllable
    C3 = 3  # difficult/uncontrollable


def classify_asil(
    severity: Severity,
    exposure: Exposure,
    controllability: Controllability,
) -> Asil:
    """The ISO 26262-3 risk-graph determination.

    Any S0/E0/C0 parameter yields QM.  Otherwise the standard table:
    the index S + E + C decides, from 7 upward mapping to A..D.
    """
    if severity is Severity.S0:
        return Asil.QM
    if exposure is Exposure.E0:
        return Asil.QM
    if controllability is Controllability.C0:
        return Asil.QM
    index = int(severity) + int(exposure) + int(controllability)
    # S1..3 + E1..4 + C1..3: index in [3, 10]; ASIL A starts at 7.
    if index <= 6:
        return Asil.QM
    return {7: Asil.A, 8: Asil.B, 9: Asil.C, 10: Asil.D}[index]


@dataclasses.dataclass(frozen=True)
class Hazard:
    """One HARA row: a hazardous event in an operational situation."""

    name: str
    situation: str
    severity: Severity
    exposure: Exposure
    controllability: Controllability

    @property
    def asil(self) -> Asil:
        return classify_asil(self.severity, self.exposure, self.controllability)


@dataclasses.dataclass(frozen=True)
class SafetyGoal:
    """A top-level safety requirement derived from a hazard."""

    name: str
    hazard: Hazard
    statement: str

    @property
    def asil(self) -> Asil:
        return self.hazard.asil


def hara(
    hazards: _t.Sequence[Hazard],
    goal_statements: _t.Mapping[str, str],
) -> _t.List[SafetyGoal]:
    """Produce safety goals: one per hazard above QM.

    ``goal_statements`` maps hazard names to the goal wording; hazards
    classified QM need no safety goal.
    """
    goals: _t.List[SafetyGoal] = []
    for hazard in hazards:
        if hazard.asil is Asil.QM:
            continue
        statement = goal_statements.get(hazard.name)
        if statement is None:
            raise KeyError(
                f"hazard {hazard.name!r} (ASIL {hazard.asil.name}) "
                "needs a safety goal statement"
            )
        goals.append(SafetyGoal(f"SG_{hazard.name}", hazard, statement))
    return goals


#: ISO 26262-9 decomposition schemes per original ASIL: each option is
#: the pair of ASILs the requirement may be decomposed onto, provided
#: the two elements are sufficiently independent.
_DECOMPOSITIONS: _t.Dict[Asil, _t.Tuple[_t.Tuple[Asil, Asil], ...]] = {
    Asil.D: ((Asil.C, Asil.A), (Asil.B, Asil.B), (Asil.D, Asil.QM)),
    Asil.C: ((Asil.B, Asil.A), (Asil.C, Asil.QM)),
    Asil.B: ((Asil.A, Asil.A), (Asil.B, Asil.QM)),
    Asil.A: ((Asil.A, Asil.QM),),
}


def decomposition_options(asil: Asil) -> _t.List[_t.Tuple[Asil, Asil]]:
    """The permitted decompositions of *asil* onto two independent
    elements.  QM cannot be decomposed (nothing to decompose)."""
    if asil is Asil.QM:
        return []
    return list(_DECOMPOSITIONS[asil])


def valid_decomposition(
    original: Asil, element_a: Asil, element_b: Asil
) -> bool:
    """Whether (a, b) is a permitted decomposition of *original*."""
    options = decomposition_options(original)
    return (element_a, element_b) in options or (
        element_b,
        element_a,
    ) in options
