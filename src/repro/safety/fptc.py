"""Fault Propagation and Transformation Calculus (FPTC).

Wallace's FPTC [4] "allows the determination of the system failure
behavior based on information about the failure behavior of components
and their interconnections" (Sec. 2.1).  Components declare rules that
map failure classes on their inputs to failure classes on their
outputs; the system behaviour is the least fixpoint of propagating
token sets around the (possibly cyclic) component graph.

Failure classes follow the usual FPTC vocabulary:

* ``"*"``     — no failure (the normal token; always present)
* ``"value"`` — wrong value, right time
* ``"early"`` / ``"late"`` — timing failures
* ``"omission"`` / ``"commission"`` — missing / spurious service

Rules are written per output as ``(pattern, result)`` pairs: the
pattern maps input-port names to a token (or ``"_"`` wildcard matching
anything); the first matching rule wins per input-token combination.
A component with no matching rule *propagates* value/timing tokens
unchanged through every output (the FPTC default for an untransforming
component).
"""

from __future__ import annotations

import dataclasses
import itertools
import typing as _t

NO_FAILURE = "*"
WILDCARD = "_"

FAILURE_CLASSES = ("*", "value", "early", "late", "omission", "commission")


@dataclasses.dataclass(frozen=True)
class Rule:
    """``pattern`` (input port -> token or wildcard) -> output tokens."""

    pattern: _t.Mapping[str, str]
    outputs: _t.Mapping[str, str]  # output port -> emitted token

    def matches(self, combination: _t.Mapping[str, str]) -> bool:
        for port, token in self.pattern.items():
            if token == WILDCARD:
                continue
            if combination.get(port) != token:
                return False
        return True


class FptcComponent:
    """One component with declared failure behaviour."""

    def __init__(
        self,
        name: str,
        inputs: _t.Sequence[str],
        outputs: _t.Sequence[str],
        rules: _t.Sequence[Rule] = (),
        source_tokens: _t.Iterable[str] = (),
    ):
        self.name = name
        self.inputs = list(inputs)
        self.outputs = list(outputs)
        self.rules = list(rules)
        #: Failure tokens this component *introduces* (fault sources).
        self.source_tokens = set(source_tokens) | {NO_FAILURE}
        for rule in self.rules:
            for port in rule.pattern:
                if port not in self.inputs:
                    raise ValueError(
                        f"{name}: rule pattern uses unknown input {port!r}"
                    )
            for port in rule.outputs:
                if port not in self.outputs:
                    raise ValueError(
                        f"{name}: rule emits on unknown output {port!r}"
                    )

    def transform(
        self, input_tokens: _t.Mapping[str, _t.Set[str]]
    ) -> _t.Dict[str, _t.Set[str]]:
        """Output token sets for the given input token sets."""
        result: _t.Dict[str, _t.Set[str]] = {
            port: set(self.source_tokens) for port in self.outputs
        }
        if not self.inputs:
            return result
        domains = [
            sorted(input_tokens.get(port, {NO_FAILURE}) or {NO_FAILURE})
            for port in self.inputs
        ]
        for combo_values in itertools.product(*domains):
            combination = dict(zip(self.inputs, combo_values))
            matched = False
            for rule in self.rules:
                if rule.matches(combination):
                    for port, token in rule.outputs.items():
                        result[port].add(token)
                    matched = True
                    break
            if not matched:
                # Default: propagate any incoming failure to all outputs.
                for token in combo_values:
                    if token != NO_FAILURE:
                        for port in self.outputs:
                            result[port].add(token)
        return result


@dataclasses.dataclass(frozen=True)
class Connection:
    src_component: str
    src_port: str
    dst_component: str
    dst_port: str


class FptcModel:
    """The component graph plus fixpoint analysis."""

    def __init__(self):
        self._components: _t.Dict[str, FptcComponent] = {}
        self._connections: _t.List[Connection] = []

    def add_component(self, component: FptcComponent) -> FptcComponent:
        if component.name in self._components:
            raise ValueError(f"duplicate component {component.name!r}")
        self._components[component.name] = component
        return component

    def connect(
        self, src: str, src_port: str, dst: str, dst_port: str
    ) -> None:
        src_comp = self._components[src]
        dst_comp = self._components[dst]
        if src_port not in src_comp.outputs:
            raise ValueError(f"{src}: no output {src_port!r}")
        if dst_port not in dst_comp.inputs:
            raise ValueError(f"{dst}: no input {dst_port!r}")
        self._connections.append(Connection(src, src_port, dst, dst_port))

    def solve(self, max_iterations: int = 100) -> _t.Dict[str, _t.Dict[str, _t.Set[str]]]:
        """Least fixpoint of token propagation.

        Returns ``{component: {output_port: tokens}}``.  The lattice of
        token sets is finite and transform is monotone (tokens are only
        ever added), so iteration terminates; *max_iterations* is a
        safety valve.
        """
        outputs: _t.Dict[str, _t.Dict[str, _t.Set[str]]] = {
            name: {port: {NO_FAILURE} for port in comp.outputs}
            for name, comp in self._components.items()
        }
        for _ in range(max_iterations):
            changed = False
            for name, component in self._components.items():
                input_tokens: _t.Dict[str, _t.Set[str]] = {
                    port: {NO_FAILURE} for port in component.inputs
                }
                for conn in self._connections:
                    if conn.dst_component != name:
                        continue
                    input_tokens[conn.dst_port] |= outputs[
                        conn.src_component
                    ][conn.src_port]
                new_outputs = component.transform(input_tokens)
                for port, tokens in new_outputs.items():
                    if not tokens <= outputs[name][port]:
                        outputs[name][port] |= tokens
                        changed = True
            if not changed:
                return outputs
        raise RuntimeError("FPTC fixpoint did not converge")

    def failures_at(
        self, component: str, port: str
    ) -> _t.Set[str]:
        """Failure classes (excluding ``*``) reaching an output port."""
        tokens = self.solve()[component][port]
        return {t for t in tokens if t != NO_FAILURE}
