"""Classical safety analysis (substrate S9): FTA, FMEDA, FPTC."""

from .fmeda import ASIL_TARGETS, Asil, FailureMode, Fmeda
from .iso26262 import (
    Controllability,
    Exposure,
    Hazard,
    SafetyGoal,
    Severity,
    classify_asil,
    decomposition_options,
    hara,
    valid_decomposition,
)
from .fptc import (
    FAILURE_CLASSES,
    NO_FAILURE,
    WILDCARD,
    Connection,
    FptcComponent,
    FptcModel,
    Rule,
)
from .fta import (
    AndGate,
    BasicEvent,
    FaultTree,
    Gate,
    KofNGate,
    Node,
    OrGate,
)

__all__ = [
    "ASIL_TARGETS",
    "Asil",
    "FailureMode",
    "Fmeda",
    "Controllability",
    "Exposure",
    "Hazard",
    "SafetyGoal",
    "Severity",
    "classify_asil",
    "decomposition_options",
    "hara",
    "valid_decomposition",
    "FAILURE_CLASSES",
    "NO_FAILURE",
    "WILDCARD",
    "Connection",
    "FptcComponent",
    "FptcModel",
    "Rule",
    "AndGate",
    "BasicEvent",
    "FaultTree",
    "Gate",
    "KofNGate",
    "Node",
    "OrGate",
]
