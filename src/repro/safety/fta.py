"""Fault tree analysis.

FTA is one of the two "well known dependability analysis methods" the
paper starts from (Sec. 2.1).  This module implements the standard
machinery: a gate/event tree, minimal cut set extraction (MOCUS-style
expansion with absorption), top-event probability (exact
inclusion–exclusion for small cut-set families, rare-event sum
otherwise), and Fussell–Vesely importance.

It is used both standalone (benchmark E8) and as the output format of
the error-effect simulation's fault-tree synthesis (ref [8] — FTs
created *from simulation results*, see :mod:`repro.core.report`).
"""

from __future__ import annotations

import itertools
import typing as _t


class Node:
    """Base class of fault-tree nodes."""

    def __init__(self, name: str):
        self.name = name

    def cut_sets(self) -> _t.List[_t.FrozenSet[str]]:
        raise NotImplementedError


class BasicEvent(Node):
    """A leaf: a component fault with an occurrence probability."""

    def __init__(self, name: str, probability: float):
        super().__init__(name)
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"{name!r}: probability out of [0,1]")
        self.probability = probability

    def cut_sets(self) -> _t.List[_t.FrozenSet[str]]:
        return [frozenset({self.name})]

    def __repr__(self) -> str:  # pragma: no cover
        return f"BasicEvent({self.name!r}, p={self.probability})"


class Gate(Node):
    def __init__(self, name: str, children: _t.Sequence[Node]):
        super().__init__(name)
        if not children:
            raise ValueError(f"gate {name!r} needs children")
        self.children = list(children)


class OrGate(Gate):
    """Fails when any child fails."""

    def cut_sets(self) -> _t.List[_t.FrozenSet[str]]:
        sets: _t.List[_t.FrozenSet[str]] = []
        for child in self.children:
            sets.extend(child.cut_sets())
        return _minimize(sets)


class AndGate(Gate):
    """Fails only when all children fail."""

    def cut_sets(self) -> _t.List[_t.FrozenSet[str]]:
        product: _t.List[_t.FrozenSet[str]] = [frozenset()]
        for child in self.children:
            child_sets = child.cut_sets()
            product = [
                existing | new
                for existing in product
                for new in child_sets
            ]
        return _minimize(product)


class KofNGate(Gate):
    """Fails when at least *k* of the children fail (voting gate)."""

    def __init__(self, name: str, k: int, children: _t.Sequence[Node]):
        super().__init__(name, children)
        if not 1 <= k <= len(children):
            raise ValueError(f"gate {name!r}: k={k} out of range")
        self.k = k

    def cut_sets(self) -> _t.List[_t.FrozenSet[str]]:
        sets: _t.List[_t.FrozenSet[str]] = []
        for combo in itertools.combinations(self.children, self.k):
            sets.extend(AndGate("_tmp", combo).cut_sets())
        return _minimize(sets)


def _minimize(
    sets: _t.Sequence[_t.FrozenSet[str]],
) -> _t.List[_t.FrozenSet[str]]:
    """Remove duplicates and non-minimal (absorbed) cut sets."""
    unique = sorted(set(sets), key=lambda s: (len(s), sorted(s)))
    minimal: _t.List[_t.FrozenSet[str]] = []
    for candidate in unique:
        if not any(kept <= candidate for kept in minimal):
            minimal.append(candidate)
    return minimal


class FaultTree:
    """A complete tree with analysis entry points."""

    def __init__(self, top: Node):
        self.top = top
        self._basic_events: _t.Dict[str, BasicEvent] = {}
        self._collect(top)

    def _collect(self, node: Node) -> None:
        if isinstance(node, BasicEvent):
            existing = self._basic_events.get(node.name)
            if existing is not None and existing is not node:
                if existing.probability != node.probability:
                    raise ValueError(
                        f"basic event {node.name!r} appears with two "
                        "different probabilities"
                    )
            self._basic_events[node.name] = node
        elif isinstance(node, Gate):
            for child in node.children:
                self._collect(child)

    @property
    def basic_events(self) -> _t.Dict[str, BasicEvent]:
        return dict(self._basic_events)

    def minimal_cut_sets(self) -> _t.List[_t.FrozenSet[str]]:
        return self.top.cut_sets()

    def _cut_set_probability(self, cut_set: _t.FrozenSet[str]) -> float:
        probability = 1.0
        for name in cut_set:
            probability *= self._basic_events[name].probability
        return probability

    def top_event_probability(self, exact_limit: int = 16) -> float:
        """P(top event), via inclusion–exclusion when the number of
        minimal cut sets is at most *exact_limit*, else the rare-event
        upper bound (sum of cut-set probabilities, clamped)."""
        cut_sets = self.minimal_cut_sets()
        if not cut_sets:
            return 0.0
        if len(cut_sets) <= exact_limit:
            total = 0.0
            for size in range(1, len(cut_sets) + 1):
                sign = 1.0 if size % 2 else -1.0
                for combo in itertools.combinations(cut_sets, size):
                    union: _t.FrozenSet[str] = frozenset().union(*combo)
                    total += sign * self._cut_set_probability(union)
            return min(max(total, 0.0), 1.0)
        return min(
            sum(self._cut_set_probability(cs) for cs in cut_sets), 1.0
        )

    def single_points_of_failure(self) -> _t.List[str]:
        """Basic events that alone cause the top event (1-element MCS)."""
        return sorted(
            next(iter(cs)) for cs in self.minimal_cut_sets() if len(cs) == 1
        )

    def fussell_vesely(self, event_name: str) -> float:
        """Fraction of top-event probability flowing through *event*."""
        if event_name not in self._basic_events:
            raise KeyError(f"unknown basic event {event_name!r}")
        total = self.top_event_probability()
        if total == 0.0:
            return 0.0
        containing = [
            cs for cs in self.minimal_cut_sets() if event_name in cs
        ]
        contribution = sum(
            self._cut_set_probability(cs) for cs in containing
        )
        return min(contribution / total, 1.0)

    def importance_ranking(self) -> _t.List[_t.Tuple[str, float]]:
        """All basic events ranked by Fussell–Vesely importance."""
        ranking = [
            (name, self.fussell_vesely(name))
            for name in self._basic_events
        ]
        return sorted(ranking, key=lambda pair: (-pair[1], pair[0]))
