"""vpsafe — safety evaluation of automotive electronics using virtual
prototypes.

A reproduction of the framework envisioned by Oetjens et al.,
"Safety Evaluation of Automotive Electronics Using Virtual Prototypes:
State of the Art and Research Challenges" (DAC 2014).

Subpackages
-----------
``repro.kernel``    SystemC-like discrete-event simulation kernel
``repro.tlm``       TLM-2.0-style transaction-level modeling
``repro.hw``        hardware models (memory, CPU/ISS, CAN, sensors, ...)
``repro.gate``      gate-level netlists, simulation, fault campaigns
``repro.sw``        RTOS scheduling + AUTOSAR-flavoured layers
``repro.uvm``       UVM-style testbench library
``repro.faults``    formalized fault descriptors
``repro.mission``   mission profiles, rate models, derivation (Fig. 2)
``repro.safety``    FTA, FMEDA/ISO 26262 metrics, FPTC
``repro.mutation``  mutation analysis for testbench qualification
``repro.symbolic``  lite symbolic execution for stimulus generation
``repro.analog``    timed-dataflow analog front-end modeling
``repro.stats``     campaign statistics
``repro.observe``   propagation observability: traces, digests, graphs
``repro.core``      the error-effect simulation framework (Fig. 3)
``repro.risk``      mission-profile Monte Carlo risk engine
"""

__version__ = "1.0.0"
