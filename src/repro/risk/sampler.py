"""Correlated mission-environment sampling.

Sec. 3.2 makes the mission profile — environmental stresses plus
operating states — the contract driving failure-rate derivation and
scenario selection, but a single :class:`~repro.mission.MissionProfile`
is a *summary* (one histogram, one grms figure).  Real vehicles see
correlated excursions: a hot day raises board temperature *and* EMI
susceptibility *and* servo load (air conditioning, fans); a rough road
shakes the harness while the engine bay heats up.  The
:class:`StressSampler` turns the summary back into a population of
concrete environments:

* **correlated marginals** — each trajectory draws ``segments``
  time-slices of four stress channels (temperature / vibration / EMI /
  load) from a user-supplied :class:`CorrelationMatrix` (Cholesky over
  standard normals, PSD-validated at construction).  Temperature maps
  through the profile histogram's inverse CDF, so sampled temperatures
  never leave the histogram's support; vibration and EMI are
  mean-preserving log-normals around the profile values; load is a
  log-normal factor around 1 tilting operating-state selection.
* **temporal persistence** — an AR(1) coefficient carries each
  channel's excursion across segments (weather does not i.i.d.-resample
  every minute).
* **black-swan overlays** — rare events (cold start, thermal runaway,
  EMI burst) with per-event hazard-rate configs; occurrence probability
  is the Poisson ``1 - exp(-rate * exposure_hours)`` and an occurring
  event overlays a contiguous span of segments.

All randomness flows through one explicitly seeded pair — a
``random.Random`` for discrete choices and a ``numpy`` ``Generator``
for the vectorized normal draws — so sampled campaigns stay
checkpoint-resumable and byte-reproducible: the same seed yields the
same trajectory stream on every backend and every restart.
"""

from __future__ import annotations

import dataclasses
import math
import random
import typing as _t

import numpy as np

from ..mission import MissionProfile
from ..mission.rates import probability_of_at_least_one

#: The four stress channels of a trajectory, in draw order.
CHANNELS = ("temperature", "vibration", "emi", "load")


def _resolve_rng(
    seed: int, rng: _t.Optional[random.Random]
) -> random.Random:
    """Sampling randomness is always an explicit instance.

    Callers either pass their own ``random.Random`` (threading one rng
    through a larger experiment) or a seed from which a private
    instance is built — module-level ``random.*`` state never leaks in
    (VP004/VP012 are the lint rules enforcing the same contract on
    model code).
    """
    return rng if rng is not None else random.Random(seed)


class CorrelationError(ValueError):
    """The supplied correlation matrix is not a valid correlation."""


@dataclasses.dataclass(frozen=True)
class CorrelationMatrix:
    """A validated 4x4 correlation over the stress channels.

    Rows/columns follow :data:`CHANNELS`.  Construction validates
    shape, symmetry, a unit diagonal, entries in [-1, 1], and positive
    semi-definiteness (the Cholesky factor of a slightly ridged copy
    must exist) — a non-PSD "correlation" would silently produce
    complex or garbage draws, so it is rejected with a clear error
    instead.
    """

    values: _t.Tuple[_t.Tuple[float, ...], ...]

    def __post_init__(self):
        matrix = np.asarray(self.values, dtype=float)
        if matrix.shape != (len(CHANNELS), len(CHANNELS)):
            raise CorrelationError(
                f"correlation must be {len(CHANNELS)}x{len(CHANNELS)} "
                f"over {CHANNELS}, got shape {matrix.shape}"
            )
        if not np.allclose(matrix, matrix.T, atol=1e-9):
            raise CorrelationError("correlation matrix is not symmetric")
        if not np.allclose(np.diag(matrix), 1.0, atol=1e-9):
            raise CorrelationError("correlation diagonal must be all ones")
        if np.any(matrix < -1.0 - 1e-9) or np.any(matrix > 1.0 + 1e-9):
            raise CorrelationError("correlation entries must lie in [-1, 1]")
        eigenvalues = np.linalg.eigvalsh(matrix)
        if eigenvalues.min() < -1e-8:
            raise CorrelationError(
                f"correlation matrix is not positive semi-definite "
                f"(min eigenvalue {eigenvalues.min():.3e}); fix the "
                f"off-diagonal entries or project to the nearest PSD "
                f"matrix before sampling"
            )
        object.__setattr__(self, "values", tuple(
            tuple(float(v) for v in row) for row in matrix
        ))

    @classmethod
    def identity(cls) -> "CorrelationMatrix":
        return cls(tuple(
            tuple(1.0 if i == j else 0.0 for j in range(len(CHANNELS)))
            for i in range(len(CHANNELS))
        ))

    @classmethod
    def from_pairs(
        cls, **pairs: float
    ) -> "CorrelationMatrix":
        """Build from named channel pairs, e.g.
        ``from_pairs(temperature_load=0.6, vibration_emi=0.2)``.
        Unnamed pairs default to zero correlation."""
        index = {name: i for i, name in enumerate(CHANNELS)}
        matrix = [
            [1.0 if i == j else 0.0 for j in range(len(CHANNELS))]
            for i in range(len(CHANNELS))
        ]
        for key, value in pairs.items():
            try:
                first, second = key.split("_", 1)
                i, j = index[first], index[second]
            except (ValueError, KeyError):
                raise CorrelationError(
                    f"unknown channel pair {key!r}; use "
                    f"<channel>_<channel> from {CHANNELS}"
                ) from None
            matrix[i][j] = matrix[j][i] = float(value)
        return cls(tuple(tuple(row) for row in matrix))

    def cholesky(self) -> np.ndarray:
        """The lower-triangular factor used for correlated draws.

        A tiny diagonal ridge keeps exactly-singular (but valid) PSD
        matrices factorizable, e.g. two perfectly correlated channels.
        """
        matrix = np.asarray(self.values, dtype=float)
        ridge = 1e-12 * np.eye(len(CHANNELS))
        return np.linalg.cholesky(matrix + ridge)


#: Default cross-stress correlation: heat, load, and EMI rise together
#: (hot day, everything working hard), vibration mildly coupled to load
#: (rough road means active chassis work).
DEFAULT_CORRELATION = CorrelationMatrix((
    (1.0, 0.1, 0.3, 0.5),
    (0.1, 1.0, 0.2, 0.3),
    (0.3, 0.2, 1.0, 0.2),
    (0.5, 0.3, 0.2, 1.0),
))


@dataclasses.dataclass(frozen=True)
class BlackSwanEvent:
    """One rare environmental event with its hazard-rate config.

    ``rate_per_hour`` is the Poisson occurrence rate; per trajectory
    the sampler converts it to an occurrence probability over the
    sampled exposure time.  An occurring event overlays a contiguous
    ``span_fraction`` of the trajectory's segments with the additive
    temperature delta and the multiplicative vibration / EMI / load
    factors.
    """

    name: str
    rate_per_hour: float
    temperature_delta_c: float = 0.0
    vibration_factor: float = 1.0
    emi_factor: float = 1.0
    load_factor: float = 1.0
    span_fraction: float = 0.25

    def __post_init__(self):
        if self.rate_per_hour < 0:
            raise ValueError(f"{self.name!r}: negative hazard rate")
        if not 0.0 < self.span_fraction <= 1.0:
            raise ValueError(f"{self.name!r}: span_fraction out of (0, 1]")
        for field in ("vibration_factor", "emi_factor", "load_factor"):
            if getattr(self, field) < 0:
                raise ValueError(f"{self.name!r}: negative {field}")


#: The default overlay set: a deep-winter cold start, a cooling-failure
#: thermal runaway, and a broadband EMI burst (nearby lightning / radar).
DEFAULT_EVENTS: _t.Tuple[BlackSwanEvent, ...] = (
    BlackSwanEvent(
        "cold_start", rate_per_hour=2e-5,
        temperature_delta_c=-40.0, load_factor=1.5, span_fraction=0.2,
    ),
    BlackSwanEvent(
        "thermal_runaway", rate_per_hour=2e-6,
        temperature_delta_c=60.0, load_factor=1.3, span_fraction=0.3,
    ),
    BlackSwanEvent(
        "emi_burst", rate_per_hour=6e-6,
        emi_factor=8.0, span_fraction=0.1,
    ),
)


@dataclasses.dataclass(frozen=True)
class SampledEnvironment:
    """One drawn environmental trajectory.

    Parallel tuples, one entry per segment; ``events`` names the
    black-swan overlays that occurred (possibly empty).  ``exposure_hours``
    is the per-sample mission exposure the event probabilities were
    computed over — the importance quantity a risk report needs to
    convert per-run failure probabilities back into rates.
    """

    index: int
    temperature_c: _t.Tuple[float, ...]
    vibration_grms: _t.Tuple[float, ...]
    emi_v_per_m: _t.Tuple[float, ...]
    load_factor: _t.Tuple[float, ...]
    events: _t.Tuple[str, ...]
    exposure_hours: float

    @property
    def segments(self) -> int:
        return len(self.temperature_c)

    @property
    def mean_load(self) -> float:
        return sum(self.load_factor) / len(self.load_factor)

    @property
    def peak_temperature_c(self) -> float:
        return max(self.temperature_c)

    def effective_profile(self, base: MissionProfile) -> MissionProfile:
        """The :class:`MissionProfile` this trajectory amounts to.

        Temperature segments fold into an equal-fraction histogram
        (duplicate temperatures accumulate), vibration folds to its
        RMS (fatigue is power-driven), EMI to its maximum (disturbance
        coupling is threshold-driven).  The result feeds
        :func:`repro.mission.derive_stressor_spec` unchanged, which is
        how each sample gets its own rate scaling.
        """
        histogram: _t.Dict[float, float] = {}
        fraction = 1.0 / self.segments
        for temp in self.temperature_c:
            histogram[temp] = histogram.get(temp, 0.0) + fraction
        rms = math.sqrt(
            sum(g * g for g in self.vibration_grms) / self.segments
        )
        return dataclasses.replace(
            base,
            name=f"{base.name}/sample{self.index}",
            temperature=dataclasses.replace(
                base.temperature, histogram=histogram
            ),
            vibration=dataclasses.replace(base.vibration, grms=rms),
            emi=dataclasses.replace(
                base.emi, field_v_per_m=max(self.emi_v_per_m)
            ),
        )

    def to_jsonable(self) -> _t.Dict[str, _t.Any]:
        return {
            "index": self.index,
            "temperature_c": [round(t, 6) for t in self.temperature_c],
            "vibration_grms": [round(g, 6) for g in self.vibration_grms],
            "emi_v_per_m": [round(e, 6) for e in self.emi_v_per_m],
            "load_factor": [round(f, 6) for f in self.load_factor],
            "events": list(self.events),
            "exposure_hours": self.exposure_hours,
        }


def _histogram_inverse_cdf(
    histogram: _t.Mapping[float, float],
) -> _t.Callable[[float], float]:
    """Quantile function of a temperature histogram.

    Step-wise inverse CDF over the histogram's *own support*: every
    returned temperature is one of the histogram keys, which is what
    keeps sampled marginals inside the profile's declared envelope
    (property-test pinned).
    """
    temps = sorted(histogram)
    cumulative: _t.List[_t.Tuple[float, float]] = []
    running = 0.0
    for temp in temps:
        running += histogram[temp]
        cumulative.append((running, temp))

    def inverse(quantile: float) -> float:
        for edge, temp in cumulative:
            if quantile <= edge:
                return temp
        return cumulative[-1][1]

    return inverse


class StressSampler:
    """Draws whole correlated environmental trajectories from a profile.

    Parameters
    ----------
    profile:
        The mission profile supplying the marginal envelopes (its
        temperature histogram, vibration grms, EMI field) and the
        exposure time black-swan probabilities are computed over.
    correlation:
        Cross-channel :class:`CorrelationMatrix`
        (default :data:`DEFAULT_CORRELATION`).
    sigma:
        Log-normal shape parameters per multiplicative channel,
        ``(vibration, emi, load)``; larger spreads the marginal.
    segments:
        Time-slices per trajectory.
    persistence:
        AR(1) coefficient in [0, 1) carrying excursions across
        segments.
    events:
        Black-swan overlay configs (default :data:`DEFAULT_EVENTS`).
    hours_per_sample:
        Exposure hours one trajectory represents; default
        ``profile.operating_hours`` (each sample is one candidate
        vehicle life).
    seed / rng:
        Explicit randomness, :func:`_resolve_rng` convention — passing
        *rng* overrides *seed*.  The numpy ``Generator`` powering the
        vectorized normal draws is derived from the same stream, so
        one seed pins the whole trajectory sequence.
    """

    def __init__(
        self,
        profile: MissionProfile,
        correlation: CorrelationMatrix = DEFAULT_CORRELATION,
        sigma: _t.Tuple[float, float, float] = (0.25, 0.35, 0.20),
        segments: int = 8,
        persistence: float = 0.6,
        events: _t.Sequence[BlackSwanEvent] = DEFAULT_EVENTS,
        hours_per_sample: _t.Optional[float] = None,
        seed: int = 0,
        rng: _t.Optional[random.Random] = None,
    ):
        if segments < 1:
            raise ValueError("need at least one segment per trajectory")
        if not 0.0 <= persistence < 1.0:
            raise ValueError("persistence out of [0, 1)")
        if any(s < 0 for s in sigma):
            raise ValueError("negative sigma")
        names = [event.name for event in events]
        if len(set(names)) != len(names):
            raise ValueError("duplicate black-swan event names")
        self.profile = profile
        self.correlation = correlation
        self.sigma = tuple(float(s) for s in sigma)
        self.segments = segments
        self.persistence = float(persistence)
        self.events = tuple(events)
        self.hours_per_sample = (
            profile.operating_hours
            if hours_per_sample is None else float(hours_per_sample)
        )
        if self.hours_per_sample < 0:
            raise ValueError("negative exposure hours")
        self.rng = _resolve_rng(seed, rng)
        # The vectorized normal stream derives from the discrete one,
        # so a single (seed | rng) argument pins both.
        self._normals = np.random.Generator(
            np.random.PCG64(self.rng.randrange(2**63))
        )
        self._cholesky = correlation.cholesky()
        self._inverse_cdf = _histogram_inverse_cdf(
            profile.temperature.histogram
        )
        self._drawn = 0

    # -- one trajectory -----------------------------------------------------

    def _correlated_normals(self) -> np.ndarray:
        """``(segments, channels)`` AR(1)-persistent correlated draws."""
        white = self._normals.standard_normal(
            (self.segments, len(CHANNELS))
        )
        correlated = white @ self._cholesky.T
        if self.persistence > 0.0 and self.segments > 1:
            carry = math.sqrt(1.0 - self.persistence**2)
            for t in range(1, self.segments):
                correlated[t] = (
                    self.persistence * correlated[t - 1]
                    + carry * correlated[t]
                )
        return correlated

    def _occurring_events(self) -> _t.List[BlackSwanEvent]:
        occurred = []
        for event in self.events:
            probability = probability_of_at_least_one(
                event.rate_per_hour, self.hours_per_sample
            )
            if self.rng.random() < probability:
                occurred.append(event)
        return occurred

    def draw(self) -> SampledEnvironment:
        """Draw the next trajectory in the seeded stream."""
        z = self._correlated_normals()
        sigma_vib, sigma_emi, sigma_load = self.sigma
        # Normal quantile -> histogram inverse CDF keeps temperature
        # inside the profile's support; the multiplicative channels are
        # mean-preserving log-normals around the profile values.
        temperature = [
            self._inverse_cdf(_standard_normal_cdf(z[t, 0]))
            for t in range(self.segments)
        ]
        vibration = [
            self.profile.vibration.grms
            * math.exp(sigma_vib * z[t, 1] - sigma_vib**2 / 2)
            for t in range(self.segments)
        ]
        emi = [
            self.profile.emi.field_v_per_m
            * math.exp(sigma_emi * z[t, 2] - sigma_emi**2 / 2)
            for t in range(self.segments)
        ]
        load = [
            math.exp(sigma_load * z[t, 3] - sigma_load**2 / 2)
            for t in range(self.segments)
        ]

        occurred = self._occurring_events()
        for event in occurred:
            span = max(1, round(event.span_fraction * self.segments))
            start = self.rng.randrange(max(1, self.segments - span + 1))
            for t in range(start, min(start + span, self.segments)):
                temperature[t] += event.temperature_delta_c
                vibration[t] *= event.vibration_factor
                emi[t] *= event.emi_factor
                load[t] *= event.load_factor

        environment = SampledEnvironment(
            index=self._drawn,
            temperature_c=tuple(temperature),
            vibration_grms=tuple(vibration),
            emi_v_per_m=tuple(emi),
            load_factor=tuple(load),
            events=tuple(event.name for event in occurred),
            exposure_hours=self.hours_per_sample,
        )
        self._drawn += 1
        return environment

    def draw_many(self, count: int) -> _t.List[SampledEnvironment]:
        return [self.draw() for _ in range(count)]


def _standard_normal_cdf(x: float) -> float:
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))
