"""Risk metrics: folding a sampled campaign into decision numbers.

The :class:`RiskReport` is the payload a safety argument (and the
future service layer's dashboard) actually consumes:

* **hazard probability** with exact Clopper–Pearson and Wilson score
  intervals (reusing :mod:`repro.stats.estimators`) plus the
  importance-weighted point estimate that undoes special-state
  over-sampling;
* **detection-latency percentiles** per protection mechanism, from the
  campaign's folded :class:`~repro.observe.PropagationGraph` (empty
  when the campaign ran untraced);
* **VaR / CVaR tail metrics** over severity-weighted per-run losses,
  overall and per fault mechanism (descriptor) — the quantile-level
  view ROADMAP item 4 asks for: not just "how often does it fail" but
  "how bad is the tail";
* **black-swan attribution** — mean loss and hazard counts for runs
  whose sampled environment carried each rare-event overlay, against
  the nominal population;
* **ASIL acceptance gates** — measured diagnostic coverage pushed into
  an :class:`~repro.safety.Fmeda` and checked against the ISO 26262
  targets (see :mod:`repro.risk.gates`).

Determinism: the report is a pure fold over run records, digests, and
sampled environments in run-index order, and :meth:`RiskReport.canonical`
serializes only simulation-determined content (no wall-clock, attempt,
or host-dependent fields).  The same seed therefore yields a
byte-identical canonical report on serial, parallel, and snapshot-fork
backends — pinned by the equivalence tests.
"""

from __future__ import annotations

import dataclasses
import json
import typing as _t

from ..core.classification import Outcome
from ..safety import Asil
from ..stats import clopper_pearson, wilson
from .gates import AsilVerdict, evaluate_gates
from .sampler import SampledEnvironment

#: Severity weight of each run verdict on the [0, 1] loss scale VaR /
#: CVaR are computed over.  Safe handling is cheap but not free
#: (degraded service), inconclusive runs carry a prudence penalty, and
#: the dangerous verdicts dominate the tail.
SEVERITY_LOSS: _t.Dict[Outcome, float] = {
    Outcome.NO_EFFECT: 0.0,
    Outcome.MASKED: 0.05,
    Outcome.DETECTED_SAFE: 0.10,
    Outcome.TIMEOUT: 0.25,
    Outcome.TIMING_FAILURE: 0.60,
    Outcome.SDC: 0.85,
    Outcome.HAZARDOUS: 1.00,
}


def _quantile(ordered: _t.Sequence[float], q: float) -> float:
    """Deterministic linear-interpolation quantile of a sorted list."""
    if not ordered:
        raise ValueError("no samples")
    rank = (len(ordered) - 1) * q
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


@dataclasses.dataclass(frozen=True)
class TailMetrics:
    """Value-at-risk and conditional value-at-risk at one level."""

    level: float
    var: float
    cvar: float

    @classmethod
    def of(cls, losses: _t.Sequence[float], level: float) -> "TailMetrics":
        if not 0.0 < level < 1.0:
            raise ValueError("tail level out of (0,1)")
        ordered = sorted(losses)
        var = _quantile(ordered, level)
        tail = [loss for loss in ordered if loss >= var]
        cvar = sum(tail) / len(tail) if tail else var
        return cls(level=level, var=var, cvar=cvar)

    def to_jsonable(self) -> _t.Dict[str, float]:
        return {
            "level": self.level,
            "var": round(self.var, 9),
            "cvar": round(self.cvar, 9),
        }


@dataclasses.dataclass(frozen=True)
class HazardEstimate:
    """One outcome class's probability with its interval pair."""

    count: int
    runs: int
    weighted_probability: float
    clopper_pearson_low: float
    clopper_pearson_high: float
    wilson_low: float
    wilson_high: float
    confidence: float

    @classmethod
    def of(
        cls,
        count: int,
        runs: int,
        weighted_probability: float,
        confidence: float,
    ) -> "HazardEstimate":
        exact = clopper_pearson(count, runs, confidence)
        score = wilson(count, runs, confidence)
        return cls(
            count=count,
            runs=runs,
            weighted_probability=weighted_probability,
            clopper_pearson_low=exact.low,
            clopper_pearson_high=exact.high,
            wilson_low=score.low,
            wilson_high=score.high,
            confidence=confidence,
        )

    def to_jsonable(self) -> _t.Dict[str, _t.Any]:
        return {
            "count": self.count,
            "runs": self.runs,
            "weighted_probability": round(self.weighted_probability, 12),
            "clopper_pearson": [
                round(self.clopper_pearson_low, 12),
                round(self.clopper_pearson_high, 12),
            ],
            "wilson": [
                round(self.wilson_low, 12),
                round(self.wilson_high, 12),
            ],
            "confidence": self.confidence,
        }


@dataclasses.dataclass
class RiskReport:
    """The complete risk verdict of one sampled campaign."""

    profile_name: str
    runs: int
    outcome_histogram: _t.Dict[str, int]
    hazardous: HazardEstimate
    dangerous: HazardEstimate
    detection_latency_percentiles: _t.Dict[str, _t.Dict[str, float]]
    tail: _t.List[TailMetrics]
    tail_by_mechanism: _t.Dict[str, _t.List[TailMetrics]]
    event_attribution: _t.Dict[str, _t.Dict[str, _t.Any]]
    gates: _t.List[AsilVerdict]

    @classmethod
    def from_campaign(
        cls,
        result,
        strategy,
        confidence: float = 0.95,
        tail_levels: _t.Sequence[float] = (0.95, 0.99),
        percentiles: _t.Sequence[float] = (50.0, 90.0, 99.0),
        asil_targets: _t.Sequence[Asil] = (Asil.B, Asil.C, Asil.D),
        latent_coverage: float = 0.9,
    ) -> "RiskReport":
        """Fold a finished campaign + its sampling strategy.

        *strategy* is the :class:`~repro.risk.SampledScenarioStrategy`
        the campaign ran with; its recorded environments join outcomes
        back to black-swan overlays by run index, and its sampler's
        base profile anchors the FMEDA gate rates.
        """
        if result.runs == 0:
            raise ValueError("campaign produced no runs")
        records = sorted(result.records, key=lambda r: r.index)
        samples: _t.List[SampledEnvironment] = strategy.samples

        histogram = {
            outcome.name: count
            for outcome, count in sorted(
                result.outcome_histogram().items(),
                key=lambda item: item[0].name,
            )
            if count
        }

        hazardous_count = result.count(Outcome.HAZARDOUS)
        dangerous_count = sum(
            count
            for outcome, count in result.outcome_histogram().items()
            if outcome.is_dangerous
        )
        hazardous = HazardEstimate.of(
            hazardous_count,
            result.runs,
            result.probability(Outcome.HAZARDOUS),
            confidence,
        )
        dangerous = HazardEstimate.of(
            dangerous_count,
            result.runs,
            sum(
                result.probability(outcome)
                for outcome in Outcome
                if outcome.is_dangerous
            ),
            confidence,
        )

        losses = [SEVERITY_LOSS[record.outcome] for record in records]
        tail = [TailMetrics.of(losses, level) for level in tail_levels]

        by_mechanism: _t.Dict[str, _t.List[float]] = {}
        for record in records:
            loss = SEVERITY_LOSS[record.outcome]
            for name in sorted(
                {inj.descriptor.name for inj in record.scenario.injections}
            ):
                by_mechanism.setdefault(name, []).append(loss)
        tail_by_mechanism = {
            name: [TailMetrics.of(values, level) for level in tail_levels]
            for name, values in sorted(by_mechanism.items())
        }

        attribution: _t.Dict[str, _t.Dict[str, _t.Any]] = {}
        for record in records:
            if record.index < len(samples):
                events = samples[record.index].events or ("nominal",)
            else:
                events = ("nominal",)
            loss = SEVERITY_LOSS[record.outcome]
            for event in events:
                row = attribution.setdefault(
                    event, {"runs": 0, "total_loss": 0.0, "hazardous": 0}
                )
                row["runs"] += 1
                row["total_loss"] += loss
                if record.outcome is Outcome.HAZARDOUS:
                    row["hazardous"] += 1
        event_attribution = {
            event: {
                "runs": row["runs"],
                "mean_loss": round(row["total_loss"] / row["runs"], 9),
                "hazardous": row["hazardous"],
            }
            for event, row in sorted(attribution.items())
        }

        graph = result.propagation()
        latency = graph.detection_latency_percentiles(percentiles)

        gates = evaluate_gates(
            result,
            strategy,
            asil_targets=asil_targets,
            latent_coverage=latent_coverage,
        )

        return cls(
            profile_name=strategy.sampler.profile.name,
            runs=result.runs,
            outcome_histogram=histogram,
            hazardous=hazardous,
            dangerous=dangerous,
            detection_latency_percentiles=latency,
            tail=tail,
            tail_by_mechanism=tail_by_mechanism,
            event_attribution=event_attribution,
            gates=list(gates),
        )

    # -- serialization ------------------------------------------------------

    def to_jsonable(self) -> _t.Dict[str, _t.Any]:
        return {
            "profile": self.profile_name,
            "runs": self.runs,
            "outcomes": dict(self.outcome_histogram),
            "hazardous": self.hazardous.to_jsonable(),
            "dangerous": self.dangerous.to_jsonable(),
            "detection_latency_percentiles": {
                mechanism: {k: round(v, 9) for k, v in row.items()}
                for mechanism, row in sorted(
                    self.detection_latency_percentiles.items()
                )
            },
            "tail": [t.to_jsonable() for t in self.tail],
            "tail_by_mechanism": {
                name: [t.to_jsonable() for t in metrics]
                for name, metrics in sorted(self.tail_by_mechanism.items())
            },
            "event_attribution": dict(self.event_attribution),
            "gates": [gate.to_jsonable() for gate in self.gates],
        }

    def canonical(self) -> str:
        """Byte-stable serialization of the simulation-determined
        content — the equivalence tests compare this string across
        serial, parallel, and fork executions."""
        return json.dumps(
            self.to_jsonable(), sort_keys=True, separators=(",", ":")
        )

    def summary(self) -> str:
        """A few human-readable verdict lines."""
        lines = [
            f"risk report: {self.profile_name} ({self.runs} runs)",
            (
                f"  hazardous: {self.hazardous.count}/{self.runs} "
                f"(CP {self.hazardous.clopper_pearson_low:.2e}"
                f"..{self.hazardous.clopper_pearson_high:.2e})"
            ),
        ]
        for metrics in self.tail:
            lines.append(
                f"  VaR{metrics.level:.0%}={metrics.var:.3f} "
                f"CVaR{metrics.level:.0%}={metrics.cvar:.3f}"
            )
        for gate in self.gates:
            verdict = "PASS" if gate.passed else "FAIL"
            lines.append(f"  ASIL-{gate.asil.name}: {verdict}")
        return "\n".join(lines)
