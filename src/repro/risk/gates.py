"""ASIL acceptance gates: measured coverage pushed through the FMEDA.

The paper's promise (Sec. 2.1, 3.4) is that error-effect simulation
replaces the FMEDA's *expert-estimated* diagnostic coverage with a
*measured* one.  This module closes that loop for a sampled risk
campaign:

1. :func:`fmeda_from_spec` synthesizes a worksheet from the derived
   :class:`~repro.mission.StressorSpec` — one failure-mode row per
   fault descriptor, carrying its mission-scaled rate;
2. the campaign's
   :meth:`~repro.core.campaign.CampaignResult.diagnostic_coverage_by_descriptor`
   (and the measured safe fraction — injections that provably had no
   effect) are pushed into the worksheet via
   :meth:`~repro.safety.Fmeda.set_measured_coverage`;
3. :func:`evaluate_gates` checks ``meets(asil)`` per requested target
   and reports the SPFM / LFM / PMHF triple next to its targets as a
   pass/fail :class:`AsilVerdict`.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from ..core.classification import Outcome
from ..mission import StressorSpec, derive_stressor_spec
from ..safety import ASIL_TARGETS, Asil, FailureMode, Fmeda


def fmeda_from_spec(
    spec: StressorSpec,
    latent_coverage: float = 0.9,
) -> Fmeda:
    """One FMEDA row per derived fault descriptor.

    Rates are the spec's mission-scaled per-hour rates; diagnostic
    coverage starts at zero (pessimistic) until measurement replaces
    it.  ``latent_coverage`` is the classical expert input for the
    multiple-point test regime — injection campaigns measure the
    *detection* side, not the periodic-test side.
    """
    fmeda = Fmeda(spec.profile_name)
    for descriptor in spec.descriptors:
        fmeda.add(
            FailureMode(
                component=spec.profile_name,
                mode=descriptor.name,
                rate_per_hour=descriptor.rate_per_hour,
                diagnostic_coverage=0.0,
                latent_coverage=latent_coverage,
            )
        )
    return fmeda


def measured_safe_fraction(result) -> _t.Dict[str, float]:
    """Per-descriptor fraction of classified runs with *no* effect.

    The FMEDA's ``safe_fraction`` analog of measured diagnostic
    coverage: injections of a mode that demonstrably cannot perturb
    the system reduce its dangerous rate share.  Timeouts are
    inconclusive and excluded, mirroring
    ``diagnostic_coverage_by_descriptor``.
    """
    runs: _t.Dict[str, int] = {}
    safe: _t.Dict[str, int] = {}
    for record in result.records:
        if record.outcome is Outcome.TIMEOUT:
            continue
        for name in {
            inj.descriptor.name for inj in record.scenario.injections
        }:
            runs[name] = runs.get(name, 0) + 1
            if record.outcome is Outcome.NO_EFFECT:
                safe[name] = safe.get(name, 0) + 1
    return {
        name: safe.get(name, 0) / count for name, count in runs.items()
    }


def apply_measured_coverage(fmeda: Fmeda, result) -> _t.Dict[str, float]:
    """Push the campaign's measured DC and safe fractions into *fmeda*.

    Returns the applied coverage map (descriptor name -> measured DC).
    Descriptors the campaign never exercised keep their pessimistic
    defaults — an unmeasured mode must not silently pass.
    """
    by_mode = {mode.mode: mode for mode in fmeda.modes}
    applied: _t.Dict[str, float] = {}
    for name, coverage in sorted(
        result.diagnostic_coverage_by_descriptor().items()
    ):
        mode = by_mode.get(name)
        if mode is not None:
            fmeda.set_measured_coverage(mode.key, coverage)
            applied[name] = coverage
    for name, fraction in sorted(measured_safe_fraction(result).items()):
        mode = by_mode.get(name)
        if mode is not None:
            mode.safe_fraction = fraction
    return applied


@dataclasses.dataclass(frozen=True)
class AsilVerdict:
    """Pass/fail of one ASIL target with the numbers behind it."""

    asil: Asil
    passed: bool
    spfm: float
    lfm: float
    pmhf_per_hour: float
    spfm_target: float
    lfm_target: float
    pmhf_target: float
    measured_coverage: _t.Mapping[str, float]

    def to_jsonable(self) -> _t.Dict[str, _t.Any]:
        return {
            "asil": self.asil.name,
            "passed": self.passed,
            "spfm": round(self.spfm, 9),
            "lfm": round(self.lfm, 9),
            "pmhf_per_hour": round(self.pmhf_per_hour, 15),
            "targets": {
                "spfm": self.spfm_target,
                "lfm": self.lfm_target,
                "pmhf_per_hour": self.pmhf_target,
            },
            "measured_coverage": {
                name: round(value, 9)
                for name, value in sorted(self.measured_coverage.items())
            },
        }


def evaluate_gates(
    result,
    strategy,
    asil_targets: _t.Sequence[Asil] = (Asil.B, Asil.C, Asil.D),
    latent_coverage: float = 0.9,
) -> _t.List[AsilVerdict]:
    """The acceptance verdicts of one sampled campaign.

    Gate rates come from the *base* mission profile's derivation (the
    fleet-level contract), not the per-sample tilts — those exist to
    explore the space, and their importance corrections already landed
    in the probability estimates.
    """
    spec = derive_stressor_spec(
        strategy.sampler.profile,
        strategy.catalog,
        target_kinds=strategy._target_kinds,
        special_boost=max(1.0, strategy.special_boost),
    )
    fmeda = fmeda_from_spec(spec, latent_coverage=latent_coverage)
    applied = apply_measured_coverage(fmeda, result)
    verdicts = []
    for asil in asil_targets:
        spfm_target, lfm_target, pmhf_target = ASIL_TARGETS.get(
            asil, (0.0, 0.0, float("inf"))
        )
        verdicts.append(
            AsilVerdict(
                asil=asil,
                passed=fmeda.meets(asil),
                spfm=fmeda.spfm,
                lfm=fmeda.lfm,
                pmhf_per_hour=fmeda.pmhf,
                spfm_target=spfm_target,
                lfm_target=lfm_target,
                pmhf_target=pmhf_target,
                measured_coverage=dict(applied),
            )
        )
    return verdicts
