"""Mission-profile Monte Carlo risk engine (substrate S22).

Three layers turn the error-effect simulator into a risk engine:

* :mod:`~repro.risk.sampler` — :class:`StressSampler` draws correlated
  environmental trajectories (temperature / vibration / EMI / load)
  from a :class:`~repro.mission.MissionProfile`, with rare black-swan
  overlays, all from one explicit seed;
* :mod:`~repro.risk.strategy` — :class:`SampledScenarioStrategy`
  bridges each drawn trajectory into the existing planner/executor/
  fork/checkpoint stack as ordinary error scenarios, re-deriving the
  Fig. 2 rate scaling per sample;
* :mod:`~repro.risk.report` / :mod:`~repro.risk.gates` —
  :class:`RiskReport` folds the campaign into hazard probabilities
  with confidence intervals, detection-latency percentiles, VaR/CVaR
  tail metrics, and pass/fail ASIL acceptance gates through the FMEDA.
"""

from .gates import (
    AsilVerdict,
    apply_measured_coverage,
    evaluate_gates,
    fmeda_from_spec,
    measured_safe_fraction,
)
from .report import SEVERITY_LOSS, HazardEstimate, RiskReport, TailMetrics
from .sampler import (
    CHANNELS,
    DEFAULT_CORRELATION,
    DEFAULT_EVENTS,
    BlackSwanEvent,
    CorrelationError,
    CorrelationMatrix,
    SampledEnvironment,
    StressSampler,
)
from .strategy import SampledScenarioStrategy

__all__ = [
    "AsilVerdict",
    "apply_measured_coverage",
    "evaluate_gates",
    "fmeda_from_spec",
    "measured_safe_fraction",
    "SEVERITY_LOSS",
    "HazardEstimate",
    "RiskReport",
    "TailMetrics",
    "CHANNELS",
    "DEFAULT_CORRELATION",
    "DEFAULT_EVENTS",
    "BlackSwanEvent",
    "CorrelationError",
    "CorrelationMatrix",
    "SampledEnvironment",
    "StressSampler",
    "SampledScenarioStrategy",
]
