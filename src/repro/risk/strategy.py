"""The campaign bridge: sampled environments -> error scenarios.

:class:`SampledScenarioStrategy` is an ordinary
:class:`~repro.core.strategies.Strategy`, so sampled risk campaigns run
through the existing planner/executor, snapshot-fork, and checkpoint
machinery *unchanged*.  Per scenario it:

1. draws the next :class:`~repro.risk.sampler.SampledEnvironment` from
   its :class:`~repro.risk.sampler.StressSampler`;
2. folds the trajectory into an effective
   :class:`~repro.mission.MissionProfile` and re-runs the Fig. 2
   derivation (:func:`~repro.mission.derive_stressor_spec`) on it — so
   a hot, noisy sample really does tilt the fault mix toward
   temperature- and EMI-accelerated descriptors, per sample;
3. picks descriptors by the sample's derived rate shares, an operating
   state by the sample's load-tilted importance weights (correction
   retained in ``sampling_weight``), and injection times from the fault
   space (optionally pinned to one instant so whole batches share a
   snapshot-fork group).

Determinism contract: scenario content is a pure function of the
sampler's seed and the campaign rng handed to :meth:`next_scenario`.
Planning happens only in the planner process, so serial, parallel, and
fork backends see the identical scenario stream, and a checkpoint
resume — which replans with a freshly constructed strategy under the
same seeds — reproduces it byte for byte.
"""

from __future__ import annotations

import random
import typing as _t

from ..core.scenario import ErrorScenario, FaultSpace, PlannedInjection
from ..core.strategies import Strategy
from ..faults import FaultDescriptor
from ..mission import StressorSpec, derive_stressor_spec
from .sampler import SampledEnvironment, StressSampler


class SampledScenarioStrategy(Strategy):
    """Drives a campaign from correlated mission-environment samples.

    Parameters
    ----------
    space:
        The fault space to inject into.
    sampler:
        A seeded :class:`StressSampler`; one drawn trajectory per
        scenario.
    catalog:
        Base fault descriptors re-derived per sample (defaults to the
        space's own descriptor list).
    faults_per_scenario:
        Injections per scenario.
    special_boost:
        Base over-sampling factor for special operating states; each
        sample's mean load factor multiplies it (clamped to >= 1), so
        high-load draws probe the curbstone-style states harder.  The
        importance correction lands in ``sampling_weight`` as usual.
    injection_time:
        Optional fixed injection instant.  When set, every scenario of
        a campaign shares one fault-free prefix and thus one
        snapshot-fork group — the shape ``Campaign.run(fork=True)``
        amortizes.  When ``None``, times are drawn from the space's
        bins per injection.
    """

    def __init__(
        self,
        space: FaultSpace,
        sampler: StressSampler,
        catalog: _t.Optional[_t.Sequence[FaultDescriptor]] = None,
        faults_per_scenario: int = 1,
        special_boost: float = 10.0,
        injection_time: _t.Optional[int] = None,
    ):
        super().__init__(space, faults_per_scenario, spec=None)
        self.sampler = sampler
        self.catalog = list(
            space.descriptors if catalog is None else catalog
        )
        self.special_boost = special_boost
        self.injection_time = injection_time
        #: Drawn environments in scenario order == run-index order;
        #: the risk report joins outcomes back to environments by index.
        self.samples: _t.List[SampledEnvironment] = []
        #: The per-sample derived stressor specs, same order.
        self.specs: _t.List[StressorSpec] = []
        # Only kinds the platform actually exposes are worth deriving.
        self._target_kinds = sorted(
            {point.kind for point in space.points.values()}
        )
        # descriptor name -> applicable (path, descriptor) pairs.
        self._pairs_by_name: _t.Dict[str, _t.List] = {}
        for pair in space.pairs:
            self._pairs_by_name.setdefault(pair[1].name, []).append(pair)

    # -- per-sample derivation ----------------------------------------------

    def _derive(self, sample: SampledEnvironment) -> StressorSpec:
        boost = max(1.0, self.special_boost * sample.mean_load)
        return derive_stressor_spec(
            sample.effective_profile(self.sampler.profile),
            self.catalog,
            target_kinds=self._target_kinds,
            special_boost=boost,
        )

    def _draw_injections(
        self, rng: random.Random, spec: StressorSpec
    ) -> _t.List[PlannedInjection]:
        # Derived rate shares pick the descriptor; the path is uniform
        # among that descriptor's applicable points.  Descriptors with
        # no applicable pair (or a spec with no usable weight) fall
        # back to uniform space sampling.
        weighted = [
            (descriptor, weight)
            for descriptor, weight in spec.descriptor_weights()
            if descriptor.name in self._pairs_by_name and weight > 0
        ]
        injections = []
        for _ in range(self.faults_per_scenario):
            if weighted:
                names = [d.name for d, _ in weighted]
                weights = [w for _, w in weighted]
                name = rng.choices(names, weights=weights, k=1)[0]
                pair = rng.choice(self._pairs_by_name[name])
            else:
                pair = rng.choice(self.space.pairs)
            if self.injection_time is not None:
                injections.append(
                    PlannedInjection(
                        time=self.injection_time,
                        target_path=pair[0],
                        descriptor=pair[1],
                    )
                )
            else:
                injections.append(
                    self.space.sample_injection(rng, pair=pair)
                )
        return injections

    def _draw_sample_state(self, rng: random.Random, spec: StressorSpec):
        # Same contract as Strategy._draw_state, against the per-sample
        # spec instead of a fixed one.
        if not spec.state_weights:
            return None, 1.0
        weights = [w.weight for w in spec.state_weights]
        chosen = rng.choices(spec.state_weights, weights=weights, k=1)[0]
        if chosen.weight <= 0:
            return chosen.state, 1.0
        return chosen.state, chosen.state.fraction / chosen.weight

    # -- Strategy API -------------------------------------------------------

    def next_scenario(self, rng: random.Random) -> ErrorScenario:
        self.scenario_count += 1
        sample = self.sampler.draw()
        spec = self._derive(sample)
        self.samples.append(sample)
        self.specs.append(spec)
        state, weight = self._draw_sample_state(rng, spec)
        suffix = "+".join(sample.events) if sample.events else "nominal"
        return ErrorScenario(
            name=f"risk-{sample.index}-{suffix}",
            injections=self._draw_injections(rng, spec),
            operating_state=state,
            sampling_weight=weight,
        )
