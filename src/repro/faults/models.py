"""Formalized fault/error descriptors.

Sec. 3.3 of the paper: "Fault models for ASIC fabrication tests are
available (stuck-at, short, open, ...), but comparable fault/error
models are missing at higher levels of abstraction ... these fault
models should be available in a formalized form to enable automatic
configuration/generation of the error injectors."

:class:`FaultDescriptor` is that formalized form in this framework: a
declarative record naming *what* goes wrong (:class:`FaultKind`),
*where* it can be applied (injection-point kind), *how long* it lasts
(:class:`Persistence`), and the kind-specific parameters.  Stressors
consume descriptors and configure injectors from them — no hand-written
injection code per experiment.
"""

from __future__ import annotations

import dataclasses
import enum
import typing as _t


class FaultKind(enum.Enum):
    """The fault taxonomy, spanning digital HW, analog HW, SW, and comms."""

    # Digital hardware
    BIT_FLIP = "bit_flip"            # SEU in a memory cell / register / GPR
    STUCK_AT = "stuck_at"            # permanent stuck bit
    WORD_CORRUPTION = "word_corruption"  # multi-bit pattern (cross-layer)
    # Analog hardware / wiring
    OFFSET_DRIFT = "offset_drift"    # additive sensor error
    GAIN_DRIFT = "gain_drift"        # multiplicative sensor error
    STUCK_VALUE = "stuck_value"      # sensor output frozen
    OPEN_CIRCUIT = "open_circuit"    # open load: signal floats to rail
    SHORT_TO_GROUND = "short_to_ground"  # reads as zero
    NOISE_BURST = "noise_burst"      # EMI-induced noise
    # Communication
    MESSAGE_CORRUPTION = "message_corruption"  # bits flipped on the wire
    MESSAGE_DROP = "message_drop"
    MESSAGE_DELAY = "message_delay"
    MESSAGE_MASQUERADE = "message_masquerade"  # corruption w/ forged CRC
    # Software / timing
    EXECUTION_OVERHEAD = "execution_overhead"  # recovery/retry delay
    TASK_KILL = "task_kill"          # runnable stops executing
    BEHAVIOR_MODE = "behavior_mode"  # runaway software: livelock, crash


class Persistence(enum.Enum):
    """How long the fault stays active once injected."""

    TRANSIENT = "transient"      # single event (one flip, one frame)
    INTERMITTENT = "intermittent"  # active for a bounded window
    PERMANENT = "permanent"      # active until end of run


#: Injection-point kinds each fault kind is applicable to.
APPLICABLE_TARGETS: _t.Dict[FaultKind, _t.FrozenSet[str]] = {
    FaultKind.BIT_FLIP: frozenset({"memory", "register", "cpu"}),
    FaultKind.STUCK_AT: frozenset({"register"}),
    FaultKind.WORD_CORRUPTION: frozenset({"memory", "register"}),
    FaultKind.OFFSET_DRIFT: frozenset({"analog"}),
    FaultKind.GAIN_DRIFT: frozenset({"analog"}),
    FaultKind.STUCK_VALUE: frozenset({"analog"}),
    FaultKind.OPEN_CIRCUIT: frozenset({"analog"}),
    FaultKind.SHORT_TO_GROUND: frozenset({"analog"}),
    FaultKind.NOISE_BURST: frozenset({"analog"}),
    FaultKind.MESSAGE_CORRUPTION: frozenset({"can_wire"}),
    FaultKind.MESSAGE_DROP: frozenset({"can_wire"}),
    FaultKind.MESSAGE_DELAY: frozenset({"can_wire"}),
    FaultKind.MESSAGE_MASQUERADE: frozenset({"can_wire"}),
    FaultKind.EXECUTION_OVERHEAD: frozenset({"rtos"}),
    FaultKind.TASK_KILL: frozenset({"rtos"}),
    FaultKind.BEHAVIOR_MODE: frozenset({"behavior"}),
}


@dataclasses.dataclass(frozen=True)
class FaultDescriptor:
    """A formalized, executable fault/error description.

    Parameters
    ----------
    name:
        Human-readable identifier used in reports and coverage bins.
    kind:
        The fault class.
    persistence:
        Temporal extent; :attr:`duration` gives the window for
        intermittent faults (kernel time units).
    params:
        Kind-specific parameters, e.g. ``{"bit": 3}`` for a bit flip,
        ``{"offset": 0.8}`` for drift, ``{"patterns": {...}}`` for a
        derived word-corruption model.
    rate_per_hour:
        Expected occurrence rate (λ) from the mission-profile
        derivation; campaigns use it to weight scenario sampling and
        FMEDA uses it as the base failure rate contribution.
    """

    name: str
    kind: FaultKind
    persistence: Persistence = Persistence.TRANSIENT
    duration: int = 0
    params: _t.Mapping[str, _t.Any] = dataclasses.field(default_factory=dict)
    rate_per_hour: float = 0.0

    def __post_init__(self):
        if self.persistence is Persistence.INTERMITTENT and self.duration <= 0:
            raise ValueError(
                f"{self.name!r}: intermittent faults need a positive duration"
            )
        if self.rate_per_hour < 0:
            raise ValueError(f"{self.name!r}: negative rate")

    def applicable_to(self, target_kind: str) -> bool:
        """Whether this descriptor can act on the given injection-point
        kind."""
        return target_kind in APPLICABLE_TARGETS[self.kind]

    def with_params(self, **updates) -> "FaultDescriptor":
        """A copy with updated params (descriptors are immutable)."""
        params = dict(self.params)
        params.update(updates)
        return dataclasses.replace(self, params=params)

    def with_rate(self, rate_per_hour: float) -> "FaultDescriptor":
        return dataclasses.replace(self, rate_per_hour=rate_per_hour)
