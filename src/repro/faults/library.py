"""A catalog of standard automotive fault descriptors.

Base rates follow the usual orders of magnitude from reliability
handbooks (SEU rates in FIT per Mbit, wiring faults dominated by
vibration exposure); the mission-profile derivation
(:mod:`repro.mission.derivation`) rescales them for a concrete vehicle
context, which is why every entry here carries a *base* rate.
"""

from __future__ import annotations

import typing as _t

from .models import FaultDescriptor, FaultKind, Persistence

#: 1 FIT = 1 failure per 1e9 device hours.
FIT = 1e-9 * 3600 / 3600  # per hour: 1e-9


def fit(value: float) -> float:
    """Convert FIT to failures/hour."""
    return value * 1e-9


# --- digital hardware --------------------------------------------------------

SRAM_SEU = FaultDescriptor(
    name="sram_seu",
    kind=FaultKind.BIT_FLIP,
    persistence=Persistence.TRANSIENT,
    params={},
    rate_per_hour=fit(700.0),  # per Mbit, sea level, nominal
)

REGISTER_SEU = FaultDescriptor(
    name="register_seu",
    kind=FaultKind.BIT_FLIP,
    persistence=Persistence.TRANSIENT,
    rate_per_hour=fit(50.0),
)

REGISTER_STUCK = FaultDescriptor(
    name="register_stuck_bit",
    kind=FaultKind.STUCK_AT,
    persistence=Persistence.PERMANENT,
    params={"level": 1},
    rate_per_hour=fit(2.0),
)

CPU_GPR_SEU = FaultDescriptor(
    name="cpu_gpr_seu",
    kind=FaultKind.BIT_FLIP,
    persistence=Persistence.TRANSIENT,
    rate_per_hour=fit(30.0),
)

# --- wiring / analog ---------------------------------------------------------

SENSOR_OPEN_LOAD = FaultDescriptor(
    name="sensor_open_load",
    kind=FaultKind.OPEN_CIRCUIT,
    persistence=Persistence.PERMANENT,
    rate_per_hour=fit(20.0),
)

SENSOR_SHORT_TO_GROUND = FaultDescriptor(
    name="sensor_short_to_ground",
    kind=FaultKind.SHORT_TO_GROUND,
    persistence=Persistence.PERMANENT,
    rate_per_hour=fit(15.0),
)

SENSOR_OFFSET_DRIFT = FaultDescriptor(
    name="sensor_offset_drift",
    kind=FaultKind.OFFSET_DRIFT,
    persistence=Persistence.PERMANENT,
    params={"offset": 0.5},
    rate_per_hour=fit(40.0),
)

SENSOR_GAIN_DRIFT = FaultDescriptor(
    name="sensor_gain_drift",
    kind=FaultKind.GAIN_DRIFT,
    persistence=Persistence.PERMANENT,
    params={"gain": 1.2},
    rate_per_hour=fit(25.0),
)

SENSOR_STUCK = FaultDescriptor(
    name="sensor_stuck_value",
    kind=FaultKind.STUCK_VALUE,
    persistence=Persistence.PERMANENT,
    params={"value": 2.5},
    rate_per_hour=fit(30.0),
)

EMI_NOISE_BURST = FaultDescriptor(
    name="emi_noise_burst",
    kind=FaultKind.NOISE_BURST,
    persistence=Persistence.INTERMITTENT,
    duration=5_000_000,  # 5 ms burst
    params={"sigma": 0.4},
    rate_per_hour=fit(100.0),
)

# --- communication ------------------------------------------------------------

CAN_BIT_CORRUPTION = FaultDescriptor(
    name="can_bit_corruption",
    kind=FaultKind.MESSAGE_CORRUPTION,
    persistence=Persistence.TRANSIENT,
    params={"bits": 1},
    rate_per_hour=fit(200.0),
)

CAN_FRAME_DROP = FaultDescriptor(
    name="can_frame_drop",
    kind=FaultKind.MESSAGE_DROP,
    persistence=Persistence.TRANSIENT,
    rate_per_hour=fit(50.0),
)

CAN_MASQUERADE = FaultDescriptor(
    name="can_masquerade",
    kind=FaultKind.MESSAGE_MASQUERADE,
    persistence=Persistence.TRANSIENT,
    params={"bits": 2},
    rate_per_hour=fit(0.5),  # corruption colliding with a valid CRC
)

CAN_BUS_OFF_WINDOW = FaultDescriptor(
    name="can_bus_disturbance",
    kind=FaultKind.MESSAGE_DROP,
    persistence=Persistence.INTERMITTENT,
    duration=20_000_000,  # 20 ms outage
    rate_per_hour=fit(10.0),
)

# --- software / timing ----------------------------------------------------------

RECOVERY_OVERHEAD = FaultDescriptor(
    name="recovery_overhead",
    kind=FaultKind.EXECUTION_OVERHEAD,
    persistence=Persistence.TRANSIENT,
    params={"extra": 200_000},  # 0.2 ms of retry work
    rate_per_hour=fit(80.0),
)

TASK_KILL = FaultDescriptor(
    name="task_kill",
    kind=FaultKind.TASK_KILL,
    persistence=Persistence.PERMANENT,
    rate_per_hour=fit(5.0),
)


STANDARD_CATALOG: _t.Tuple[FaultDescriptor, ...] = (
    SRAM_SEU,
    REGISTER_SEU,
    REGISTER_STUCK,
    CPU_GPR_SEU,
    SENSOR_OPEN_LOAD,
    SENSOR_SHORT_TO_GROUND,
    SENSOR_OFFSET_DRIFT,
    SENSOR_GAIN_DRIFT,
    SENSOR_STUCK,
    EMI_NOISE_BURST,
    CAN_BIT_CORRUPTION,
    CAN_FRAME_DROP,
    CAN_MASQUERADE,
    CAN_BUS_OFF_WINDOW,
    RECOVERY_OVERHEAD,
    TASK_KILL,
)


def catalog_by_name() -> _t.Dict[str, FaultDescriptor]:
    return {descriptor.name: descriptor for descriptor in STANDARD_CATALOG}


def catalog_for_target(target_kind: str) -> _t.List[FaultDescriptor]:
    """All standard descriptors applicable to an injection-point kind."""
    return [
        descriptor
        for descriptor in STANDARD_CATALOG
        if descriptor.applicable_to(target_kind)
    ]
