"""Instruction set architecture of the embedded core (``vp16`` — a
deliberately small 32-bit RISC).

The virtual prototype needs a processor that executes real software so
stress tests can observe fault *propagation through software* — the
paper's point that VP-based safety evaluation must cover "ECUs with the
integrated software" (Sec. 3.4).  The ISA is register-register with 16
GPRs and a fixed 32-bit encoding:

    [31:24] opcode  [23:20] rd  [19:16] rs1  [15:12] rs2  [11:0] imm12

``imm12`` is sign-extended.  Branches are PC-relative in instruction
units.  ``r0`` reads as zero and ignores writes (RISC convention, keeps
the assembler simple).
"""

from __future__ import annotations

import enum
import typing as _t

WORD_MASK = 0xFFFFFFFF
NUM_REGS = 16
INSTRUCTION_BYTES = 4
IMM_BITS = 12
IMM_MIN = -(1 << (IMM_BITS - 1))
IMM_MAX = (1 << (IMM_BITS - 1)) - 1


class Op(enum.IntEnum):
    """Opcodes.  Values are stable — they are the binary encoding."""

    NOP = 0x00
    HALT = 0x01
    LDI = 0x02   # rd = imm
    LUI = 0x03   # rd = imm << 12 (build large constants with LDI+LUI... via OR)
    MOV = 0x04   # rd = rs1
    ADD = 0x10   # rd = rs1 + rs2
    SUB = 0x11
    AND = 0x12
    OR = 0x13
    XOR = 0x14
    SLL = 0x15   # rd = rs1 << (rs2 & 31)
    SRL = 0x16   # rd = rs1 >> (rs2 & 31), logical
    ADDI = 0x17  # rd = rs1 + imm
    ANDI = 0x18
    ORI = 0x19
    XORI = 0x1A
    SLLI = 0x1B  # rd = rs1 << imm
    SRLI = 0x1C
    MUL = 0x1D   # rd = (rs1 * rs2) low 32
    SLT = 0x1E   # rd = 1 if signed rs1 < rs2 else 0
    SLTU = 0x1F  # unsigned compare
    LD = 0x20    # rd = mem32[rs1 + imm]
    ST = 0x21    # mem32[rs1 + imm] = rs2
    LDB = 0x22   # rd = mem8[rs1 + imm] (zero extended)
    STB = 0x23   # mem8[rs1 + imm] = rs2 & 0xff
    BEQ = 0x30   # if rs1 == rs2: pc += imm (in instructions)
    BNE = 0x31
    BLT = 0x32   # signed
    BGE = 0x33   # signed
    JMP = 0x34   # pc += imm
    JAL = 0x35   # rd = pc + 4; pc += imm
    JR = 0x36    # pc = rs1
    CSRR = 0x40  # rd = csr[imm] (cycle counter etc.)


#: Base cycle cost per opcode (memory ops add bus latency on top).
CYCLE_COST: _t.Dict[Op, int] = {
    Op.NOP: 1, Op.HALT: 1, Op.LDI: 1, Op.LUI: 1, Op.MOV: 1,
    Op.ADD: 1, Op.SUB: 1, Op.AND: 1, Op.OR: 1, Op.XOR: 1,
    Op.SLL: 1, Op.SRL: 1, Op.ADDI: 1, Op.ANDI: 1, Op.ORI: 1,
    Op.XORI: 1, Op.SLLI: 1, Op.SRLI: 1, Op.MUL: 3, Op.SLT: 1,
    Op.SLTU: 1, Op.LD: 2, Op.ST: 2, Op.LDB: 2, Op.STB: 2,
    Op.BEQ: 2, Op.BNE: 2, Op.BLT: 2, Op.BGE: 2, Op.JMP: 2,
    Op.JAL: 2, Op.JR: 2, Op.CSRR: 1,
}


class Instruction(_t.NamedTuple):
    """A decoded instruction."""

    op: Op
    rd: int
    rs1: int
    rs2: int
    imm: int  # sign-extended

    def __str__(self) -> str:  # pragma: no cover - diagnostics
        return (
            f"{self.op.name} rd=r{self.rd} rs1=r{self.rs1} "
            f"rs2=r{self.rs2} imm={self.imm}"
        )


def sign_extend(value: int, bits: int) -> int:
    """Interpret the low *bits* of *value* as a signed integer."""
    mask = (1 << bits) - 1
    value &= mask
    sign = 1 << (bits - 1)
    return (value ^ sign) - sign


def encode(instr: Instruction) -> int:
    """Encode to the 32-bit binary form."""
    if not IMM_MIN <= instr.imm <= IMM_MAX:
        raise ValueError(f"immediate {instr.imm} out of 12-bit range")
    for reg in (instr.rd, instr.rs1, instr.rs2):
        if not 0 <= reg < NUM_REGS:
            raise ValueError(f"register index out of range: {reg}")
    return (
        (int(instr.op) << 24)
        | (instr.rd << 20)
        | (instr.rs1 << 16)
        | (instr.rs2 << 12)
        | (instr.imm & ((1 << IMM_BITS) - 1))
    )


class IllegalInstruction(Exception):
    """Raised by decode on an unknown opcode.

    Fault campaigns care about this: a bit flip in instruction memory
    frequently lands here, and a real core takes an illegal-instruction
    trap — a *detected* error.
    """

    def __init__(self, word: int):
        super().__init__(f"illegal instruction word {word:#010x}")
        self.word = word


def decode(word: int) -> Instruction:
    """Decode a 32-bit instruction word."""
    opcode = (word >> 24) & 0xFF
    try:
        op = Op(opcode)
    except ValueError:
        raise IllegalInstruction(word) from None
    return Instruction(
        op=op,
        rd=(word >> 20) & 0xF,
        rs1=(word >> 16) & 0xF,
        rs2=(word >> 12) & 0xF,
        imm=sign_extend(word, IMM_BITS),
    )
