"""Disassembler for vp16 — the inverse of the assembler.

Produces assembler-compatible text: ``assemble(disassemble(image))``
reproduces the exact image (verified by property test), which makes it
usable both for debugging campaign traces ("what instruction did the
bit flip land on?") and as a mutation surface.
"""

from __future__ import annotations

import typing as _t

from .isa import IllegalInstruction, Instruction, Op, decode, encode

#: Which encoding fields each mnemonic actually prints: fields not in
#: the set are don't-cares the assembler will emit as zero.
_PRINTED_FIELDS: _t.Dict[Op, _t.FrozenSet[str]] = {
    Op.NOP: frozenset(),
    Op.HALT: frozenset(),
    Op.LDI: frozenset({"rd", "imm"}),
    Op.LUI: frozenset({"rd", "imm"}),
    Op.CSRR: frozenset({"rd", "imm"}),
    Op.MOV: frozenset({"rd", "rs1"}),
    Op.ADD: frozenset({"rd", "rs1", "rs2"}),
    Op.SUB: frozenset({"rd", "rs1", "rs2"}),
    Op.AND: frozenset({"rd", "rs1", "rs2"}),
    Op.OR: frozenset({"rd", "rs1", "rs2"}),
    Op.XOR: frozenset({"rd", "rs1", "rs2"}),
    Op.SLL: frozenset({"rd", "rs1", "rs2"}),
    Op.SRL: frozenset({"rd", "rs1", "rs2"}),
    Op.MUL: frozenset({"rd", "rs1", "rs2"}),
    Op.SLT: frozenset({"rd", "rs1", "rs2"}),
    Op.SLTU: frozenset({"rd", "rs1", "rs2"}),
    Op.ADDI: frozenset({"rd", "rs1", "imm"}),
    Op.ANDI: frozenset({"rd", "rs1", "imm"}),
    Op.ORI: frozenset({"rd", "rs1", "imm"}),
    Op.XORI: frozenset({"rd", "rs1", "imm"}),
    Op.SLLI: frozenset({"rd", "rs1", "imm"}),
    Op.SRLI: frozenset({"rd", "rs1", "imm"}),
    Op.LD: frozenset({"rd", "rs1", "imm"}),
    Op.LDB: frozenset({"rd", "rs1", "imm"}),
    Op.ST: frozenset({"rs1", "rs2", "imm"}),
    Op.STB: frozenset({"rs1", "rs2", "imm"}),
    Op.BEQ: frozenset({"rs1", "rs2", "imm"}),
    Op.BNE: frozenset({"rs1", "rs2", "imm"}),
    Op.BLT: frozenset({"rs1", "rs2", "imm"}),
    Op.BGE: frozenset({"rs1", "rs2", "imm"}),
    Op.JMP: frozenset({"imm"}),
    Op.JAL: frozenset({"rd", "imm"}),
    Op.JR: frozenset({"rs1"}),
}


def _canonical(instr: Instruction) -> Instruction:
    """The instruction with unprinted fields zeroed."""
    printed = _PRINTED_FIELDS[instr.op]
    return Instruction(
        instr.op,
        instr.rd if "rd" in printed else 0,
        instr.rs1 if "rs1" in printed else 0,
        instr.rs2 if "rs2" in printed else 0,
        instr.imm if "imm" in printed else 0,
    )


def format_instruction(instr: Instruction) -> str:
    """One line of assembler syntax for a decoded instruction."""
    op = instr.op
    mnemonic = op.name.lower()
    if op in (Op.NOP, Op.HALT):
        return mnemonic
    if op in (Op.LDI, Op.LUI, Op.CSRR):
        return f"{mnemonic} r{instr.rd}, {instr.imm}"
    if op is Op.MOV:
        return f"{mnemonic} r{instr.rd}, r{instr.rs1}"
    if op in (
        Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR,
        Op.SLL, Op.SRL, Op.MUL, Op.SLT, Op.SLTU,
    ):
        return f"{mnemonic} r{instr.rd}, r{instr.rs1}, r{instr.rs2}"
    if op in (Op.ADDI, Op.ANDI, Op.ORI, Op.XORI, Op.SLLI, Op.SRLI):
        return f"{mnemonic} r{instr.rd}, r{instr.rs1}, {instr.imm}"
    if op in (Op.LD, Op.LDB):
        return f"{mnemonic} r{instr.rd}, r{instr.rs1}, {instr.imm}"
    if op in (Op.ST, Op.STB):
        return f"{mnemonic} r{instr.rs1}, r{instr.rs2}, {instr.imm}"
    if op in (Op.BEQ, Op.BNE, Op.BLT, Op.BGE):
        return f"{mnemonic} r{instr.rs1}, r{instr.rs2}, {instr.imm}"
    if op is Op.JMP:
        return f"{mnemonic} {instr.imm}"
    if op is Op.JAL:
        return f"{mnemonic} r{instr.rd}, {instr.imm}"
    if op is Op.JR:
        return f"{mnemonic} r{instr.rs1}"
    raise AssertionError(f"unhandled opcode {op}")  # pragma: no cover


def disassemble(
    image: _t.Union[bytes, bytearray],
    origin: int = 0,
    with_addresses: bool = False,
) -> str:
    """Disassemble a flat image (length must be word-aligned).

    Unknown opcodes render as ``.word 0x...`` so any image round-trips.
    """
    if len(image) % 4:
        raise ValueError("image length must be a multiple of 4")
    lines: _t.List[str] = []
    for offset in range(0, len(image), 4):
        word = int.from_bytes(image[offset : offset + 4], "little")
        try:
            instr = decode(word)
            # Words with set don't-care bits (e.g. a NOP with nonzero
            # operand fields) cannot round-trip through mnemonics —
            # the mnemonic only encodes the printed fields.  Keep such
            # words as raw data.
            if encode(_canonical(instr)) == word:
                text = format_instruction(instr)
            else:
                text = f".word {word:#010x}"
        except IllegalInstruction:
            text = f".word {word:#010x}"
        if with_addresses:
            text = f"{origin + offset:#06x}:  {text}"
        lines.append(text)
    return "\n".join(lines)
