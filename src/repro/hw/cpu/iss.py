"""Instruction-set simulator for the vp16 core.

The ISS is a loosely-timed TLM initiator: it fetches and accesses data
through its initiator socket, accumulates instruction and bus latency in
a quantum keeper, and only synchronises with the kernel at quantum
boundaries — the simulation-performance pattern Sec. 3.4 of the paper
prescribes for running "a vast amount of instructions" of application
software.

Fault behaviour built in:

* The register bank and PC are an injection point (bit flips, stuck
  bits are applied by ``repro.core.injector.CpuInjector``).
* Illegal instructions and bus errors take a *trap*: if a trap vector
  is configured the core jumps there (software can run a recovery
  handler); otherwise the core halts with a recorded trap cause.  Both
  outcomes are visible to the campaign classifier as detected errors.
"""

from __future__ import annotations

import typing as _t

from ...kernel import Module, QuantumKeeper
from ...tlm import GenericPayload, InitiatorSocket
from .isa import (
    CYCLE_COST,
    INSTRUCTION_BYTES,
    IllegalInstruction,
    Instruction,
    NUM_REGS,
    Op,
    WORD_MASK,
    decode,
)


def _signed(value: int) -> int:
    value &= WORD_MASK
    return value - (1 << 32) if value & 0x80000000 else value


class CpuInjectionPoint:
    """Bit-level access to the architectural state (regs + PC)."""

    def __init__(self, cpu: "Vp16Cpu"):
        self.name = f"{cpu.full_name}.arch"
        self.kind = "cpu"
        self._cpu = cpu

    @property
    def num_regs(self) -> int:
        return NUM_REGS

    def flip_reg(self, index: int, bit: int) -> None:
        if index == 0:
            return  # r0 is hardwired zero
        self._cpu.regs[index] ^= 1 << bit
        self._cpu.regs[index] &= WORD_MASK

    def flip_pc(self, bit: int) -> None:
        self._cpu.pc ^= 1 << bit
        self._cpu.pc &= WORD_MASK

    def peek_reg(self, index: int) -> int:
        return self._cpu.regs[index]

    def poke_reg(self, index: int, value: int) -> None:
        if index:
            self._cpu.regs[index] = value & WORD_MASK


class Vp16Cpu(Module):
    """The embedded core of an ECU model.

    Parameters
    ----------
    clock_period:
        Kernel time units per cycle (e.g. 10 => 100 MHz at 1 ns units).
    trap_vector:
        Byte address of the software trap handler, or ``None`` to halt
        on traps.
    quantum:
        Temporal-decoupling quantum; ``None`` uses the global quantum.
    """

    def __init__(
        self,
        name: str,
        parent: Module,
        clock_period: int = 10,
        trap_vector: _t.Optional[int] = None,
        quantum: _t.Optional[int] = None,
        max_instructions: _t.Optional[int] = None,
    ):
        super().__init__(name, parent=parent)
        self.clock_period = clock_period
        self.trap_vector = trap_vector
        self.max_instructions = max_instructions
        self.isock = InitiatorSocket(self, "isock")
        self.qk = QuantumKeeper(self.sim, quantum)
        self.regs = [0] * NUM_REGS
        self.pc = 0
        self.halted = False
        self.trap_cause: _t.Optional[str] = None
        self.trap_count = 0
        self.instructions_retired = 0
        #: Notified (delta) when the core halts.
        self.halt_event = self.event("halt")
        self.register_injection_point("arch", CpuInjectionPoint(self))
        self._proc = None

    # -- control ----------------------------------------------------------

    def reset(self, pc: int = 0) -> None:
        self.regs = [0] * NUM_REGS
        self.pc = pc
        self.halted = False
        self.trap_cause = None
        self.instructions_retired = 0
        self.qk.reset()

    def start(self, pc: _t.Optional[int] = None) -> None:
        """Spawn the execution process (call once after binding)."""
        if pc is not None:
            self.pc = pc
        self._proc = self.process(self._run(), name="exec")

    # -- bus helpers ---------------------------------------------------------

    def _read_word(self, address: int) -> _t.Tuple[_t.Optional[int], int]:
        payload = GenericPayload.read(address, 4)
        delay = self.isock.b_transport(payload, 0)
        if not payload.ok:
            return None, delay
        return payload.word, delay

    def _read_byte(self, address: int) -> _t.Tuple[_t.Optional[int], int]:
        payload = GenericPayload.read(address, 1)
        delay = self.isock.b_transport(payload, 0)
        if not payload.ok:
            return None, delay
        return payload.data[0], delay

    def _write(self, address: int, data: bytes) -> _t.Tuple[bool, int]:
        payload = GenericPayload.write(address, data)
        delay = self.isock.b_transport(payload, 0)
        return payload.ok, delay

    # -- trap handling ---------------------------------------------------------

    def _trap(self, cause: str) -> None:
        self.trap_count += 1
        self.trap_cause = cause
        if self.trap_vector is not None:
            # r15 doubles as the exception link register.
            self.regs[15] = self.pc & WORD_MASK
            self.pc = self.trap_vector
        else:
            self._halt()

    def _halt(self) -> None:
        self.halted = True
        self.halt_event.notify(0)

    # -- the execution loop ------------------------------------------------

    def _run(self):
        while not self.halted:
            if (
                self.max_instructions is not None
                and self.instructions_retired >= self.max_instructions
            ):
                self._trap("instruction_budget")
                if self.halted:
                    break
            word, fetch_delay = self._read_word(self.pc)
            self.qk.inc(fetch_delay)
            if word is None:
                self._trap("fetch_bus_error")
                if self.halted:
                    break
                continue
            try:
                instr = decode(word)
            except IllegalInstruction:
                self._trap("illegal_instruction")
                if self.halted:
                    break
                continue
            bus_delay = self._execute(instr)
            self.qk.inc(
                CYCLE_COST[instr.op] * self.clock_period + bus_delay
            )
            self.instructions_retired += 1
            self.regs[0] = 0  # r0 stays hardwired
            if self.qk.need_sync():
                yield self.qk.sync()
        if self.qk.local_offset:
            yield self.qk.sync()

    def _execute(self, instr: Instruction) -> int:
        """Execute one decoded instruction; returns extra bus delay."""
        op = instr.op
        regs = self.regs
        rd, rs1, rs2, imm = instr.rd, instr.rs1, instr.rs2, instr.imm
        next_pc = (self.pc + INSTRUCTION_BYTES) & WORD_MASK
        delay = 0

        if op is Op.NOP:
            pass
        elif op is Op.HALT:
            self._halt()
            return 0
        elif op is Op.LDI:
            regs[rd] = imm & WORD_MASK
        elif op is Op.LUI:
            regs[rd] = (imm << 12) & WORD_MASK
        elif op is Op.MOV:
            regs[rd] = regs[rs1]
        elif op is Op.ADD:
            regs[rd] = (regs[rs1] + regs[rs2]) & WORD_MASK
        elif op is Op.SUB:
            regs[rd] = (regs[rs1] - regs[rs2]) & WORD_MASK
        elif op is Op.AND:
            regs[rd] = regs[rs1] & regs[rs2]
        elif op is Op.OR:
            regs[rd] = regs[rs1] | regs[rs2]
        elif op is Op.XOR:
            regs[rd] = regs[rs1] ^ regs[rs2]
        elif op is Op.SLL:
            regs[rd] = (regs[rs1] << (regs[rs2] & 31)) & WORD_MASK
        elif op is Op.SRL:
            regs[rd] = (regs[rs1] & WORD_MASK) >> (regs[rs2] & 31)
        elif op is Op.ADDI:
            regs[rd] = (regs[rs1] + imm) & WORD_MASK
        elif op is Op.ANDI:
            regs[rd] = regs[rs1] & (imm & WORD_MASK)
        elif op is Op.ORI:
            regs[rd] = regs[rs1] | (imm & WORD_MASK)
        elif op is Op.XORI:
            regs[rd] = regs[rs1] ^ (imm & WORD_MASK)
        elif op is Op.SLLI:
            regs[rd] = (regs[rs1] << (imm & 31)) & WORD_MASK
        elif op is Op.SRLI:
            regs[rd] = (regs[rs1] & WORD_MASK) >> (imm & 31)
        elif op is Op.MUL:
            regs[rd] = (regs[rs1] * regs[rs2]) & WORD_MASK
        elif op is Op.SLT:
            regs[rd] = int(_signed(regs[rs1]) < _signed(regs[rs2]))
        elif op is Op.SLTU:
            regs[rd] = int((regs[rs1] & WORD_MASK) < (regs[rs2] & WORD_MASK))
        elif op is Op.LD:
            value, delay = self._read_word((regs[rs1] + imm) & WORD_MASK)
            if value is None:
                self._trap("load_bus_error")
                return delay
            regs[rd] = value
        elif op is Op.LDB:
            value, delay = self._read_byte((regs[rs1] + imm) & WORD_MASK)
            if value is None:
                self._trap("load_bus_error")
                return delay
            regs[rd] = value
        elif op is Op.ST:
            ok, delay = self._write(
                (regs[rs1] + imm) & WORD_MASK,
                regs[rs2].to_bytes(4, "little"),
            )
            if not ok:
                self._trap("store_bus_error")
                return delay
        elif op is Op.STB:
            ok, delay = self._write(
                (regs[rs1] + imm) & WORD_MASK,
                bytes([regs[rs2] & 0xFF]),
            )
            if not ok:
                self._trap("store_bus_error")
                return delay
        elif op is Op.BEQ:
            if regs[rs1] == regs[rs2]:
                next_pc = (self.pc + imm * INSTRUCTION_BYTES) & WORD_MASK
        elif op is Op.BNE:
            if regs[rs1] != regs[rs2]:
                next_pc = (self.pc + imm * INSTRUCTION_BYTES) & WORD_MASK
        elif op is Op.BLT:
            if _signed(regs[rs1]) < _signed(regs[rs2]):
                next_pc = (self.pc + imm * INSTRUCTION_BYTES) & WORD_MASK
        elif op is Op.BGE:
            if _signed(regs[rs1]) >= _signed(regs[rs2]):
                next_pc = (self.pc + imm * INSTRUCTION_BYTES) & WORD_MASK
        elif op is Op.JMP:
            next_pc = (self.pc + imm * INSTRUCTION_BYTES) & WORD_MASK
        elif op is Op.JAL:
            regs[rd] = next_pc
            next_pc = (self.pc + imm * INSTRUCTION_BYTES) & WORD_MASK
        elif op is Op.JR:
            next_pc = regs[rs1] & WORD_MASK
        elif op is Op.CSRR:
            if imm == 0:
                regs[rd] = self.instructions_retired & WORD_MASK
            elif imm == 1:
                regs[rd] = self.qk.local_time & WORD_MASK
            else:
                regs[rd] = 0
        else:  # pragma: no cover - decode guarantees coverage
            self._trap("illegal_instruction")
            return 0

        self.pc = next_pc
        return delay
