"""Two-pass assembler for the vp16 ISA.

Accepts the textual syntax the examples and benchmarks use::

    ; read sensor, clamp, write actuator
    start:
        ldi   r1, 0x40          ; base address via lui/ori for >12 bit
        ld    r2, r1, 0         ; r2 = mem[r1 + 0]
        blt   r2, r3, ok
        jmp   start
    ok:
        halt

    table: .word 1, 2, 3

Directives: ``.org <addr>`` (byte address), ``.word <v, ...>``.
Labels may be used anywhere an immediate is expected; branch/jump
immediates are converted to PC-relative instruction counts
automatically.
"""

from __future__ import annotations

import re
import typing as _t

from .isa import (
    IMM_MAX,
    IMM_MIN,
    INSTRUCTION_BYTES,
    Instruction,
    Op,
    encode,
)

_BRANCH_OPS = {Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.JMP, Op.JAL}

#: operand signature per mnemonic: r=register, i=immediate/label
_SIGNATURES: _t.Dict[Op, str] = {
    Op.NOP: "", Op.HALT: "",
    Op.LDI: "ri", Op.LUI: "ri", Op.MOV: "rr",
    Op.ADD: "rrr", Op.SUB: "rrr", Op.AND: "rrr", Op.OR: "rrr",
    Op.XOR: "rrr", Op.SLL: "rrr", Op.SRL: "rrr", Op.MUL: "rrr",
    Op.SLT: "rrr", Op.SLTU: "rrr",
    Op.ADDI: "rri", Op.ANDI: "rri", Op.ORI: "rri", Op.XORI: "rri",
    Op.SLLI: "rri", Op.SRLI: "rri",
    Op.LD: "rri", Op.LDB: "rri",
    Op.ST: "rri",   # st rbase, rsrc, imm
    Op.STB: "rri",
    Op.BEQ: "rri", Op.BNE: "rri", Op.BLT: "rri", Op.BGE: "rri",
    Op.JMP: "i", Op.JAL: "ri", Op.JR: "r",
    Op.CSRR: "ri",
}

_LABEL_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


class AssemblyError(Exception):
    """Syntax or semantic error, annotated with the source line."""

    def __init__(self, line_no: int, message: str):
        super().__init__(f"line {line_no}: {message}")
        self.line_no = line_no


class Program(_t.NamedTuple):
    """Assembled output."""

    image: bytes           # flat byte image starting at `origin`
    origin: int
    labels: _t.Dict[str, int]   # label -> byte address
    listing: _t.List[str]       # one line per emitted word (diagnostics)


def _parse_register(token: str, line_no: int) -> int:
    match = re.fullmatch(r"[rR](\d{1,2})", token)
    if not match or not 0 <= int(match.group(1)) <= 15:
        raise AssemblyError(line_no, f"expected register, got {token!r}")
    return int(match.group(1))


def _parse_int(token: str) -> _t.Optional[int]:
    try:
        return int(token, 0)
    except ValueError:
        return None


def assemble(source: str, origin: int = 0) -> Program:
    """Assemble *source* into a :class:`Program`.

    Raises :class:`AssemblyError` with the offending line number on any
    syntax problem, unknown mnemonic, undefined label, or out-of-range
    immediate.
    """
    # ---- pass 1: tokenize, assign addresses, collect labels -------------
    items: _t.List[_t.Tuple[int, int, str, _t.List[str]]] = []
    labels: _t.Dict[str, int] = {}
    address = origin
    for line_no, raw in enumerate(source.splitlines(), start=1):
        line = raw.split(";")[0].split("#")[0].strip()
        if not line:
            continue
        while ":" in line:
            label, _, rest = line.partition(":")
            label = label.strip()
            if not _LABEL_RE.match(label):
                raise AssemblyError(line_no, f"bad label {label!r}")
            if label in labels:
                raise AssemblyError(line_no, f"duplicate label {label!r}")
            labels[label] = address
            line = rest.strip()
        if not line:
            continue
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        operands = (
            [p.strip() for p in parts[1].split(",")] if len(parts) > 1 else []
        )
        if mnemonic == ".org":
            value = _parse_int(operands[0]) if operands else None
            if value is None or value < address:
                raise AssemblyError(line_no, ".org needs a forward address")
            address = value
            items.append((line_no, address, ".org", operands))
            continue
        items.append((line_no, address, mnemonic, operands))
        if mnemonic == ".word":
            address += INSTRUCTION_BYTES * len(operands)
        else:
            address += INSTRUCTION_BYTES

    # ---- pass 2: emit -----------------------------------------------------
    image = bytearray(address - origin)
    listing: _t.List[str] = []

    def resolve(token: str, line_no: int) -> int:
        value = _parse_int(token)
        if value is not None:
            return value
        if token in labels:
            return labels[token]
        raise AssemblyError(line_no, f"undefined symbol {token!r}")

    def emit(addr: int, word: int, text: str) -> None:
        offset = addr - origin
        image[offset : offset + 4] = word.to_bytes(4, "little")
        listing.append(f"{addr:#06x}: {word:#010x}  {text}")

    for line_no, addr, mnemonic, operands in items:
        if mnemonic == ".org":
            continue
        if mnemonic == ".word":
            for i, token in enumerate(operands):
                value = resolve(token, line_no) & 0xFFFFFFFF
                emit(addr + 4 * i, value, f".word {token}")
            continue
        try:
            op = Op[mnemonic.upper()]
        except KeyError:
            raise AssemblyError(line_no, f"unknown mnemonic {mnemonic!r}")
        signature = _SIGNATURES[op]
        if len(operands) != len(signature):
            raise AssemblyError(
                line_no,
                f"{mnemonic} expects {len(signature)} operands, "
                f"got {len(operands)}",
            )
        regs: _t.List[int] = []
        imm = 0
        for kind, token in zip(signature, operands):
            if kind == "r":
                regs.append(_parse_register(token, line_no))
            else:
                imm = resolve(token, line_no)
                if op in _BRANCH_OPS and token in labels:
                    # PC-relative, in instruction units, from *this* pc.
                    delta_bytes = imm - addr
                    if delta_bytes % INSTRUCTION_BYTES:
                        raise AssemblyError(line_no, "misaligned branch target")
                    imm = delta_bytes // INSTRUCTION_BYTES
        if not IMM_MIN <= imm <= IMM_MAX:
            raise AssemblyError(
                line_no, f"immediate {imm} out of range for {mnemonic}"
            )
        rd = rs1 = rs2 = 0
        reg_iter = iter(regs)
        reg_fields = [f for f in signature if f == "r"]
        if op is Op.ST or op is Op.STB:
            # st base, src, imm -> rs1=base, rs2=src
            rs1 = next(reg_iter)
            rs2 = next(reg_iter)
        elif op in (Op.BEQ, Op.BNE, Op.BLT, Op.BGE):
            rs1 = next(reg_iter)
            rs2 = next(reg_iter)
        elif op is Op.JR:
            rs1 = next(reg_iter)
        elif len(reg_fields) == 1:
            rd = next(reg_iter)
        elif len(reg_fields) == 2:
            rd = next(reg_iter)
            rs1 = next(reg_iter)
        elif len(reg_fields) == 3:
            rd = next(reg_iter)
            rs1 = next(reg_iter)
            rs2 = next(reg_iter)
        word = encode(Instruction(op, rd, rs1, rs2, imm))
        emit(addr, word, f"{mnemonic} {', '.join(operands)}")

    return Program(bytes(image), origin, labels, listing)
