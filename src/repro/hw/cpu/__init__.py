"""The vp16 embedded core: ISA, assembler, and instruction-set simulator."""

from .assembler import AssemblyError, Program, assemble
from .disasm import disassemble, format_instruction
from .isa import (
    CYCLE_COST,
    IllegalInstruction,
    Instruction,
    Op,
    decode,
    encode,
    sign_extend,
)
from .iss import CpuInjectionPoint, Vp16Cpu

__all__ = [
    "AssemblyError",
    "Program",
    "assemble",
    "disassemble",
    "format_instruction",
    "CYCLE_COST",
    "IllegalInstruction",
    "Instruction",
    "Op",
    "decode",
    "encode",
    "sign_extend",
    "CpuInjectionPoint",
    "Vp16Cpu",
]
