"""Windowed watchdog timer.

The watchdog is the archetypal *temporal* protection mechanism: it
converts "the software stopped making progress" (a timing failure) into
a detected, recoverable reset.  A *windowed* watchdog additionally
rejects kicks that arrive too early — catching runaway code that spins
through the kick sequence.

TLM register map:

* ``0x0`` KICK    — write the key ``0xW0F`` pattern (``0xF00D``) to service.
* ``0x4`` CONTROL — bit0 enable.
* ``0x8`` STATUS  — read: bit0 enabled, bit1 timeout-latched.
"""

from __future__ import annotations

import typing as _t

from ..kernel import Module
from ..observe.hooks import emit_detection
from ..tlm import GenericPayload, Response, TargetSocket

KICK_KEY = 0xF00D


class Watchdog(Module):
    """Windowed watchdog with a timeout callback.

    Parameters
    ----------
    timeout:
        Time units after a valid kick before the dog bites.
    window_min:
        Kicks earlier than this after the previous valid kick are
        themselves a violation (0 disables the early window).
    on_timeout:
        ``fn()`` invoked on every bite (e.g. platform reset hook).
    """

    #: Mechanism vocabulary this component reports through
    #: :func:`repro.observe.hooks.emit_detection`; the static
    #: reachability analyzer (`repro.analyze.reach`) discovers
    #: detectors from this declaration.
    DETECTION_MECHANISMS = ("watchdog",)

    def __init__(
        self,
        name: str,
        parent: Module,
        timeout: int,
        window_min: int = 0,
        on_timeout: _t.Optional[_t.Callable[[], None]] = None,
    ):
        super().__init__(name, parent=parent)
        if timeout <= 0:
            raise ValueError("watchdog timeout must be positive")
        if window_min >= timeout:
            raise ValueError("window_min must be below timeout")
        self.timeout = timeout
        self.window_min = window_min
        self.on_timeout = on_timeout
        self.enabled = False
        self.last_kick: _t.Optional[int] = None
        self.timeouts = 0
        self.early_kicks = 0
        self.bad_key_kicks = 0
        self.timeout_latched = False
        self.bite_event = self.event("bite")
        self.tsock = TargetSocket(self, "tsock", self)
        self.process(self._guard, name="guard")

    def warm_reset(self) -> None:
        """Restore power-on state (warm-platform reuse)."""
        self.enabled = False
        self.last_kick = None
        self.timeouts = 0
        self.early_kicks = 0
        self.bad_key_kicks = 0
        self.timeout_latched = False

    def capture_state(self) -> tuple:
        """Deep-capture the guard state (snapshot-fork support)."""
        return (
            self.enabled, self.last_kick, self.timeouts, self.early_kicks,
            self.bad_key_kicks, self.timeout_latched,
        )

    def restore_state(self, state: tuple) -> None:
        """Re-seed from a capture (repeatable)."""
        (self.enabled, self.last_kick, self.timeouts, self.early_kicks,
         self.bad_key_kicks, self.timeout_latched) = state

    # -- TLM interface -------------------------------------------------------

    def b_transport(self, payload: GenericPayload, delay: int) -> int:
        if payload.address % 4 or len(payload.data) != 4:
            payload.set_error(Response.BURST_ERROR)
            return delay
        if payload.command.value == "write":
            if payload.address == 0x0:
                self._kick(payload.word)
                payload.set_ok()
            elif payload.address == 0x4:
                self._set_enabled(bool(payload.word & 1))
                payload.set_ok()
            else:
                payload.set_error(Response.ADDRESS_ERROR)
        elif payload.command.value == "read":
            if payload.address == 0x8:
                payload.word = int(self.enabled) | (
                    int(self.timeout_latched) << 1
                )
                payload.set_ok()
            else:
                payload.set_error(Response.ADDRESS_ERROR)
        else:
            payload.set_ok()
        return delay + 5

    # -- behaviour ---------------------------------------------------------

    def _set_enabled(self, enabled: bool) -> None:
        self.enabled = enabled
        if enabled:
            self.last_kick = self.sim.now

    def _kick(self, key: int) -> None:
        if not self.enabled:
            return
        if key != KICK_KEY:
            self.bad_key_kicks += 1
            self._bite()
            return
        if (
            self.window_min
            and self.last_kick is not None
            and self.sim.now - self.last_kick < self.window_min
        ):
            self.early_kicks += 1
            self._bite()
            return
        self.last_kick = self.sim.now

    def _bite(self) -> None:
        self.timeouts += 1
        self.timeout_latched = True
        emit_detection(self, "watchdog", "bite")
        self.bite_event.notify(0)
        if self.on_timeout is not None:
            self.on_timeout()
        # Restart the window so recovery code gets a full period.
        self.last_kick = self.sim.now

    def _guard(self):
        while True:
            if not self.enabled or self.last_kick is None:
                yield self.timeout
                continue
            elapsed = self.sim.now - self.last_kick
            if elapsed >= self.timeout:
                self._bite()
                yield self.timeout
            else:
                yield self.timeout - elapsed
