"""Actuator models.

Actuators are where errors become *hazards*: the paper's CAPS example
demands that "the failure of any system component does not trigger the
airbag in normal operation" (Sec. 1).  Each actuator therefore records
a precise, timestamped activation history that the campaign classifier
inspects to decide whether a run was safe.
"""

from __future__ import annotations

import typing as _t

from ..kernel import Module
from ..tlm import GenericPayload, Response, TargetSocket


class Squib(Module):
    """An airbag igniter with an arm/fire interlock.

    TLM register map (word access):

    * ``0x0`` ARM   — write the key ``0xA55A`` to arm; anything else disarms.
    * ``0x4`` FIRE  — write the key ``0x5AA5`` while armed to deploy.
    * ``0x8`` STATUS — read: bit0 armed, bit1 fired.

    Deployment latches: once fired the squib stays fired (pyrotechnics
    are not reversible), which is exactly why a spurious deployment is
    a hazardous failure.
    """

    ARM_KEY = 0xA55A
    FIRE_KEY = 0x5AA5

    def __init__(self, name: str, parent: Module, arm_timeout: int = 0):
        super().__init__(name, parent=parent)
        self.armed = False
        self.fired = False
        self.fire_time: _t.Optional[int] = None
        self.arm_time: _t.Optional[int] = None
        self.arm_timeout = arm_timeout  # 0 = never auto-disarm
        self.spurious_commands = 0
        self.tsock = TargetSocket(self, "tsock", self)
        self.fired_event = self.event("fired")

    def warm_reset(self) -> None:
        """Un-latch the (model of the) pyro charge for platform reuse."""
        self.armed = False
        self.fired = False
        self.fire_time = None
        self.arm_time = None
        self.spurious_commands = 0

    def capture_state(self) -> tuple:
        """Deep-capture the interlock state (snapshot-fork support)."""
        return (
            self.armed, self.fired, self.fire_time, self.arm_time,
            self.spurious_commands,
        )

    def restore_state(self, state: tuple) -> None:
        """Re-seed from a capture (repeatable)."""
        (self.armed, self.fired, self.fire_time, self.arm_time,
         self.spurious_commands) = state

    def b_transport(self, payload: GenericPayload, delay: int) -> int:
        if payload.address % 4 or len(payload.data) != 4:
            payload.set_error(Response.BURST_ERROR)
            return delay
        if payload.command.value == "read":
            if payload.address == 0x8:
                payload.word = int(self.armed) | (int(self.fired) << 1)
                payload.set_ok()
            else:
                payload.set_error(Response.ADDRESS_ERROR)
            return delay + 5
        if payload.command.value != "write":
            payload.set_ok()
            return delay
        value = payload.word
        if payload.address == 0x0:
            if value == self.ARM_KEY:
                self.armed = True
                self.arm_time = self.sim.now
            else:
                self.armed = False
            payload.set_ok()
        elif payload.address == 0x4:
            if value == self.FIRE_KEY:
                if self.armed and self._arm_window_open():
                    self._fire()
                else:
                    self.spurious_commands += 1
            else:
                self.spurious_commands += 1
            payload.set_ok()
        else:
            payload.set_error(Response.ADDRESS_ERROR)
        return delay + 5

    def _arm_window_open(self) -> bool:
        if not self.arm_timeout or self.arm_time is None:
            return True
        return self.sim.now - self.arm_time <= self.arm_timeout

    def _fire(self) -> None:
        if self.fired:
            return
        self.fired = True
        self.fire_time = self.sim.now
        self.fired_event.notify(0)


class ServoMotor(Module):
    """A position servo with slew-rate limiting and load modeling.

    The commanded position (a register write, in millidegrees) is
    tracked at ``slew_rate`` units/ms.  ``external_load`` models the
    mission-profile "steering against a curbstone" state: above
    ``stall_load`` the servo stops moving and overcurrent accumulates —
    sustained overcurrent is a detected failure a real driver IC reports.
    """

    def __init__(
        self,
        name: str,
        parent: Module,
        slew_rate: float = 50.0,  # position units per millisecond
        update_period: int = 1_000_000,  # 1 ms
        stall_load: float = 10.0,
        overcurrent_limit: int = 20,  # update periods at stall
    ):
        super().__init__(name, parent=parent)
        self.slew_rate = slew_rate
        self.update_period = update_period
        self.stall_load = stall_load
        self.overcurrent_limit = overcurrent_limit
        self.command = 0.0
        self.position = 0.0
        self.external_load = 0.0
        self.stall_periods = 0
        self.overcurrent_fault = False
        self.position_log: _t.List[_t.Tuple[int, float]] = []
        self.tsock = TargetSocket(self, "tsock", self)
        self.process(self._track, name="servo")

    def capture_state(self) -> tuple:
        """Deep-capture the servo's run state (snapshot-fork support)."""
        return (
            self.command, self.position, self.external_load,
            self.stall_periods, self.overcurrent_fault,
            list(self.position_log),
        )

    def restore_state(self, state: tuple) -> None:
        """Re-seed from a capture (fresh log copy per restore)."""
        (self.command, self.position, self.external_load,
         self.stall_periods, self.overcurrent_fault, log) = state
        self.position_log = list(log)

    def b_transport(self, payload: GenericPayload, delay: int) -> int:
        if payload.address % 4 or len(payload.data) != 4:
            payload.set_error(Response.BURST_ERROR)
            return delay
        if payload.command.value == "write" and payload.address == 0x0:
            # Command in signed millidegrees.
            raw = payload.word
            self.command = float(raw - (1 << 32) if raw & 0x80000000 else raw)
            payload.set_ok()
        elif payload.command.value == "read" and payload.address == 0x4:
            payload.word = int(self.position) & 0xFFFFFFFF
            payload.set_ok()
        elif payload.command.value == "read" and payload.address == 0x8:
            payload.word = int(self.overcurrent_fault)
            payload.set_ok()
        else:
            payload.set_error(Response.ADDRESS_ERROR)
        return delay + 5

    def _track(self):
        while True:
            yield self.update_period
            step = self.slew_rate * (self.update_period / 1e6)
            stalled = self.external_load >= self.stall_load
            if stalled and self.command != self.position:
                self.stall_periods += 1
                if self.stall_periods >= self.overcurrent_limit:
                    self.overcurrent_fault = True
            else:
                self.stall_periods = max(0, self.stall_periods - 1)
                delta = self.command - self.position
                if abs(delta) <= step:
                    self.position = self.command
                else:
                    self.position += step if delta > 0 else -step
            self.position_log.append((self.sim.now, self.position))


class BrakeActuator(Module):
    """A brake pressure actuator with a rate limit and a demand log.

    Used by the adaptive-cruise example: the classifier checks both the
    *value* (pressure within bounds) and the *timing* (demand applied
    within the deadline) of every brake command — the paper's "right
    value at the wrong time" criterion.
    """

    def __init__(
        self,
        name: str,
        parent: Module,
        max_pressure: float = 100.0,
        rate_per_ms: float = 20.0,
        update_period: int = 1_000_000,
    ):
        super().__init__(name, parent=parent)
        self.max_pressure = max_pressure
        self.rate_per_ms = rate_per_ms
        self.update_period = update_period
        self.demand = 0.0
        self.pressure = 0.0
        self.demand_log: _t.List[_t.Tuple[int, float]] = []
        self.tsock = TargetSocket(self, "tsock", self)
        self.process(self._track, name="hydraulics")

    def capture_state(self) -> tuple:
        """Deep-capture the actuator's run state (snapshot-fork support)."""
        return (self.demand, self.pressure, list(self.demand_log))

    def restore_state(self, state: tuple) -> None:
        """Re-seed from a capture (fresh log copy per restore)."""
        self.demand, self.pressure, log = state
        self.demand_log = list(log)

    def b_transport(self, payload: GenericPayload, delay: int) -> int:
        if payload.command.value == "write" and payload.address == 0x0:
            demand = payload.word / 100.0  # fixed-point percent
            self.demand = min(max(demand, 0.0), self.max_pressure)
            self.demand_log.append((self.sim.now, self.demand))
            payload.set_ok()
        elif payload.command.value == "read" and payload.address == 0x4:
            payload.word = int(self.pressure * 100)
            payload.set_ok()
        else:
            payload.set_error(Response.ADDRESS_ERROR)
        return delay + 5

    def _track(self):
        while True:
            yield self.update_period
            step = self.rate_per_ms * (self.update_period / 1e6)
            delta = self.demand - self.pressure
            if abs(delta) <= step:
                self.pressure = self.demand
            else:
                self.pressure += step if delta > 0 else -step
