"""Redundancy and plausibility protection mechanisms.

These are the "failsafe measures and redundancy at several levels"
(Sec. 3.4) that make naive Monte-Carlo injection ineffective: most
single faults are masked or detected here, so only carefully placed
fault combinations reach an actuator.  The weak-spot analysis and the
symbolic stimulus generator both target these components.
"""

from __future__ import annotations

import typing as _t

from ..kernel import Module
from ..observe.hooks import emit_detection


class TmrVoter(Module):
    """Triple-modular-redundancy majority voter over integer inputs.

    ``vote(a, b, c)`` returns the majority value; a full three-way
    disagreement is unresolvable and reported via ``on_unresolvable``
    (counted, and the *first* input is passed through — matching the
    common hardware fallback of channel A priority).
    """

    #: See :data:`repro.hw.watchdog.Watchdog.DETECTION_MECHANISMS`.
    DETECTION_MECHANISMS = ("tmr",)

    def __init__(
        self,
        name: str,
        parent: Module,
        on_unresolvable: _t.Optional[_t.Callable[[], None]] = None,
    ):
        super().__init__(name, parent=parent)
        self.on_unresolvable = on_unresolvable
        self.votes = 0
        self.mismatches = 0  # one channel disagreed (masked fault)
        self.unresolvable = 0

    def vote(self, a: int, b: int, c: int) -> int:
        self.votes += 1
        if a == b == c:
            return a
        self.mismatches += 1
        emit_detection(self, "tmr", "outvoted")
        if a == b or a == c:
            return a
        if b == c:
            return b
        self.unresolvable += 1
        emit_detection(self, "tmr", "unresolvable")
        if self.on_unresolvable is not None:
            self.on_unresolvable()
        return a


class LockstepChecker(Module):
    """Compares two redundant computation channels sample by sample.

    Models a lockstep core pair's compare unit: every call to
    :meth:`compare` checks the two channels' outputs; any divergence is
    flagged immediately (``detected`` counter + event) — the strongest
    detection mechanism in the library, with the classic blind spot of
    common-mode faults (the same corruption in both channels passes).
    """

    #: See :data:`repro.hw.watchdog.Watchdog.DETECTION_MECHANISMS`.
    DETECTION_MECHANISMS = ("lockstep",)

    def __init__(self, name: str, parent: Module):
        super().__init__(name, parent=parent)
        self.comparisons = 0
        self.detected = 0
        self.mismatch_event = self.event("mismatch")

    def compare(self, channel_a: int, channel_b: int) -> bool:
        """Returns True when the channels agree."""
        self.comparisons += 1
        if channel_a != channel_b:
            self.detected += 1
            emit_detection(self, "lockstep", "mismatch")
            self.mismatch_event.notify(0)
            return False
        return True


class RangeChecker:
    """Static plausibility: value must lie in ``[low, high]``."""

    def __init__(self, name: str, low: float, high: float):
        if high < low:
            raise ValueError("empty range")
        self.name = name
        self.low = low
        self.high = high
        self.checks = 0
        self.violations = 0

    def check(self, value: float) -> bool:
        self.checks += 1
        if self.low <= value <= self.high:
            return True
        self.violations += 1
        return False


class RateChecker:
    """Dynamic plausibility: successive values may differ by at most
    ``max_delta`` (per sample).

    Catches realistic sensor faults that a range check misses — a stuck
    value is in range but has zero rate when the vehicle moves, and a
    bit flip in a high bit produces an impossible jump.
    """

    def __init__(self, name: str, max_delta: float):
        if max_delta <= 0:
            raise ValueError("max_delta must be positive")
        self.name = name
        self.max_delta = max_delta
        self.previous: _t.Optional[float] = None
        self.checks = 0
        self.violations = 0

    def check(self, value: float) -> bool:
        self.checks += 1
        ok = True
        if self.previous is not None:
            ok = abs(value - self.previous) <= self.max_delta
        if not ok:
            self.violations += 1
        self.previous = value
        return ok

    def reset(self) -> None:
        self.previous = None


class CrcChecker:
    """End-to-end message protection (AUTOSAR E2E style).

    Messages carry an 8-bit CRC and a 4-bit alive counter; the checker
    validates both, catching corruption *and* stale/repeated messages
    (a masked timing fault a plain CRC cannot see).
    """

    def __init__(self, name: str):
        self.name = name
        self.expected_counter: _t.Optional[int] = None
        self.checks = 0
        self.crc_failures = 0
        self.counter_failures = 0

    @staticmethod
    def protect(data: bytes, counter: int) -> bytes:
        """Wrap *data* with counter and CRC (producer side)."""
        from . import ecc

        body = bytes([counter & 0xF]) + data
        return body + bytes([ecc.crc8(body)])

    def check(self, message: bytes) -> _t.Optional[bytes]:
        """Validate; returns the payload or None when rejected."""
        from . import ecc

        self.checks += 1
        if len(message) < 2:
            self.crc_failures += 1
            return None
        body, crc = message[:-1], message[-1]
        if ecc.crc8(body) != crc:
            self.crc_failures += 1
            return None
        counter = body[0] & 0xF
        if self.expected_counter is not None and counter != self.expected_counter:
            self.counter_failures += 1
            self.expected_counter = (counter + 1) & 0xF
            return None
        self.expected_counter = (counter + 1) & 0xF
        return bytes(body[1:])
