"""Error-correcting and error-detecting codes.

Protection mechanisms are central to the paper's stress-test story: the
interesting (rare) failures are those that *bypass* ECC, parity, CRC and
voters.  This module provides the codes the hardware models use:

* :func:`hamming_encode` / :func:`hamming_decode` — SEC-DED Hamming code
  over a single data byte (8 data bits, 4 parity bits + overall parity,
  13 bits total).  Corrects any single bit flip, detects double flips.
* :func:`parity_bit` — even parity over arbitrary-width words.
* :func:`crc15` — the CAN bus CRC-15 polynomial, bit-accurate.
* :func:`crc8` — SAE J1850 CRC-8 used by the sensor message models.
"""

from __future__ import annotations

import typing as _t

# Positions 1..13 (1-indexed); powers of two are parity bits.
_TOTAL_BITS = 13
_PARITY_POSITIONS = (1, 2, 4, 8)
_DATA_POSITIONS = tuple(
    p for p in range(1, _TOTAL_BITS) if p not in _PARITY_POSITIONS
)  # eight positions for the data byte
_OVERALL_POSITION = _TOTAL_BITS  # appended overall parity for DED


def _hamming_encode_ref(byte: int) -> int:
    """Bit-level reference encoder (the spec the table is built from)."""
    bits = [0] * (_TOTAL_BITS + 1)  # 1-indexed
    for i, pos in enumerate(_DATA_POSITIONS):
        bits[pos] = (byte >> i) & 1
    for parity_pos in _PARITY_POSITIONS:
        acc = 0
        for pos in range(1, _OVERALL_POSITION):
            if pos != parity_pos and (pos & parity_pos):
                acc ^= bits[pos]
        bits[parity_pos] = acc
    bits[_OVERALL_POSITION] = 0
    bits[_OVERALL_POSITION] = sum(bits[1:]) & 1  # even overall parity
    word = 0
    for pos in range(1, _TOTAL_BITS + 1):
        word |= bits[pos] << (pos - 1)
    return word


class DecodeResult(_t.NamedTuple):
    """Outcome of a SEC-DED decode."""

    data: int
    corrected: bool  # a single-bit error was corrected
    uncorrectable: bool  # a double-bit error was detected


def _hamming_decode_ref(word: int) -> DecodeResult:
    """Bit-level reference decoder (the spec the table is built from)."""
    bits = [0] * (_TOTAL_BITS + 1)
    for pos in range(1, _TOTAL_BITS + 1):
        bits[pos] = (word >> (pos - 1)) & 1
    syndrome = 0
    for parity_pos in _PARITY_POSITIONS:
        acc = 0
        for pos in range(1, _OVERALL_POSITION):
            if pos & parity_pos:
                acc ^= bits[pos]
        if acc:
            syndrome |= parity_pos
    overall = sum(bits[1:]) & 1  # zero when parity consistent

    corrected = False
    uncorrectable = False
    if syndrome and overall:
        # Single-bit error at position `syndrome` (may be a parity bit).
        if syndrome <= _TOTAL_BITS:
            bits[syndrome] ^= 1
        corrected = True
    elif syndrome and not overall:
        uncorrectable = True
    elif not syndrome and overall:
        # Overall parity bit itself flipped; data unharmed.
        corrected = True

    data = 0
    for i, pos in enumerate(_DATA_POSITIONS):
        data |= bits[pos] << i
    return DecodeResult(data, corrected, uncorrectable)


# ----------------------------------------------------------------------
# Table-driven fast paths.
#
# The ECC memory decodes every byte of every parameter read — in the
# airbag campaign that is four decodes per 1 ms control cycle, which made
# the bit-loop decoder the single hottest function of the whole stress
# loop (~35% of serial run time).  The code spaces are tiny (256 data
# bytes, 8192 codewords), so both directions are precomputed from the
# bit-level reference above; the exhaustive table-vs-reference
# consistency check lives in tests/hw/test_ecc.py.  Tables build lazily
# on first use to keep worker-process import time flat.
# ----------------------------------------------------------------------

_ENCODE_TABLE: _t.Optional[_t.List[int]] = None
_DECODE_TABLE: _t.Optional[_t.List[DecodeResult]] = None


def _encode_table() -> _t.List[int]:
    global _ENCODE_TABLE
    if _ENCODE_TABLE is None:
        _ENCODE_TABLE = [_hamming_encode_ref(b) for b in range(256)]
    return _ENCODE_TABLE


def _decode_table() -> _t.List[DecodeResult]:
    global _DECODE_TABLE
    if _DECODE_TABLE is None:
        _DECODE_TABLE = [
            _hamming_decode_ref(w) for w in range(1 << _TOTAL_BITS)
        ]
    return _DECODE_TABLE


def hamming_encode(byte: int) -> int:
    """Encode one data byte into a 13-bit SEC-DED codeword."""
    table = _ENCODE_TABLE
    if table is None:
        table = _encode_table()
    if not 0 <= byte <= 0xFF:
        raise ValueError(f"data byte out of range: {byte}")
    return table[byte]


def hamming_decode(word: int) -> DecodeResult:
    """Decode a 13-bit codeword, correcting single-bit errors.

    For an uncorrectable (double) error the returned data is the best
    effort extraction and must not be trusted — exactly like a real
    SEC-DED memory, which flags the access instead.
    """
    table = _DECODE_TABLE
    if table is None:
        table = _decode_table()
    if not 0 <= word < (1 << _TOTAL_BITS):
        raise ValueError(f"codeword out of range: {word:#x}")
    return table[word]


def parity_bit(value: int, width: int = 8) -> int:
    """Even-parity bit over the low *width* bits of *value*."""
    acc = 0
    for i in range(width):
        acc ^= (value >> i) & 1
    return acc


def crc15(bits: _t.Sequence[int]) -> int:
    """CAN CRC-15 (polynomial 0x4599) over a bit sequence (MSB first)."""
    crc = 0
    for bit in bits:
        crc_next = ((crc >> 14) & 1) ^ (bit & 1)
        crc = (crc << 1) & 0x7FFF
        if crc_next:
            crc ^= 0x4599
    return crc


def crc8(data: _t.Iterable[int]) -> int:
    """SAE J1850 CRC-8 (polynomial 0x1D, init 0xFF, xorout 0xFF)."""
    crc = 0xFF
    for byte in data:
        crc ^= byte & 0xFF
        for _ in range(8):
            if crc & 0x80:
                crc = ((crc << 1) ^ 0x1D) & 0xFF
            else:
                crc = (crc << 1) & 0xFF
    return crc ^ 0xFF
