"""Hardware component models of the virtual prototype (substrate S3)."""

from . import ecc
from .actuators import BrakeActuator, ServoMotor, Squib
from .can import CanBus, CanFrame, CanNode, CanWireInjectionPoint
from .cpu import Vp16Cpu, assemble, disassemble
from .lockstep import LockstepCpuPair
from .memory import EccMemory, Memory, MemoryInjectionPoint
from .protection import (
    CrcChecker,
    LockstepChecker,
    RangeChecker,
    RateChecker,
    TmrVoter,
)
from .registers import Field, Register, RegisterFile, RegisterInjectionPoint
from .sensors import (
    AdcSensor,
    AnalogFault,
    AnalogInjectionPoint,
    constant,
    crash_pulse,
    piecewise,
    ramp,
    sine,
)
from .watchdog import KICK_KEY, Watchdog

__all__ = [
    "ecc",
    "BrakeActuator",
    "ServoMotor",
    "Squib",
    "CanBus",
    "CanFrame",
    "CanNode",
    "CanWireInjectionPoint",
    "Vp16Cpu",
    "assemble",
    "disassemble",
    "LockstepCpuPair",
    "EccMemory",
    "Memory",
    "MemoryInjectionPoint",
    "CrcChecker",
    "LockstepChecker",
    "RangeChecker",
    "RateChecker",
    "TmrVoter",
    "Field",
    "Register",
    "RegisterFile",
    "RegisterInjectionPoint",
    "AdcSensor",
    "AnalogFault",
    "AnalogInjectionPoint",
    "constant",
    "crash_pulse",
    "piecewise",
    "ramp",
    "sine",
    "KICK_KEY",
    "Watchdog",
]
