"""Memory models: plain RAM and ECC-protected RAM.

Both are TLM targets.  The plain :class:`Memory` stores raw bytes and is
the fastest possible target (it also grants DMI).  :class:`EccMemory`
keeps a SEC-DED codeword per byte; bit flips injected into the codeword
array are corrected, detected, or — for triple+ flips — silently escape,
reproducing the fault/error/failure chain the campaigns classify.

Each memory registers an injection point (``array`` / ``codewords``)
implementing the :class:`MemoryInjectionPoint` protocol used by
``repro.core.injector.MemoryInjector``.
"""

from __future__ import annotations

import typing as _t

from ..kernel import Module
from ..observe.hooks import emit_detection
from ..tlm import DmiRegion, GenericPayload, Response, TargetSocket
from . import ecc


class MemoryInjectionPoint:
    """Bit-level access to a byte-addressed backing store.

    ``bits`` is the injectable width per cell: 8 for plain RAM, 13 for
    the ECC memory's codewords (parity bits are as upsettable as data
    bits).
    """

    def __init__(self, name: str, size: int, flip, peek, poke, bits: int = 8):
        self.name = name
        self.size = size
        self.bits = bits
        self.flip = flip  # fn(address, bit) -> None
        self.peek = peek  # fn(address) -> int
        self.poke = poke  # fn(address, value) -> None
        self.kind = "memory"


class Memory(Module):
    """Byte-addressable RAM with configurable access latency."""

    def __init__(
        self,
        name: str,
        parent: Module,
        size: int,
        read_latency: int = 20,
        write_latency: int = 20,
        dmi_allowed: bool = True,
    ):
        super().__init__(name, parent=parent)
        if size <= 0:
            raise ValueError("memory size must be positive")
        self.size = size
        self.data = bytearray(size)
        self.read_latency = read_latency
        self.write_latency = write_latency
        self.dmi_allowed = dmi_allowed
        self.tsock = TargetSocket(self, "tsock", self)
        self.reads = 0
        self.writes = 0
        self.register_injection_point(
            "array",
            MemoryInjectionPoint(
                f"{self.full_name}.array",
                size,
                self._flip_bit,
                self._peek,
                self._poke,
            ),
        )

    # -- direct access (loader, injectors) ---------------------------------

    def load(self, address: int, data: _t.Union[bytes, bytearray]) -> None:
        """Bulk-initialise memory (program/data images)."""
        if address < 0 or address + len(data) > self.size:
            raise ValueError("load outside memory bounds")
        self.data[address : address + len(data)] = data

    def warm_reset(self) -> None:
        """Zero the array and counters (warm-platform reuse)."""
        self.data[:] = bytes(self.size)
        self.reads = 0
        self.writes = 0

    def capture_state(self) -> _t.Tuple[bytes, int, int]:
        """Deep-capture the array image (snapshot-fork support)."""
        return (bytes(self.data), self.reads, self.writes)

    def restore_state(self, state: _t.Tuple[bytes, int, int]) -> None:
        """Re-seed from a capture.  In place: DMI regions alias
        ``self.data``, so the bytearray object must survive."""
        data, reads, writes = state
        self.data[:] = data
        self.reads = reads
        self.writes = writes

    def _peek(self, address: int) -> int:
        return self.data[address]

    def _poke(self, address: int, value: int) -> None:
        self.data[address] = value & 0xFF

    def _flip_bit(self, address: int, bit: int) -> None:
        if not 0 <= bit < 8:
            raise ValueError(f"bit index out of range: {bit}")
        self.data[address] ^= 1 << bit

    # -- TLM target interface ------------------------------------------------

    def b_transport(self, payload: GenericPayload, delay: int) -> int:
        length = len(payload.data)
        if payload.address < 0 or payload.address + length > self.size:
            payload.set_error(Response.ADDRESS_ERROR)
            return delay
        start = payload.address
        if payload.command.value == "read":
            payload.data[:] = self.data[start : start + length]
            self.reads += 1
            payload.dmi_allowed = self.dmi_allowed
            payload.set_ok()
            return delay + self.read_latency
        if payload.command.value == "write":
            if payload.byte_enable:
                for i, byte in enumerate(payload.data):
                    if payload.byte_enable[i % len(payload.byte_enable)]:
                        self.data[start + i] = byte
            else:
                self.data[start : start + length] = payload.data
            self.writes += 1
            payload.dmi_allowed = self.dmi_allowed
            payload.set_ok()
            return delay + self.write_latency
        payload.set_ok()  # IGNORE command: debug/probe access
        return delay

    def at_latency(self, payload: GenericPayload) -> _t.Tuple[int, int]:
        if payload.command.value == "write":
            return (self.write_latency // 2, self.write_latency - self.write_latency // 2)
        return (self.read_latency // 2, self.read_latency - self.read_latency // 2)

    def get_dmi(self, payload: GenericPayload) -> _t.Optional[DmiRegion]:
        if not self.dmi_allowed:
            return None
        return DmiRegion(
            0, self.size, self.data, self.read_latency, self.write_latency
        )


class EccMemory(Module):
    """SEC-DED protected RAM.

    Every byte is held as a 13-bit Hamming codeword (stored in a list of
    ints).  Reads decode and transparently correct single-bit upsets;
    uncorrectable errors complete the transaction with
    ``GENERIC_ERROR``, which the platform surfaces as a bus fault — a
    *detected* failure in the classification lattice.
    """

    #: See :data:`repro.hw.watchdog.Watchdog.DETECTION_MECHANISMS`.
    DETECTION_MECHANISMS = ("ecc",)

    def __init__(
        self,
        name: str,
        parent: Module,
        size: int,
        read_latency: int = 25,
        write_latency: int = 25,
    ):
        super().__init__(name, parent=parent)
        if size <= 0:
            raise ValueError("memory size must be positive")
        self.size = size
        self.codewords = [ecc.hamming_encode(0)] * size
        self.read_latency = read_latency
        self.write_latency = write_latency
        self.tsock = TargetSocket(self, "tsock", self)
        #: Counters exposed to the campaign classifier.
        self.corrected_errors = 0
        self.detected_errors = 0
        self.reads = 0
        self.writes = 0
        self.register_injection_point(
            "codewords",
            MemoryInjectionPoint(
                f"{self.full_name}.codewords",
                size,
                self._flip_bit,
                self._peek,
                self._poke,
                bits=13,
            ),
        )

    def load(self, address: int, data: _t.Union[bytes, bytearray]) -> None:
        if address < 0 or address + len(data) > self.size:
            raise ValueError("load outside memory bounds")
        for i, byte in enumerate(data):
            self.codewords[address + i] = ecc.hamming_encode(byte)

    def warm_reset(self) -> None:
        """Re-encode the power-on image and clear counters (warm reuse).

        The platform-level reset hook replays any elaboration-time
        ``load()`` on top of this, so injected flips from the previous
        run cannot leak into the next one.
        """
        self.codewords = [ecc.hamming_encode(0)] * self.size
        self.corrected_errors = 0
        self.detected_errors = 0
        self.reads = 0
        self.writes = 0

    def capture_state(self) -> _t.Tuple[_t.List[int], int, int, int, int]:
        """Deep-capture the codeword image (snapshot-fork support)."""
        return (
            list(self.codewords),
            self.corrected_errors,
            self.detected_errors,
            self.reads,
            self.writes,
        )

    def restore_state(
        self, state: _t.Tuple[_t.List[int], int, int, int, int]
    ) -> None:
        """Re-seed from a capture (fresh list per restore)."""
        codewords, corrected, detected, reads, writes = state
        self.codewords = list(codewords)
        self.corrected_errors = corrected
        self.detected_errors = detected
        self.reads = reads
        self.writes = writes

    def _peek(self, address: int) -> int:
        return ecc.hamming_decode(self.codewords[address]).data

    def _poke(self, address: int, value: int) -> None:
        self.codewords[address] = ecc.hamming_encode(value & 0xFF)

    def _flip_bit(self, address: int, bit: int) -> None:
        """Flip a *codeword* bit (0..12) — the raw-cell fault model."""
        if not 0 <= bit < 13:
            raise ValueError(f"codeword bit index out of range: {bit}")
        self.codewords[address] ^= 1 << bit

    def b_transport(self, payload: GenericPayload, delay: int) -> int:
        length = len(payload.data)
        if payload.address < 0 or payload.address + length > self.size:
            payload.set_error(Response.ADDRESS_ERROR)
            return delay
        start = payload.address
        if payload.command.value == "read":
            self.reads += 1
            decode = ecc.hamming_decode
            codewords = self.codewords
            for i in range(length):
                result = decode(codewords[start + i])
                if result.uncorrectable:
                    self.detected_errors += 1
                    emit_detection(self, "ecc", "uncorrectable")
                    payload.set_error(Response.GENERIC_ERROR)
                    return delay + self.read_latency
                if result.corrected:
                    self.corrected_errors += 1
                    emit_detection(self, "ecc", "corrected")
                    # Scrub: write the corrected codeword back.
                    self.codewords[start + i] = ecc.hamming_encode(result.data)
                payload.data[i] = result.data
            payload.set_ok()
            return delay + self.read_latency
        if payload.command.value == "write":
            self.writes += 1
            for i, byte in enumerate(payload.data):
                self.codewords[start + i] = ecc.hamming_encode(byte)
            payload.set_ok()
            return delay + self.write_latency
        payload.set_ok()
        return delay

    def at_latency(self, payload: GenericPayload) -> _t.Tuple[int, int]:
        lat = (
            self.write_latency
            if payload.command.value == "write"
            else self.read_latency
        )
        return (lat // 2, lat - lat // 2)
