"""CAN bus model.

Automotive ECUs interact over CAN; the paper's system-level scenarios
(CAPS, Sec. 1) hinge on faults in one component propagating — or being
contained — across this network.  The model is transaction-level but
protocol-faithful where it matters for safety evaluation:

* **Arbitration** — among nodes with pending frames at bus idle, the
  lowest identifier wins (bitwise-dominant arbitration outcome).
* **CRC-15** — every frame carries the real CAN CRC over its header and
  payload bits; receivers recompute it.  Wire-level fault injection that
  corrupts payload bits is therefore *detected* unless the injector also
  forges the CRC (the rare undetectable case the paper's "lucky guess"
  discussion worries about).
* **Error handling** — a CRC mismatch discards the frame at all
  receivers and triggers retransmission, up to a retry limit; transmit
  error counters drive a simplified bus-off state.

The wire is an injection point (kind ``"can_wire"``): interceptors see
each frame in flight and may flip payload bits, forge the CRC, drop the
frame, or delay it.
"""

from __future__ import annotations

import typing as _t

from ..kernel import Module
from . import ecc


class CanFrame:
    """A classical CAN data frame (11-bit identifier, 0–8 data bytes)."""

    __slots__ = ("can_id", "data", "crc", "timestamp", "meta")

    MAX_DATA = 8

    def __init__(self, can_id: int, data: _t.Union[bytes, bytearray]):
        if not 0 <= can_id < (1 << 11):
            raise ValueError(f"CAN id out of 11-bit range: {can_id:#x}")
        if len(data) > self.MAX_DATA:
            raise ValueError(f"CAN payload too long: {len(data)} bytes")
        self.can_id = can_id
        self.data = bytearray(data)
        self.crc = self.compute_crc()
        self.timestamp: _t.Optional[int] = None
        #: Free-form side data (injection audit, sequence counters).
        self.meta: dict = {}

    # -- protocol helpers ---------------------------------------------------

    def header_and_payload_bits(self) -> _t.List[int]:
        """The bit sequence covered by the CAN CRC (id, DLC, data)."""
        bits: _t.List[int] = []
        for i in reversed(range(11)):
            bits.append((self.can_id >> i) & 1)
        dlc = len(self.data)
        for i in reversed(range(4)):
            bits.append((dlc >> i) & 1)
        for byte in self.data:
            for i in reversed(range(8)):
                bits.append((byte >> i) & 1)
        return bits

    def compute_crc(self) -> int:
        return ecc.crc15(self.header_and_payload_bits())

    def refresh_crc(self) -> None:
        """Recompute the CRC after *legitimate* payload changes."""
        self.crc = self.compute_crc()

    @property
    def crc_ok(self) -> bool:
        return self.crc == self.compute_crc()

    @property
    def bit_length(self) -> int:
        """Approximate frame length on the wire (no stuffing modeled)."""
        # SOF + id(11) + RTR/IDE/r0 (3) + DLC(4) + data + CRC(15) +
        # delimiter/ACK/EOF (~11)
        return 1 + 11 + 3 + 4 + 8 * len(self.data) + 15 + 11

    def clone(self) -> "CanFrame":
        copy = CanFrame(self.can_id, bytes(self.data))
        copy.crc = self.crc
        copy.timestamp = self.timestamp
        copy.meta = dict(self.meta)
        return copy

    def __repr__(self) -> str:  # pragma: no cover
        return f"CanFrame(id={self.can_id:#x}, data={bytes(self.data).hex()})"


class CanWireInjectionPoint:
    """Injector-facing handle on the bus wire."""

    def __init__(self, bus: "CanBus"):
        self.name = f"{bus.full_name}.wire"
        self.kind = "can_wire"
        self._bus = bus

    def add_interceptor(self, fn) -> None:
        """Register ``fn(frame) -> frame | None`` (None drops the frame)."""
        self._bus.wire_interceptors.append(fn)

    def remove_interceptor(self, fn) -> None:
        try:
            self._bus.wire_interceptors.remove(fn)
        except ValueError:
            pass

    def clear(self) -> None:
        self._bus.wire_interceptors.clear()


class CanNode(Module):
    """A CAN controller attached to one bus.

    Applications either subscribe callbacks (``on_receive``) or poll the
    ``rx_queue``.  ``send`` enqueues; delivery order and timing are the
    bus's business.
    """

    def __init__(
        self,
        name: str,
        parent: Module,
        bus: "CanBus",
        accept: _t.Optional[_t.Callable[[int], bool]] = None,
    ):
        super().__init__(name, parent=parent)
        self.bus = bus
        self.accept = accept  # id filter; None accepts everything
        self.tx_queue: _t.List[CanFrame] = []
        self.rx_queue: _t.List[CanFrame] = []
        self.on_receive: _t.List[_t.Callable[[CanFrame], None]] = []
        self.rx_event = self.event("rx")
        self.tx_error_counter = 0
        self.bus_off = False
        self.frames_sent = 0
        self.frames_received = 0
        bus.attach(self)

    def send(self, frame: CanFrame) -> None:
        """Queue *frame* for transmission (no-op when bus-off)."""
        if self.bus_off:
            return
        self.tx_queue.append(frame)
        self.bus.pending.notify(0)

    def _deliver(self, frame: CanFrame) -> None:
        if self.accept is not None and not self.accept(frame.can_id):
            return
        self.frames_received += 1
        self.rx_queue.append(frame)
        for callback in self.on_receive:
            callback(frame)
        self.rx_event.notify(0)

    def _record_tx_error(self, bus_off_threshold: int) -> None:
        self.tx_error_counter += 8  # CAN TEC increment on TX error
        if self.tx_error_counter >= bus_off_threshold:
            self.bus_off = True
            self.tx_queue.clear()

    def _record_tx_success(self) -> None:
        self.frames_sent += 1
        if self.tx_error_counter:
            self.tx_error_counter = max(0, self.tx_error_counter - 1)


class CanBus(Module):
    """The shared medium plus the arbitration/transmission process."""

    def __init__(
        self,
        name: str,
        parent: Module,
        bit_time: int = 2000,  # 2 us/bit = 500 kbit/s at 1 ns units
        max_retries: int = 5,
        bus_off_threshold: int = 256,
    ):
        super().__init__(name, parent=parent)
        self.bit_time = bit_time
        self.max_retries = max_retries
        self.bus_off_threshold = bus_off_threshold
        self.nodes: _t.List[CanNode] = []
        self.pending = self.event("pending")
        self.wire_interceptors: _t.List[_t.Callable] = []
        self.frames_delivered = 0
        self.crc_errors_detected = 0
        self.frames_dropped = 0
        self.retransmissions = 0
        self.arbitration_rounds = 0
        self.register_injection_point("wire", CanWireInjectionPoint(self))
        self.process(self._run(), name="mac")

    def attach(self, node: CanNode) -> None:
        self.nodes.append(node)

    # -- arbitration + transmission loop ------------------------------------

    def _contenders(self) -> _t.List[CanNode]:
        return [n for n in self.nodes if n.tx_queue and not n.bus_off]

    def _run(self):
        while True:
            contenders = self._contenders()
            if not contenders:
                yield self.pending
                continue
            # Lowest identifier wins arbitration (dominant bits win).
            winner = min(contenders, key=lambda n: n.tx_queue[0].can_id)
            self.arbitration_rounds += 1
            frame = winner.tx_queue[0]
            retries = frame.meta.get("retries", 0)

            on_wire = frame.clone()
            dropped = False
            for interceptor in self.wire_interceptors:
                result = interceptor(on_wire)
                if result is None:
                    dropped = True
                    break
                on_wire = result
            yield on_wire.bit_length * self.bit_time

            if dropped:
                # The frame vanished (e.g. open wire): transmitter sees a
                # missing ACK and retries.
                self.frames_dropped += 1
                self._handle_tx_failure(winner, frame, retries)
                continue
            if not on_wire.crc_ok:
                # Receivers detect the corruption and flag an error frame.
                self.crc_errors_detected += 1
                self._handle_tx_failure(winner, frame, retries)
                continue
            winner.tx_queue.pop(0)
            winner._record_tx_success()
            on_wire.timestamp = self.sim.now
            self.frames_delivered += 1
            for node in self.nodes:
                if node is not winner:
                    node._deliver(on_wire.clone())

    def _handle_tx_failure(
        self, winner: CanNode, frame: CanFrame, retries: int
    ) -> None:
        winner._record_tx_error(self.bus_off_threshold)
        if winner.bus_off:
            return
        if retries + 1 > self.max_retries:
            winner.tx_queue.pop(0)
            return
        frame.meta["retries"] = retries + 1
        self.retransmissions += 1
