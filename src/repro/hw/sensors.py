"""Sensor models: analog sources sampled through a faultable front-end.

A sensor chain is ``environment signal -> analog front-end -> ADC ->
register``.  Faults enter at the analog stage (offset, gain drift,
stuck output, noise burst — the classic wiring/aging faults a mission
profile's vibration and temperature stresses produce) and at the
digital stage (register bit flips, handled by the register file's own
injection point).

The analog front-end registers an injection point of kind ``"analog"``
whose knobs an :class:`~repro.core.injector.AnalogInjector` turns.
"""

from __future__ import annotations

import math
import typing as _t

from ..kernel import Module, Signal


class AnalogFault:
    """Mutable fault state of an analog front-end."""

    def __init__(self):
        self.offset = 0.0
        self.gain = 1.0
        self.stuck_value: _t.Optional[float] = None
        self.open_circuit = False  # output floats to rail (reads as 0.0)
        self.noise_sigma = 0.0
        #: RNG supplied by the injector arming a noise fault; used when
        #: the component itself has none.
        self.noise_rng = None

    def clear(self) -> None:
        self.__init__()

    @property
    def active(self) -> bool:
        return (
            self.offset != 0.0
            or self.gain != 1.0
            or self.stuck_value is not None
            or self.open_circuit
            or self.noise_sigma != 0.0
        )


class AnalogInjectionPoint:
    """Injector-facing handle on an analog front-end."""

    def __init__(self, name: str, fault: AnalogFault):
        self.name = name
        self.kind = "analog"
        self.fault = fault

    def set_offset(self, volts: float) -> None:
        self.fault.offset = volts

    def set_gain(self, gain: float) -> None:
        self.fault.gain = gain

    def stick_at(self, volts: float) -> None:
        self.fault.stuck_value = volts

    def open_circuit(self) -> None:
        self.fault.open_circuit = True

    def set_noise(self, sigma: float, rng=None) -> None:
        self.fault.noise_sigma = sigma
        if rng is not None:
            self.fault.noise_rng = rng

    def clear(self) -> None:
        self.fault.clear()


class AdcSensor(Module):
    """Periodic sampling sensor with an n-bit ADC.

    Parameters
    ----------
    source:
        ``fn(time_units) -> float`` giving the physical quantity in
        engineering units (the environment model).
    period:
        Sampling period in kernel time units.
    vmin, vmax:
        ADC input range; samples clamp to it.
    bits:
        ADC resolution.
    rng:
        ``random.Random``-like object used for noise; required only when
        a noise fault is armed (keeps nominal runs deterministic).
    """

    def __init__(
        self,
        name: str,
        parent: Module,
        source: _t.Callable[[int], float],
        period: int,
        vmin: float = 0.0,
        vmax: float = 5.0,
        bits: int = 12,
        rng=None,
    ):
        super().__init__(name, parent=parent)
        if vmax <= vmin:
            raise ValueError("vmax must exceed vmin")
        if not 1 <= bits <= 24:
            raise ValueError("ADC resolution out of range")
        self.source = source
        self.period = period
        self.vmin = vmin
        self.vmax = vmax
        self.bits = bits
        self.rng = rng
        self.fault = AnalogFault()
        #: Latest raw ADC code, as a kernel signal others can watch.
        #: Initialised from the source at t=0 so early readers see a
        #: physical value, not an arbitrary power-on zero.
        self.output: Signal = self.signal(
            "output", self.quantize(source(0))
        )
        self.samples_taken = 0
        # Clean-path cache: (physical value -> code) for the last sample
        # while no analog fault is armed (see _sample_loop).
        self._cached_physical: _t.Optional[float] = None
        self._cached_code = 0
        self.register_injection_point(
            "frontend",
            AnalogInjectionPoint(f"{self.full_name}.frontend", self.fault),
        )
        self.process(self._sample_loop, name="sampler")

    def warm_reset(self) -> None:
        """Restore power-on state (warm-platform reuse)."""
        self.fault.clear()
        self.samples_taken = 0
        self._cached_physical = None
        self._cached_code = 0

    def capture_state(self) -> _t.Dict[str, _t.Any]:
        """Deep-capture mutable run state (snapshot-fork support)."""
        fault = self.fault
        return {
            "offset": fault.offset,
            "gain": fault.gain,
            "stuck_value": fault.stuck_value,
            "open_circuit": fault.open_circuit,
            "noise_sigma": fault.noise_sigma,
            "noise_rng": fault.noise_rng,
            "noise_rng_state": (
                fault.noise_rng.getstate()
                if fault.noise_rng is not None else None
            ),
            "samples_taken": self.samples_taken,
            "cached_physical": self._cached_physical,
            "cached_code": self._cached_code,
        }

    def restore_state(self, state: _t.Mapping[str, _t.Any]) -> None:
        """Re-seed from a :meth:`capture_state` capture (repeatable)."""
        fault = self.fault
        fault.offset = state["offset"]
        fault.gain = state["gain"]
        fault.stuck_value = state["stuck_value"]
        fault.open_circuit = state["open_circuit"]
        fault.noise_sigma = state["noise_sigma"]
        fault.noise_rng = state["noise_rng"]
        if fault.noise_rng is not None:
            fault.noise_rng.setstate(state["noise_rng_state"])
        self.samples_taken = state["samples_taken"]
        self._cached_physical = state["cached_physical"]
        self._cached_code = state["cached_code"]

    # -- conversion ---------------------------------------------------------

    def _condition(self, value: float) -> float:
        """Apply the (possibly faulty) analog front-end."""
        fault = self.fault
        if fault.open_circuit:
            return self.vmin  # input floats to the low rail
        if fault.stuck_value is not None:
            return fault.stuck_value
        value = value * fault.gain + fault.offset
        if fault.noise_sigma:
            rng = self.rng if self.rng is not None else fault.noise_rng
            if rng is None:
                raise RuntimeError(
                    f"{self.full_name}: noise fault armed but no rng given"
                )
            value += rng.gauss(0.0, fault.noise_sigma)
        return value

    def quantize(self, volts: float) -> int:
        """Clamp to range and convert to an ADC code."""
        volts = min(max(volts, self.vmin), self.vmax)
        span = self.vmax - self.vmin
        code = round((volts - self.vmin) / span * ((1 << self.bits) - 1))
        return code

    def code_to_volts(self, code: int) -> float:
        span = self.vmax - self.vmin
        return self.vmin + code / ((1 << self.bits) - 1) * span

    def _sample_loop(self):
        while True:
            yield self.period
            physical = self.source(self.sim.now)
            if self.fault.active:
                code = self.quantize(self._condition(physical))
                self._cached_physical = None
            elif physical == self._cached_physical:
                # Fault-free front-end is the identity (gain 1, offset
                # 0), so an unchanged physical value quantizes to the
                # cached code — skips float clamp/scale/round on every
                # steady-state sample.
                code = self._cached_code
            else:
                code = self.quantize(self._condition(physical))
                self._cached_physical = physical
                self._cached_code = code
            self.output.write(code)
            self.samples_taken += 1


# ---------------------------------------------------------------------------
# Ready-made environment sources for the automotive examples
# ---------------------------------------------------------------------------

def constant(value: float) -> _t.Callable[[int], float]:
    """A source that always reads *value*."""
    return lambda _now: value


def ramp(start: float, slope_per_second: float) -> _t.Callable[[int], float]:
    """Linear ramp in engineering units per second of simulated time."""

    def source(now: int) -> float:
        return start + slope_per_second * (now / 1e9)

    return source


def sine(
    amplitude: float, frequency_hz: float, offset: float = 0.0
) -> _t.Callable[[int], float]:
    """Sinusoid — vibration profiles and wheel-speed ripple."""

    def source(now: int) -> float:
        return offset + amplitude * math.sin(
            2 * math.pi * frequency_hz * (now / 1e9)
        )

    return source


def piecewise(
    segments: _t.Sequence[_t.Tuple[int, float]]
) -> _t.Callable[[int], float]:
    """Step function: ``segments`` is [(start_time, value), ...] sorted.

    Used to script crash pulses and steering maneuvers: the value of the
    last segment whose start time is <= now applies.
    """
    if not segments:
        raise ValueError("piecewise needs at least one segment")
    starts = [t for t, _ in segments]
    if starts != sorted(starts):
        raise ValueError("piecewise segments must be time-sorted")

    def source(now: int) -> float:
        value = segments[0][1]
        for start, seg_value in segments:
            if now >= start:
                value = seg_value
            else:
                break
        return value

    return source


def crash_pulse(
    t_impact: int, peak_g: float, duration: int
) -> _t.Callable[[int], float]:
    """Half-sine deceleration pulse, the standard crash test shape."""

    def source(now: int) -> float:
        if now < t_impact or now > t_impact + duration:
            return 0.0
        phase = (now - t_impact) / duration
        return peak_g * math.sin(math.pi * phase)

    return source
