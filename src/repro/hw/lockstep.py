"""Dual-core lockstep execution.

Safety MCUs (the kind automotive ASIL-D designs use) run two identical
cores on the same instruction stream and compare their outputs every
cycle; any divergence traps before a corrupted value can leave the
chip.  :class:`LockstepCpuPair` builds that arrangement from two vp16
cores:

* both cores run the same image from *private copies* of memory (so a
  memory fault hits one channel, like a real dual-bus lockstep);
* a checker process compares the full architectural state (PC + GPRs)
  every ``compare_interval``;
* on divergence the pair halts both cores and raises its
  ``mismatch_event`` — a *detected* error for the campaign classifier;
* the classic blind spot is preserved: a common-mode fault (the same
  corruption injected into both cores) passes undetected.
"""

from __future__ import annotations

import typing as _t

from ..kernel import Module
from ..tlm import InitiatorSocket, Router
from .cpu import Vp16Cpu
from .memory import Memory
from .protection import LockstepChecker


class LockstepCpuPair(Module):
    """Two vp16 cores in lockstep with a state comparator."""

    def __init__(
        self,
        name: str,
        parent: Module,
        image: bytes,
        mem_size: int = 4096,
        compare_interval: int = 10_000,
        clock_period: int = 10,
        max_instructions: _t.Optional[int] = 100_000,
    ):
        super().__init__(name, parent=parent)
        self.compare_interval = compare_interval
        self.checker = LockstepChecker("checker", parent=self)
        self.halted_on_mismatch = False
        self.mismatch_time: _t.Optional[int] = None
        self.cores: _t.List[Vp16Cpu] = []
        self.memories: _t.List[Memory] = []
        for channel in ("a", "b"):
            router = Router(f"bus_{channel}", parent=self, hop_latency=2)
            memory = Memory(
                f"mem_{channel}", parent=self, size=mem_size,
                read_latency=4, write_latency=4,
            )
            memory.load(0, image)
            router.map_target(0x0, mem_size, memory.tsock)
            core = Vp16Cpu(
                f"core_{channel}", parent=self,
                clock_period=clock_period,
                max_instructions=max_instructions,
            )
            core.isock.bind(router.tsock)
            self.cores.append(core)
            self.memories.append(memory)
        self.mismatch_event = self.event("mismatch")
        self.process(self._compare_loop(), name="compare")

    def start(self, pc: int = 0) -> None:
        for core in self.cores:
            core.start(pc=pc)

    # -- state comparison -----------------------------------------------------

    def _architectural_fingerprint(self, core: Vp16Cpu) -> int:
        fingerprint = core.pc
        for value in core.regs:
            fingerprint = (fingerprint * 0x100000001B3 + value) & (2**64 - 1)
        return fingerprint

    def _compare_loop(self):
        core_a, core_b = self.cores
        while True:
            yield self.compare_interval
            agree = self.checker.compare(
                self._architectural_fingerprint(core_a),
                self._architectural_fingerprint(core_b),
            )
            if not agree:
                self.halted_on_mismatch = True
                self.mismatch_time = self.sim.now
                self.mismatch_event.notify(0)
                for core in self.cores:
                    core._halt()
                return
            if all(core.halted for core in self.cores):
                return

    # -- results ------------------------------------------------------------------

    @property
    def both_halted_cleanly(self) -> bool:
        return (
            all(core.halted for core in self.cores)
            and not self.halted_on_mismatch
        )

    def result_register(self, index: int) -> _t.Tuple[int, int]:
        """(channel A, channel B) values of GPR *index*."""
        return (self.cores[0].regs[index], self.cores[1].regs[index])
