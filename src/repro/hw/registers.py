"""Peripheral register files.

A :class:`RegisterFile` is a TLM target holding named, word-wide
registers with optional bit fields, reset values, and access permissions
— the standard shape of a memory-mapped peripheral.  Registers are a
prime fault-injection location ("erroneous data in arbitrary components,
such as registers", Sec. 1), so the file registers a
:class:`RegisterInjectionPoint` with bit-flip and stuck-at support.
"""

from __future__ import annotations

import typing as _t

from ..kernel import Module
from ..tlm import GenericPayload, Response, TargetSocket


class Field:
    """A named bit slice ``[lsb, lsb+width)`` of a register."""

    __slots__ = ("name", "lsb", "width")

    def __init__(self, name: str, lsb: int, width: int = 1):
        if lsb < 0 or width < 1 or lsb + width > 32:
            raise ValueError(f"field {name!r} out of 32-bit range")
        self.name = name
        self.lsb = lsb
        self.width = width

    @property
    def mask(self) -> int:
        return ((1 << self.width) - 1) << self.lsb

    def extract(self, value: int) -> int:
        return (value & self.mask) >> self.lsb

    def insert(self, value: int, field_value: int) -> int:
        if field_value >> self.width:
            raise ValueError(
                f"value {field_value:#x} too wide for field {self.name!r}"
            )
        return (value & ~self.mask) | (field_value << self.lsb)


class Register:
    """One 32-bit register with stuck-bit fault support."""

    def __init__(
        self,
        name: str,
        offset: int,
        reset: int = 0,
        writable: bool = True,
        fields: _t.Sequence[Field] = (),
        on_write: _t.Optional[_t.Callable[[int, int], None]] = None,
        on_read: _t.Optional[_t.Callable[[], _t.Optional[int]]] = None,
    ):
        self.name = name
        self.offset = offset
        self.reset = reset & 0xFFFFFFFF
        self.writable = writable
        self.fields = {f.name: f for f in fields}
        self.on_write = on_write
        self.on_read = on_read
        self._value = self.reset
        # Stuck-at masks applied on every read: value = (v | set) & ~clear
        self._stuck_set = 0
        self._stuck_clear = 0

    @property
    def value(self) -> int:
        raw = self._value
        if self.on_read is not None:
            live = self.on_read()
            if live is not None:
                raw = live & 0xFFFFFFFF
        return (raw | self._stuck_set) & ~self._stuck_clear & 0xFFFFFFFF

    @value.setter
    def value(self, new: int) -> None:
        old = self._value
        self._value = new & 0xFFFFFFFF
        if self.on_write is not None:
            self.on_write(old, self._value)

    def field(self, name: str) -> int:
        return self.fields[name].extract(self.value)

    def set_field(self, name: str, field_value: int) -> None:
        self.value = self.fields[name].insert(self.value, field_value)

    def reset_value(self) -> None:
        self._value = self.reset

    # -- fault hooks ---------------------------------------------------------

    def flip_bit(self, bit: int) -> None:
        if not 0 <= bit < 32:
            raise ValueError(f"bit out of range: {bit}")
        self._value ^= 1 << bit

    def stuck_at(self, bit: int, level: int) -> None:
        """Force *bit* to read as *level* until :meth:`clear_stuck`."""
        mask = 1 << bit
        if level:
            self._stuck_set |= mask
            self._stuck_clear &= ~mask
        else:
            self._stuck_clear |= mask
            self._stuck_set &= ~mask

    def clear_stuck(self) -> None:
        self._stuck_set = 0
        self._stuck_clear = 0


class RegisterInjectionPoint:
    """Injector-facing view of a register file."""

    def __init__(self, name: str, registers: _t.Dict[int, Register]):
        self.name = name
        self.kind = "register"
        self._by_offset = registers

    @property
    def offsets(self) -> _t.List[int]:
        return sorted(self._by_offset)

    def flip(self, offset: int, bit: int) -> None:
        self._by_offset[offset].flip_bit(bit)

    def stuck_at(self, offset: int, bit: int, level: int) -> None:
        self._by_offset[offset].stuck_at(bit, level)

    def clear_stuck(self, offset: int) -> None:
        self._by_offset[offset].clear_stuck()

    def peek(self, offset: int) -> int:
        return self._by_offset[offset].value

    def poke(self, offset: int, value: int) -> None:
        self._by_offset[offset].value = value


class RegisterFile(Module):
    """A TLM-addressable bank of :class:`Register`."""

    def __init__(self, name: str, parent: Module, access_latency: int = 5):
        super().__init__(name, parent=parent)
        self.access_latency = access_latency
        self._by_offset: _t.Dict[int, Register] = {}
        self._by_name: _t.Dict[str, Register] = {}
        self.tsock = TargetSocket(self, "tsock", self)
        self._injection_point = RegisterInjectionPoint(
            f"{self.full_name}.regs", self._by_offset
        )
        self.register_injection_point("regs", self._injection_point)

    def add(self, register: Register) -> Register:
        if register.offset % 4:
            raise ValueError("register offsets must be word aligned")
        if register.offset in self._by_offset:
            raise ValueError(f"offset {register.offset:#x} already used")
        if register.name in self._by_name:
            raise ValueError(f"register name {register.name!r} already used")
        self._by_offset[register.offset] = register
        self._by_name[register.name] = register
        return register

    def __getitem__(self, name: str) -> Register:
        return self._by_name[name]

    @property
    def span(self) -> int:
        """Byte span needed when mapping this file onto a router."""
        if not self._by_offset:
            return 4
        return max(self._by_offset) + 4

    def reset(self) -> None:
        for register in self._by_offset.values():
            register.reset_value()

    # -- TLM target interface ---------------------------------------------

    def b_transport(self, payload: GenericPayload, delay: int) -> int:
        if payload.address % 4 or len(payload.data) != 4:
            payload.set_error(Response.BURST_ERROR)
            return delay
        register = self._by_offset.get(payload.address)
        if register is None:
            payload.set_error(Response.ADDRESS_ERROR)
            return delay
        if payload.command.value == "read":
            payload.word = register.value
            payload.set_ok()
        elif payload.command.value == "write":
            if not register.writable:
                payload.set_error(Response.COMMAND_ERROR)
                return delay + self.access_latency
            register.value = payload.word
            payload.set_ok()
        else:
            payload.set_ok()
        return delay + self.access_latency

    def at_latency(self, payload: GenericPayload) -> _t.Tuple[int, int]:
        return (self.access_latency, 0)
