"""Software substrate (S5): RTOS scheduling and AUTOSAR-style layers."""

from .autosar import (
    AliveSupervision,
    ComSignal,
    Rte,
    Runnable,
    map_runnable,
)
from .rtos import Job, Rtos, RtosInjectionPoint, Task

__all__ = [
    "AliveSupervision",
    "ComSignal",
    "Rte",
    "Runnable",
    "map_runnable",
    "Job",
    "Rtos",
    "RtosInjectionPoint",
    "Task",
]
