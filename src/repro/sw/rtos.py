"""Preemptive real-time operating system model.

Automotive applications "require the execution of several concurrent
tasks that exhibit hard and soft real-time constraints" (Sec. 3.4), and
the error-effect criterion is explicitly temporal: *"The right value at
the wrong time can still be an error."*  This RTOS model provides the
substrate for that analysis: fixed-priority preemptive scheduling of
periodic and sporadic tasks on one CPU, with per-job response-time and
deadline bookkeeping.

Execution here is *timing-level*: a task body is a Python callable run
at job completion, while the job's CPU demand is an explicit duration.
(Running compiled vp16 code on the ISS is the other, slower option; the
adaptive-cruise example combines both.)  Fault campaigns stretch job
demands via :meth:`Rtos.add_overhead` — modeling error-correction and
recovery delays — and the deadline-miss counters feed the
timing-failure classification.
"""

from __future__ import annotations

import typing as _t

from ..kernel import AnyOf, Module


class Job:
    """One activation of a task."""

    __slots__ = (
        "task",
        "release_time",
        "absolute_deadline",
        "remaining",
        "start_time",
        "finish_time",
    )

    def __init__(self, task: "Task", release_time: int):
        self.task = task
        self.release_time = release_time
        self.absolute_deadline = release_time + task.deadline
        self.remaining = task.wcet
        self.start_time: _t.Optional[int] = None
        self.finish_time: _t.Optional[int] = None

    @property
    def response_time(self) -> _t.Optional[int]:
        if self.finish_time is None:
            return None
        return self.finish_time - self.release_time

    @property
    def missed_deadline(self) -> bool:
        return (
            self.finish_time is not None
            and self.finish_time > self.absolute_deadline
        )


class Task:
    """A schedulable entity.

    Parameters
    ----------
    priority:
        Larger numbers preempt smaller ones.
    wcet:
        CPU demand per job, in kernel time units.
    deadline:
        Relative deadline; defaults to the period for periodic tasks.
    period:
        ``None`` makes the task sporadic (activated via
        :meth:`Rtos.trigger`).
    body:
        Optional ``fn(job)`` executed when the job completes — the
        functional payload (reads sensors, commands actuators).
    """

    def __init__(
        self,
        name: str,
        priority: int,
        wcet: int,
        deadline: _t.Optional[int] = None,
        period: _t.Optional[int] = None,
        offset: int = 0,
        body: _t.Optional[_t.Callable[[Job], None]] = None,
    ):
        if wcet <= 0:
            raise ValueError(f"task {name!r}: wcet must be positive")
        if period is not None and period <= 0:
            raise ValueError(f"task {name!r}: period must be positive")
        if deadline is None:
            if period is None:
                raise ValueError(
                    f"task {name!r}: sporadic tasks need an explicit deadline"
                )
            deadline = period
        if deadline <= 0:
            raise ValueError(f"task {name!r}: deadline must be positive")
        self.name = name
        self.priority = priority
        self.wcet = wcet
        self.deadline = deadline
        self.period = period
        self.offset = offset
        self.body = body
        self.jobs: _t.List[Job] = []
        self.deadline_misses = 0
        self.activations = 0
        #: Set by the fault injector: a killed task stops activating.
        self.killed = False

    @property
    def completed_jobs(self) -> _t.List[Job]:
        return [j for j in self.jobs if j.finish_time is not None]

    @property
    def worst_response_time(self) -> _t.Optional[int]:
        times = [j.response_time for j in self.completed_jobs]
        return max(times) if times else None

    def __repr__(self) -> str:  # pragma: no cover
        return f"Task({self.name!r}, prio={self.priority})"


class RtosInjectionPoint:
    """Injector-facing handle on a scheduler (kind ``"rtos"``)."""

    def __init__(self, rtos: "Rtos"):
        self.name = f"{rtos.full_name}.sched"
        self.kind = "rtos"
        self._rtos = rtos

    @property
    def task_names(self) -> _t.List[str]:
        return [task.name for task in self._rtos.tasks]

    def add_overhead(self, task_name: str, extra: int) -> None:
        self._rtos.add_overhead(task_name, extra)

    def kill_task(self, task_name: str) -> None:
        self._rtos.task(task_name).killed = True

    def revive_task(self, task_name: str) -> None:
        self._rtos.task(task_name).killed = False


class Rtos(Module):
    """Fixed-priority preemptive scheduler on a single CPU.

    The scheduler is exact for this model class: it recomputes the
    running job whenever a release or completion occurs, so preemption
    points land on precise kernel timestamps.
    """

    def __init__(self, name: str, parent: Module):
        super().__init__(name, parent=parent)
        self.tasks: _t.List[Task] = []
        self._ready: _t.List[Job] = []
        self._release_event = self.event("release")
        self._started = False
        #: Extra demand injected into the *next* job(s) of a task,
        #: modeling error-recovery overhead (E9).
        self._pending_overhead: _t.Dict[str, int] = {}
        self.context_switches = 0
        self.idle_time = 0
        self.busy_time = 0
        self.register_injection_point("sched", RtosInjectionPoint(self))

    # -- configuration ---------------------------------------------------

    def add_task(self, task: Task) -> Task:
        if self._started:
            raise RuntimeError("cannot add tasks after start()")
        if any(existing.name == task.name for existing in self.tasks):
            raise ValueError(f"duplicate task name {task.name!r}")
        self.tasks.append(task)
        return task

    def task(self, name: str) -> Task:
        for task in self.tasks:
            if task.name == name:
                return task
        raise KeyError(f"no task named {name!r}")

    def start(self) -> None:
        """Spawn the release generators and the scheduler."""
        if self._started:
            raise RuntimeError("already started")
        self._started = True
        for task in self.tasks:
            if task.period is not None:
                self.process(
                    self._periodic_release(task), name=f"release.{task.name}"
                )
        self.process(self._schedule(), name="scheduler")

    # -- activation ---------------------------------------------------------

    def trigger(self, task_name: str) -> Job:
        """Activate a sporadic task now."""
        task = self.task(task_name)
        return self._release(task)

    def add_overhead(self, task_name: str, extra: int) -> None:
        """Inflate the demand of *task_name*'s next job by *extra*.

        This is the injector hook: an error-correction retry, a
        re-read after a CRC failure, or a recovery routine all appear
        to the scheduler as extra demand.
        """
        if extra < 0:
            raise ValueError("overhead must be non-negative")
        self._pending_overhead[task_name] = (
            self._pending_overhead.get(task_name, 0) + extra
        )

    def _release(self, task: Task) -> _t.Optional[Job]:
        if task.killed:
            return None
        job = Job(task, self.sim.now)
        extra = self._pending_overhead.pop(task.name, 0)
        job.remaining += extra
        task.jobs.append(job)
        task.activations += 1
        self._ready.append(job)
        self._release_event.notify(0)
        return job

    def _periodic_release(self, task: Task):
        if task.offset:
            yield task.offset
        while True:
            self._release(task)
            yield task.period

    # -- the scheduler ---------------------------------------------------------

    def _pick(self) -> _t.Optional[Job]:
        if not self._ready:
            return None
        # Highest priority; FIFO among equals (list order is release order).
        return max(self._ready, key=lambda job: job.task.priority)

    def _schedule(self):
        current: _t.Optional[Job] = None
        while True:
            job = self._pick()
            if job is None:
                idle_started = self.sim.now
                yield self._release_event
                self.idle_time += self.sim.now - idle_started
                continue
            if job is not current:
                self.context_switches += 1
                current = job
                if job.start_time is None:
                    job.start_time = self.sim.now
            # Run until the job finishes or a new release preempts.
            slice_started = self.sim.now
            fired = yield AnyOf(
                self._release_event,
                self.sim.timeout_event(job.remaining, "slice"),
            )
            elapsed = self.sim.now - slice_started
            self.busy_time += elapsed
            job.remaining -= elapsed
            if job.remaining <= 0:
                self._complete(job)
                current = None

    def _complete(self, job: Job) -> None:
        job.finish_time = self.sim.now
        self._ready.remove(job)
        if job.missed_deadline:
            job.task.deadline_misses += 1
        if job.task.body is not None:
            job.task.body(job)

    # -- analysis -------------------------------------------------------------

    @property
    def total_deadline_misses(self) -> int:
        return sum(task.deadline_misses for task in self.tasks)

    def utilization(self) -> float:
        """Static utilization of the periodic task set (wcet/period)."""
        return sum(
            task.wcet / task.period
            for task in self.tasks
            if task.period is not None
        )

    def response_time_summary(self) -> _t.Dict[str, _t.Optional[int]]:
        return {task.name: task.worst_response_time for task in self.tasks}
