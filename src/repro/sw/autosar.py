"""AUTOSAR-flavoured application layer.

The paper's testbench-qualification and error-effect sections both name
AUTOSAR software stacks as the thing under test (Secs. 2.4, 3.3).  This
module models the slice of AUTOSAR that matters for safety evaluation:

* **COM signals** (:class:`ComSignal`) — typed, timestamped data
  elements with *staleness* detection: a reader can tell that a value,
  while plausible, has not been refreshed within its timeout (a pure
  timing fault).
* **Runnables** (:class:`Runnable`) — application functions mapped onto
  RTOS tasks; each execution is checkpointed.
* **Alive supervision** (:class:`AliveSupervision`) — WdgM-style
  monitoring that a runnable executes the expected number of times per
  supervision window, catching crashed, starved, or runaway software.
"""

from __future__ import annotations

import typing as _t

from ..kernel import Module
from .rtos import Job, Rtos, Task


class ComSignal:
    """A COM data element with freshness tracking."""

    def __init__(self, name: str, initial=0, timeout: _t.Optional[int] = None):
        self.name = name
        self.value = initial
        self.timeout = timeout
        self.last_update: _t.Optional[int] = None
        self.updates = 0

    def write(self, value, now: int) -> None:
        self.value = value
        self.last_update = now
        self.updates += 1

    def read(self, now: int) -> _t.Tuple[_t.Any, bool]:
        """Returns (value, fresh).  ``fresh`` is False when the signal
        was never written or exceeded its timeout."""
        if self.last_update is None:
            return self.value, False
        if self.timeout is not None and now - self.last_update > self.timeout:
            return self.value, False
        return self.value, True


class Rte:
    """A minimal run-time environment: the signal broker."""

    def __init__(self, sim):
        self.sim = sim
        self._signals: _t.Dict[str, ComSignal] = {}

    def define(
        self, name: str, initial=0, timeout: _t.Optional[int] = None
    ) -> ComSignal:
        if name in self._signals:
            raise ValueError(f"signal {name!r} already defined")
        signal = ComSignal(name, initial, timeout)
        self._signals[name] = signal
        return signal

    def write(self, name: str, value) -> None:
        self._signals[name].write(value, self.sim.now)

    def read(self, name: str) -> _t.Tuple[_t.Any, bool]:
        return self._signals[name].read(self.sim.now)

    def signal(self, name: str) -> ComSignal:
        return self._signals[name]


class Runnable:
    """An application function mapped onto an RTOS task."""

    def __init__(self, name: str, fn: _t.Callable[["Runnable"], None]):
        self.name = name
        self.fn = fn
        self.executions = 0
        self.checkpoints: _t.List[int] = []
        self._rte: _t.Optional[Rte] = None

    def bind(self, rte: Rte) -> None:
        self._rte = rte

    @property
    def rte(self) -> Rte:
        if self._rte is None:
            raise RuntimeError(f"runnable {self.name!r} not bound to an RTE")
        return self._rte

    def __call__(self, job: Job) -> None:
        self.executions += 1
        self.checkpoints.append(self.rte.sim.now)
        self.fn(self)


class AliveSupervision(Module):
    """WdgM alive supervision of one runnable.

    Every ``window`` time units the supervisor compares the number of
    checkpoints reached against ``[min_count, max_count]``; violations
    are counted and notified.  ``failed`` latches after
    ``failed_threshold`` consecutive bad windows, which a platform
    typically wires to a reset or a safe-state transition.
    """

    def __init__(
        self,
        name: str,
        parent: Module,
        runnable: Runnable,
        window: int,
        min_count: int,
        max_count: int,
        failed_threshold: int = 1,
    ):
        super().__init__(name, parent=parent)
        if window <= 0:
            raise ValueError("window must be positive")
        if min_count > max_count:
            raise ValueError("min_count must not exceed max_count")
        self.runnable = runnable
        self.window = window
        self.min_count = min_count
        self.max_count = max_count
        self.failed_threshold = failed_threshold
        self.violations = 0
        self.windows_checked = 0
        self.failed = False
        self._consecutive_bad = 0
        self._last_seen = 0
        self.violation_event = self.event("violation")
        self.process(self._supervise(), name="supervise")

    def _supervise(self):
        while True:
            yield self.window
            count = self.runnable.executions - self._last_seen
            self._last_seen = self.runnable.executions
            self.windows_checked += 1
            if self.min_count <= count <= self.max_count:
                self._consecutive_bad = 0
                continue
            self.violations += 1
            self._consecutive_bad += 1
            self.violation_event.notify(0)
            if self._consecutive_bad >= self.failed_threshold:
                self.failed = True


def map_runnable(
    rtos: Rtos,
    rte: Rte,
    runnable: Runnable,
    priority: int,
    wcet: int,
    period: _t.Optional[int] = None,
    deadline: _t.Optional[int] = None,
    offset: int = 0,
) -> Task:
    """Bind *runnable* to the RTE and schedule it as an RTOS task."""
    runnable.bind(rte)
    task = Task(
        name=runnable.name,
        priority=priority,
        wcet=wcet,
        deadline=deadline,
        period=period,
        offset=offset,
        body=runnable,
    )
    return rtos.add_task(task)
