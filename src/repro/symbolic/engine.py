"""Path exploration: symbolic execution of guarded decision logic.

Sec. 3.4: "For errors that are hard to propagate, formal approaches
such as symbolic execution might be necessary to generate stimuli to
bypass the protection mechanisms."  The engine explores every feasible
path of a *guard program* — a Python function written against the
symbolic API — and solves for concrete inputs reaching a requested
outcome (e.g. the actuator-commanding branch behind three plausibility
checks).

A guard program takes a context and returns a label::

    def program(ctx):
        a = ctx.var("sensor_a")
        b = ctx.var("sensor_b")
        if ctx.branch(a - b <= 50):          # plausibility
            if ctx.branch(a >= 2000):        # threshold
                return "fire"
            return "idle"
        return "reject"

``ctx.branch(constraint)`` returns the direction the current path
takes and records the constraint (or its negation).  The same program
runs concretely via :class:`ConcreteContext` — the bridge to random
search, which the E10 benchmark compares against.
"""

from __future__ import annotations

import typing as _t

from .expr import Constraint, LinExpr, Var
from .solver import Domain, satisfiable, solve


class PathResult(_t.NamedTuple):
    """One explored feasible path."""

    outcome: _t.Any
    constraints: _t.List[Constraint]
    witness: _t.Dict[str, int]


class _PathAborted(Exception):
    """Internal: the forced decision prefix became infeasible."""


class SymbolicContext:
    """Execution context handed to the guard program."""

    def __init__(
        self,
        domains: _t.Mapping[str, Domain],
        prefix: _t.List[bool],
        eager_prune: bool = True,
    ):
        self.domains = dict(domains)
        self._prefix = prefix
        self._depth = 0
        self.constraints: _t.List[Constraint] = []
        self.decisions: _t.List[bool] = []
        self.eager_prune = eager_prune

    def var(self, name: str) -> LinExpr:
        if name not in self.domains:
            raise KeyError(f"no domain declared for variable {name!r}")
        return Var(name)

    def branch(self, constraint: Constraint) -> bool:
        """Take a branch on *constraint*; returns the direction."""
        if self._depth < len(self._prefix):
            direction = self._prefix[self._depth]
        else:
            direction = True
            # Prefer a feasible direction when defaulting.
            if self.eager_prune and not satisfiable(
                self.constraints + [constraint], self.domains
            ):
                direction = False
        self._depth += 1
        chosen = constraint if direction else constraint.negate()
        self.constraints.append(chosen)
        self.decisions.append(direction)
        if self.eager_prune and self._depth >= len(self._prefix):
            if not satisfiable(self.constraints, self.domains):
                raise _PathAborted()
        return direction


class ConcreteContext:
    """Runs the same guard program on concrete integer inputs."""

    def __init__(self, values: _t.Mapping[str, int]):
        self.values = dict(values)

    def var(self, name: str) -> LinExpr:
        return LinExpr(constant=self.values[name])

    def branch(self, constraint: Constraint) -> bool:
        return constraint.holds({})


class SymbolicEngine:
    """DFS over the guard program's branch decisions."""

    def __init__(self, domains: _t.Mapping[str, Domain]):
        for name, (low, high) in domains.items():
            if low > high:
                raise ValueError(f"empty domain for {name!r}")
        self.domains = dict(domains)
        self.paths_explored = 0
        self.paths_infeasible = 0

    def explore(
        self,
        program: _t.Callable,
        max_paths: int = 1024,
    ) -> _t.List[PathResult]:
        """All feasible paths with witnesses, DFS order."""
        results: _t.List[PathResult] = []
        stack: _t.List[_t.List[bool]] = [[]]
        visited: _t.Set[_t.Tuple[bool, ...]] = set()
        while stack and self.paths_explored < max_paths:
            prefix = stack.pop()
            context = SymbolicContext(self.domains, prefix)
            try:
                outcome = program(context)
            except _PathAborted:
                self.paths_infeasible += 1
                # Still enqueue flips of the decisions made before the
                # abort so sibling paths get explored.
                self._enqueue_flips(context, prefix, stack, visited)
                continue
            self.paths_explored += 1
            witness = solve(context.constraints, self.domains)
            if witness is not None:
                results.append(
                    PathResult(outcome, list(context.constraints), witness)
                )
            else:
                self.paths_infeasible += 1
            self._enqueue_flips(context, prefix, stack, visited)
        return results

    def _enqueue_flips(self, context, prefix, stack, visited) -> None:
        # Flip each decision made beyond the forced prefix.
        for index in range(len(prefix), len(context.decisions)):
            flipped = context.decisions[:index] + [
                not context.decisions[index]
            ]
            key = tuple(flipped)
            if key not in visited:
                visited.add(key)
                stack.append(flipped)

    def find_input(
        self,
        program: _t.Callable,
        target_outcome: _t.Any,
        max_paths: int = 1024,
    ) -> _t.Optional[_t.Dict[str, int]]:
        """Concrete inputs steering the program to *target_outcome*."""
        for path in self.explore(program, max_paths):
            if path.outcome == target_outcome:
                assert program(ConcreteContext(path.witness)) == target_outcome
                return path.witness
        return None


def random_search(
    program: _t.Callable,
    domains: _t.Mapping[str, Domain],
    target_outcome: _t.Any,
    rng,
    attempts: int = 10_000,
) -> _t.Tuple[_t.Optional[_t.Dict[str, int]], int]:
    """The Monte-Carlo baseline: random inputs until the target hits.

    Returns (witness or None, attempts used) — the cost metric E10
    compares against the symbolic path count.
    """
    for attempt in range(1, attempts + 1):
        values = {
            name: rng.randint(low, high)
            for name, (low, high) in domains.items()
        }
        if program(ConcreteContext(values)) == target_outcome:
            return values, attempt
    return None, attempts
