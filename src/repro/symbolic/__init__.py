"""Lite symbolic execution for protection-bypassing stimuli (S11)."""

from .engine import (
    ConcreteContext,
    PathResult,
    SymbolicContext,
    SymbolicEngine,
    random_search,
)
from .expr import Constraint, LinExpr, NonLinearError, Var
from .solver import Unsatisfiable, satisfiable, solve

__all__ = [
    "ConcreteContext",
    "PathResult",
    "SymbolicContext",
    "SymbolicEngine",
    "random_search",
    "Constraint",
    "LinExpr",
    "NonLinearError",
    "Var",
    "Unsatisfiable",
    "satisfiable",
    "solve",
]
