"""Symbolic integer expressions and constraints.

The lite symbolic layer the stimulus generator (Sec. 3.4, refs
[41, 42]) is built on.  Expressions are integer-valued and *linear* —
sums of scaled variables plus constants — which covers the protection
logic this framework models (range checks, rate checks, comparisons,
redundancy arithmetic) while keeping the solver exact and fast.

Build expressions with normal Python operators on :class:`Var`::

    a, b = Var("a"), Var("b")
    constraint = (2 * a - b + 3) <= 100

Comparisons produce :class:`Constraint` objects rather than booleans;
use them with :class:`~repro.symbolic.engine.SymbolicEngine.branch`.
"""

from __future__ import annotations

import typing as _t


class NonLinearError(TypeError):
    """Raised when an operation would leave the linear fragment."""


class LinExpr:
    """A linear integer expression: sum(coef * var) + const."""

    __slots__ = ("coefficients", "constant")

    def __init__(
        self,
        coefficients: _t.Optional[_t.Dict[str, int]] = None,
        constant: int = 0,
    ):
        self.coefficients = dict(coefficients or {})
        self.constant = constant

    # -- construction ----------------------------------------------------

    @staticmethod
    def _coerce(value) -> "LinExpr":
        if isinstance(value, LinExpr):
            return value
        if isinstance(value, bool) or not isinstance(value, int):
            raise NonLinearError(
                f"cannot use {value!r} in a symbolic expression"
            )
        return LinExpr(constant=value)

    def _combine(self, other, sign: int) -> "LinExpr":
        other = self._coerce(other)
        coefficients = dict(self.coefficients)
        for name, coef in other.coefficients.items():
            coefficients[name] = coefficients.get(name, 0) + sign * coef
            if coefficients[name] == 0:
                del coefficients[name]
        return LinExpr(coefficients, self.constant + sign * other.constant)

    def __add__(self, other) -> "LinExpr":
        return self._combine(other, 1)

    __radd__ = __add__

    def __sub__(self, other) -> "LinExpr":
        return self._combine(other, -1)

    def __rsub__(self, other) -> "LinExpr":
        return self._coerce(other)._combine(self, -1)

    def __neg__(self) -> "LinExpr":
        return LinExpr(
            {name: -coef for name, coef in self.coefficients.items()},
            -self.constant,
        )

    def __mul__(self, other) -> "LinExpr":
        if isinstance(other, LinExpr):
            if other.coefficients and self.coefficients:
                raise NonLinearError("product of two symbolic expressions")
            if not other.coefficients:
                other = other.constant
            else:
                self, other = other, self.constant  # type: ignore[assignment]
        if not isinstance(other, int) or isinstance(other, bool):
            raise NonLinearError(f"cannot scale by {other!r}")
        return LinExpr(
            {name: coef * other for name, coef in self.coefficients.items()
             if coef * other != 0},
            self.constant * other,
        )

    __rmul__ = __mul__

    # -- comparisons -> constraints ------------------------------------------

    def __le__(self, other) -> "Constraint":
        return Constraint(self - other, "<=")

    def __lt__(self, other) -> "Constraint":
        return Constraint(self - other, "<")

    def __ge__(self, other) -> "Constraint":
        return Constraint(self - other, ">=")

    def __gt__(self, other) -> "Constraint":
        return Constraint(self - other, ">")

    def eq(self, other) -> "Constraint":
        """Equality constraint (named method: ``==`` keeps identity)."""
        return Constraint(self - other, "==")

    def ne(self, other) -> "Constraint":
        return Constraint(self - other, "!=")

    # -- evaluation ------------------------------------------------------------

    def evaluate(self, env: _t.Mapping[str, int]) -> int:
        return self.constant + sum(
            coef * env[name] for name, coef in self.coefficients.items()
        )

    @property
    def variables(self) -> _t.Set[str]:
        return set(self.coefficients)

    def __repr__(self) -> str:  # pragma: no cover
        parts = [
            f"{coef}*{name}" for name, coef in sorted(self.coefficients.items())
        ]
        parts.append(str(self.constant))
        return " + ".join(parts)


def Var(name: str) -> LinExpr:
    """A fresh symbolic integer variable."""
    return LinExpr({name: 1})


#: Normalised comparison operators: ``expr OP 0``.
_OPS = ("<=", "<", ">=", ">", "==", "!=")


class Constraint:
    """``expr OP 0`` over a linear expression."""

    __slots__ = ("expr", "op")

    def __init__(self, expr: LinExpr, op: str):
        if op not in _OPS:
            raise ValueError(f"unknown operator {op!r}")
        self.expr = expr
        self.op = op

    def negate(self) -> "Constraint":
        opposites = {
            "<=": ">", "<": ">=", ">=": "<", ">": "<=",
            "==": "!=", "!=": "==",
        }
        return Constraint(self.expr, opposites[self.op])

    def holds(self, env: _t.Mapping[str, int]) -> bool:
        value = self.expr.evaluate(env)
        return {
            "<=": value <= 0,
            "<": value < 0,
            ">=": value >= 0,
            ">": value > 0,
            "==": value == 0,
            "!=": value != 0,
        }[self.op]

    @property
    def variables(self) -> _t.Set[str]:
        return self.expr.variables

    def canonical_le(self) -> _t.List[_t.Tuple[_t.Dict[str, int], int]]:
        """Rewrite as a list of ``sum(coef*var) + c <= 0`` rows.

        ``<`` tightens by 1 (integers); ``==`` yields two rows; ``!=``
        yields none (handled only at full assignments).
        """
        coefficients = self.expr.coefficients
        constant = self.expr.constant
        if self.op == "<=":
            return [(dict(coefficients), constant)]
        if self.op == "<":
            return [(dict(coefficients), constant + 1)]
        if self.op == ">=":
            return [({n: -c for n, c in coefficients.items()}, -constant)]
        if self.op == ">":
            return [({n: -c for n, c in coefficients.items()}, -constant + 1)]
        if self.op == "==":
            return [
                (dict(coefficients), constant),
                ({n: -c for n, c in coefficients.items()}, -constant),
            ]
        return []  # "!="

    def __repr__(self) -> str:  # pragma: no cover
        return f"({self.expr!r} {self.op} 0)"
