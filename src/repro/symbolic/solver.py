"""An exact solver for conjunctions of linear integer constraints over
bounded domains.

Interval (bounds) propagation to a fixpoint, then branch-and-prune
search splitting the widest domain.  Domains in this framework are
small and physical — ADC codes, counter values, payload bytes — so the
combination is fast and complete.  ``!=`` constraints are checked at
full assignments and used to shave singleton domains.
"""

from __future__ import annotations

import typing as _t

from .expr import Constraint

Domain = _t.Tuple[int, int]  # inclusive [low, high]


class Unsatisfiable(Exception):
    """No assignment within the domains satisfies the constraints."""


def _propagate(
    rows: _t.Sequence[_t.Tuple[_t.Dict[str, int], int]],
    domains: _t.Dict[str, Domain],
) -> _t.Dict[str, Domain]:
    """Tighten domains against ``sum(coef*var) + c <= 0`` rows."""
    domains = dict(domains)
    changed = True
    iterations = 0
    while changed:
        changed = False
        iterations += 1
        if iterations > 10_000:  # pragma: no cover - pathological guard
            break
        for coefficients, constant in rows:
            # For each variable: coef*x <= -c - min(rest)
            rest_min_total = constant
            mins: _t.Dict[str, int] = {}
            for name, coef in coefficients.items():
                low, high = domains[name]
                term_min = min(coef * low, coef * high)
                mins[name] = term_min
                rest_min_total += term_min
            for name, coef in coefficients.items():
                low, high = domains[name]
                rest = rest_min_total - mins[name]
                # coef * x <= -rest
                bound = -rest
                if coef > 0:
                    # x <= floor(bound / coef)
                    new_high = bound // coef
                    if new_high < high:
                        high = new_high
                        changed = True
                else:
                    # coef < 0: x >= ceil(bound / coef); for Python's
                    # floor division, ceil(a/b) == -((-a) // b).
                    new_low = -((-bound) // coef)
                    if new_low > low:
                        low = new_low
                        changed = True
                if low > high:
                    raise Unsatisfiable()
                domains[name] = (low, high)
    return domains


def _check_full(
    constraints: _t.Sequence[Constraint], env: _t.Mapping[str, int]
) -> bool:
    return all(constraint.holds(env) for constraint in constraints)


def solve(
    constraints: _t.Sequence[Constraint],
    domains: _t.Mapping[str, Domain],
    max_nodes: int = 100_000,
) -> _t.Optional[_t.Dict[str, int]]:
    """A satisfying assignment, or None.

    *domains* must cover every variable used by the constraints.
    """
    for constraint in constraints:
        missing = constraint.variables - set(domains)
        if missing:
            raise KeyError(f"no domain for variables {sorted(missing)}")
    for name, (low, high) in domains.items():
        if low > high:
            return None
    rows: _t.List[_t.Tuple[_t.Dict[str, int], int]] = []
    for constraint in constraints:
        rows.extend(constraint.canonical_le())
    # Constant rows (no variables) are feasibility checks.
    for coefficients, constant in rows:
        if not coefficients and constant > 0:
            return None
    rows = [r for r in rows if r[0]]

    budget = [max_nodes]

    def search(current: _t.Dict[str, Domain]) -> _t.Optional[_t.Dict[str, int]]:
        if budget[0] <= 0:
            return None
        budget[0] -= 1
        try:
            current = _propagate(rows, current)
        except Unsatisfiable:
            return None
        # Pick the widest unassigned variable.
        widest: _t.Optional[str] = None
        widest_span = 0
        for name, (low, high) in current.items():
            span = high - low
            if span > widest_span:
                widest_span = span
                widest = name
        if widest is None:
            env = {name: low for name, (low, _high) in current.items()}
            return env if _check_full(constraints, env) else None
        low, high = current[widest]
        mid = (low + high) // 2
        for half in (((low, mid)), ((mid + 1, high))):
            branched = dict(current)
            branched[widest] = half
            found = search(branched)
            if found is not None:
                return found
        return None

    return search(dict(domains))


def satisfiable(
    constraints: _t.Sequence[Constraint],
    domains: _t.Mapping[str, Domain],
) -> bool:
    return solve(constraints, domains) is not None
