"""How workers find their coordinator.

Three mechanisms, in precedence order:

1. an explicit ``HOST:PORT`` (the ``--connect`` flag);
2. the ``REPRO_COORDINATOR`` environment variable — the natural fit
   for batch schedulers that template job environments;
3. an **endpoint file** (default ``.repro-coordinator``): one
   ``host:port`` line the coordinator writes via
   :meth:`Coordinator.announce`, which workers sharing a filesystem
   (or receiving the file out of band) read back.

Deliberately no multicast/zeroconf: campaign fleets run on lab
networks and CI runners where "a file and an env var" is the whole
discovery problem.
"""

from __future__ import annotations

import os
import typing as _t

#: Environment variable naming the coordinator endpoint (``host:port``).
ENDPOINT_ENV = "REPRO_COORDINATOR"

#: Default endpoint-file name, resolved against the working directory.
DEFAULT_ENDPOINT_FILE = ".repro-coordinator"


class DiscoveryError(RuntimeError):
    """No coordinator endpoint could be resolved."""


def parse_endpoint(text: str) -> _t.Tuple[str, int]:
    """Split ``host:port`` (IPv6 hosts may be bracketed)."""
    text = text.strip()
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise DiscoveryError(f"malformed endpoint {text!r}; want host:port")
    try:
        number = int(port)
    except ValueError:
        raise DiscoveryError(
            f"malformed endpoint {text!r}; port is not an integer"
        ) from None
    if not 0 < number < 65536:
        raise DiscoveryError(f"endpoint {text!r}: port out of range")
    return host.strip("[]"), number


def write_endpoint(
    path: _t.Union[str, os.PathLike], host: str, port: int
) -> None:
    """Atomically publish ``host:port`` at *path*.

    Write-then-rename so a worker polling for the file never reads a
    half-written endpoint.
    """
    final = os.fspath(path)
    staging = f"{final}.tmp.{os.getpid()}"
    with open(staging, "w", encoding="utf-8") as fh:
        fh.write(f"{host}:{port}\n")
    os.replace(staging, final)


def read_endpoint(path: _t.Union[str, os.PathLike]) -> _t.Tuple[str, int]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return parse_endpoint(fh.readline())
    except OSError as exc:
        raise DiscoveryError(
            f"cannot read endpoint file {os.fspath(path)!r}: {exc}"
        ) from None


def resolve_endpoint(
    explicit: _t.Optional[str] = None,
    path: _t.Union[None, str, os.PathLike] = None,
) -> _t.Tuple[str, int]:
    """Resolve the coordinator endpoint by the precedence above."""
    if explicit:
        return parse_endpoint(explicit)
    env = os.environ.get(ENDPOINT_ENV)
    if env:
        return parse_endpoint(env)
    candidate = DEFAULT_ENDPOINT_FILE if path is None else path
    if os.path.exists(candidate):
        return read_endpoint(candidate)
    raise DiscoveryError(
        f"no coordinator endpoint: pass --connect HOST:PORT, set "
        f"${ENDPOINT_ENV}, or provide an endpoint file at "
        f"{os.fspath(candidate)!r}"
    )
