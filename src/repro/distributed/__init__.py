"""Distributed campaign execution: coordinator, workers, wire protocol.

The step from "one host's cores" (:class:`~repro.core.executors
.ParallelExecutor`) to "as many hosts as you can attach": a
:class:`Coordinator` serves :class:`~repro.core.runspec.RunSpec`
leases over TCP, worker agents (``python -m repro.distributed.worker``)
pull work-stealing style and stream
:class:`~repro.core.runspec.RunOutcome` frames back, and per-worker
shard journals merge (:func:`repro.core.checkpoint.merge_shards`) into
a checkpoint byte-identical to a serial run's.  Selected like any
other backend::

    campaign.run(strategy, runs=10_000, backend="distributed",
                 workers=4)

which auto-spawns a loopback :class:`LocalCluster`; pass an
:class:`DistributedExecutor` built with ``spawn_local=False`` to serve
remote workers instead.
"""

from .coordinator import Coordinator, DistributedExecutor, LocalCluster
from .discovery import (
    DEFAULT_ENDPOINT_FILE,
    ENDPOINT_ENV,
    DiscoveryError,
    read_endpoint,
    resolve_endpoint,
    write_endpoint,
)
from .protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    PeerGone,
    ProtocolError,
    recv_frame,
    send_frame,
)


def __getattr__(name):
    # Lazy: .worker doubles as the ``python -m repro.distributed.worker``
    # entry point; importing it here eagerly would trip runpy's
    # "found in sys.modules" warning in every spawned agent.
    if name == "run_worker":
        from .worker import run_worker

        return run_worker
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Coordinator",
    "DistributedExecutor",
    "LocalCluster",
    "run_worker",
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "PeerGone",
    "send_frame",
    "recv_frame",
    "ENDPOINT_ENV",
    "DEFAULT_ENDPOINT_FILE",
    "DiscoveryError",
    "read_endpoint",
    "write_endpoint",
    "resolve_endpoint",
]
