"""Wire protocol of the distributed campaign backend.

One frame = a 4-byte big-endian length prefix followed by that many
bytes of UTF-8 JSON — the same encoding discipline as the checkpoint
journal (compact separators, sorted keys), chosen over pickle because
frames cross host boundaries: they must be inspectable with ``nc`` and
``jq``, versioned explicitly, and safe to receive from a machine
running a different Python.

Message vocabulary (``"type"`` field):

======================  =========  ==========================================
type                    direction  payload
======================  =========  ==========================================
``hello``               w -> c     ``version``, ``schema``, worker ``name``
``welcome``             c -> w     ``version``, ``heartbeat_s``
``request``             w -> c     (empty) — pull the next lease
``lease``               c -> w     ``lease_id``, ``specs`` (RunSpec jsonable)
``result``              w -> c     ``lease_id``, ``outcome`` (RunOutcome
                                   jsonable) — one frame per completed run
``heartbeat``           w -> c     (empty) — liveness, sent off-thread
``idle``                c -> w     ``retry_after_s`` — no work right now
``shutdown``            c -> w     (empty) — campaign over, worker exits
``leave``               w -> c     (empty) — clean goodbye
======================  =========  ==========================================

Specs and outcomes reuse the exact jsonable schema the checkpoint
journal persists (``RunSpec.to_jsonable`` / ``RunOutcome.to_jsonable``,
schema version :data:`~repro.core.runspec.OUTCOME_SCHEMA_VERSION`), so
a result frame's payload *is* a journal line — the coordinator appends
it to the worker's shard verbatim, which is what makes the merged
journal byte-identical to a serial run's.
"""

from __future__ import annotations

import json
import socket
import struct
import typing as _t

from ..core.runspec import OUTCOME_SCHEMA_VERSION, RunOutcome, RunSpec

#: Bump on any incompatible change to the frame vocabulary above.
PROTOCOL_VERSION = 1

#: Hard cap on one frame's payload; a length prefix beyond this is a
#: corrupt stream (or a port scanner), not a lease.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class ProtocolError(RuntimeError):
    """The peer sent something that is not a valid frame."""


class PeerGone(ConnectionError):
    """The peer closed the connection (EOF mid-frame or before one)."""


def encode_frame(message: _t.Mapping[str, _t.Any]) -> bytes:
    """Serialize one message to its length-prefixed wire form."""
    payload = json.dumps(
        message, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte cap"
        )
    return _LENGTH.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> _t.Dict[str, _t.Any]:
    try:
        message = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"undecodable frame payload: {exc}") from None
    if not isinstance(message, dict) or "type" not in message:
        raise ProtocolError("frame payload is not a typed message object")
    return message


def send_frame(
    sock: socket.socket, message: _t.Mapping[str, _t.Any]
) -> None:
    """Write one frame; raises ``OSError`` if the peer is gone."""
    sock.sendall(encode_frame(message))


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    while count:
        chunk = sock.recv(count)
        if not chunk:
            raise PeerGone("connection closed mid-frame")
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> _t.Dict[str, _t.Any]:
    """Read one complete frame; raises :class:`PeerGone` on clean EOF
    at a frame boundary as well as mid-frame — callers treat both as
    the peer leaving."""
    header = sock.recv(_LENGTH.size)
    if not header:
        raise PeerGone("connection closed")
    if len(header) < _LENGTH.size:
        header += _recv_exact(sock, _LENGTH.size - len(header))
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte cap"
        )
    return decode_payload(_recv_exact(sock, length))


# -- typed constructors ------------------------------------------------------


def hello(name: str) -> _t.Dict[str, _t.Any]:
    return {
        "type": "hello",
        "version": PROTOCOL_VERSION,
        "schema": OUTCOME_SCHEMA_VERSION,
        "name": name,
    }


def welcome(heartbeat_s: float) -> _t.Dict[str, _t.Any]:
    return {
        "type": "welcome",
        "version": PROTOCOL_VERSION,
        "heartbeat_s": heartbeat_s,
    }


def request() -> _t.Dict[str, _t.Any]:
    return {"type": "request"}


def lease(
    lease_id: int, specs: _t.Sequence[RunSpec]
) -> _t.Dict[str, _t.Any]:
    return {
        "type": "lease",
        "lease_id": lease_id,
        "specs": [spec.to_jsonable() for spec in specs],
    }


def result(lease_id: int, outcome: RunOutcome) -> _t.Dict[str, _t.Any]:
    return {
        "type": "result",
        "lease_id": lease_id,
        "outcome": outcome.to_jsonable(),
    }


def heartbeat() -> _t.Dict[str, _t.Any]:
    return {"type": "heartbeat"}


def idle(retry_after_s: float) -> _t.Dict[str, _t.Any]:
    return {"type": "idle", "retry_after_s": retry_after_s}


def shutdown() -> _t.Dict[str, _t.Any]:
    return {"type": "shutdown"}


def leave() -> _t.Dict[str, _t.Any]:
    return {"type": "leave"}


def check_hello(message: _t.Mapping[str, _t.Any]) -> str:
    """Validate a worker's hello; returns its name."""
    if message.get("type") != "hello":
        raise ProtocolError(
            f"expected hello, got {message.get('type')!r}"
        )
    if message.get("version") != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: coordinator speaks "
            f"{PROTOCOL_VERSION}, worker sent {message.get('version')!r}"
        )
    if message.get("schema") != OUTCOME_SCHEMA_VERSION:
        raise ProtocolError(
            f"outcome schema mismatch: coordinator writes "
            f"v{OUTCOME_SCHEMA_VERSION}, worker sent "
            f"{message.get('schema')!r}"
        )
    name = message.get("name")
    if not isinstance(name, str) or not name:
        raise ProtocolError("hello carries no worker name")
    return name
