"""Coordinator side of the distributed campaign backend.

The :class:`Coordinator` owns a TCP server socket and the batch state:
pending run indices, outstanding leases, completed outcomes, per-spec
crash budgets.  Workers (:mod:`repro.distributed.worker`) connect,
introduce themselves, and *pull* work — the coordinator never pushes —
so scheduling is work-stealing by construction: a fast worker simply
comes back for more while a slow one is still simulating, and the
grant size shrinks as the tail shortens (see :meth:`Coordinator._grant`)
so the campaign never ends with one worker grinding through a large
chunk while the rest sit idle.

Failure model
-------------

Liveness is lease + heartbeat based.  A worker that disappears — EOF
on its connection, stale heartbeats, or a lease outliving its
hard-timeout backstop — has its unreported leased runs requeued.  The
accounting mirrors the chunked parallel executor's: the dead lease is
treated like a failed chunk, so requeued runs that were provably not
executing (everything behind the in-flight run in grant order) re-run
*uncharged*, keeping their records byte-identical to a serial run's.
Only the in-flight run — the first unreported index of the lease — is
charged against the :class:`~repro.core.executors.RetryPolicy` crash
budget; a poison spec that keeps killing workers becomes a terminal
``crash:worker`` record after ``max_retries`` redispatches, exactly
like the process-pool backend.  A lease that exceeds its hard timeout
while heartbeats still flow is a hung *run* (the worker-side deadline
could not fire): the in-flight run is recorded terminally as
``timeout:pool`` — a rerun would hang for the full backstop again —
and the rest of the lease requeues uncharged.

Shard journals and the determinism contract
-------------------------------------------

With ``shard_dir`` set, every result is appended to the reporting
worker's own :class:`~repro.core.checkpoint.CampaignCheckpoint` shard
(``shard-<worker>.jsonl``) the moment it arrives; coordinator-side
terminal records (crash budget exhausted, hung lease) land in the
``coordinator`` shard.  Each shard is a valid journal for the campaign
key bound via :meth:`DistributedExecutor.bind_campaign_key`, and
:func:`repro.core.checkpoint.merge_shards` folds them — deduplicated
by run index, sorted ascending — into a journal byte-identical to the
one a serial run of the same seed writes (modulo the wall-clock
``wall_s`` counter, which is outside every byte-equality contract).
"""

from __future__ import annotations

import collections
import dataclasses
import os
import pathlib
import re
import socket
import subprocess
import sys
import threading
import time
import typing as _t

from ..core.checkpoint import CampaignCheckpoint
from ..core.executors import (
    HARD_TIMEOUT_FACTOR,
    HARD_TIMEOUT_GRACE,
    Executor,
    RetryPolicy,
    default_worker_count,
)
from ..core.runspec import RunOutcome, RunSpec, failure_outcome
from . import protocol
from .discovery import write_endpoint

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..observe.telemetry import CampaignTelemetry

#: How long an idle worker is told to wait before pulling again.
IDLE_RETRY_S = 0.05

#: Default heartbeat cadence pushed to workers in the welcome frame.
DEFAULT_HEARTBEAT_S = 0.5

#: Default liveness window: a worker silent for this long is dead.
DEFAULT_LEASE_TIMEOUT_S = 15.0


class _Lease:
    """One grant of contiguous work to one worker."""

    __slots__ = ("lease_id", "worker", "indices", "reported", "deadline")

    def __init__(
        self,
        lease_id: int,
        worker: str,
        indices: _t.List[int],
        deadline: _t.Optional[float],
    ):
        self.lease_id = lease_id
        self.worker = worker
        #: Grant order == execution order on the worker; the first
        #: unreported index is therefore the in-flight run.
        self.indices = indices
        self.reported: _t.Set[int] = set()
        #: Absolute monotonic hard-timeout, or None to wait forever
        #: (any deadline-less spec may legitimately run arbitrarily
        #: long — same rule as the pool backend's chunk backstop).
        self.deadline = deadline

    def unreported(self) -> _t.List[int]:
        return [i for i in self.indices if i not in self.reported]


class _Worker:
    """Connection-side state of one registered worker."""

    __slots__ = ("name", "sock", "send_lock", "last_seen", "lease")

    def __init__(self, name: str, sock: socket.socket):
        self.name = name
        self.sock = sock
        #: Results and control frames share the socket with nothing —
        #: only the handler thread sends to a worker — but the lock
        #: keeps that invariant explicit and cheap.
        self.send_lock = threading.Lock()
        self.last_seen = time.monotonic()  # vp-lint: disable=VP005 - liveness bookkeeping, not model behavior
        self.lease: _t.Optional[_Lease] = None


class Coordinator:
    """Serve campaign work over TCP; collect outcomes; survive workers.

    The server socket binds at construction (so the endpoint is known
    before any worker is spawned); :meth:`submit` feeds one batch of
    specs and blocks until every index has an outcome.  Workers may
    connect and leave at any point — before the first batch, between
    batches, mid-lease — and the batch completes as long as at least
    one worker eventually serves it.
    """

    def __init__(
        self,
        retry: _t.Optional[RetryPolicy] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        chunk_size: _t.Optional[int] = None,
        hard_timeout_s: _t.Optional[float] = None,
        heartbeat_s: float = DEFAULT_HEARTBEAT_S,
        lease_timeout_s: float = DEFAULT_LEASE_TIMEOUT_S,
        shard_dir: _t.Union[None, str, os.PathLike] = None,
        expected_workers: int = 1,
        telemetry: _t.Optional["CampaignTelemetry"] = None,
        on_worker_dead: _t.Optional[_t.Callable[[str, str], None]] = None,
    ):
        if heartbeat_s <= 0 or lease_timeout_s <= 0:
            raise ValueError("heartbeat and lease timeout must be positive")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk size must be positive")
        self.retry = retry or RetryPolicy()
        self.chunk_size = chunk_size
        self.hard_timeout_s = hard_timeout_s
        self.heartbeat_s = heartbeat_s
        self.lease_timeout_s = lease_timeout_s
        self.shard_dir = (
            pathlib.Path(shard_dir) if shard_dir is not None else None
        )
        self.expected_workers = max(1, expected_workers)
        self.telemetry = telemetry
        self.on_worker_dead = on_worker_dead
        self.campaign_key: _t.Optional[dict] = None

        self._lock = threading.Condition()
        self._workers: _t.Dict[str, _Worker] = {}
        self._pending: _t.Deque[int] = collections.deque()
        self._specs: _t.Dict[int, RunSpec] = {}
        self._done: _t.Dict[int, RunOutcome] = {}
        self._crash_counts: _t.Dict[int, int] = {}
        self._batch_size = 0
        self._lease_seq = 0
        self._closing = False
        self._shards: _t.Dict[str, CampaignCheckpoint] = {}
        #: Lifetime counters surfaced through CampaignResult.report()
        #: by way of DistributedExecutor.
        self.workers_joined = 0
        self.workers_lost = 0
        self.leases_granted = 0

        self._server = socket.create_server((host, port))
        self.host, self.port = self._server.getsockname()[:2]
        self._threads: _t.List[threading.Thread] = []
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-dist-accept", daemon=True
        )
        self._accept_thread.start()
        self._monitor_thread = threading.Thread(
            target=self._monitor_loop, name="repro-dist-monitor", daemon=True
        )
        self._monitor_thread.start()

    # -- endpoint ------------------------------------------------------------

    @property
    def endpoint(self) -> str:
        return f"{self.host}:{self.port}"

    def announce(self, path: _t.Union[str, os.PathLike]) -> None:
        """Write the endpoint file remote workers discover us through."""
        write_endpoint(path, self.host, self.port)

    # -- batch lifecycle -----------------------------------------------------

    def submit(self, specs: _t.Sequence[RunSpec]) -> _t.List[RunOutcome]:
        """Serve one batch to whatever workers show up; block until
        every spec has an outcome; return outcomes sorted by index."""
        if not specs:
            return []
        with self._lock:
            if self._pending or self._specs:
                raise RuntimeError("a batch is already in flight")
            self._specs = {spec.index: spec for spec in specs}
            self._done = {}
            self._crash_counts = {}
            self._batch_size = len(specs)
            self._pending.extend(spec.index for spec in specs)
            self._lock.notify_all()
            while len(self._done) < len(specs):
                if self._closing:
                    raise RuntimeError("coordinator closed mid-batch")
                self._lock.wait(timeout=0.5)
            done, self._done = self._done, {}
            self._specs = {}
            self._crash_counts = {}
        return [done[spec.index] for spec in sorted(specs, key=lambda s: s.index)]

    # -- scheduling ----------------------------------------------------------

    def _grant_size(self) -> int:
        """How many runs the next lease should carry.

        Two regimes, like the issue's steal rule: while plenty of work
        remains, PR 4's chunk heuristic (about four chunks per
        expected worker per batch) amortizes frame round-trips; once
        the tail is short, the quantum shrinks toward 1 so stragglers
        can steal — ``ceil(remaining / (2 * active))`` guarantees at
        least two grants per live worker remain available.
        """
        chunk = self.chunk_size
        if chunk is None:
            chunk = max(
                1, -(-self._batch_size // (self.expected_workers * 4))
            )
        active = max(1, len(self._workers))
        fair = -(-len(self._pending) // (2 * active))
        return max(1, min(chunk, fair))

    def _lease_deadline(
        self, specs: _t.Sequence[RunSpec]
    ) -> _t.Optional[float]:
        if self.hard_timeout_s is not None:
            budget = self.hard_timeout_s * len(specs)
        else:
            deadlines = [
                s.deadline_s for s in specs if s.deadline_s is not None
            ]
            if len(deadlines) < len(specs):
                return None
            budget = (
                max(deadlines) * HARD_TIMEOUT_FACTOR * len(specs)
                + HARD_TIMEOUT_GRACE
            )
        return time.monotonic() + budget  # vp-lint: disable=VP005 - lease backstop bookkeeping, not model behavior

    def _grant(self, worker: _Worker) -> _t.Dict[str, _t.Any]:
        """Build the reply to one work request (lease or idle)."""
        with self._lock:
            if self._closing:
                return protocol.shutdown()
            if worker.lease is not None and worker.lease.unreported():
                # A worker must drain its lease before pulling again;
                # a request in this state means its results were lost.
                raise protocol.ProtocolError(
                    f"worker {worker.name!r} requested work with "
                    f"{len(worker.lease.unreported())} leased runs "
                    f"unreported"
                )
            worker.lease = None
            if not self._pending:
                return protocol.idle(IDLE_RETRY_S)
            count = self._grant_size()
            indices = [
                self._pending.popleft()
                for _ in range(min(count, len(self._pending)))
            ]
            specs = [self._respec(index) for index in indices]
            self._lease_seq += 1
            self.leases_granted += 1
            lease = _Lease(
                self._lease_seq,
                worker.name,
                indices,
                self._lease_deadline(specs),
            )
            worker.lease = lease
            return protocol.lease(lease.lease_id, specs)

    def _respec(self, index: int) -> RunSpec:
        """The spec to dispatch for *index*, carrying its attempt count.

        ``attempt`` is the number of crash-charged prior executions —
        zero for first dispatches *and* for uncharged requeues, which
        is what keeps an innocent casualty's eventual record
        byte-identical to a serial run's.
        """
        spec = self._specs[index]
        attempt = self._crash_counts.get(index, 0)
        if spec.attempt != attempt:
            spec = dataclasses.replace(spec, attempt=attempt)
        return spec

    # -- result / failure accounting ----------------------------------------

    def _record(self, name: str, outcome: RunOutcome) -> None:
        with self._lock:
            worker = self._workers.get(name)
            if worker is not None and worker.lease is not None:
                worker.lease.reported.add(outcome.index)
            if outcome.index not in self._specs:
                # Late result from a worker we already declared dead
                # and whose runs were redispatched (or a prior batch).
                # Its shard keeps the record; the merge dedupes.
                self._shard_append(name, outcome)
                return
            if outcome.index not in self._done:
                self._done[outcome.index] = outcome
                self._shard_append(name, outcome)
                if self.telemetry is not None:
                    self.telemetry.on_worker_result(name, outcome)
            else:
                self._shard_append(name, outcome)
            self._lock.notify_all()

    def _mark_dead(self, name: str, reason: str, hung: bool = False) -> None:
        """Requeue a dead worker's lease; charge only the in-flight run."""
        with self._lock:
            worker = self._workers.pop(name, None)
            if worker is None:
                return
            self.workers_lost += 1
            try:
                worker.sock.close()
            except OSError:  # pragma: no cover - already closed
                pass
            lease = worker.lease
            requeued = 0
            if lease is not None:
                unreported = [
                    i for i in lease.unreported() if i in self._specs
                    and i not in self._done
                ]
                if unreported:
                    in_flight, innocents = unreported[0], unreported[1:]
                    if hung:
                        # The worker-side deadline never fired; a rerun
                        # would hang for the full backstop again.
                        self._done[in_flight] = failure_outcome(
                            self._specs[in_flight],
                            failure="timeout",
                            error=(
                                f"no result within the lease-level hard "
                                f"timeout ({reason})"
                            ),
                            attempts=self._crash_counts.get(in_flight, 0)
                            + 1,
                            label="timeout:pool",
                        )
                        self._shard_append(
                            "coordinator", self._done[in_flight]
                        )
                    else:
                        charged = self._crash_counts.get(in_flight, 0) + 1
                        self._crash_counts[in_flight] = charged
                        if charged >= self.retry.max_attempts:
                            self._done[in_flight] = failure_outcome(
                                self._specs[in_flight],
                                failure="crash",
                                error=(
                                    f"worker died ({reason}); retry "
                                    f"budget of {self.retry.max_retries} "
                                    f"exhausted"
                                ),
                                attempts=charged,
                                label="crash:worker",
                            )
                            self._shard_append(
                                "coordinator", self._done[in_flight]
                            )
                        else:
                            self._pending.appendleft(in_flight)
                            requeued += 1
                    for index in reversed(innocents):
                        # Provably queued behind the in-flight run on
                        # the worker (leases execute in grant order):
                        # requeue free of charge.
                        self._pending.appendleft(index)
                        requeued += 1
            if self.telemetry is not None:
                self.telemetry.on_worker_dead({
                    "worker": name,
                    "reason": reason,
                    "requeued": requeued,
                })
            self._lock.notify_all()
        if self.on_worker_dead is not None:
            self.on_worker_dead(name, reason)

    # -- shard journals ------------------------------------------------------

    def bind_campaign_key(self, key: dict) -> None:
        """Pin shard journals to the campaign identity (see
        :func:`repro.core.checkpoint.campaign_key`); must happen before
        the first result when ``shard_dir`` is set."""
        with self._lock:
            if self._shards and self.campaign_key != key:
                raise RuntimeError(
                    "cannot rebind the campaign key with shards open"
                )
            self.campaign_key = key

    def _shard_append(self, name: str, outcome: RunOutcome) -> None:
        if self.shard_dir is None:
            return
        shard = self._shards.get(name)
        if shard is None:
            safe = re.sub(r"[^A-Za-z0-9._-]", "_", name)
            shard = CampaignCheckpoint(
                self.shard_dir / f"shard-{safe}.jsonl"
            )
            shard.open(
                self.campaign_key
                if self.campaign_key is not None
                else {"distributed": True}
            )
            self._shards[name] = shard
        shard.record_batch([outcome])

    def shard_paths(self) -> _t.List[pathlib.Path]:
        """The shard journal files written so far, sorted by name."""
        with self._lock:
            return sorted(shard.path for shard in self._shards.values())

    # -- socket plumbing -----------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closing:
            try:
                sock, _addr = self._server.accept()
            except OSError:
                return  # server closed
            thread = threading.Thread(
                target=self._serve_connection,
                args=(sock,),
                name="repro-dist-conn",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def _serve_connection(self, sock: socket.socket) -> None:
        name: _t.Optional[str] = None
        try:
            sock.settimeout(None)
            name = protocol.check_hello(protocol.recv_frame(sock))
            worker = _Worker(name, sock)
            with self._lock:
                if name in self._workers:
                    raise protocol.ProtocolError(
                        f"worker name {name!r} already connected"
                    )
                self._workers[name] = worker
                self.workers_joined += 1
                self._lock.notify_all()
            if self.telemetry is not None:
                self.telemetry.on_worker_join({"worker": name})
            with worker.send_lock:
                protocol.send_frame(
                    sock, protocol.welcome(self.heartbeat_s)
                )
            while True:
                message = protocol.recv_frame(sock)
                kind = message["type"]
                with self._lock:
                    worker.last_seen = time.monotonic()  # vp-lint: disable=VP005 - liveness bookkeeping, not model behavior
                if kind == "heartbeat":
                    continue
                if kind == "request":
                    reply = self._grant(worker)
                    with worker.send_lock:
                        protocol.send_frame(sock, reply)
                    if reply["type"] == "shutdown":
                        break
                elif kind == "result":
                    self._record(
                        name,
                        RunOutcome.from_jsonable(message["outcome"]),
                    )
                elif kind == "leave":
                    self._leave(name)
                    name = None
                    break
                else:
                    raise protocol.ProtocolError(
                        f"unexpected frame type {kind!r} from worker"
                    )
        except (protocol.PeerGone, protocol.ProtocolError, OSError) as exc:
            if name is not None:
                with self._lock:
                    known = name in self._workers
                if known:
                    self._mark_dead(name, f"{type(exc).__name__}: {exc}")
        finally:
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass

    def _leave(self, name: str) -> None:
        """Clean goodbye: requeue any leased leftovers uncharged."""
        with self._lock:
            worker = self._workers.pop(name, None)
            if worker is None:
                return
            if worker.lease is not None:
                for index in reversed([
                    i for i in worker.lease.unreported()
                    if i in self._specs and i not in self._done
                ]):
                    self._pending.appendleft(index)
            self._lock.notify_all()
        if self.telemetry is not None:
            self.telemetry.on_worker_leave({"worker": name})

    def _monitor_loop(self) -> None:
        interval = min(self.heartbeat_s, 0.25)
        while not self._closing:
            time.sleep(interval)
            now = time.monotonic()  # vp-lint: disable=VP005 - liveness bookkeeping, not model behavior
            stale: _t.List[_t.Tuple[str, str, bool]] = []
            with self._lock:
                for name, worker in self._workers.items():
                    if now - worker.last_seen > self.lease_timeout_s:
                        stale.append((
                            name,
                            f"no heartbeat for {self.lease_timeout_s}s",
                            False,
                        ))
                    elif (
                        worker.lease is not None
                        and worker.lease.deadline is not None
                        and now > worker.lease.deadline
                        and worker.lease.unreported()
                    ):
                        stale.append((
                            name, "lease hard timeout exceeded", True,
                        ))
            for name, reason, hung in stale:
                self._mark_dead(name, reason, hung=hung)

    def close(self) -> None:
        with self._lock:
            if self._closing:
                return
            self._closing = True
            workers = list(self._workers.values())
            self._workers.clear()
            self._lock.notify_all()
        for worker in workers:
            try:
                with worker.send_lock:
                    protocol.send_frame(worker.sock, protocol.shutdown())
            except OSError:
                pass
            try:
                worker.sock.close()
            except OSError:  # pragma: no cover
                pass
        try:
            self._server.close()
        except OSError:  # pragma: no cover
            pass
        with self._lock:
            for shard in self._shards.values():
                shard.close()


class LocalCluster:
    """Spawn N worker processes against a coordinator over loopback.

    Each worker is a real ``python -m repro.distributed.worker``
    subprocess speaking the real socket protocol — the loopback
    cluster exercises exactly the code a multi-host deployment runs,
    which is what lets single-machine tests and CI pin the distributed
    backend's equivalence contract.
    """

    def __init__(
        self,
        endpoint: str,
        workers: int = 4,
        name_prefix: str = "w",
        extra_args: _t.Sequence[str] = (),
        env: _t.Optional[_t.Mapping[str, str]] = None,
    ):
        if workers < 1:
            raise ValueError("need at least one worker")
        self.endpoint = endpoint
        self.name_prefix = name_prefix
        self.extra_args = list(extra_args)
        self.env = dict(env) if env is not None else None
        self.processes: _t.List[subprocess.Popen] = []
        #: Worker name -> its process, for targeted replacement.
        self.by_name: _t.Dict[str, subprocess.Popen] = {}
        self._spawned = 0
        for _ in range(workers):
            self.add_worker()

    def _worker_env(self) -> _t.Dict[str, str]:
        env = dict(os.environ if self.env is None else self.env)
        # Workers must import repro the same way the parent does, even
        # when the parent runs from a source tree that is not
        # installed.
        src = pathlib.Path(__file__).resolve().parents[2]
        path = env.get("PYTHONPATH", "")
        if str(src) not in path.split(os.pathsep):
            env["PYTHONPATH"] = (
                f"{src}{os.pathsep}{path}" if path else str(src)
            )
        return env

    def add_worker(
        self, extra_args: _t.Optional[_t.Sequence[str]] = None
    ) -> subprocess.Popen:
        """Attach one more worker (elastic join, also usable
        mid-campaign)."""
        name = f"{self.name_prefix}{self._spawned}"
        self._spawned += 1
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.distributed.worker",
                "--connect",
                self.endpoint,
                "--name",
                name,
                *(self.extra_args if extra_args is None
                  else list(extra_args)),
            ],
            env=self._worker_env(),
        )
        self.processes.append(process)
        self.by_name[name] = process
        return process

    def kill_worker(self, position: int = 0) -> None:
        """SIGKILL one worker (fault-injection for the backend itself)."""
        self.processes[position].kill()

    def replace_worker(self, name: str) -> _t.Optional[subprocess.Popen]:
        """Terminate the named worker (it may be hung, not just dead)
        and spawn a fresh one; no-op for names we did not spawn."""
        process = self.by_name.get(name)
        if process is None:
            return None
        if process.poll() is None:
            process.terminate()
        return self.add_worker()

    def alive(self) -> int:
        return sum(1 for p in self.processes if p.poll() is None)

    def close(self, timeout: float = 5.0) -> None:
        for process in self.processes:
            if process.poll() is None:
                process.terminate()
        deadline = time.monotonic() + timeout  # vp-lint: disable=VP005 - subprocess teardown, not model behavior
        for process in self.processes:
            remaining = max(0.0, deadline - time.monotonic())  # vp-lint: disable=VP005 - subprocess teardown, not model behavior
            try:
                process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()

    def __enter__(self) -> "LocalCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class DistributedExecutor(Executor):
    """The :class:`~repro.core.executors.Executor` facade over a
    coordinator (plus, by default, an auto-spawned loopback cluster).

    Drop-in behind ``make_executor(backend="distributed")``: batches go
    through :meth:`run_batch` exactly like the serial and pool
    backends, outcomes come back sorted by index, and every record is
    byte-identical to a serial run of the same specs (equivalence-test
    pinned, wall clock aside).  ``spawn_local=True`` (the default)
    brings up a :class:`LocalCluster` of ``workers`` processes on
    first use; with ``spawn_local=False`` the executor only serves its
    endpoint and any externally started worker —
    ``python -m repro.distributed.worker --connect host:port`` on
    another machine — can join, steal work, and leave at any time.
    """

    def __init__(
        self,
        platform: _t.Optional[str] = None,
        workers: _t.Optional[int] = None,
        retry: _t.Optional[RetryPolicy] = None,
        hard_timeout_s: _t.Optional[float] = None,
        chunk_size: _t.Optional[int] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        shard_dir: _t.Union[None, str, os.PathLike] = None,
        spawn_local: bool = True,
        heartbeat_s: float = DEFAULT_HEARTBEAT_S,
        lease_timeout_s: float = DEFAULT_LEASE_TIMEOUT_S,
        announce: _t.Union[None, str, os.PathLike] = None,
        telemetry: _t.Optional["CampaignTelemetry"] = None,
    ):
        if workers is not None and workers < 1:
            raise ValueError("need at least one worker")
        if platform is not None:
            # Fail fast in the coordinator process on unknown keys
            # instead of surfacing a KeyError from every worker.
            from ..platforms import registry

            registry.get_platform(platform)
        self.platform = platform
        self.workers = workers or default_worker_count()
        self.spawn_local = spawn_local
        self.coordinator = Coordinator(
            retry=retry,
            host=host,
            port=port,
            chunk_size=chunk_size,
            hard_timeout_s=hard_timeout_s,
            heartbeat_s=heartbeat_s,
            lease_timeout_s=lease_timeout_s,
            shard_dir=shard_dir,
            expected_workers=self.workers,
            telemetry=telemetry,
        )
        if announce is not None:
            self.coordinator.announce(announce)
        self._cluster: _t.Optional[LocalCluster] = None
        self._closed = False
        # The pool backend rebuilds its ProcessPoolExecutor after a
        # crash; the loopback cluster's analogue is respawning a
        # replacement worker whenever the coordinator declares one
        # dead — so a poison spec burns its retry budget against fresh
        # workers instead of draining the cluster to zero.
        self.coordinator.on_worker_dead = self._replace_dead_worker

    # -- campaign integration ------------------------------------------------

    @property
    def endpoint(self) -> str:
        return self.coordinator.endpoint

    @property
    def telemetry(self) -> _t.Optional["CampaignTelemetry"]:
        return self.coordinator.telemetry

    @telemetry.setter
    def telemetry(self, value: _t.Optional["CampaignTelemetry"]) -> None:
        self.coordinator.telemetry = value

    def bind_campaign_key(self, key: dict) -> None:
        """Called by ``Campaign.run`` with the checkpoint identity so
        shard journals carry the same header a serial journal would."""
        self.coordinator.bind_campaign_key(key)

    def shard_paths(self) -> _t.List[pathlib.Path]:
        return self.coordinator.shard_paths()

    @property
    def workers_lost(self) -> int:
        return self.coordinator.workers_lost

    @property
    def leases_granted(self) -> int:
        return self.coordinator.leases_granted

    # -- execution -----------------------------------------------------------

    def _ensure_cluster(self) -> None:
        if self.spawn_local and self._cluster is None:
            self._cluster = LocalCluster(
                self.coordinator.endpoint, workers=self.workers
            )

    def _replace_dead_worker(self, name: str, reason: str) -> None:
        cluster = self._cluster
        if self._closed or cluster is None:
            return
        if cluster.replace_worker(name) is None and (
            cluster.alive() < self.workers
        ):
            # Not one of ours (an externally attached worker died):
            # only top the cluster back up if it is actually short.
            cluster.add_worker()

    def run_batch(self, specs: _t.Sequence[RunSpec]) -> _t.List[RunOutcome]:
        for spec in specs:
            if spec.platform is None:
                raise ValueError(
                    f"run {spec.index}: spec has no platform registry "
                    f"key; distributed execution requires a campaign "
                    f"built with platform=<name>"
                )
        self._ensure_cluster()
        return self.coordinator.submit(specs)

    def close(self) -> None:
        self._closed = True
        self.coordinator.close()
        if self._cluster is not None:
            self._cluster.close()
            self._cluster = None
