"""Worker agent of the distributed campaign backend.

``python -m repro.distributed.worker --connect HOST:PORT`` attaches to
a coordinator, pulls leases, executes them through the exact tolerant
routines the process-pool backend ships to its workers
(:func:`~repro.core.runspec.execute_runspec_tolerant` per run,
:func:`~repro.core.runspec.execute_chunk_tolerant` when a lease
carries fork-mode specs), and streams one ``result`` frame back per
completed run.  Streaming — rather than returning the lease as one
block — is what gives the coordinator run-granular failure
attribution: when this process dies mid-lease, every already-streamed
outcome is safe, and only genuinely unexecuted runs requeue.

Identical execution code on every backend is the point: a worker on
another host builds its platform from the spec's registry key, keeps
the same per-process warm-platform cache, applies the same per-run
deadline handling, and produces records byte-identical to an
in-process serial run — the equivalence the distributed tests pin.

A background daemon thread heartbeats at the cadence the coordinator
announced in its welcome frame, so liveness detection keeps working
while the main thread is deep inside a long simulation.
"""

from __future__ import annotations

import argparse
import os
import socket
import threading
import time
import typing as _t

from ..core.runspec import (
    RunSpec,
    execute_chunk_tolerant,
    execute_runspec_tolerant,
)
from . import protocol
from .discovery import parse_endpoint, resolve_endpoint


def _heartbeat_loop(
    sock: socket.socket,
    send_lock: threading.Lock,
    interval_s: float,
    stop: threading.Event,
) -> None:
    while not stop.wait(interval_s):
        try:
            with send_lock:
                protocol.send_frame(sock, protocol.heartbeat())
        except OSError:
            return


def _execute_lease(specs: _t.Sequence[RunSpec]) -> _t.Iterator:
    """Yield outcomes for one lease, in lease (grant) order.

    Fork-mode leases must run as a group (the snapshot amortization is
    the whole point of fork specs), so their results arrive after the
    group completes; everything else streams run by run.
    """
    if any(spec.fork for spec in specs):
        yield from execute_chunk_tolerant(specs)
    else:
        for spec in specs:
            yield execute_runspec_tolerant(spec)


def run_worker(
    endpoint: str,
    name: _t.Optional[str] = None,
    max_leases: _t.Optional[int] = None,
    heartbeat_s: _t.Optional[float] = None,
) -> int:
    """Serve one coordinator until shutdown; returns an exit status.

    ``max_leases`` bounds how many leases this worker serves before
    sending a clean ``leave`` — the elastic-departure path (and the
    lever tests use to exercise it).  A vanished coordinator is a
    normal end of service, not an error: campaigns own their workers'
    lifetime, so the agent exits 0.
    """
    host, port = parse_endpoint(endpoint)
    worker_name = name or f"worker-{socket.gethostname()}-{os.getpid()}"
    sock = socket.create_connection((host, port))
    send_lock = threading.Lock()
    stop = threading.Event()
    beat: _t.Optional[threading.Thread] = None
    leases_served = 0
    try:
        with send_lock:
            protocol.send_frame(sock, protocol.hello(worker_name))
        welcome = protocol.recv_frame(sock)
        if welcome.get("type") != "welcome":
            raise protocol.ProtocolError(
                f"expected welcome, got {welcome.get('type')!r}"
            )
        interval = (
            heartbeat_s
            if heartbeat_s is not None
            else float(welcome["heartbeat_s"])
        )
        beat = threading.Thread(
            target=_heartbeat_loop,
            args=(sock, send_lock, interval, stop),
            name="repro-dist-heartbeat",
            daemon=True,
        )
        beat.start()
        while True:
            if max_leases is not None and leases_served >= max_leases:
                with send_lock:
                    protocol.send_frame(sock, protocol.leave())
                return 0
            with send_lock:
                protocol.send_frame(sock, protocol.request())
            message = protocol.recv_frame(sock)
            kind = message["type"]
            if kind == "shutdown":
                return 0
            if kind == "idle":
                time.sleep(max(0.0, float(message["retry_after_s"])))
                continue
            if kind != "lease":
                raise protocol.ProtocolError(
                    f"unexpected frame type {kind!r} from coordinator"
                )
            specs = [
                RunSpec.from_jsonable(payload)
                for payload in message["specs"]
            ]
            lease_id = message["lease_id"]
            for outcome in _execute_lease(specs):
                with send_lock:
                    protocol.send_frame(
                        sock, protocol.result(lease_id, outcome)
                    )
            leases_served += 1
    except (protocol.PeerGone, ConnectionError, OSError):
        return 0
    finally:
        stop.set()
        try:
            sock.close()
        except OSError:  # pragma: no cover
            pass


def main(argv: _t.Optional[_t.Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.distributed.worker",
        description=(
            "Campaign worker agent: pulls fault-injection runs from a "
            "repro.distributed coordinator and streams results back."
        ),
    )
    parser.add_argument(
        "--connect",
        metavar="HOST:PORT",
        help=(
            "coordinator endpoint; defaults to $REPRO_COORDINATOR or "
            "the .repro-coordinator endpoint file in the working "
            "directory"
        ),
    )
    parser.add_argument(
        "--name",
        help="worker name (shard namespace and telemetry attribution)",
    )
    parser.add_argument(
        "--max-leases",
        type=int,
        default=None,
        help="serve this many leases, then leave cleanly",
    )
    parser.add_argument(
        "--heartbeat-s",
        type=float,
        default=None,
        help="override the coordinator-announced heartbeat cadence",
    )
    args = parser.parse_args(argv)
    host, port = resolve_endpoint(args.connect)
    return run_worker(
        f"{host}:{port}",
        name=args.name,
        max_leases=args.max_leases,
        heartbeat_s=args.heartbeat_s,
    )


if __name__ == "__main__":  # pragma: no cover - exercised as subprocess
    raise SystemExit(main())
