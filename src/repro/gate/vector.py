"""Bit-parallel vectorized gate-level fault simulation.

Classic parallel-pattern fault simulation (ROADMAP item 2a): a
levelized :class:`~repro.gate.netlist.Netlist` is compiled *once* into
a flat opcode program, and every net value becomes a row of ``uint64``
words instead of a single bit.  Bit-lane ``l`` of every row is an
independent simulation scenario — 64 scenarios per machine word, a
whole fault-enumeration campaign in a handful of numpy sweeps — so one
pass over the program evaluates all lanes at machine-word width.

Lane-packing layout
-------------------

Lane ``l`` lives in word ``l >> 6``, bit ``l & 63`` of each row
(little-endian lanes).  A simulator built with ``lanes=N`` allocates
``ceil(N / 64)`` words per net; bits at or above ``N`` are kept zero
("canonical" rows), so inverting gates mask with ``lane_mask`` and
unpacking never sees garbage.

Fault-mask semantics
--------------------

Faults are per-lane masks on the faulted net's row, applied in exactly
the order of the scalar :class:`~repro.gate.simulator.GateSimulator`'s
``_apply_net_faults`` (pending SEU first, stuck-at override second)::

    value = ((raw ^ seu_xor) & stuck_and) | stuck_or

* **stuck-at** — lane bit cleared in ``stuck_and`` and set to the
  stuck level in ``stuck_or``; persists until cleared.
* **SEU on a combinational net** — lane bit OR-ed into a pending XOR
  row (idempotent, mirroring the scalar pending *set*), applied during
  the next :meth:`VectorGateSimulator.evaluate` and then cleared.
* **SEU on a flip-flop output** — the stored state row is XOR-flipped
  in place immediately (repeated injection toggles, mirroring the
  scalar ``state[net] ^= 1``).

Equivalence contract
--------------------

For every netlist, input sequence, and fault program, lane ``l`` of
the vector engine is bit-for-bit identical to a scalar
``GateSimulator`` run with lane ``l``'s faults — pinned by the
differential fuzz harness in ``tests/property/
test_gate_vector_properties.py`` and the campaign byte-equivalence
suite (``run_campaign(engine="vector")`` vs ``engine="scalar"``).
"""

from __future__ import annotations

import typing as _t

import numpy as np

from .netlist import GateType, Netlist

LANES_PER_WORD = 64

# Opcodes of the compiled program (combinational gates only; DFFs are
# handled by the state arrays).
_OP_AND = 0
_OP_OR = 1
_OP_NOT = 2
_OP_XOR = 3
_OP_NAND = 4
_OP_NOR = 5
_OP_XNOR = 6
_OP_BUF = 7
_OP_MUX = 8

_OPCODES: _t.Dict[GateType, int] = {
    GateType.AND: _OP_AND,
    GateType.OR: _OP_OR,
    GateType.NOT: _OP_NOT,
    GateType.XOR: _OP_XOR,
    GateType.NAND: _OP_NAND,
    GateType.NOR: _OP_NOR,
    GateType.XNOR: _OP_XNOR,
    GateType.BUF: _OP_BUF,
    GateType.MUX: _OP_MUX,
}

#: Opcodes whose raw result can set bits outside the lane range and
#: therefore must be masked back to canonical form.
_INVERTING = frozenset((_OP_NOT, _OP_NAND, _OP_NOR, _OP_XNOR))


class GateProgram:
    """A netlist levelized and compiled to a flat opcode program.

    Compile once, instantiate any number of
    :class:`VectorGateSimulator`\\ s (golden and faulty engines of a
    campaign share one program).
    """

    __slots__ = (
        "netlist",
        "index",
        "num_nets",
        "input_nets",
        "output_indices",
        "flop_out_indices",
        "flop_d_indices",
        "flop_row_of",
        "ops",
    )

    def __init__(self, netlist: Netlist):
        netlist.validate()
        self.netlist = netlist
        nets = netlist.nets
        self.index: _t.Dict[str, int] = {net: i for i, net in enumerate(nets)}
        self.num_nets = len(nets)
        self.input_nets: _t.List[_t.Tuple[str, int]] = [
            (net, self.index[net]) for net in netlist.inputs
        ]
        self.output_indices: _t.List[_t.Tuple[str, int]] = [
            (net, self.index[net]) for net in netlist.outputs
        ]
        flops = netlist.flops
        self.flop_out_indices = np.array(
            [self.index[f.output] for f in flops], dtype=np.intp
        )
        self.flop_d_indices = np.array(
            [self.index[f.inputs[0]] for f in flops], dtype=np.intp
        )
        #: net index -> row position in the state array.
        self.flop_row_of: _t.Dict[int, int] = {
            self.index[f.output]: row for row, f in enumerate(flops)
        }
        self.ops: _t.List[_t.Tuple[int, int, _t.Tuple[int, ...]]] = [
            (
                _OPCODES[gate.gate_type],
                self.index[gate.output],
                tuple(self.index[net] for net in gate.inputs),
            )
            for gate in netlist.levelize()
        ]


class VectorGateSimulator:
    """Evaluate ``lanes`` independent scenarios of one netlist per sweep.

    Mirrors the scalar :class:`~repro.gate.simulator.GateSimulator`
    API (``evaluate``/``clock``/``step``/``reset``, ``set_stuck``/
    ``clear_stuck``/``inject_seu``) with an extra per-call ``lanes``
    selector on the fault hooks; omitted, a fault applies to every
    lane, which degenerates to the scalar semantics broadcast N-wide.
    """

    def __init__(
        self,
        netlist: _t.Union[Netlist, GateProgram],
        lanes: int = LANES_PER_WORD,
    ):
        if lanes < 1:
            raise ValueError("lanes must be positive")
        program = (
            netlist
            if isinstance(netlist, GateProgram)
            else GateProgram(netlist)
        )
        self.program = program
        self.netlist = program.netlist
        self.lanes = lanes
        self.words = -(-lanes // LANES_PER_WORD)
        #: Canonical-row mask: bits for lanes [0, lanes), zero above.
        self.lane_mask = self._full_mask(lanes, self.words)
        self._zeros = np.zeros(self.words, dtype=np.uint64)
        #: Per-net value rows (num_nets x words).
        self.values = np.zeros((program.num_nets, self.words), dtype=np.uint64)
        #: DFF state rows, ordered like ``netlist.flops``.
        self.state = np.zeros(
            (len(program.flop_row_of), self.words), dtype=np.uint64
        )
        # Sparse fault storage keyed by net index.
        self._stuck: _t.Dict[int, _t.List[np.ndarray]] = {}
        self._pending_seu: _t.Dict[int, np.ndarray] = {}
        self.cycles = 0
        #: Gate sweeps (one program pass evaluates every gate once).
        self.evaluations = 0
        #: Scalar-equivalent work: gate evaluations times lanes.
        self.lane_evaluations = 0

    # -- lane plumbing -----------------------------------------------------

    @staticmethod
    def _full_mask(lanes: int, words: int) -> np.ndarray:
        mask = np.zeros(words, dtype=np.uint64)
        full, rem = divmod(lanes, LANES_PER_WORD)
        mask[:full] = np.uint64(0xFFFFFFFFFFFFFFFF)
        if rem:
            mask[full] = np.uint64((1 << rem) - 1)
        return mask

    def _lane_rows(
        self, lanes: _t.Optional[_t.Iterable[int]]
    ) -> np.ndarray:
        """A mask row with the selected lanes' bits set (all when None)."""
        if lanes is None:
            return self.lane_mask.copy()
        mask = np.zeros(self.words, dtype=np.uint64)
        for lane in lanes:
            if not 0 <= lane < self.lanes:
                raise IndexError(
                    f"lane {lane} out of range for {self.lanes} lanes"
                )
            mask[lane >> 6] |= np.uint64(1 << (lane & 63))
        return mask

    def broadcast(self, bit: int) -> np.ndarray:
        """A canonical row with every lane set to *bit*."""
        return self.lane_mask.copy() if bit & 1 else self._zeros.copy()

    def pack_lanes(self, bits: _t.Sequence[int]) -> np.ndarray:
        """Per-lane bit sequence -> one canonical row."""
        if len(bits) != self.lanes:
            raise ValueError(
                f"expected {self.lanes} per-lane bits, got {len(bits)}"
            )
        row = np.zeros(self.words, dtype=np.uint64)
        for lane, bit in enumerate(bits):
            if bit & 1:
                row[lane >> 6] |= np.uint64(1 << (lane & 63))
        return row

    def _coerce(self, value: _t.Any) -> np.ndarray:
        """An input value -> canonical row.

        Accepts a plain 0/1 int (broadcast to every lane), a
        per-lane bit sequence, or a prepacked word row.
        """
        if isinstance(value, (int, np.integer)):
            return self.broadcast(int(value))
        arr = np.asarray(value)
        if arr.dtype == np.uint64 and arr.shape == (self.words,):
            return arr & self.lane_mask
        return self.pack_lanes(list(arr))

    # -- fault control ------------------------------------------------------

    def _net_index(self, net: str) -> int:
        idx = self.program.index.get(net)
        if idx is None:
            raise KeyError(f"unknown net {net!r}")
        return idx

    def set_stuck(
        self,
        net: str,
        level: int,
        lanes: _t.Optional[_t.Iterable[int]] = None,
    ) -> None:
        """Arm a stuck-at fault on *net* for the selected lanes."""
        idx = self._net_index(net)
        mask = self._lane_rows(lanes)
        entry = self._stuck.get(idx)
        if entry is None:
            entry = [self.lane_mask.copy(), np.zeros(self.words, np.uint64)]
            self._stuck[idx] = entry
        and_row, or_row = entry
        and_row &= ~mask
        if level:
            or_row |= mask
        else:
            or_row &= ~mask

    def clear_stuck(
        self,
        net: _t.Optional[str] = None,
        lanes: _t.Optional[_t.Iterable[int]] = None,
    ) -> None:
        """Disarm stuck-at faults (all nets when *net* is None; all
        lanes when *lanes* is None)."""
        if net is None and lanes is None:
            self._stuck.clear()
            return
        targets = (
            list(self._stuck) if net is None else [self._net_index(net)]
        )
        mask = self._lane_rows(lanes)
        for idx in targets:
            entry = self._stuck.get(idx)
            if entry is None:
                continue
            and_row, or_row = entry
            and_row |= mask
            or_row &= ~mask
            if bool(np.all(and_row == self.lane_mask)):
                del self._stuck[idx]

    def inject_seu(
        self, net: str, lanes: _t.Optional[_t.Iterable[int]] = None
    ) -> None:
        """Schedule a single-event upset on *net* for the selected lanes.

        Flip-flop state flips in place immediately; a combinational
        lane flip is pending until the next :meth:`evaluate`.
        """
        idx = self._net_index(net)
        mask = self._lane_rows(lanes)
        flop_row = self.program.flop_row_of.get(idx)
        if flop_row is not None:
            self.state[flop_row] ^= mask
        else:
            pending = self._pending_seu.get(idx)
            if pending is None:
                self._pending_seu[idx] = mask
            else:
                # OR, not XOR: the scalar engine's pending set makes
                # repeated pre-evaluate injection idempotent.
                pending |= mask

    def clear_faults(self) -> None:
        """Drop every stuck-at mask and pending SEU (state untouched)."""
        self._stuck.clear()
        self._pending_seu.clear()

    def _apply_net_faults(self, idx: int, row: np.ndarray) -> np.ndarray:
        pending = self._pending_seu.get(idx)
        if pending is not None:
            row = row ^ pending
        entry = self._stuck.get(idx)
        if entry is not None:
            row = (row & entry[0]) | entry[1]
        return row

    # -- evaluation ---------------------------------------------------------

    def evaluate(
        self, inputs: _t.Mapping[str, _t.Any]
    ) -> _t.Dict[str, np.ndarray]:
        """Settle the combinational logic for the given primary inputs.

        Input values follow :meth:`_coerce` (ints broadcast, per-lane
        sequences and word rows pass through).  Returns a dict of
        primary output rows.  DFF state is *not* advanced — call
        :meth:`clock` for that.
        """
        program = self.program
        values = self.values
        stuck = self._stuck
        pending = self._pending_seu
        faulted = stuck.keys() | pending.keys()
        for net, idx in program.input_nets:
            row = self._coerce(inputs.get(net, 0))
            if idx in faulted:
                row = self._apply_net_faults(idx, row)
            values[idx] = row
        if len(self.state):
            values[program.flop_out_indices] = self.state
            for idx in faulted:
                if idx in program.flop_row_of:
                    values[idx] = self._apply_net_faults(idx, values[idx])
        lane_mask = self.lane_mask
        for code, out, ins in program.ops:
            if code == _OP_AND:
                row = values[ins[0]] & values[ins[1]]
                for extra in ins[2:]:
                    row = row & values[extra]
            elif code == _OP_OR:
                row = values[ins[0]] | values[ins[1]]
                for extra in ins[2:]:
                    row = row | values[extra]
            elif code == _OP_XOR:
                row = values[ins[0]] ^ values[ins[1]]
                for extra in ins[2:]:
                    row = row ^ values[extra]
            elif code == _OP_NOT or code == _OP_BUF:
                row = values[ins[0]]
            elif code == _OP_MUX:
                select = values[ins[0]]
                row = (select & values[ins[2]]) | (~select & values[ins[1]])
                row = row & lane_mask
            elif code == _OP_NAND:
                row = values[ins[0]] & values[ins[1]]
                for extra in ins[2:]:
                    row = row & values[extra]
            elif code == _OP_NOR:
                row = values[ins[0]] | values[ins[1]]
                for extra in ins[2:]:
                    row = row | values[extra]
            else:  # _OP_XNOR
                row = values[ins[0]] ^ values[ins[1]]
                for extra in ins[2:]:
                    row = row ^ values[extra]
            if code in _INVERTING:
                row = ~row & lane_mask
            if out in faulted:
                row = self._apply_net_faults(out, row)
            values[out] = row
        self.evaluations += len(program.ops)
        self.lane_evaluations += len(program.ops) * self.lanes
        pending.clear()
        return {
            net: values[idx].copy() for net, idx in program.output_indices
        }

    def clock(self) -> None:
        """Latch every DFF's input row into its state (rising edge)."""
        if len(self.state):
            self.state[:] = self.values[self.program.flop_d_indices]
        self.cycles += 1

    def step(self, inputs: _t.Mapping[str, _t.Any]) -> _t.Dict[str, np.ndarray]:
        """One full cycle: evaluate then clock (Mealy view)."""
        outputs = self.evaluate(inputs)
        self.clock()
        return outputs

    def reset(self) -> None:
        """Zero state and values; pending SEUs drop, stuck-ats persist
        (mirrors the scalar engine's :meth:`GateSimulator.reset`)."""
        self.state[:] = 0
        self.values[:] = 0
        self._pending_seu.clear()

    # -- bus helpers --------------------------------------------------------

    def pack(
        self, bus: _t.Sequence[str], value: _t.Union[int, _t.Sequence[int]]
    ) -> _t.Dict[str, _t.Any]:
        """Spread integer word(s) over a little-endian bus.

        *value* may be one int (broadcast to every lane) or a per-lane
        sequence of ints.
        """
        if isinstance(value, (int, np.integer)):
            return {net: (int(value) >> i) & 1 for i, net in enumerate(bus)}
        if len(value) != self.lanes:
            raise ValueError(
                f"expected {self.lanes} per-lane words, got {len(value)}"
            )
        return {
            net: self.pack_lanes([(int(v) >> i) & 1 for v in value])
            for i, net in enumerate(bus)
        }

    def unpack_lane(
        self,
        bus: _t.Sequence[str],
        values: _t.Mapping[str, np.ndarray],
        lane: int = 0,
    ) -> int:
        """Collect one lane of a little-endian bus back into an integer."""
        word_idx, bit = lane >> 6, np.uint64(lane & 63)
        one = np.uint64(1)
        word = 0
        for i, net in enumerate(bus):
            word |= int((values[net][word_idx] >> bit) & one) << i
        return word

    def unpack_lanes(
        self,
        bus: _t.Sequence[str],
        values: _t.Mapping[str, np.ndarray],
    ) -> _t.List[int]:
        """Collect every lane of a bus: one integer per lane."""
        rows = np.stack([np.asarray(values[net]) for net in bus])
        lanes = np.arange(self.lanes)
        shifts = (lanes & 63).astype(np.uint64)
        bits = (rows[:, lanes >> 6] >> shifts) & np.uint64(1)  # (bus, lanes)
        if len(bus) <= LANES_PER_WORD:
            weights = np.uint64(1) << np.arange(len(bus), dtype=np.uint64)
            words = (bits.T * weights).sum(axis=1, dtype=np.uint64)
            return [int(w) for w in words]
        # Buses wider than a machine word assemble as Python bignums.
        out = [0] * self.lanes
        for i in range(len(bus)):
            for lane in np.flatnonzero(bits[i]):
                out[lane] |= 1 << i
        return out


def run_vector_outcomes(
    circuit: _t.Any,
    bus: _t.Sequence[str],
    vectors: _t.Sequence[_t.Dict[str, int]],
    sites: _t.Sequence[_t.Any],
    settle_cycles: int,
) -> _t.List[_t.Tuple[_t.Any, _t.Dict[str, int], int]]:
    """Fault-parallel campaign core: one lane per fault site.

    For each input vector, runs a 1-lane golden sweep and one
    ``len(sites)``-lane faulty sweep (64 sites per word, multi-word
    beyond that), reproducing the scalar ``_run_once`` schedule:
    stuck-ats armed from cycle 0, SEUs injected before the final
    settle evaluation, plus one post-clock evaluation when the netlist
    has flops.  Returns ``(site, vector, faulty_word XOR golden_word)``
    triples in (vector-major, site-minor) order.
    """
    program = GateProgram(circuit.netlist)
    cycles = max(settle_cycles, 1)
    has_flops = bool(len(program.flop_row_of))
    golden_sim = VectorGateSimulator(program, lanes=1)
    sim = VectorGateSimulator(program, lanes=max(len(sites), 1))
    seu_lanes: _t.List[_t.Tuple[str, int]] = []
    for lane, site in enumerate(sites):
        if site.kind == "stuck0":
            sim.set_stuck(site.net, 0, lanes=(lane,))
        elif site.kind == "stuck1":
            sim.set_stuck(site.net, 1, lanes=(lane,))
        else:
            seu_lanes.append((site.net, lane))

    results: _t.List[_t.Tuple[_t.Any, _t.Dict[str, int], int]] = []
    for vector in vectors:
        golden_sim.reset()
        for cycle in range(cycles):
            golden_outputs = golden_sim.evaluate(vector)
            golden_sim.clock()
        if has_flops:
            golden_outputs = golden_sim.evaluate(vector)
        golden_word = golden_sim.unpack_lane(bus, golden_outputs)

        if not sites:
            continue
        sim.reset()
        for cycle in range(cycles):
            if cycle == cycles - 1:
                for net, lane in seu_lanes:
                    sim.inject_seu(net, lanes=(lane,))
            outputs = sim.evaluate(vector)
            sim.clock()
        if has_flops:
            outputs = sim.evaluate(vector)
        faulty_words = sim.unpack_lanes(bus, outputs)
        for lane, site in enumerate(sites):
            results.append((site, vector, golden_word ^ faulty_words[lane]))
    return results
