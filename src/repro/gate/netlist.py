"""Gate-level netlists.

Section 2.2 of the paper grounds fault injection at the gate level —
"errors can be injected as bit value flips ... during logic simulation
at the gate or register transfer level" — and Sec. 3.4 requires
*cross-layer* analysis relating those low-level faults to the abstract
fault models used in TLM campaigns.  This module is the data structure
both rest on: a flat, bit-level netlist of primitive gates and D
flip-flops.

Nets are single bits identified by name; multi-bit buses are plain
Python lists of net names (see :mod:`repro.gate.builder`).
"""

from __future__ import annotations

import enum
import typing as _t


class GateType(enum.Enum):
    AND = "and"
    OR = "or"
    NOT = "not"
    XOR = "xor"
    NAND = "nand"
    NOR = "nor"
    XNOR = "xnor"
    BUF = "buf"
    MUX = "mux"  # inputs: (select, a, b) -> b when select else a
    DFF = "dff"  # inputs: (d,) ; clocked state element


#: Evaluation functions for combinational gate types.
_EVAL: _t.Dict[GateType, _t.Callable[..., int]] = {
    GateType.AND: lambda *ins: int(all(ins)),
    GateType.OR: lambda *ins: int(any(ins)),
    GateType.NOT: lambda a: 1 - a,
    GateType.XOR: lambda *ins: _xor(ins),
    GateType.NAND: lambda *ins: 1 - int(all(ins)),
    GateType.NOR: lambda *ins: 1 - int(any(ins)),
    GateType.XNOR: lambda *ins: 1 - _xor(ins),
    GateType.BUF: lambda a: a,
    GateType.MUX: lambda select, a, b: b if select else a,
}


def _xor(ins: _t.Sequence[int]) -> int:
    acc = 0
    for value in ins:
        acc ^= value
    return acc


class Gate:
    """One primitive gate: inputs (net names) -> one output net."""

    __slots__ = ("gate_type", "inputs", "output", "name")

    def __init__(
        self,
        gate_type: GateType,
        inputs: _t.Sequence[str],
        output: str,
        name: str = "",
    ):
        arity = {
            GateType.NOT: 1,
            GateType.BUF: 1,
            GateType.DFF: 1,
            GateType.MUX: 3,
        }
        expected = arity.get(gate_type)
        if expected is not None and len(inputs) != expected:
            raise ValueError(
                f"{gate_type.value} expects {expected} inputs, "
                f"got {len(inputs)}"
            )
        if expected is None and len(inputs) < 2:
            raise ValueError(f"{gate_type.value} expects at least 2 inputs")
        self.gate_type = gate_type
        self.inputs = tuple(inputs)
        self.output = output
        self.name = name or f"{gate_type.value}:{output}"

    def evaluate(self, values: _t.Sequence[int]) -> int:
        return _EVAL[self.gate_type](*values)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Gate({self.name})"


class Netlist:
    """A named collection of gates, primary inputs, and primary outputs."""

    def __init__(self, name: str):
        self.name = name
        self.inputs: _t.List[str] = []
        self.outputs: _t.List[str] = []
        self.gates: _t.List[Gate] = []
        self._net_driver: _t.Dict[str, Gate] = {}
        self._net_counter = 0

    # -- construction -----------------------------------------------------

    def add_input(self, net: str) -> str:
        if net in self._net_driver or net in self.inputs:
            raise ValueError(f"net {net!r} already driven")
        self.inputs.append(net)
        return net

    def add_inputs(self, prefix: str, width: int) -> _t.List[str]:
        """A little-endian input bus: ``prefix0`` is the LSB."""
        return [self.add_input(f"{prefix}{i}") for i in range(width)]

    def mark_output(self, net: str) -> str:
        self.outputs.append(net)
        return net

    def fresh_net(self, hint: str = "n") -> str:
        self._net_counter += 1
        return f"_{hint}{self._net_counter}"

    def add_gate(
        self,
        gate_type: GateType,
        inputs: _t.Sequence[str],
        output: _t.Optional[str] = None,
        name: str = "",
    ) -> str:
        """Add a gate; returns its output net (fresh when not given)."""
        if output is None:
            output = self.fresh_net(gate_type.value)
        if output in self._net_driver or output in self.inputs:
            raise ValueError(f"net {output!r} already driven")
        gate = Gate(gate_type, inputs, output, name)
        self.gates.append(gate)
        self._net_driver[output] = gate
        return output

    # convenience wrappers -------------------------------------------------

    def AND(self, *ins: str) -> str:
        return self.add_gate(GateType.AND, ins)

    def OR(self, *ins: str) -> str:
        return self.add_gate(GateType.OR, ins)

    def NOT(self, a: str) -> str:
        return self.add_gate(GateType.NOT, (a,))

    def XOR(self, *ins: str) -> str:
        return self.add_gate(GateType.XOR, ins)

    def MUX(self, select: str, a: str, b: str) -> str:
        return self.add_gate(GateType.MUX, (select, a, b))

    def DFF(self, d: str, output: _t.Optional[str] = None) -> str:
        return self.add_gate(GateType.DFF, (d,), output)

    # -- queries --------------------------------------------------------------

    @property
    def nets(self) -> _t.List[str]:
        """All nets: primary inputs plus every gate output."""
        return list(self.inputs) + [g.output for g in self.gates]

    @property
    def flops(self) -> _t.List[Gate]:
        return [g for g in self.gates if g.gate_type is GateType.DFF]

    @property
    def combinational(self) -> _t.List[Gate]:
        return [g for g in self.gates if g.gate_type is not GateType.DFF]

    def driver_of(self, net: str) -> _t.Optional[Gate]:
        return self._net_driver.get(net)

    def validate(self) -> None:
        """Check every referenced net is driven and outputs exist."""
        driven = set(self.inputs) | set(self._net_driver)
        for gate in self.gates:
            for net in gate.inputs:
                if net not in driven:
                    raise ValueError(
                        f"gate {gate.name!r} reads undriven net {net!r}"
                    )
        for net in self.outputs:
            if net not in driven:
                raise ValueError(f"primary output {net!r} is undriven")

    def levelize(self) -> _t.List[Gate]:
        """Topologically order combinational gates (DFF outputs and
        primary inputs are sources).  Raises on combinational loops."""
        order: _t.List[Gate] = []
        ready = set(self.inputs) | {f.output for f in self.flops}
        remaining = list(self.combinational)
        while remaining:
            progress = False
            still: _t.List[Gate] = []
            for gate in remaining:
                if all(net in ready for net in gate.inputs):
                    order.append(gate)
                    ready.add(gate.output)
                    progress = True
                else:
                    still.append(gate)
            if not progress:
                raise ValueError(
                    f"combinational loop involving "
                    f"{[g.name for g in still[:5]]}"
                )
            remaining = still
        return order

    def stats(self) -> _t.Dict[str, int]:
        return {
            "inputs": len(self.inputs),
            "outputs": len(self.outputs),
            "gates": len(self.combinational),
            "flops": len(self.flops),
            "nets": len(self.nets),
        }
