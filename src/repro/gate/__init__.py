"""Gate-level substrate (S4): netlists, simulation, fault campaigns."""

from .builder import (
    Circuit,
    alu,
    comparator,
    full_adder,
    majority_voter,
    mux_chain,
    registered_adder,
    ripple_adder,
)
from .faults import (
    FAULT_KINDS,
    FaultSite,
    InjectionOutcome,
    WordErrorProfile,
    enumerate_sites,
    random_vector_source,
    run_campaign,
    run_seu_campaign,
)
from .netlist import Gate, GateType, Netlist
from .simulator import GateSimulator
from .vector import GateProgram, VectorGateSimulator

__all__ = [
    "Circuit",
    "alu",
    "comparator",
    "full_adder",
    "majority_voter",
    "mux_chain",
    "registered_adder",
    "ripple_adder",
    "FAULT_KINDS",
    "FaultSite",
    "InjectionOutcome",
    "WordErrorProfile",
    "enumerate_sites",
    "random_vector_source",
    "run_campaign",
    "run_seu_campaign",
    "Gate",
    "GateType",
    "Netlist",
    "GateSimulator",
    "GateProgram",
    "VectorGateSimulator",
]
