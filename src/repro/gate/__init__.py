"""Gate-level substrate (S4): netlists, simulation, fault campaigns."""

from .builder import (
    Circuit,
    alu,
    comparator,
    full_adder,
    majority_voter,
    registered_adder,
    ripple_adder,
)
from .faults import (
    FaultSite,
    InjectionOutcome,
    WordErrorProfile,
    enumerate_sites,
    run_seu_campaign,
)
from .netlist import Gate, GateType, Netlist
from .simulator import GateSimulator

__all__ = [
    "Circuit",
    "alu",
    "comparator",
    "full_adder",
    "majority_voter",
    "registered_adder",
    "ripple_adder",
    "FaultSite",
    "InjectionOutcome",
    "WordErrorProfile",
    "enumerate_sites",
    "run_seu_campaign",
    "Gate",
    "GateType",
    "Netlist",
    "GateSimulator",
]
