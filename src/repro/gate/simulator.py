"""Gate-level simulation with fault support.

The simulator levelizes the netlist once and then evaluates it cycle by
cycle — the "cycle-accurate gate level" reference point of the
abstraction-speed experiment (E3) and the ground truth of the
cross-layer accuracy experiment (E6).

Fault hooks:

* **stuck-at** faults pin a net to 0/1 for as long as they are armed
  (permanent/intermittent hardware defects);
* **SEU** upsets flip a value transiently: a combinational net for the
  current evaluation, or a flip-flop's stored state (the classic soft
  error in a memory element).
"""

from __future__ import annotations

import typing as _t

from .netlist import Gate, GateType, Netlist


class GateSimulator:
    """Evaluate a :class:`Netlist` one clock cycle at a time."""

    def __init__(self, netlist: Netlist):
        netlist.validate()
        self.netlist = netlist
        self._order: _t.List[Gate] = netlist.levelize()
        #: Current net values (all nets; undefined nets read 0).
        self.values: _t.Dict[str, int] = {net: 0 for net in netlist.nets}
        #: DFF state, keyed by the flop's output net.
        self.state: _t.Dict[str, int] = {
            flop.output: 0 for flop in netlist.flops
        }
        self._stuck: _t.Dict[str, int] = {}
        self._pending_seu: _t.Set[str] = set()
        self.cycles = 0
        self.evaluations = 0  # gate evaluations (the work metric)

    # -- fault control ------------------------------------------------------

    def set_stuck(self, net: str, level: int) -> None:
        """Arm a stuck-at fault on *net*."""
        self._check_net(net)
        self._stuck[net] = 1 if level else 0

    def clear_stuck(self, net: _t.Optional[str] = None) -> None:
        if net is None:
            self._stuck.clear()
        else:
            self._stuck.pop(net, None)

    def inject_seu(self, net: str) -> None:
        """Schedule a single-event upset on *net*.

        For a flip-flop output the stored state flips immediately; for a
        combinational net the flip applies during the next evaluation.
        """
        self._check_net(net)
        if net in self.state:
            self.state[net] ^= 1
        else:
            self._pending_seu.add(net)

    def _check_net(self, net: str) -> None:
        if net not in self.values:
            raise KeyError(f"unknown net {net!r}")

    # -- evaluation ---------------------------------------------------------

    def _apply_net_faults(self, net: str, value: int) -> int:
        if net in self._pending_seu:
            value ^= 1
        if net in self._stuck:
            value = self._stuck[net]
        return value

    def evaluate(self, inputs: _t.Dict[str, int]) -> _t.Dict[str, int]:
        """Settle the combinational logic for the given primary inputs.

        Returns the primary output values.  DFF state is *not* advanced —
        call :meth:`clock` for that.
        """
        values = self.values
        for net in self.netlist.inputs:
            raw = inputs.get(net, 0) & 1
            values[net] = self._apply_net_faults(net, raw)
        for flop_net, flop_value in self.state.items():
            values[flop_net] = self._apply_net_faults(flop_net, flop_value)
        for gate in self._order:
            raw = gate.evaluate([values[n] for n in gate.inputs])
            values[gate.output] = self._apply_net_faults(gate.output, raw)
            self.evaluations += 1
        self._pending_seu.clear()
        return {net: values[net] for net in self.netlist.outputs}

    def clock(self) -> None:
        """Latch every DFF's input into its state (rising edge)."""
        next_state = {
            flop.output: self.values[flop.inputs[0]] & 1
            for flop in self.netlist.flops
        }
        self.state.update(next_state)
        self.cycles += 1

    def step(self, inputs: _t.Dict[str, int]) -> _t.Dict[str, int]:
        """One full cycle: evaluate then clock; returns the outputs
        *before* the clock edge (Mealy view)."""
        outputs = self.evaluate(inputs)
        self.clock()
        return outputs

    def reset(self) -> None:
        for net in self.state:
            self.state[net] = 0
        for net in self.values:
            self.values[net] = 0
        self._pending_seu.clear()

    # -- bus helpers -----------------------------------------------------------

    @staticmethod
    def pack(bus: _t.Sequence[str], value: int) -> _t.Dict[str, int]:
        """Spread an integer over a little-endian bus as input values."""
        return {net: (value >> i) & 1 for i, net in enumerate(bus)}

    @staticmethod
    def unpack(bus: _t.Sequence[str], values: _t.Dict[str, int]) -> int:
        """Collect a little-endian bus back into an integer."""
        word = 0
        for i, net in enumerate(bus):
            word |= (values[net] & 1) << i
        return word
