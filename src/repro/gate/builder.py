"""Synthesized reference circuits.

Hand-rolled structural generators for the circuits the experiments
inject into: ripple-carry adders, comparators, majority voters, a small
ALU, and a registered (pipelined) adder.  Every function returns the
:class:`~repro.gate.netlist.Netlist` plus the relevant buses so tests
and campaigns can drive them by integer value.
"""

from __future__ import annotations

import typing as _t

from .netlist import GateType, Netlist


class Circuit(_t.NamedTuple):
    """A built netlist plus its named buses (little-endian net lists)."""

    netlist: Netlist
    buses: _t.Dict[str, _t.List[str]]


def full_adder(
    netlist: Netlist, a: str, b: str, carry_in: str
) -> _t.Tuple[str, str]:
    """Add one bit column; returns (sum, carry_out) nets."""
    axb = netlist.XOR(a, b)
    total = netlist.XOR(axb, carry_in)
    carry = netlist.OR(netlist.AND(a, b), netlist.AND(axb, carry_in))
    return total, carry


def ripple_adder(width: int, name: str = "adder") -> Circuit:
    """A *width*-bit ripple-carry adder: a + b + cin -> sum, cout."""
    if width < 1:
        raise ValueError("width must be positive")
    netlist = Netlist(name)
    a = netlist.add_inputs("a", width)
    b = netlist.add_inputs("b", width)
    cin = netlist.add_input("cin")
    carry = cin
    sums: _t.List[str] = []
    for i in range(width):
        total, carry = full_adder(netlist, a[i], b[i], carry)
        sums.append(total)
    for net in sums:
        netlist.mark_output(net)
    netlist.mark_output(carry)
    return Circuit(netlist, {"a": a, "b": b, "cin": [cin], "sum": sums, "cout": [carry]})


def comparator(width: int, name: str = "cmp") -> Circuit:
    """Equality comparator: eq = (a == b)."""
    netlist = Netlist(name)
    a = netlist.add_inputs("a", width)
    b = netlist.add_inputs("b", width)
    bits = [netlist.add_gate(GateType.XNOR, (a[i], b[i])) for i in range(width)]
    eq = bits[0] if width == 1 else netlist.AND(*bits)
    netlist.mark_output(eq)
    return Circuit(netlist, {"a": a, "b": b, "eq": [eq]})


def majority_voter(width: int, name: str = "voter") -> Circuit:
    """Bitwise 2-of-3 majority over three *width*-bit buses."""
    netlist = Netlist(name)
    a = netlist.add_inputs("a", width)
    b = netlist.add_inputs("b", width)
    c = netlist.add_inputs("c", width)
    out: _t.List[str] = []
    for i in range(width):
        ab = netlist.AND(a[i], b[i])
        ac = netlist.AND(a[i], c[i])
        bc = netlist.AND(b[i], c[i])
        out.append(netlist.OR(ab, ac, bc))
    for net in out:
        netlist.mark_output(net)
    return Circuit(netlist, {"a": a, "b": b, "c": c, "out": out})


def alu(width: int, name: str = "alu") -> Circuit:
    """A small ALU: op selects among ADD, AND, OR, XOR (2-bit opcode).

    op = 00 -> a + b, 01 -> a & b, 10 -> a | b, 11 -> a ^ b
    """
    netlist = Netlist(name)
    a = netlist.add_inputs("a", width)
    b = netlist.add_inputs("b", width)
    op = netlist.add_inputs("op", 2)
    # Datapaths.
    carry = netlist.add_gate(GateType.XOR, (op[0], op[0]))  # constant 0
    add_bits: _t.List[str] = []
    for i in range(width):
        total, carry = full_adder(netlist, a[i], b[i], carry)
        add_bits.append(total)
    and_bits = [netlist.AND(a[i], b[i]) for i in range(width)]
    or_bits = [netlist.OR(a[i], b[i]) for i in range(width)]
    xor_bits = [netlist.XOR(a[i], b[i]) for i in range(width)]
    # Select: mux tree on (op1, op0).
    out: _t.List[str] = []
    for i in range(width):
        low = netlist.MUX(op[0], add_bits[i], and_bits[i])
        high = netlist.MUX(op[0], or_bits[i], xor_bits[i])
        out.append(netlist.MUX(op[1], low, high))
    for net in out:
        netlist.mark_output(net)
    return Circuit(netlist, {"a": a, "b": b, "op": op, "out": out})


def mux_chain(depth: int, name: str = "muxchain") -> Circuit:
    """A *depth*-deep 2:1 MUX chain.

    Each stage selects between the running value and a fresh data
    input: ``out = d[depth] if s[depth-1] else (... if s[0] else d[0])``.
    Select-line faults steer whole subtrees at once, making this the
    structurally nasty select-path case of the vector-engine
    regression corpus (and a pure test of MUX vectorization).
    """
    if depth < 1:
        raise ValueError("depth must be positive")
    netlist = Netlist(name)
    select = netlist.add_inputs("s", depth)
    data = netlist.add_inputs("d", depth + 1)
    value = data[0]
    for i in range(depth):
        value = netlist.MUX(select[i], value, data[i + 1])
    netlist.mark_output(value)
    return Circuit(netlist, {"s": select, "d": data, "out": [value]})


def registered_adder(width: int, name: str = "regadder") -> Circuit:
    """Adder with input and output registers (a 3-stage datapath).

    Gives the SEU campaigns state elements to hit: flips in the input
    registers, the combinational cloud, and the output register behave
    differently — the layering the cross-layer analysis must capture.
    """
    netlist = Netlist(name)
    a = netlist.add_inputs("a", width)
    b = netlist.add_inputs("b", width)
    a_reg = [netlist.DFF(a[i], f"areg{i}") for i in range(width)]
    b_reg = [netlist.DFF(b[i], f"breg{i}") for i in range(width)]
    carry = netlist.XOR(a_reg[0], a_reg[0])  # constant 0
    sums: _t.List[str] = []
    for i in range(width):
        total, carry = full_adder(netlist, a_reg[i], b_reg[i], carry)
        sums.append(total)
    out_reg = [netlist.DFF(sums[i], f"sreg{i}") for i in range(width)]
    for net in out_reg:
        netlist.mark_output(net)
    return Circuit(
        netlist,
        {"a": a, "b": b, "areg": a_reg, "breg": b_reg, "sum": sums, "out": out_reg},
    )
