"""Gate-level fault campaigns.

The workhorse of the cross-layer experiment (E6): enumerate fault sites
in a netlist, inject one fault per run, and record how the corruption
manifests at the circuit outputs.  The resulting
:class:`WordErrorProfile` — a distribution over word-level error
patterns (XOR of good and faulty outputs) — *is* the derived high-level
fault model the paper calls for ("information on the fault must be
propagated to higher levels of abstraction", Sec. 3.4).
"""

from __future__ import annotations

import collections
import json
import typing as _t

import random

from .builder import Circuit
from .simulator import GateSimulator

#: The fault kinds every engine (scalar and vector) understands.
FAULT_KINDS = ("seu", "stuck0", "stuck1")


class FaultSite(_t.NamedTuple):
    """One injectable location."""

    net: str
    kind: str  # "seu" | "stuck0" | "stuck1"


def _check_kinds(kinds: _t.Iterable[str]) -> None:
    for kind in kinds:
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {kind!r}")


def enumerate_sites(
    circuit: Circuit, kinds: _t.Sequence[str] = ("seu",)
) -> _t.List[FaultSite]:
    """All (net, kind) pairs for the netlist's internal and state nets.

    Kinds are validated up front — an unknown kind raises before any
    site is produced, not partway through the net list.
    """
    _check_kinds(kinds)
    return [
        FaultSite(net, kind)
        for net in circuit.netlist.nets
        for kind in kinds
    ]


class InjectionOutcome(_t.NamedTuple):
    """Result of one golden-vs-faulty comparison."""

    site: FaultSite
    input_vector: _t.Dict[str, int]
    error_pattern: int  # XOR of golden and faulty output words
    masked: bool


class WordErrorProfile:
    """Distribution of word-level error patterns caused by gate faults.

    This is the cross-layer artifact: a TLM-level injector samples from
    it instead of flipping uniformly random bits, closing the accuracy
    gap reported by Cho et al. [40].
    """

    def __init__(self):
        self.pattern_counts: _t.Counter = collections.Counter()
        self.total = 0
        self.masked = 0

    def record(self, outcome: InjectionOutcome) -> None:
        self.total += 1
        if outcome.masked:
            self.masked += 1
        else:
            self.pattern_counts[outcome.error_pattern] += 1

    @property
    def masking_rate(self) -> float:
        return self.masked / self.total if self.total else 0.0

    @property
    def multi_bit_fraction(self) -> float:
        """Fraction of *manifest* errors affecting more than one bit."""
        manifest = sum(self.pattern_counts.values())
        if not manifest:
            return 0.0
        multi = sum(
            count
            for pattern, count in self.pattern_counts.items()
            if bin(pattern).count("1") > 1
        )
        return multi / manifest

    def sample_pattern(self, rng: random.Random) -> _t.Optional[int]:
        """Draw an error pattern (or None for a masked fault)."""
        if not self.total:
            raise ValueError("empty profile")
        roll = rng.randrange(self.total)
        if roll < self.masked:
            return None
        remaining = roll - self.masked
        for pattern, count in sorted(self.pattern_counts.items()):
            if remaining < count:
                return pattern
            remaining -= count
        raise AssertionError("unreachable")  # pragma: no cover

    def canonical(self) -> bytes:
        """Stable byte serialization — the engine-equivalence currency.

        Two profiles are byte-identical iff they recorded the same
        masked/manifest totals and the same pattern multiset; campaign
        equivalence suites compare these bytes directly.
        """
        payload = {
            "total": self.total,
            "masked": self.masked,
            "patterns": sorted(self.pattern_counts.items()),
        }
        return json.dumps(payload, separators=(",", ":")).encode()


def random_vector_source(
    circuit: Circuit,
) -> _t.Callable[[random.Random], _t.Dict[str, int]]:
    """Uniform random bit per primary input, drawn from the campaign rng."""
    inputs = list(circuit.netlist.inputs)

    def source(rng: random.Random) -> _t.Dict[str, int]:
        return {net: rng.randrange(2) for net in inputs}

    return source


def _resolve_rng(
    seed: int, rng: _t.Optional[random.Random]
) -> random.Random:
    """Campaign randomness is always an explicit instance.

    Callers either pass their own ``random.Random`` (threading one rng
    through a larger experiment) or a seed from which a private
    instance is built — the process-global ``random.*`` stream is
    never consulted.
    """
    return rng if rng is not None else random.Random(seed)


def run_seu_campaign(
    circuit: Circuit,
    output_bus: str,
    vector_source: _t.Callable[[random.Random], _t.Dict[str, int]],
    sites: _t.Optional[_t.Sequence[FaultSite]] = None,
    runs_per_site: int = 4,
    settle_cycles: int = 2,
    seed: int = 0,
    rng: _t.Optional[random.Random] = None,
) -> _t.Tuple[WordErrorProfile, _t.List[InjectionOutcome]]:
    """Golden/faulty SEU campaign over *circuit*.

    For each site and each of ``runs_per_site`` random input vectors,
    run a golden pass and a faulty pass (SEU on the site during the
    final evaluation) and compare the outputs on *output_bus*.
    Sequential circuits are clocked ``settle_cycles`` times so register
    faults propagate.  Passing *rng* overrides *seed*; vectors are
    drawn per (site, run), so each site sees its own stimulus stream.
    """
    rng = _resolve_rng(seed, rng)
    if sites is None:
        sites = enumerate_sites(circuit)
    bus = circuit.buses[output_bus]
    profile = WordErrorProfile()
    outcomes: _t.List[InjectionOutcome] = []

    for site in sites:
        for _ in range(runs_per_site):
            vector = vector_source(rng)
            golden = _run_once(circuit, vector, settle_cycles, None)
            faulty = _run_once(circuit, vector, settle_cycles, site)
            golden_word = GateSimulator.unpack(bus, golden)
            faulty_word = GateSimulator.unpack(bus, faulty)
            pattern = golden_word ^ faulty_word
            outcome = InjectionOutcome(
                site, vector, pattern, masked=pattern == 0
            )
            profile.record(outcome)
            outcomes.append(outcome)
    return profile, outcomes


def _run_once(
    circuit: Circuit,
    vector: _t.Dict[str, int],
    settle_cycles: int,
    site: _t.Optional[FaultSite],
) -> _t.Dict[str, int]:
    sim = GateSimulator(circuit.netlist)
    if site is not None and site.kind == "stuck0":
        sim.set_stuck(site.net, 0)
    elif site is not None and site.kind == "stuck1":
        sim.set_stuck(site.net, 1)
    outputs: _t.Dict[str, int] = {}
    for cycle in range(max(settle_cycles, 1)):
        last = cycle == max(settle_cycles, 1) - 1
        if site is not None and site.kind == "seu" and last:
            sim.inject_seu(site.net)
        outputs = sim.evaluate(vector)
        sim.clock()
    # One more evaluation so output-register faults become visible.
    if circuit.netlist.flops:
        outputs = sim.evaluate(vector)
    return outputs


def run_campaign(
    circuit: Circuit,
    output_bus: str,
    vector_source: _t.Optional[
        _t.Callable[[random.Random], _t.Dict[str, int]]
    ] = None,
    *,
    sites: _t.Optional[_t.Sequence[FaultSite]] = None,
    kinds: _t.Sequence[str] = ("seu",),
    runs_per_site: int = 4,
    settle_cycles: int = 2,
    seed: int = 0,
    rng: _t.Optional[random.Random] = None,
    engine: str = "scalar",
) -> _t.Tuple[WordErrorProfile, _t.List[InjectionOutcome]]:
    """Fault-enumeration campaign with a selectable execution engine.

    ``runs_per_site`` input vectors are drawn up front from the
    campaign rng and *shared across every site*, which is what lets
    the vector engine pack all sites of one stimulus into bit-lanes.
    Both engines follow the same schedule as :func:`run_seu_campaign`'s
    per-run loop (stuck-ats armed from cycle 0, SEUs injected before
    the final settle evaluation, one extra evaluation for netlists
    with flops) and iterate (vector-major, site-minor), so

    * ``engine="scalar"`` — one :class:`GateSimulator` run per
      (vector, site) pair: the ground truth;
    * ``engine="vector"`` — one bit-lane per site, 64 sites per
      ``uint64`` word (multi-word rows beyond 64), one sweep per
      vector via :class:`~repro.gate.vector.VectorGateSimulator`;

    produce byte-identical profiles (``WordErrorProfile.canonical()``)
    and element-identical outcome lists.  Passing *rng* overrides
    *seed*.
    """
    rng = _resolve_rng(seed, rng)
    if sites is None:
        sites = enumerate_sites(circuit, kinds)
    else:
        _check_kinds(site.kind for site in sites)
    if vector_source is None:
        vector_source = random_vector_source(circuit)
    vectors = [vector_source(rng) for _ in range(runs_per_site)]
    bus = circuit.buses[output_bus]

    if engine == "scalar":
        triples = _scalar_outcomes(circuit, bus, vectors, sites, settle_cycles)
    elif engine == "vector":
        from .vector import run_vector_outcomes

        triples = run_vector_outcomes(
            circuit, bus, vectors, sites, settle_cycles
        )
    else:
        raise ValueError(f"unknown campaign engine {engine!r}")

    profile = WordErrorProfile()
    outcomes: _t.List[InjectionOutcome] = []
    for site, vector, pattern in triples:
        outcome = InjectionOutcome(site, vector, pattern, masked=pattern == 0)
        profile.record(outcome)
        outcomes.append(outcome)
    return profile, outcomes


def _scalar_outcomes(
    circuit: Circuit,
    bus: _t.Sequence[str],
    vectors: _t.Sequence[_t.Dict[str, int]],
    sites: _t.Sequence[FaultSite],
    settle_cycles: int,
) -> _t.List[_t.Tuple[FaultSite, _t.Dict[str, int], int]]:
    """One scalar golden pass per vector, one faulty pass per site."""
    results: _t.List[_t.Tuple[FaultSite, _t.Dict[str, int], int]] = []
    for vector in vectors:
        golden = _run_once(circuit, vector, settle_cycles, None)
        golden_word = GateSimulator.unpack(bus, golden)
        for site in sites:
            faulty = _run_once(circuit, vector, settle_cycles, site)
            faulty_word = GateSimulator.unpack(bus, faulty)
            results.append((site, vector, golden_word ^ faulty_word))
    return results
