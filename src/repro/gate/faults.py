"""Gate-level fault campaigns.

The workhorse of the cross-layer experiment (E6): enumerate fault sites
in a netlist, inject one fault per run, and record how the corruption
manifests at the circuit outputs.  The resulting
:class:`WordErrorProfile` — a distribution over word-level error
patterns (XOR of good and faulty outputs) — *is* the derived high-level
fault model the paper calls for ("information on the fault must be
propagated to higher levels of abstraction", Sec. 3.4).
"""

from __future__ import annotations

import collections
import typing as _t

import random

from .builder import Circuit
from .simulator import GateSimulator


class FaultSite(_t.NamedTuple):
    """One injectable location."""

    net: str
    kind: str  # "seu" | "stuck0" | "stuck1"


def enumerate_sites(
    circuit: Circuit, kinds: _t.Sequence[str] = ("seu",)
) -> _t.List[FaultSite]:
    """All (net, kind) pairs for the netlist's internal and state nets."""
    sites: _t.List[FaultSite] = []
    for net in circuit.netlist.nets:
        for kind in kinds:
            if kind not in ("seu", "stuck0", "stuck1"):
                raise ValueError(f"unknown fault kind {kind!r}")
            sites.append(FaultSite(net, kind))
    return sites


class InjectionOutcome(_t.NamedTuple):
    """Result of one golden-vs-faulty comparison."""

    site: FaultSite
    input_vector: _t.Dict[str, int]
    error_pattern: int  # XOR of golden and faulty output words
    masked: bool


class WordErrorProfile:
    """Distribution of word-level error patterns caused by gate faults.

    This is the cross-layer artifact: a TLM-level injector samples from
    it instead of flipping uniformly random bits, closing the accuracy
    gap reported by Cho et al. [40].
    """

    def __init__(self):
        self.pattern_counts: _t.Counter = collections.Counter()
        self.total = 0
        self.masked = 0

    def record(self, outcome: InjectionOutcome) -> None:
        self.total += 1
        if outcome.masked:
            self.masked += 1
        else:
            self.pattern_counts[outcome.error_pattern] += 1

    @property
    def masking_rate(self) -> float:
        return self.masked / self.total if self.total else 0.0

    @property
    def multi_bit_fraction(self) -> float:
        """Fraction of *manifest* errors affecting more than one bit."""
        manifest = sum(self.pattern_counts.values())
        if not manifest:
            return 0.0
        multi = sum(
            count
            for pattern, count in self.pattern_counts.items()
            if bin(pattern).count("1") > 1
        )
        return multi / manifest

    def sample_pattern(self, rng: random.Random) -> _t.Optional[int]:
        """Draw an error pattern (or None for a masked fault)."""
        if not self.total:
            raise ValueError("empty profile")
        roll = rng.randrange(self.total)
        if roll < self.masked:
            return None
        remaining = roll - self.masked
        for pattern, count in sorted(self.pattern_counts.items()):
            if remaining < count:
                return pattern
            remaining -= count
        raise AssertionError("unreachable")  # pragma: no cover


def run_seu_campaign(
    circuit: Circuit,
    output_bus: str,
    vector_source: _t.Callable[[random.Random], _t.Dict[str, int]],
    sites: _t.Optional[_t.Sequence[FaultSite]] = None,
    runs_per_site: int = 4,
    settle_cycles: int = 2,
    seed: int = 0,
) -> _t.Tuple[WordErrorProfile, _t.List[InjectionOutcome]]:
    """Golden/faulty SEU campaign over *circuit*.

    For each site and each of ``runs_per_site`` random input vectors,
    run a golden pass and a faulty pass (SEU on the site during the
    final evaluation) and compare the outputs on *output_bus*.
    Sequential circuits are clocked ``settle_cycles`` times so register
    faults propagate.
    """
    rng = random.Random(seed)
    if sites is None:
        sites = enumerate_sites(circuit)
    bus = circuit.buses[output_bus]
    profile = WordErrorProfile()
    outcomes: _t.List[InjectionOutcome] = []

    for site in sites:
        for _ in range(runs_per_site):
            vector = vector_source(rng)
            golden = _run_once(circuit, vector, settle_cycles, None)
            faulty = _run_once(circuit, vector, settle_cycles, site)
            golden_word = GateSimulator.unpack(bus, golden)
            faulty_word = GateSimulator.unpack(bus, faulty)
            pattern = golden_word ^ faulty_word
            outcome = InjectionOutcome(
                site, vector, pattern, masked=pattern == 0
            )
            profile.record(outcome)
            outcomes.append(outcome)
    return profile, outcomes


def _run_once(
    circuit: Circuit,
    vector: _t.Dict[str, int],
    settle_cycles: int,
    site: _t.Optional[FaultSite],
) -> _t.Dict[str, int]:
    sim = GateSimulator(circuit.netlist)
    if site is not None and site.kind == "stuck0":
        sim.set_stuck(site.net, 0)
    elif site is not None and site.kind == "stuck1":
        sim.set_stuck(site.net, 1)
    outputs: _t.Dict[str, int] = {}
    for cycle in range(max(settle_cycles, 1)):
        last = cycle == max(settle_cycles, 1) - 1
        if site is not None and site.kind == "seu" and last:
            sim.inject_seu(site.net)
        outputs = sim.evaluate(vector)
        sim.clock()
    # One more evaluation so output-register faults become visible.
    if circuit.netlist.flops:
        outputs = sim.evaluate(vector)
    return outputs
